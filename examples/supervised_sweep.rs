//! Supervised sweeps: panic isolation, retries, and checkpoint/resume.
//!
//! Walks the three failure stories `fpb sweep` handles (DESIGN.md §11):
//! a transiently-failing point that a retry rescues, a poisoned point
//! that is quarantined without aborting the grid, and an interrupted
//! journaled sweep resumed to a byte-identical final report.
//!
//! ```sh
//! cargo run --release --example supervised_sweep
//! ```

use fpb::sim::journal::JournalMode;
use fpb::sim::sweep::{
    run_sweep_supervised, Axis, PanicInjection, ReuseOptions, SupervisedSweepRequest,
};
use fpb::sim::{CancelToken, SimOptions, SupervisePolicy};
use fpb::trace::catalog;
use fpb::trace::Workload;
use fpb::types::SystemConfig;

fn request<'a>(wl: &'a Workload, axes: &'a [Axis]) -> SupervisedSweepRequest<'a> {
    SupervisedSweepRequest {
        workload: wl,
        base_cfg: SystemConfig::default(),
        axes,
        scheme: "fpb",
        baseline: "dimm-chip",
        opts: SimOptions::with_instructions(3_000),
        policy: SupervisePolicy { backoff_base_ms: 1, backoff_cap_ms: 2, ..Default::default() },
        journal: None,
        cancel: CancelToken::new(),
        cancel_after: None,
        inject_panic: None,
        // Semantic dedup on (the shipping default), no persistent cache —
        // the example's runs stay self-contained.
        reuse: ReuseOptions::default(),
    }
}

fn main() {
    let wl = catalog::workload("cop_m").expect("catalog workload");
    let axes = vec![Axis::pt_dimm(&[466, 560]), Axis::e_gcp(&[0.6, 0.9])];

    // 1. A point that panics once, with a retry budget: the supervisor
    //    re-runs it and the sweep still completes every point.
    let mut req = request(&wl, &axes);
    req.policy.max_retries = 2;
    req.inject_panic = Some(PanicInjection { point: 1, attempts: 1 });
    let run = run_sweep_supervised(req).expect("retried sweep");
    println!("transient failure:  {} ok, {} retried (grid complete: {})", run.count("ok"), run.count("retried"), run.complete());

    // 2. A point that panics on every attempt: quarantined and reported,
    //    the other three points finish normally.
    let mut req = request(&wl, &axes);
    req.inject_panic = Some(PanicInjection { point: 2, attempts: u32::MAX });
    let run = run_sweep_supervised(req).expect("quarantine sweep");
    for q in run.quarantined() {
        println!("quarantined:        point {} ({}) — {}", q.index, q.label, q.outcome);
    }
    println!("despite the panic:  {} ok, {} panicked", run.count("ok"), run.count("panicked"));

    // 3. Checkpoint/resume: journal a run cancelled after two points,
    //    then resume it; the final JSON is byte-identical to a clean run.
    let journal = std::env::temp_dir().join("supervised_sweep_example.fpbj");
    std::fs::remove_file(&journal).ok();
    let clean = run_sweep_supervised(request(&wl, &axes)).expect("clean run");

    let mut req = request(&wl, &axes);
    req.journal = Some(JournalMode::Fresh(journal.clone()));
    req.cancel_after = Some(2);
    req.policy.jobs = 1;
    let partial = run_sweep_supervised(req).expect("interrupted run");
    println!("interrupted run:    {} ok, {} skipped", partial.count("ok"), partial.count("skipped"));

    let mut req = request(&wl, &axes);
    req.journal = Some(JournalMode::Resume(journal.clone()));
    let resumed = run_sweep_supervised(req).expect("resumed run");
    println!("resumed run:        restored {} points from the journal", resumed.restored);
    println!("byte-identical:     {}", resumed.to_json() == clean.to_json());
    std::fs::remove_file(&journal).ok();
}
