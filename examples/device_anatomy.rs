//! Anatomy of a single MLC line write: watch the program-and-verify
//! iterations, per-chip power demand under each cell mapping, and the
//! token ledger reacting iteration by iteration.
//!
//! ```sh
//! cargo run --release --example device_anatomy
//! ```

use fpb::pcm::{CellMapping, ChangeSet, DimmGeometry, IterationSampler, LineWrite};
use fpb::power::{PowerManager, PowerPolicyConfig, WriteId};
use fpb::trace::{DataClass, DataProfile};
use fpb::types::{MlcWriteModel, PowerConfig, SimRng, Tokens};

fn main() {
    let geom = DimmGeometry::new(8, 1024);
    let sampler = IterationSampler::new(MlcWriteModel::default());
    let mut rng = SimRng::seed_from(2012);

    // Sample a realistic integer-data change set for a 256 B line.
    let data = DataProfile::new(DataClass::Integer, 0.5);
    let changes: ChangeSet = data.sample_change_set(256, &mut rng);
    println!("changed cells: {} of 1024", changes.len());

    // Per-chip demand of the RESET under each mapping.
    println!("\nper-chip RESET demand (cells):");
    println!("{:<6} {:>5} {:>5} {:>5} {:>5} {:>5} {:>5} {:>5} {:>5}", "map", "c0", "c1", "c2", "c3", "c4", "c5", "c6", "c7");
    for mapping in CellMapping::ALL {
        let counts = mapping.distribute(changes.iter().map(|&(c, _)| c), 8);
        print!("{:<6}", mapping.label());
        for c in counts {
            print!(" {c:>5}");
        }
        println!();
    }

    // Drive the write through the FPB power manager, printing each
    // iteration's demand and the DIMM ledger's free tokens.
    let cfg = PowerPolicyConfig::fpb(&PowerConfig::default(), 8);
    let mut pm = PowerManager::new(cfg, &geom);
    let mut write = LineWrite::new(&changes, &geom, CellMapping::Bim, &sampler, &mut rng, 1);
    let id = WriteId::new(1);
    assert!(pm.try_admit(id, &mut write), "empty ledger must admit");

    println!("\niteration-by-iteration (BIM mapping, FPB-IPM budgeting):");
    println!("{:<6} {:>8} {:>12} {:>14}", "iter", "kind", "active cells", "free chip0 tok");
    let mut i = 1;
    loop {
        let demand = write.next_demand().expect("incomplete");
        let kind = if demand.kind.is_reset() { "RESET" } else { "SET" };
        println!(
            "{:<6} {:>8} {:>12} {:>14}",
            i,
            kind,
            demand.active_cells,
            format!("{}", pm.ledger().chip_available(0))
        );
        write.advance();
        if write.is_complete() {
            pm.release(id);
            break;
        }
        assert!(pm.try_advance(id, &write), "solo write never stalls");
        i += 1;
    }
    println!("\nwrite finished in {i} iterations (slowest cell's P&V bound)");
    assert_eq!(
        pm.ledger().chip_available(0),
        Tokens::from_millis(66_500),
        "ledger fully restored"
    );
    println!("ledger fully restored: chip 0 back to 66.5 tokens");

    // Show the nondeterminism: the same data written again takes a
    // different number of iterations.
    let again = LineWrite::new(&changes, &geom, CellMapping::Bim, &sampler, &mut rng, 1);
    println!(
        "rewriting the same data: {} iterations this time (P&V is nondeterministic)",
        again.total_iterations()
    );
}
