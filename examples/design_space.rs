//! Design-space exploration: how FPB's benefit moves with line size,
//! LLC capacity and the DIMM token budget (the §6.4 sweeps, condensed).
//!
//! ```sh
//! cargo run --release --example design_space
//! ```

use fpb::sim::engine::{run_workload_warmed, warm_cores};
use fpb::sim::{SchemeSetup, SimOptions};
use fpb::trace::catalog;
use fpb::types::SystemConfig;

fn fpb_gain(cfg: &SystemConfig, workload_name: &str, opts: &SimOptions) -> f64 {
    let wl = catalog::workload(workload_name).expect("catalog workload");
    let cores = warm_cores(&wl, cfg, opts);
    let base = run_workload_warmed(&wl, cfg, &SchemeSetup::dimm_chip(cfg), opts, &cores);
    let fpb = run_workload_warmed(&wl, cfg, &SchemeSetup::fpb(cfg), opts, &cores);
    fpb.speedup_over(&base)
}

fn main() {
    let opts = SimOptions::with_instructions(120_000);
    let wl = "lbm_m";
    println!("FPB speedup over DIMM+chip for {wl}, one knob at a time\n");

    println!("line size (B)   FPB speedup");
    for bytes in [64u32, 128, 256] {
        let cfg = SystemConfig::default().with_line_bytes(bytes);
        println!("{bytes:<15} {:.3}", fpb_gain(&cfg, wl, &opts));
    }

    println!("\nLLC capacity (MiB/core)   FPB speedup");
    for mib in [8u32, 16, 32, 128] {
        let cfg = SystemConfig::default().with_llc_mib(mib);
        println!("{mib:<25} {:.3}", fpb_gain(&cfg, wl, &opts));
    }

    println!("\nDIMM budget (tokens)   FPB speedup");
    for pt in [466u64, 532, 598] {
        let cfg = SystemConfig::default().with_pt_dimm(pt);
        println!("{pt:<22} {:.3}", fpb_gain(&cfg, wl, &opts));
    }

    println!("\nGCP efficiency   FPB speedup");
    for eff in [0.95, 0.7, 0.5, 0.3] {
        let cfg = SystemConfig::default().with_gcp_efficiency(eff);
        println!("{eff:<16} {:.3}", fpb_gain(&cfg, wl, &opts));
    }

    println!("\nTakeaways (matching §6.4): bigger lines and tighter budgets");
    println!("magnify FPB's advantage; giant LLCs and generous budgets shrink it.");
}
