//! Walk the paper's power-budgeting schemes over a heterogeneous
//! multi-programmed mix and show where each scheme's time goes.
//!
//! ```sh
//! cargo run --release --example power_schemes
//! ```

use fpb::pcm::CellMapping;
use fpb::sim::engine::{run_workload_warmed, warm_cores};
use fpb::sim::{SchemeSetup, SimOptions};
use fpb::trace::catalog;
use fpb::types::SystemConfig;

fn main() {
    let cfg = SystemConfig::default();
    let workload = catalog::workload("mix_1").expect("catalog workload");
    let opts = SimOptions::with_instructions(200_000);

    // Warm the private LLCs once; replay every scheme from identical state.
    let cores = warm_cores(&workload, &cfg, &opts);
    let baseline = run_workload_warmed(&workload, &cfg, &SchemeSetup::dimm_chip(&cfg), &opts, &cores);

    println!("workload: {} (2x S.add, 2x C.lbm, 2x C.xalancbmk, 2x B.mummer)", workload.name);
    println!(
        "{:<14} {:>8} {:>9} {:>11} {:>10} {:>10} {:>9}",
        "scheme", "speedup", "burst%", "gcp tokens", "gcp peak", "mr splits", "stalls"
    );

    let setups = vec![
        SchemeSetup::dimm_chip(&cfg),
        SchemeSetup::pwl(&cfg),
        SchemeSetup::scaled_local(&cfg, 2.0),
        SchemeSetup::gcp(&cfg, CellMapping::Naive, 0.7),
        SchemeSetup::gcp(&cfg, CellMapping::Bim, 0.7),
        SchemeSetup::gcp_ipm(&cfg),
        SchemeSetup::fpb(&cfg),
        SchemeSetup::ideal(&cfg),
    ];
    for setup in setups {
        let m = run_workload_warmed(&workload, &cfg, &setup, &opts, &cores);
        println!(
            "{:<14} {:>8.3} {:>8.1}% {:>11.0} {:>10} {:>10} {:>9}",
            setup.label,
            m.speedup_over(&baseline),
            m.burst_fraction() * 100.0,
            m.power.gcp_usable_total().as_f64(),
            m.power.peak_gcp_tokens(),
            m.power.multi_reset_splits(),
            m.power.advance_stalls(),
        );
    }

    println!();
    println!("Reading the columns:");
    println!("- PWL and 2xlocal are the paper's rejected alternatives (SS2.2):");
    println!("  wear-leveling barely balances power; doubling pumps costs 100% area.");
    println!("- GCP columns show the global pump working: BIM needs fewer GCP");
    println!("  tokens than the naive mapping for the same (or better) speedup.");
    println!("- IPM reclaims tokens every iteration; Multi-RESET splits blocked");
    println!("  RESETs (mr splits) instead of waiting for one big token grant.");
}
