//! Quickstart: simulate one write-heavy workload under the paper's
//! baseline power management and under full FPB, and compare.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use fpb::sim::{run_workload, SchemeSetup, SimOptions};
use fpb::trace::catalog;
use fpb::types::SystemConfig;

fn main() {
    // Table 1 baseline: 8-core 4 GHz CMP, 32 MB/core DRAM LLC, a 4 GB
    // 8-bank MLC PCM DIMM with a 560-token power budget.
    let cfg = SystemConfig::default();

    // Table 2's mcf workload: 8 copies of SPEC CPU2006 mcf — high RPKI and
    // WPKI with integer data (low-order bits change most).
    let workload = catalog::workload("mcf_m").expect("catalog workload");
    let opts = SimOptions::with_instructions(200_000);

    println!("workload: {} (RPKI {}, WPKI {})", workload.name, workload.table2_rpki, workload.table2_wpki);
    println!("{:<14} {:>8} {:>10} {:>10} {:>9} {:>8}", "scheme", "CPI", "reads", "writes", "burst%", "speedup");

    let baseline = run_workload(&workload, &cfg, &SchemeSetup::dimm_chip(&cfg), &opts);
    for setup in [
        SchemeSetup::dimm_chip(&cfg),
        SchemeSetup::dimm_only(&cfg),
        SchemeSetup::fpb(&cfg),
        SchemeSetup::ideal(&cfg),
    ] {
        let m = run_workload(&workload, &cfg, &setup, &opts);
        println!(
            "{:<14} {:>8.2} {:>10} {:>10} {:>8.1}% {:>8.3}",
            setup.label,
            m.cpi(),
            m.pcm_reads,
            m.pcm_writes,
            m.burst_fraction() * 100.0,
            m.speedup_over(&baseline)
        );
    }

    println!();
    println!("FPB = GCP (global charge pump, BIM mapping) + IPM (per-iteration");
    println!("token budgeting) + Multi-RESET: writes overlap where the per-write");
    println!("heuristic serializes them, recovering most of Ideal's performance.");
}
