//! Time-travel debugging end to end: record a fault-injected run as a
//! lifecycle event stream, break on the first write that degrades to
//! SLC mode under brownout pressure, walk its lineage, attribute the
//! stall time, and prove the replay is lossless — the metrics derived
//! from events alone are byte-identical to the engine's own tallies.
//!
//! ```sh
//! cargo run --release --example inspect_replay
//! ```
//!
//! The same flow from the shell:
//!
//! ```sh
//! fpb inspect --break degraded --workload mcf_m --scheme fpb \
//!     --fault-brownout-period 20000 --fault-brownout-duration 12000 \
//!     --fault-degraded-after 5000 --instructions 40000
//! ```

use fpb::sim::inspect::{Breakpoint, Cursor, Lineage, MemorySink, ReplayedRun, StallReport};
use fpb::sim::{run_workload_recorded, SchemeSetup, SimOptions};
use fpb::trace::catalog;
use fpb::types::{FaultConfig, SystemConfig};

fn main() {
    // Brownouts long enough that the power manager pushes writes into
    // degraded single-level (SLC) mode — the event we want to catch.
    let cfg = SystemConfig::default().with_faults(FaultConfig {
        brownout_period: 20_000,
        brownout_duration: 12_000,
        degraded_after_cycles: 5_000,
        ..FaultConfig::default()
    });
    let wl = catalog::workload("mcf_m").expect("catalog workload");
    let setup = SchemeSetup::fpb(&cfg);
    let opts = SimOptions::with_instructions(40_000);

    // Record: the sink observes every stage transition, power decision,
    // scheme hook, and fault without perturbing the run.
    let (metrics, sink) = run_workload_recorded(&wl, &cfg, &setup, &opts, MemorySink::new())
        .expect("recorded run");
    println!(
        "recorded {} event(s) over {} cycles ({} brownout window(s))\n",
        sink.events().len(),
        metrics.cycles,
        metrics.faults.brownout_windows
    );

    // Break: scan the stream for the first degraded write.
    let mut bp = Breakpoint::parse("degraded").expect("breakpoint grammar");
    let mut cursor = Cursor::new(sink.events().to_vec());
    let hit = cursor.run_until(&mut bp).expect("a write degrades under this fault mix");
    println!("{hit}\n");

    // Lineage: that write's complete story, from creation to Done.
    let id = hit.event.write_id().expect("degraded hits carry a write id");
    let lineage = Lineage::of(cursor.events(), id);
    println!("{lineage}");
    for (idx, ev) in lineage.events.iter().take(6) {
        println!("  [{idx}] {ev}");
    }
    if lineage.events.len() > 6 {
        println!("  ... {} more event(s)", lineage.events.len() - 6);
    }

    // Stalls: where all writes spent their waiting cycles.
    println!("\n{}", StallReport::analyze(cursor.events()).render(3));

    // Replay: the stream alone reconstructs the run, byte for byte.
    let replayed = ReplayedRun::from_events(cursor.events());
    assert_eq!(
        replayed.metrics.to_json(),
        metrics.to_json(),
        "replay must derive the inline metrics exactly"
    );
    println!(
        "replay check: {} events -> metrics byte-identical to the live run ({} samples)",
        replayed.events,
        replayed.timeline.samples().len()
    );
}
