//! Build a custom workload from scratch — your own traffic tiers and
//! data-change behaviour — and see how it responds to power budgeting.
//!
//! This is what a downstream user does to evaluate FPB on their own
//! application's memory behaviour instead of the paper's suite.
//!
//! ```sh
//! cargo run --release --example custom_workload
//! ```

use fpb::sim::{run_workload, SchemeSetup, SimOptions};
use fpb::trace::{DataClass, DataProfile, TrafficTier, Workload, WorkloadProfile};
use fpb::types::SystemConfig;

fn main() {
    // A key-value-store-like profile: a hot index that fits in the LLC,
    // plus a large value log written back with dense (streaming-like)
    // changes — the worst case for write power.
    let kv_store = WorkloadProfile::new(
        "kv-store",
        vec![
            // Hot index: intense, LLC-resident, read-mostly.
            TrafficTier::new(1.2, 0.3, 16.0, false),
            // Value log: cold, write-heavy, random.
            TrafficTier::new(0.4, 0.5, 384.0, false),
        ],
        DataProfile::new(DataClass::Streaming, 0.7),
    );

    // An analytics scanner: pure streaming reads with occasional
    // aggregation writes of float data.
    let scanner = WorkloadProfile::new(
        "scanner",
        vec![
            TrafficTier::new(1.6, 0.1, 448.0, true),
            TrafficTier::new(0.5, 0.2, 8.0, false),
        ],
        DataProfile::new(DataClass::Float, 0.5),
    );

    // Four cores each.
    let workload = Workload {
        name: "kv+scan",
        per_core: vec![
            kv_store.clone(),
            kv_store.clone(),
            kv_store.clone(),
            kv_store,
            scanner.clone(),
            scanner.clone(),
            scanner.clone(),
            scanner,
        ],
        table2_rpki: 0.0, // not a paper workload; targets unused
        table2_wpki: 0.0,
    };

    let cfg = SystemConfig::default();
    let opts = SimOptions::with_instructions(200_000);
    let baseline = run_workload(&workload, &cfg, &SchemeSetup::dimm_chip(&cfg), &opts);

    println!("custom workload: 4x kv-store + 4x scanner");
    println!(
        "{:<12} {:>8} {:>10} {:>10} {:>9} {:>10}",
        "scheme", "CPI", "reads", "writes", "burst%", "cells/wr"
    );
    for setup in [
        SchemeSetup::dimm_chip(&cfg),
        SchemeSetup::fpb(&cfg),
        SchemeSetup::fpb(&cfg).with_wt(8),
        SchemeSetup::ideal(&cfg),
    ] {
        let m = run_workload(&workload, &cfg, &setup, &opts);
        println!(
            "{:<12} {:>8.2} {:>10} {:>10} {:>8.1}% {:>10.0}",
            setup.label,
            m.cpi(),
            m.pcm_reads,
            m.pcm_writes,
            m.burst_fraction() * 100.0,
            m.avg_cell_changes()
        );
    }
    let fpb = run_workload(&workload, &cfg, &SchemeSetup::fpb(&cfg), &opts);
    println!(
        "\nFPB speedup over DIMM+chip on this workload: {:.3}",
        fpb.speedup_over(&baseline)
    );
}
