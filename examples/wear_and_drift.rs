//! Reliability view: wear (endurance) and resistance drift (scrubbing)
//! under FPB.
//!
//! Power budgeting decides *when* cells are written; mappings and wear
//! leveling decide *where*; drift decides how often written lines must be
//! refreshed. This example ties the three together.
//!
//! ```sh
//! cargo run --release --example wear_and_drift
//! ```

use fpb::pcm::{CellMapping, DriftModel, MlcLevel};
use fpb::sim::engine::{run_workload_warmed, warm_cores};
use fpb::sim::{SchemeSetup, SimOptions};
use fpb::trace::catalog;
use fpb::types::SystemConfig;

fn main() {
    let cfg = SystemConfig::default();
    let wl = catalog::workload("mcf_m").expect("catalog workload");
    let opts = SimOptions::with_instructions(150_000);
    let cores = warm_cores(&wl, &cfg, &opts);

    println!("=== wear under each cell mapping (FPB, {}) ===", wl.name);
    println!(
        "{:<8} {:>14} {:>12} {:>16}",
        "mapping", "cells written", "imbalance", "lifetime (runs)"
    );
    for mapping in CellMapping::ALL {
        let m = run_workload_warmed(
            &wl,
            &cfg,
            &SchemeSetup::fpb(&cfg).with_mapping(mapping),
            &opts,
            &cores,
        );
        let e = m.endurance.as_ref().expect("tracked");
        println!(
            "{:<8} {:>14} {:>12.3} {:>16.2e}",
            mapping.label(),
            e.total_cells_written(),
            e.chip_imbalance(),
            e.lifetime_multiple()
        );
    }

    println!("\n=== drift model and scrub budget ===");
    let drift = DriftModel::default();
    let misread = drift.time_to_misread(MlcLevel::L01);
    let interval = drift.scrub_interval_secs(0.5);
    let lines = cfg.pcm.total_lines();
    println!("time to first misread ('01' level): {:.1} hours", misread / 3600.0);
    println!("scrub interval at 50% margin:       {:.1} hours", interval / 3600.0);
    println!(
        "scrub read bandwidth for {} GiB:      {:.0} reads/s ({:.4}% of one bank)",
        cfg.pcm.capacity_gib,
        drift.scrub_reads_per_sec(lines, 0.5),
        drift.scrub_reads_per_sec(lines, 0.5) * 250e-9 * 100.0
    );

    // Demonstrate scrub traffic flowing through the simulator (with an
    // artificially aggressive period so it is visible at sim scale).
    let mut scrub_opts = opts;
    scrub_opts.scrub_period_cycles = Some(50_000);
    let m = run_workload_warmed(&wl, &cfg, &SchemeSetup::fpb(&cfg), &scrub_opts, &cores);
    println!(
        "\nwith stress-test scrubbing every 50k cycles: {} scrub reads alongside {} demand reads",
        m.scrub_reads, m.pcm_reads
    );
    println!("(realistic scrub periods are minutes-to-hours: negligible bandwidth)");
}
