//! Visualize what the DIMM is doing: an ASCII Gantt of per-bank write
//! occupancy and burst mode, baseline vs FPB, on the same workload.
//!
//! ```sh
//! cargo run --release --example bank_timeline
//! ```

use fpb::sim::timeline::Timeline;
use fpb::sim::{SchemeSetup, SimOptions, System};
use fpb::trace::catalog;
use fpb::types::SystemConfig;

fn main() {
    let cfg = SystemConfig::default();
    let wl = catalog::workload("lbm_m").expect("catalog workload");
    let opts = SimOptions::with_instructions(60_000);

    for setup in [SchemeSetup::dimm_chip(&cfg), SchemeSetup::fpb(&cfg)] {
        let sys = System::new(&wl, &cfg, &setup, &opts);
        let tl = Timeline::record(sys);
        println!("=== {} on {} ===", setup.label, wl.name);
        println!("('#' = bank holds a write, 'B' = write burst blocking reads)\n");
        print!("{}", tl.render(100).expect("recorded timeline renders"));
        let m = tl.metrics();
        println!(
            "\nCPI {:.2}, burst {:.0}%, {} writes over {} cycles\n",
            m.cpi(),
            m.burst_fraction() * 100.0,
            m.pcm_writes,
            m.cycles
        );
    }
    println!("Under DIMM+chip the budget serializes writes: long burst stretches");
    println!("('B') with few banks writing at once. FPB packs several '#' columns");
    println!("concurrently and the burst row thins out.");
}
