//! The `fpb` command-line simulator.
//!
//! ```sh
//! cargo run --release --bin fpb -- run --workload mcf_m --scheme fpb
//! cargo run --release --bin fpb -- compare --workload lbm_m
//! cargo run --release --bin fpb -- list
//! cargo run --release --bin fpb -- record --program C.mcf --ops 100000 --out mcf.fpbt
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use fpb::analyze::{
    baseline::check_ratchet, baseline::Baseline, report, sarif, scan_root_cached,
};
use fpb::cli::{self, Command, LintArgs, LintFormat, RunArgs, SweepControl};
use fpb::sim::engine::{run_workload_warmed, warm_cores};
use fpb::sim::journal::JournalMode;
use fpb::sim::sweep::{run_sweep_supervised, PanicInjection, ReuseOptions, SupervisedSweepRequest};
use fpb::sim::{CancelToken, Metrics, SupervisePolicy};
use fpb::trace::catalog;

/// Exit code when a sweep finished but left quarantined or skipped
/// points — distinct from plain failure (1) and CLI misuse (2-ish
/// parse errors also map to 1 here).
const EXIT_INCOMPLETE_SWEEP: u8 = 3;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match cli::parse(&args) {
        Ok(cmd) => match dispatch(cmd) {
            Ok(code) => code,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Err(e) => {
            eprintln!("error: {e}\n\n{}", cli::USAGE);
            ExitCode::FAILURE
        }
    }
}

fn dispatch(cmd: Command) -> Result<ExitCode, String> {
    match cmd {
        Command::Help => {
            println!("{}", cli::USAGE);
            Ok(ExitCode::SUCCESS)
        }
        Command::List => {
            println!("workloads (Table 2):");
            for name in catalog::WORKLOADS {
                let wl = catalog::workload(name)
                    .ok_or_else(|| format!("catalog is missing its own workload `{name}`"))?;
                println!(
                    "  {name:<8} RPKI {:>5.2}  WPKI {:>5.2}  ({})",
                    wl.table2_rpki, wl.table2_wpki, wl.per_core[0].name
                );
            }
            println!("\nschemes: {}", cli::scheme_names().join(", "));
            Ok(ExitCode::SUCCESS)
        }
        Command::Record { program, ops, out } => {
            let profile = catalog::program(&program)
                .ok_or_else(|| format!("unknown program `{program}` (try `fpb list`)"))?;
            let mut rng = fpb::types::SimRng::seed_from(0xF9B);
            let mut gen = fpb::trace::CoreTraceGenerator::new(profile, &mut rng);
            let recorded: Vec<_> = (0..ops).map(|_| gen.next_op()).collect();
            let file = std::fs::File::create(&out).map_err(|e| format!("create {out}: {e}"))?;
            let n = fpb::trace::record::write_trace(std::io::BufWriter::new(file), recorded)
                .map_err(|e| format!("write {out}: {e}"))?;
            println!("recorded {n} operations of {program} to {out}");
            Ok(ExitCode::SUCCESS)
        }
        Command::Run(ra) => {
            if ra.scheme == "help" {
                print!("{}", fpb::sim::SchemeRegistry::standard().help());
                return Ok(ExitCode::SUCCESS);
            }
            let (wl, opts) = resolve(&ra)?;
            let setup = cli::build_scheme(&ra.scheme, &ra).map_err(|e| e.to_string())?;
            let cores = warm_cores(&wl, &ra.cfg, &opts);
            let m = run_workload_warmed(&wl, &ra.cfg, &setup, &opts, &cores);
            print_header();
            print_metrics(&setup.label, &m, None);
            print_wear(&m);
            print_faults(&m);
            Ok(ExitCode::SUCCESS)
        }
        Command::Sweep {
            args,
            axes,
            csv,
            control,
        } => run_sweep(&args, &axes, csv.as_deref(), &control),
        Command::Compare(ra) => {
            let (wl, opts) = resolve(&ra)?;
            let cores = warm_cores(&wl, &ra.cfg, &opts);
            // Scheme runs share the warmed cores and are independent, so
            // they fan across workers. Every registered family runs, with
            // the paper's baseline (DIMM+chip) moved first — the first
            // scheme is the speedup baseline.
            let names = cli::scheme_names();
            let mut order: Vec<&str> = vec!["dimm-chip"];
            order.extend(names.iter().copied().filter(|n| *n != "dimm-chip"));
            let setups: Vec<_> = order
                .iter()
                .map(|name| cli::build_scheme(name, &ra))
                .collect::<Result<_, _>>()
                .map_err(|e| e.to_string())?;
            let results = fpb::sim::parallel_map_indexed(
                &setups,
                cli::effective_jobs(ra.jobs),
                |_, setup| run_workload_warmed(&wl, &ra.cfg, setup, &opts, &cores),
            );
            print_header();
            for (i, (setup, m)) in setups.iter().zip(&results).enumerate() {
                let baseline: Option<&Metrics> = if i == 0 { None } else { Some(&results[0]) };
                print_metrics(&setup.label, m, baseline);
            }
            Ok(ExitCode::SUCCESS)
        }
        Command::Bench {
            jobs,
            instructions,
            repeats,
            out,
            hotpath_out,
        } => {
            let jobs = cli::effective_jobs(jobs);
            let report = fpb::sim::run_fixed_bench_repeats(jobs, instructions, repeats)
                .ok_or("bench workload missing from the catalog")?;
            std::fs::write(&out, report.to_json()).map_err(|e| format!("write {out}: {e}"))?;
            println!(
                "bench: {} points on {} ({} instructions/core, min of {} passes, {} cores detected)",
                report.points,
                report.workload,
                report.instructions_per_core,
                report.repeats,
                report.detected_cores
            );
            println!(
                "  serial   {:>9.1} ms   ({:.0} sim cycles/sec)",
                report.serial_ms, report.sim_cycles_per_sec
            );
            println!(
                "  parallel {:>9.1} ms   ({} jobs, {:.2}x speedup, {:.2} points/sec)",
                report.parallel_ms, report.jobs, report.speedup, report.points_per_sec
            );
            for r in &report.scaling {
                println!(
                    "  scaling  {:>2} jobs {:>9.1} ms  ({:.2}x, {:.2} points/sec)",
                    r.jobs, r.ms, r.speedup, r.points_per_sec
                );
            }
            for sk in &report.skipped_rungs {
                println!("  skipped  {:>2} jobs: {}", sk.jobs, sk.reason);
            }
            println!(
                "  reuse    {} runs -> {} unique ({:.2}x dedup; reuse-off serial {:.1} ms)",
                report.reuse.runs_total,
                report.reuse.runs_unique,
                report.reuse.dedup_ratio(),
                report.no_reuse_serial_ms
            );
            println!(
                "  cache    cold {:>9.1} ms -> warm {:>9.1} ms ({:.2}x)",
                report.result_cache.cold_ms,
                report.result_cache.warm_ms,
                report.result_cache.speedup()
            );
            let eff = &report.efficiency;
            println!(
                "  efficiency gate: {:.2}x at {} jobs ({} effective workers, floor {:.2}x) -> {}",
                eff.actual_speedup,
                eff.jobs,
                eff.effective_workers,
                eff.required_speedup,
                if eff.passed() { "ok" } else { "FAIL" }
            );
            println!("  wrote {out}");
            if !report.identical {
                return Err("parallel sweep metrics diverged from the serial sweep".into());
            }
            println!("  parallel metrics identical to serial: ok");
            if !report.efficiency.passed() {
                return Err(format!(
                    "parallel efficiency below the floor: {:.2}x at {} effective workers (need {:.2}x)",
                    eff.actual_speedup, eff.effective_workers, eff.required_speedup
                ));
            }

            let hot = fpb::sim::run_hotpath_bench(instructions)
                .ok_or("bench workload missing from the catalog")?;
            std::fs::write(&hotpath_out, hot.to_json())
                .map_err(|e| format!("write {hotpath_out}: {e}"))?;
            println!(
                "hotpath: optimized write path vs reference on {} ({} instructions/core)",
                hot.workload, hot.instructions_per_core
            );
            println!(
                "  engine     {:>8.1} ms vs {:>8.1} ms reference  ({:.2}x)",
                hot.engine_optimized_ms, hot.engine_reference_ms, hot.engine_speedup
            );
            println!(
                "  sampler    {:>8.2} ms vs {:>8.2} ms per-bit    ({:.2}x)",
                hot.sampler_words_ms, hot.sampler_perbit_ms, hot.sampler_speedup
            );
            println!(
                "  line-write {:>8.2} ms vs {:>8.2} ms fresh      ({:.2}x, {} reuses / {} allocs)",
                hot.line_write_pooled_ms,
                hot.line_write_fresh_ms,
                hot.line_write_speedup,
                hot.pool_reuses,
                hot.pool_fresh_allocations
            );
            println!("  wrote {hotpath_out}");
            if !hot.stepper_identical {
                return Err("event-heap stepper diverged from the scan stepper".into());
            }
            if !hot.pooling_identical {
                return Err("pooled write buffers diverged from fresh allocation".into());
            }
            if !hot.sampler_equivalent {
                return Err(
                    "word-level sampler drifted from the per-bit reference distribution".into(),
                );
            }
            if hot.line_write_speedup < fpb::sim::LINE_WRITE_FLOOR {
                return Err(format!(
                    "pooled line-write build below the floor: {:.3}x (need {:.2}x)",
                    hot.line_write_speedup,
                    fpb::sim::LINE_WRITE_FLOOR
                ));
            }
            println!("  write-path equivalence gates: ok");
            Ok(ExitCode::SUCCESS)
        }
        Command::Lint(la) => run_lint(&la).map(|()| ExitCode::SUCCESS),
        Command::Inspect(ia) => run_inspect(&ia),
    }
}

/// Runs the `fpb inspect` verbs: record an event log, replay one back
/// into metrics/timeline, scan for a breakpoint, print a write's
/// lineage, or attribute stall time.
fn run_inspect(ia: &cli::InspectArgs) -> Result<ExitCode, String> {
    use cli::InspectVerb;
    use fpb::sim::inspect::{
        lineage_lines, read_event_log, Breakpoint, Cursor, FileSink, LifecycleEvent, MemorySink,
        ReplayedRun, StallReport,
    };
    use fpb::sim::run_workload_recorded;

    // Verbs that read a log share one loader; the corrupt-tail policy
    // (replay the valid prefix) is the reader's, `--require-complete`
    // hardens it into an error.
    let load = |path: &str| -> Result<Vec<LifecycleEvent>, String> {
        let log = read_event_log(std::path::Path::new(path)).map_err(|e| e.to_string())?;
        if ia.require_complete && !log.complete {
            return Err(format!(
                "{path}: event log is incomplete ({} event(s) before the damage); \
                 re-record it or drop --require-complete to replay the valid prefix",
                log.events.len()
            ));
        }
        if !log.complete {
            eprintln!(
                "fpb inspect: {path} is truncated — replaying the {} valid event(s) \
                 ({} corrupt line(s) dropped)",
                log.events.len(),
                log.dropped_lines
            );
        } else {
            println!("log {path}: {} event(s), meta: {}", log.events.len(), log.meta);
        }
        Ok(log.events)
    };
    // Verbs that simulate share one recorded run.
    let record_in_memory = || -> Result<(Metrics, Vec<LifecycleEvent>), String> {
        let (wl, opts) = resolve(&ia.run)?;
        let setup = cli::build_scheme(&ia.run.scheme, &ia.run).map_err(|e| e.to_string())?;
        let (m, sink) = run_workload_recorded(&wl, &ia.run.cfg, &setup, &opts, MemorySink::new())
            .map_err(|e| e.to_string())?;
        Ok((m, sink.into_events()))
    };

    match ia.verb {
        InspectVerb::Record => {
            let log = ia.log.as_deref().ok_or("inspect record requires --log")?;
            let (wl, opts) = resolve(&ia.run)?;
            let setup = cli::build_scheme(&ia.run.scheme, &ia.run).map_err(|e| e.to_string())?;
            let spec = cli::scheme_spec(&ia.run.scheme, &ia.run).map_err(|e| e.to_string())?;
            let meta = format!(
                "fpb-inspect workload={} spec={} instructions={} seed={}",
                ia.run.workload, spec, ia.run.instructions, ia.run.cfg.seed
            );
            let sink =
                FileSink::create(std::path::Path::new(log), &meta).map_err(|e| e.to_string())?;
            let (m, sink) = run_workload_recorded(&wl, &ia.run.cfg, &setup, &opts, sink)
                .map_err(|e| e.to_string())?;
            let events = sink.finish().map_err(|e| e.to_string())?;
            println!("recorded {events} event(s) to {log}");
            print_header();
            print_metrics(&setup.label, &m, None);
            print_wear(&m);
            print_faults(&m);
            Ok(ExitCode::SUCCESS)
        }
        InspectVerb::Replay => {
            let log = ia.log.as_deref().ok_or("inspect replay requires --log")?;
            let events = load(log)?;
            let replayed = ReplayedRun::from_events(&events);
            println!(
                "replayed {} event(s) -> {} timeline sample(s); derived metrics:",
                replayed.events,
                replayed.timeline.samples().len()
            );
            print_header();
            print_metrics("replayed", &replayed.metrics, None);
            print_wear(&replayed.metrics);
            print_faults(&replayed.metrics);
            if ia.json {
                println!("{}", replayed.metrics.to_json());
            }
            if let Some(path) = &ia.metrics_out {
                std::fs::write(path, replayed.metrics.to_json())
                    .map_err(|e| format!("write {path}: {e}"))?;
                println!("wrote {path}");
            }
            Ok(ExitCode::SUCCESS)
        }
        InspectVerb::Break => {
            let expr = ia.break_expr.as_deref().ok_or("inspect break requires --break")?;
            let mut bp = Breakpoint::parse(expr)?;
            let events = match ia.log.as_deref() {
                Some(log) => load(log)?,
                None => {
                    let (_, events) = record_in_memory()?;
                    println!(
                        "recorded {} event(s) from {} / {}",
                        events.len(),
                        ia.run.workload,
                        ia.run.scheme
                    );
                    events
                }
            };
            let mut cursor = Cursor::new(events);
            match cursor.run_until(&mut bp) {
                Some(hit) => {
                    println!("{hit}");
                    if let Some(id) = hit.event.write_id() {
                        for line in lineage_lines(cursor.events(), id) {
                            println!("{line}");
                        }
                    }
                    Ok(ExitCode::SUCCESS)
                }
                None => Err(format!(
                    "breakpoint {expr:?} never fired ({} event(s) scanned)",
                    cursor.len()
                )),
            }
        }
        InspectVerb::Lineage => {
            let log = ia.log.as_deref().ok_or("inspect lineage requires --log")?;
            let id = ia.write.ok_or("inspect lineage requires --write")?;
            let events = load(log)?;
            for line in lineage_lines(&events, id) {
                println!("{line}");
            }
            Ok(ExitCode::SUCCESS)
        }
        InspectVerb::Stalls => {
            let log = ia.log.as_deref().ok_or("inspect stalls requires --log")?;
            let events = load(log)?;
            print!("{}", StallReport::analyze(&events).render(ia.top));
            Ok(ExitCode::SUCCESS)
        }
    }
}

/// Runs the supervised sweep driver: every point is panic-isolated, a
/// quarantined point does not abort the grid, and a journal makes the
/// run resumable with byte-identical final output.
fn run_sweep(
    args: &RunArgs,
    axes: &[(String, String)],
    csv: Option<&str>,
    control: &SweepControl,
) -> Result<ExitCode, String> {
    let (wl, opts) = resolve(args)?;
    let built: Vec<_> = axes
        .iter()
        .map(|(n, vs)| cli::build_axis(n, vs))
        .collect::<Result<_, _>>()
        .map_err(|e| e.to_string())?;
    // Fold the run flags into the spec and validate it up front so a bad
    // spec is a plain CLI error before any simulation work starts.
    let spec = cli::scheme_spec(&args.scheme, args).map_err(|e| e.to_string())?;
    let journal = match (&control.journal, &control.resume) {
        (Some(p), None) => Some(JournalMode::Fresh(PathBuf::from(p))),
        (None, Some(p)) => Some(JournalMode::Resume(PathBuf::from(p))),
        _ => None,
    };
    let reuse = if control.no_result_cache {
        ReuseOptions::disabled()
    } else {
        ReuseOptions {
            dedup: true,
            cache: Some(PathBuf::from(
                control
                    .result_cache
                    .as_deref()
                    .unwrap_or(fpb::sim::DEFAULT_CACHE_PATH),
            )),
        }
    };
    let run = run_sweep_supervised(SupervisedSweepRequest {
        workload: &wl,
        base_cfg: args.cfg.clone(),
        axes: &built,
        scheme: &spec,
        baseline: "dimm-chip",
        opts,
        policy: SupervisePolicy {
            jobs: cli::effective_jobs(args.jobs),
            max_retries: control.retries,
            backoff_base_ms: control.backoff_ms,
            deadline_ms: control.deadline_ms,
            ..SupervisePolicy::default()
        },
        journal,
        cancel: CancelToken::new(),
        cancel_after: control.cancel_after,
        inject_panic: control
            .inject_panic
            .map(|(point, attempts)| PanicInjection { point, attempts }),
        reuse,
    })
    .map_err(|e| e.to_string())?;
    if !control.no_result_cache && run.reuse.runs_total > 0 && !args.quiet {
        eprintln!(
            "fpb sweep: result reuse {} run(s) -> {} unique ({:.2}x), \
             {} cache hit(s), {} simulated",
            run.reuse.runs_total,
            run.reuse.runs_unique,
            run.reuse.dedup_ratio(),
            run.reuse.cache_hits,
            run.reuse.simulated
        );
    }

    println!("{:<40} {:>9} {:>9} {:>9}  status", "point", "speedup", "CPI", "burst%");
    for rec in &run.points {
        match rec.stats() {
            Some(s) => println!(
                "{:<40} {:>9.3} {:>9.2} {:>8.1}%  {}",
                rec.label,
                s.speedup,
                s.cpi,
                s.burst_pct,
                rec.outcome.class()
            ),
            None => println!(
                "{:<40} {:>9} {:>9} {:>9}  {}",
                rec.label,
                "-",
                "-",
                "-",
                rec.outcome.class()
            ),
        }
    }
    let summary = format!(
        "{} ok, {} retried, {} panicked, {} timed out, {} skipped",
        run.count("ok"),
        run.count("retried"),
        run.count("panicked"),
        run.count("timed_out"),
        run.count("skipped")
    );
    println!("\noutcomes: {summary}");
    if run.restored > 0 {
        println!("restored {} points from the journal", run.restored);
    }
    if run.dropped_journal_lines > 0 {
        println!(
            "dropped {} corrupt trailing journal lines (truncated on resume)",
            run.dropped_journal_lines
        );
    }
    for q in run.quarantined() {
        eprintln!("quarantined point {} ({}): {}", q.index, q.label, q.outcome);
    }

    if let Some(path) = &control.json_out {
        std::fs::write(path, run.to_json()).map_err(|e| format!("write {path}: {e}"))?;
        println!("wrote {path}");
    }
    if let Some(path) = csv {
        let file = std::fs::File::create(path).map_err(|e| format!("create {path}: {e}"))?;
        let mut w = std::io::BufWriter::new(file);
        fpb::sim::report::write_csv_header(&mut w).map_err(|e| e.to_string())?;
        let mut rows = 0usize;
        for rec in &run.points {
            if let fpb::sim::sweep::PointState::Done(p) = &rec.state {
                let label = p.label.replace(',', ";");
                fpb::sim::report::write_csv_row(&mut w, &label, &p.metrics)
                    .map_err(|e| e.to_string())?;
                rows += 1;
            }
        }
        println!("wrote {rows} rows to {path}");
    }

    if run.cancelled || !run.quarantined().is_empty() {
        Ok(ExitCode::from(EXIT_INCOMPLETE_SWEEP))
    } else {
        Ok(ExitCode::SUCCESS)
    }
}

fn run_lint(la: &LintArgs) -> Result<(), String> {
    if la.rules {
        print!("{}", report::render_rule_catalog());
        return Ok(());
    }
    let root = std::path::Path::new(&la.root);
    let baseline_path = {
        let p = std::path::Path::new(&la.baseline);
        if p.is_absolute() {
            p.to_path_buf()
        } else {
            root.join(p)
        }
    };
    let baseline_text = std::fs::read_to_string(&baseline_path)
        .map_err(|e| format!("read {}: {e}", baseline_path.display()))?;
    let baseline = Baseline::parse(&baseline_text)?;
    let cache_path = if la.no_cache {
        None
    } else {
        Some(match &la.cache {
            Some(p) => std::path::PathBuf::from(p),
            None => root.join("target").join("fpb-lint-cache.v1"),
        })
    };
    let scan = scan_root_cached(root, cache_path.as_deref())
        .map_err(|e| format!("scan {}: {e}", root.display()))?;
    if cache_path.is_some() {
        eprintln!(
            "fpb lint: facts cache {} hit(s), {} miss(es)",
            scan.cache.hits, scan.cache.misses
        );
    }
    let ratchet = check_ratchet(&scan.violations, &baseline);
    let rendered = match la.format {
        LintFormat::Text => report::render_text(&ratchet, scan.files_scanned),
        LintFormat::Json => report::render_json(&ratchet, scan.files_scanned),
        LintFormat::Sarif => sarif::render_sarif(&ratchet),
    };
    print!("{rendered}");
    if let Some(out) = &la.out {
        std::fs::write(out, &rendered).map_err(|e| format!("write {out}: {e}"))?;
    }
    if let Some(out) = &la.sarif_out {
        std::fs::write(out, sarif::render_sarif(&ratchet))
            .map_err(|e| format!("write {out}: {e}"))?;
    }
    if la.update_baseline {
        if !ratchet.ok() {
            return Err("refusing to update the baseline while rules are regressed".into());
        }
        let tightened = ratchet.tightened_baseline();
        std::fs::write(&baseline_path, tightened.to_toml())
            .map_err(|e| format!("write {}: {e}", baseline_path.display()))?;
        eprintln!("updated {}", baseline_path.display());
    }
    if ratchet.ok() {
        Ok(())
    } else {
        Err("lint found regressions past the ratchet baseline".into())
    }
}

fn resolve(ra: &RunArgs) -> Result<(fpb::trace::Workload, fpb::sim::SimOptions), String> {
    let wl = catalog::workload(&ra.workload)
        .ok_or_else(|| format!("unknown workload `{}` (try `fpb list`)", ra.workload))?;
    Ok((wl, cli::sim_options(ra)))
}

fn print_header() {
    println!(
        "{:<16} {:>8} {:>9} {:>9} {:>8} {:>10} {:>9}",
        "scheme", "CPI", "reads", "writes", "burst%", "rd-lat", "speedup"
    );
}

fn print_metrics(label: &str, m: &Metrics, baseline: Option<&Metrics>) {
    let speedup = baseline.map(|b| m.speedup_over(b)).unwrap_or(1.0);
    println!(
        "{:<16} {:>8.2} {:>9} {:>9} {:>7.1}% {:>10.0} {:>9.3}",
        label,
        m.cpi(),
        m.pcm_reads,
        m.pcm_writes,
        m.burst_fraction() * 100.0,
        m.avg_read_latency(),
        speedup
    );
}

fn print_faults(m: &Metrics) {
    let f = &m.faults;
    if !f.any_activity() {
        return;
    }
    println!(
        "\nfaults: {} verify failures, {} retries, {} stuck, {} remapped (SLC), {} watchdog trips",
        f.verify_failures, f.retries, f.stuck_lines_marked, f.remaps, f.watchdog_trips
    );
    println!(
        "        {} brownout windows ({} cycles), {} degraded writes ({} cycles), {} audit violations",
        f.brownout_windows, f.brownout_cycles, f.degraded_writes, f.degraded_cycles, f.audit_violations
    );
}

fn print_wear(m: &Metrics) {
    if let Some(e) = &m.endurance {
        println!(
            "\nwear: {} cells written, chip imbalance {:.3}, lifetime {:.1e}x this run",
            e.total_cells_written(),
            e.chip_imbalance(),
            e.lifetime_multiple()
        );
    }
}
