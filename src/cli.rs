//! Command-line interface for the `fpb` binary.
//!
//! Hand-rolled argument parsing (no CLI dependency) kept separate from the
//! binary so it is unit-testable. Subcommands:
//!
//! * `run` — simulate a workload under a scheme and print metrics.
//! * `compare` — run every major scheme on one workload.
//! * `bench` — run the fixed self-measuring sweep and emit
//!   `BENCH_sweep.json`.
//! * `list` — list catalog workloads, programs, and scheme names.
//! * `record` — record a program's synthetic trace to an FPBT file.
//! * `lint` — run the project's static-analysis rules (`fpb-analyze`)
//!   against the checked-in ratchet baseline.

use std::fmt;

use fpb_pcm::CellMapping;
use fpb_sim::scheme::{Modifier, SchemeBase, SchemeRegistry, SchemeSpec};
use fpb_sim::{SchemeSetup, SimOptions};
use fpb_types::SystemConfig;

/// A parsed command line.
// One Command is built per process and immediately consumed; the size
// spread between variants is irrelevant here, so boxing the sweep
// controls would only add noise.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `fpb run --workload W --scheme S [options]`
    Run(RunArgs),
    /// `fpb compare --workload W [options]`
    Compare(RunArgs),
    /// `fpb sweep --workload W --axis name=v1,v2 [--axis ...] [options]`
    Sweep {
        /// Shared run options (`scheme` is the swept scheme; the baseline
        /// is always DIMM+chip).
        args: RunArgs,
        /// Parsed axes: `(axis name, raw comma-separated values)`.
        axes: Vec<(String, String)>,
        /// Optional CSV output path.
        csv: Option<String>,
        /// Supervision / journal / resume controls.
        control: SweepControl,
    },
    /// `fpb bench [--jobs N] [--instructions N] [--repeats N]
    /// [--out FILE] [--hotpath-out FILE]`
    Bench {
        /// Worker threads for the parallel pass (`None` = machine
        /// parallelism).
        jobs: Option<usize>,
        /// Per-core instruction budget of each grid run.
        instructions: u64,
        /// Timed passes per scaling-ladder rung (minimum kept).
        repeats: u32,
        /// Output path for the sweep JSON report.
        out: String,
        /// Output path for the write-path (hot-path) JSON report.
        hotpath_out: String,
    },
    /// `fpb list`
    List,
    /// `fpb record --program P --ops N --out FILE`
    Record {
        /// Suite-qualified program name (e.g. `C.mcf`).
        program: String,
        /// Number of operations to record.
        ops: u64,
        /// Output path.
        out: String,
    },
    /// `fpb lint [options]`
    Lint(LintArgs),
    /// `fpb inspect [verb] [options]` — the event-log time-travel
    /// debugger.
    Inspect(InspectArgs),
    /// `fpb help`
    Help,
}

/// What `fpb inspect` should do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InspectVerb {
    /// Run a workload and record its lifecycle event log (`--log` out).
    Record,
    /// Read a log and re-derive metrics/timeline from events alone.
    Replay,
    /// Scan a stream for the first event matching `--break`.
    Break,
    /// Print one write's full event trace (`--write`).
    Lineage,
    /// Attribute waiting time across stall kinds.
    Stalls,
}

/// Options for `fpb inspect`.
#[derive(Debug, Clone, PartialEq)]
pub struct InspectArgs {
    /// The verb; `fpb inspect --break EXPR` with no verb means `Break`,
    /// any other verbless invocation means `Replay`.
    pub verb: InspectVerb,
    /// Workload/scheme/fault flags for verbs that simulate
    /// (`record`, and `break` without `--log`).
    pub run: RunArgs,
    /// Event-log path: output for `record`, input for the rest.
    pub log: Option<String>,
    /// Breakpoint expression (`--break`).
    pub break_expr: Option<String>,
    /// Write the replay-derived metrics JSON here (`--metrics-out`).
    pub metrics_out: Option<String>,
    /// Print the derived metrics JSON to stdout (`--json`).
    pub json: bool,
    /// Refuse logs without a valid trailer (`--require-complete`);
    /// without it a torn log replays its valid prefix.
    pub require_complete: bool,
    /// Write id for `lineage` (`--write`).
    pub write: Option<u64>,
    /// Worst-writes rows shown by `stalls` (`--top`).
    pub top: usize,
}

impl Default for InspectArgs {
    fn default() -> Self {
        InspectArgs {
            verb: InspectVerb::Replay,
            run: RunArgs::default(),
            log: None,
            break_expr: None,
            metrics_out: None,
            json: false,
            require_complete: false,
            write: None,
            top: 5,
        }
    }
}

/// Supervision, journaling, and resume controls for `fpb sweep`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepControl {
    /// Start a fresh durable journal at this path (`--journal`).
    pub journal: Option<String>,
    /// Resume from an existing journal (`--resume`); mutually exclusive
    /// with `--journal` and `--csv`.
    pub resume: Option<String>,
    /// Write the final `fpb-sweep/v1` JSON document here (`--json-out`).
    pub json_out: Option<String>,
    /// Per-point deadline in wall milliseconds (`--deadline-ms`;
    /// `None` = no watchdog).
    pub deadline_ms: Option<u64>,
    /// Retries per panicking point before quarantine (`--retries`).
    pub retries: u32,
    /// Base retry backoff in milliseconds (`--backoff-ms`).
    pub backoff_ms: u64,
    /// Deterministic fault-injection hook: panic at grid point `.0` for
    /// the first `.1` attempts (`--inject-panic I[:N]`; `u32::MAX` =
    /// every attempt). A test/CI hook, not a production flag.
    pub inject_panic: Option<(usize, u32)>,
    /// Graceful-cancellation hook: stop admitting new points after this
    /// many completions (`--cancel-after`).
    pub cancel_after: Option<usize>,
    /// Disable result reuse entirely — semantic dedup *and* the
    /// persistent cache — so every grid point simulates from scratch
    /// (`--no-result-cache`; the CI byte-identity gate compares against
    /// this mode).
    pub no_result_cache: bool,
    /// Persistent point-result cache file override (`--result-cache`);
    /// `None` = `target/fpb-sweep-cache.v1`.
    pub result_cache: Option<String>,
}

impl Default for SweepControl {
    fn default() -> Self {
        SweepControl {
            journal: None,
            resume: None,
            json_out: None,
            deadline_ms: None,
            retries: 0,
            backoff_ms: 50,
            inject_panic: None,
            cancel_after: None,
            no_result_cache: false,
            result_cache: None,
        }
    }
}

/// Report format for `fpb lint` (`--format`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LintFormat {
    /// Human-readable diagnostics (the default).
    #[default]
    Text,
    /// The machine-readable `fpb-lint/v1` JSON report.
    Json,
    /// SARIF v2.1.0 for code-scanning UIs.
    Sarif,
}

/// Options for `fpb lint`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintArgs {
    /// Workspace root to scan.
    pub root: String,
    /// Ratchet baseline path (relative paths resolve against `root`).
    pub baseline: String,
    /// Report format printed to stdout (and written to `--out`).
    pub format: LintFormat,
    /// Also write the report to this file.
    pub out: Option<String>,
    /// Additionally write a SARIF report to this file, whatever `format`.
    pub sarif_out: Option<String>,
    /// Disable the incremental facts cache (forces a cold scan).
    pub no_cache: bool,
    /// Cache file override; defaults to `<root>/target/fpb-lint-cache.v1`.
    pub cache: Option<String>,
    /// Rewrite the baseline to the current (never higher) counts.
    pub update_baseline: bool,
    /// Print the rule catalog and exit.
    pub rules: bool,
}

impl Default for LintArgs {
    fn default() -> Self {
        LintArgs {
            root: ".".into(),
            baseline: "lint-baseline.toml".into(),
            format: LintFormat::Text,
            out: None,
            sarif_out: None,
            no_cache: false,
            cache: None,
            update_baseline: false,
            rules: false,
        }
    }
}

/// Options shared by `run` and `compare`.
#[derive(Debug, Clone, PartialEq)]
pub struct RunArgs {
    /// Table 2 workload name.
    pub workload: String,
    /// Scheme name (see [`scheme_names`]); `compare` ignores it.
    pub scheme: String,
    /// Instructions per core.
    pub instructions: u64,
    /// System configuration after applying the sweep flags.
    pub cfg: SystemConfig,
    /// Cell mapping override (`--mapping NE|VIM|BIM`).
    pub mapping: Option<CellMapping>,
    /// Write cancellation / pausing / truncation flags.
    pub wc: bool,
    /// Write pausing.
    pub wp: bool,
    /// Write truncation ECC budget.
    pub wt: Option<u32>,
    /// Run the opt-in token-conservation auditor (`--audit-ledger`).
    pub audit_ledger: bool,
    /// Worker threads for sweep/compare fan-out (`--jobs`; `None` = use
    /// the machine's available parallelism).
    pub jobs: Option<usize>,
    /// Suppress informational stderr chatter (`--quiet`) — currently the
    /// sweep's result-reuse summary line. Off by default: CI greps that
    /// line, so the default stderr contract must not change.
    pub quiet: bool,
}

impl Default for RunArgs {
    fn default() -> Self {
        RunArgs {
            workload: "mcf_m".into(),
            scheme: "fpb".into(),
            instructions: 200_000,
            cfg: SystemConfig::default(),
            mapping: None,
            wc: false,
            wp: false,
            wt: None,
            audit_ledger: false,
            jobs: None,
            quiet: false,
        }
    }
}

/// Resolves an optional `--jobs` value: explicit wins, otherwise the
/// machine's available parallelism.
pub fn effective_jobs(jobs: Option<usize>) -> usize {
    jobs.unwrap_or_else(fpb_sim::default_jobs).max(1)
}

/// Error from parsing or resolving arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError(pub String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

/// The canonical scheme names `--scheme` accepts, straight from the
/// [`SchemeRegistry`] (any registry spec string also works, e.g.
/// `fpb+wc+wt8` or `gcp:vim:0.5`).
pub fn scheme_names() -> Vec<&'static str> {
    SchemeRegistry::standard().names()
}

/// Builds the scheme named by the registry spec `name`, folding the
/// run's modifier flags (`--mapping`, `--wc`, `--wp`, `--wt`) into the
/// spec before the registry resolves it.
///
/// # Errors
///
/// Returns [`CliError`] for an unknown or malformed spec, or a modifier
/// that does not apply (e.g. `+reg` without a GCP).
pub fn build_scheme(name: &str, args: &RunArgs) -> Result<SchemeSetup, CliError> {
    let spec = folded_spec(name, args)?;
    SchemeRegistry::standard()
        .build_spec(&spec, &args.cfg)
        .map_err(|e| CliError(format!("{e}")))
}

/// Renders the registry spec for `name` with the run's modifier flags
/// folded in — the canonical string handed to drivers that resolve
/// specs themselves (the sweep driver). Building it here also validates
/// the composition before any simulation work starts.
///
/// # Errors
///
/// See [`build_scheme`].
pub fn scheme_spec(name: &str, args: &RunArgs) -> Result<String, CliError> {
    let spec = folded_spec(name, args)?;
    SchemeRegistry::standard()
        .build_spec(&spec, &args.cfg)
        .map_err(|e| CliError(format!("{e}")))?;
    Ok(spec.render())
}

/// Parses `name` and folds the `--mapping`/`--wc`/`--wp`/`--wt` flags
/// into the spec.
fn folded_spec(name: &str, args: &RunArgs) -> Result<SchemeSpec, CliError> {
    let mut spec: SchemeSpec = name.parse().map_err(|e| CliError(format!("{e}")))?;
    if let Some(m) = args.mapping {
        // A GCP base takes its mapping as an argument (it shapes the
        // label); for every other base the flag is a plain override.
        match &mut spec.base {
            SchemeBase::Gcp { mapping, .. } if mapping.is_none() => *mapping = Some(m),
            _ => spec.mods.push(Modifier::Mapping(m)),
        }
    }
    if args.wc {
        spec.mods.push(Modifier::Wc);
    }
    if args.wp {
        spec.mods.push(Modifier::Wp);
    }
    if let Some(ecc) = args.wt {
        spec.mods.push(Modifier::Wt(ecc));
    }
    Ok(spec)
}

/// Parses a full argument vector (excluding `argv[0]`).
///
/// # Errors
///
/// Returns [`CliError`] describing the offending flag or value.
pub fn parse(args: &[String]) -> Result<Command, CliError> {
    let mut it = args.iter();
    let sub = match it.next() {
        None => return Ok(Command::Help),
        Some(s) => s.as_str(),
    };
    match sub {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "list" => Ok(Command::List),
        "record" => {
            let mut program = None;
            let mut ops = 100_000u64;
            let mut out = None;
            while let Some(flag) = it.next() {
                let mut value = |name: &str| -> Result<String, CliError> {
                    it.next()
                        .cloned()
                        .ok_or_else(|| CliError(format!("{name} needs a value")))
                };
                match flag.as_str() {
                    "--program" => program = Some(value("--program")?),
                    "--ops" => {
                        ops = value("--ops")?
                            .parse()
                            .map_err(|_| CliError("--ops must be an integer".into()))?
                    }
                    "--out" => out = Some(value("--out")?),
                    other => return Err(CliError(format!("unknown flag `{other}`"))),
                }
            }
            Ok(Command::Record {
                program: program.ok_or(CliError("record requires --program".into()))?,
                ops,
                out: out.ok_or(CliError("record requires --out".into()))?,
            })
        }
        "bench" => {
            let mut jobs = None;
            let mut instructions = fpb_sim::bench::BENCH_INSTRUCTIONS;
            let mut repeats = fpb_sim::bench::BENCH_REPEATS;
            let mut out = "BENCH_sweep.json".to_string();
            let mut hotpath_out = "BENCH_hotpath.json".to_string();
            while let Some(flag) = it.next() {
                let mut value = |name: &str| -> Result<String, CliError> {
                    it.next()
                        .cloned()
                        .ok_or_else(|| CliError(format!("{name} needs a value")))
                };
                match flag.as_str() {
                    "--jobs" => jobs = Some(parse_jobs(&value("--jobs")?)?),
                    "--instructions" => {
                        instructions = parse_num(&value("--instructions")?, "--instructions")?
                    }
                    "--repeats" => {
                        let n: u64 = parse_num(&value("--repeats")?, "--repeats")?;
                        if n == 0 || n > u64::from(u32::MAX) {
                            return Err(CliError("--repeats must be between 1 and 2^32-1".into()));
                        }
                        repeats = n as u32;
                    }
                    "--out" => out = value("--out")?,
                    "--hotpath-out" => hotpath_out = value("--hotpath-out")?,
                    other => return Err(CliError(format!("unknown flag `{other}`"))),
                }
            }
            Ok(Command::Bench {
                jobs,
                instructions,
                repeats,
                out,
                hotpath_out,
            })
        }
        "lint" => {
            let mut la = LintArgs::default();
            while let Some(flag) = it.next() {
                let mut value = |name: &str| -> Result<String, CliError> {
                    it.next()
                        .cloned()
                        .ok_or_else(|| CliError(format!("{name} needs a value")))
                };
                match flag.as_str() {
                    "--root" => la.root = value("--root")?,
                    "--baseline" => la.baseline = value("--baseline")?,
                    "--format" => {
                        la.format = match value("--format")?.as_str() {
                            "text" => LintFormat::Text,
                            "json" => LintFormat::Json,
                            "sarif" => LintFormat::Sarif,
                            other => {
                                return Err(CliError(format!(
                                    "--format must be `text`, `json`, or `sarif`, got `{other}`"
                                )))
                            }
                        }
                    }
                    "--out" => la.out = Some(value("--out")?),
                    "--sarif-out" => la.sarif_out = Some(value("--sarif-out")?),
                    "--no-cache" => la.no_cache = true,
                    "--cache" => la.cache = Some(value("--cache")?),
                    "--update-baseline" => la.update_baseline = true,
                    "--rules" => la.rules = true,
                    other => return Err(CliError(format!("unknown flag `{other}`"))),
                }
            }
            Ok(Command::Lint(la))
        }
        "run" | "compare" | "sweep" => {
            let mut ra = RunArgs::default();
            let mut axes = Vec::new();
            let mut csv = None;
            let mut control = SweepControl::default();
            while let Some(flag) = it.next() {
                let mut value = |name: &str| -> Result<String, CliError> {
                    it.next()
                        .cloned()
                        .ok_or_else(|| CliError(format!("{name} needs a value")))
                };
                if apply_run_flag(&mut ra, flag.as_str(), &mut value)? {
                    continue;
                }
                match flag.as_str() {
                    "--axis" if sub == "sweep" => {
                        let spec = value("--axis")?;
                        let (name, vals) = spec.split_once('=').ok_or_else(|| {
                            CliError("--axis expects name=v1,v2,...".into())
                        })?;
                        axes.push((name.to_string(), vals.to_string()));
                    }
                    "--csv" if sub == "sweep" => csv = Some(value("--csv")?),
                    "--journal" if sub == "sweep" => control.journal = Some(value("--journal")?),
                    "--resume" if sub == "sweep" => control.resume = Some(value("--resume")?),
                    "--json-out" if sub == "sweep" => control.json_out = Some(value("--json-out")?),
                    "--deadline-ms" if sub == "sweep" => {
                        let ms = parse_num(&value("--deadline-ms")?, "--deadline-ms")?;
                        control.deadline_ms = (ms > 0).then_some(ms);
                    }
                    "--retries" if sub == "sweep" => {
                        let n = parse_num(&value("--retries")?, "--retries")?;
                        control.retries = u32::try_from(n).map_err(|_| {
                            CliError(format!("--retries must fit in u32, got `{n}`"))
                        })?;
                    }
                    "--backoff-ms" if sub == "sweep" => {
                        control.backoff_ms = parse_num(&value("--backoff-ms")?, "--backoff-ms")?
                    }
                    "--inject-panic" if sub == "sweep" => {
                        control.inject_panic = Some(parse_inject_panic(&value("--inject-panic")?)?)
                    }
                    "--cancel-after" if sub == "sweep" => {
                        control.cancel_after =
                            Some(parse_num(&value("--cancel-after")?, "--cancel-after")? as usize)
                    }
                    "--no-result-cache" if sub == "sweep" => control.no_result_cache = true,
                    "--result-cache" if sub == "sweep" => {
                        control.result_cache = Some(value("--result-cache")?)
                    }
                    other => return Err(CliError(format!("unknown flag `{other}`"))),
                }
            }
            ra.cfg
                .validate()
                .map_err(|e| CliError(format!("invalid configuration: {e}")))?;
            match sub {
                "run" => Ok(Command::Run(ra)),
                "compare" => Ok(Command::Compare(ra)),
                _ => {
                    if axes.is_empty() {
                        return Err(CliError("sweep requires at least one --axis".into()));
                    }
                    if control.journal.is_some() && control.resume.is_some() {
                        return Err(CliError(
                            "--journal starts a fresh journal and --resume continues one; \
                             pass exactly one of them"
                                .into(),
                        ));
                    }
                    if csv.is_some() && control.resume.is_some() {
                        return Err(CliError(
                            "--csv needs full per-point metrics, which restored points do \
                             not carry; use --json-out with --resume"
                                .into(),
                        ));
                    }
                    if control.no_result_cache && control.result_cache.is_some() {
                        return Err(CliError(
                            "--no-result-cache disables result reuse; it cannot be \
                             combined with --result-cache"
                                .into(),
                        ));
                    }
                    Ok(Command::Sweep {
                        args: ra,
                        axes,
                        csv,
                        control,
                    })
                }
            }
        }
        "inspect" => {
            let mut it = it.peekable();
            let mut ia = InspectArgs::default();
            let verb = match it.peek() {
                Some(v) if !v.starts_with("--") => {
                    let v = it.next().map(String::as_str).unwrap_or_default();
                    Some(match v {
                        "record" => InspectVerb::Record,
                        "replay" => InspectVerb::Replay,
                        "break" => InspectVerb::Break,
                        "lineage" => InspectVerb::Lineage,
                        "stalls" => InspectVerb::Stalls,
                        other => {
                            return Err(CliError(format!(
                                "unknown inspect verb `{other}` (expected record, replay, \
                                 break, lineage, stalls)"
                            )))
                        }
                    })
                }
                _ => None,
            };
            while let Some(flag) = it.next() {
                let mut value = |name: &str| -> Result<String, CliError> {
                    it.next()
                        .cloned()
                        .ok_or_else(|| CliError(format!("{name} needs a value")))
                };
                if apply_run_flag(&mut ia.run, flag.as_str(), &mut value)? {
                    continue;
                }
                match flag.as_str() {
                    "--log" => ia.log = Some(value("--log")?),
                    "--break" => ia.break_expr = Some(value("--break")?),
                    "--metrics-out" => ia.metrics_out = Some(value("--metrics-out")?),
                    "--json" => ia.json = true,
                    "--require-complete" => ia.require_complete = true,
                    "--write" => ia.write = Some(parse_num(&value("--write")?, "--write")?),
                    "--top" => ia.top = parse_num(&value("--top")?, "--top")? as usize,
                    other => return Err(CliError(format!("unknown flag `{other}`"))),
                }
            }
            // A verbless `fpb inspect --break EXPR` means break; any
            // other verbless invocation replays.
            ia.verb = verb.unwrap_or(if ia.break_expr.is_some() {
                InspectVerb::Break
            } else {
                InspectVerb::Replay
            });
            match ia.verb {
                InspectVerb::Record if ia.log.is_none() => {
                    return Err(CliError("inspect record requires --log <out-file>".into()))
                }
                InspectVerb::Replay | InspectVerb::Stalls if ia.log.is_none() => {
                    return Err(CliError(format!(
                        "inspect {} requires --log <file>",
                        if ia.verb == InspectVerb::Replay { "replay" } else { "stalls" }
                    )))
                }
                InspectVerb::Break if ia.break_expr.is_none() => {
                    return Err(CliError("inspect break requires --break <expr>".into()))
                }
                InspectVerb::Lineage if ia.log.is_none() || ia.write.is_none() => {
                    return Err(CliError(
                        "inspect lineage requires --log <file> and --write <id>".into(),
                    ))
                }
                _ => {}
            }
            ia.run
                .cfg
                .validate()
                .map_err(|e| CliError(format!("invalid configuration: {e}")))?;
            Ok(Command::Inspect(ia))
        }
        other => Err(CliError(format!(
            "unknown subcommand `{other}` (try `fpb help`)"
        ))),
    }
}

/// Applies one of the run/fault/modifier flags shared by `run`,
/// `compare`, `sweep`, and `inspect` to `ra`. Returns `Ok(false)` when
/// the flag is not one of the shared set (the caller handles it).
fn apply_run_flag<F>(ra: &mut RunArgs, flag: &str, value: &mut F) -> Result<bool, CliError>
where
    F: FnMut(&str) -> Result<String, CliError>,
{
    match flag {
        "--workload" => ra.workload = value("--workload")?,
        "--scheme" => ra.scheme = value("--scheme")?,
        "--instructions" => {
            ra.instructions = parse_num(&value("--instructions")?, "--instructions")?
        }
        "--line-bytes" => {
            let b = parse_num(&value("--line-bytes")?, "--line-bytes")? as u32;
            ra.cfg = ra.cfg.clone().with_line_bytes(b);
        }
        "--llc-mib" => {
            let m = parse_num(&value("--llc-mib")?, "--llc-mib")? as u32;
            ra.cfg = ra.cfg.clone().with_llc_mib(m);
        }
        "--wrq" => {
            let w = parse_num(&value("--wrq")?, "--wrq")? as usize;
            ra.cfg = ra.cfg.clone().with_write_queue(w);
        }
        "--pt-dimm" => {
            let p = parse_num(&value("--pt-dimm")?, "--pt-dimm")?;
            ra.cfg = ra.cfg.clone().with_pt_dimm(p);
        }
        "--e-gcp" => {
            let e: f64 = value("--e-gcp")?
                .parse()
                .map_err(|_| CliError("--e-gcp must be a float".into()))?;
            ra.cfg = ra.cfg.clone().with_gcp_efficiency(e);
        }
        "--seed" => {
            let s = parse_num(&value("--seed")?, "--seed")?;
            ra.cfg = ra.cfg.clone().with_seed(s);
        }
        "--mapping" => {
            let m = value("--mapping")?;
            ra.mapping = Some(m.parse().map_err(|e| CliError(format!("--mapping: {e}")))?);
        }
        "--wc" => ra.wc = true,
        "--wp" => ra.wp = true,
        "--wt" => ra.wt = Some(parse_num(&value("--wt")?, "--wt")? as u32),
        "--fault-verify-rate" => {
            ra.cfg.faults.verify_fail_prob =
                parse_float(&value("--fault-verify-rate")?, "--fault-verify-rate")?
        }
        "--fault-stuck-rate" => {
            ra.cfg.faults.stuck_cell_prob =
                parse_float(&value("--fault-stuck-rate")?, "--fault-stuck-rate")?
        }
        "--fault-stuck-threshold" => {
            ra.cfg.faults.stuck_wear_threshold =
                parse_num(&value("--fault-stuck-threshold")?, "--fault-stuck-threshold")?
        }
        "--fault-brownout-period" => {
            ra.cfg.faults.brownout_period =
                parse_num(&value("--fault-brownout-period")?, "--fault-brownout-period")?
        }
        "--fault-brownout-duration" => {
            ra.cfg.faults.brownout_duration = parse_num(
                &value("--fault-brownout-duration")?,
                "--fault-brownout-duration",
            )?
        }
        "--fault-brownout-scale" => {
            ra.cfg.faults.brownout_budget_scale =
                parse_float(&value("--fault-brownout-scale")?, "--fault-brownout-scale")?
        }
        "--fault-max-retries" => {
            let n = parse_num(&value("--fault-max-retries")?, "--fault-max-retries")?;
            ra.cfg.faults.max_retries = u8::try_from(n).map_err(|_| {
                CliError(format!("--fault-max-retries must fit in u8, got `{n}`"))
            })?;
        }
        "--fault-backoff" => {
            ra.cfg.faults.retry_backoff_cycles =
                parse_num(&value("--fault-backoff")?, "--fault-backoff")?
        }
        "--fault-watchdog" => {
            let n = parse_num(&value("--fault-watchdog")?, "--fault-watchdog")?;
            ra.cfg.faults.watchdog_iterations = u32::try_from(n).map_err(|_| {
                CliError(format!("--fault-watchdog must fit in u32, got `{n}`"))
            })?;
        }
        "--fault-degraded-after" => {
            ra.cfg.faults.degraded_after_cycles =
                parse_num(&value("--fault-degraded-after")?, "--fault-degraded-after")?
        }
        "--audit-ledger" => ra.audit_ledger = true,
        "--jobs" => ra.jobs = Some(parse_jobs(&value("--jobs")?)?),
        "--quiet" => ra.quiet = true,
        _ => return Ok(false),
    }
    Ok(true)
}

fn parse_num(s: &str, flag: &str) -> Result<u64, CliError> {
    s.replace('_', "")
        .parse()
        .map_err(|_| CliError(format!("{flag} must be an integer, got `{s}`")))
}

fn parse_float(s: &str, flag: &str) -> Result<f64, CliError> {
    s.parse()
        .map_err(|_| CliError(format!("{flag} must be a number, got `{s}`")))
}

/// Parses `--inject-panic I[:N]`: grid point `I`, panicking for the
/// first `N` attempts (`u32::MAX`, i.e. every attempt, when omitted).
fn parse_inject_panic(s: &str) -> Result<(usize, u32), CliError> {
    let (point, attempts) = match s.split_once(':') {
        None => (s, None),
        Some((p, n)) => (p, Some(n)),
    };
    let point = point
        .parse::<usize>()
        .map_err(|_| CliError(format!("--inject-panic point must be an integer, got `{s}`")))?;
    let attempts = match attempts {
        None => u32::MAX,
        Some(n) => n.parse::<u32>().map_err(|_| {
            CliError(format!("--inject-panic attempts must fit in u32, got `{s}`"))
        })?,
    };
    Ok((point, attempts))
}

fn parse_jobs(s: &str) -> Result<usize, CliError> {
    let n = parse_num(s, "--jobs")? as usize;
    if n == 0 {
        return Err(CliError("--jobs must be at least 1".into()));
    }
    Ok(n)
}

/// Simulation options derived from parsed args.
pub fn sim_options(args: &RunArgs) -> SimOptions {
    let mut opts = SimOptions::with_instructions(args.instructions);
    opts.audit_ledger = args.audit_ledger;
    opts
}

/// Builds a [`fpb_sim::sweep::Axis`] from a CLI `name=v1,v2` spec.
///
/// # Errors
///
/// Returns [`CliError`] for unknown axis names or unparsable values.
pub fn build_axis(name: &str, values: &str) -> Result<fpb_sim::sweep::Axis, CliError> {
    use fpb_sim::sweep::Axis;
    fn nums<T: std::str::FromStr>(values: &str, what: &str) -> Result<Vec<T>, CliError> {
        values
            .split(',')
            .map(|v| {
                v.trim()
                    .parse::<T>()
                    .map_err(|_| CliError(format!("bad {what} value `{v}`")))
            })
            .collect()
    }
    match name {
        "line-bytes" => Ok(Axis::line_bytes(&nums::<u32>(values, "line-bytes")?)),
        "llc-mib" => Ok(Axis::llc_mib(&nums::<u32>(values, "llc-mib")?)),
        "pt-dimm" => Ok(Axis::pt_dimm(&nums::<u64>(values, "pt-dimm")?)),
        "e-gcp" => Ok(Axis::e_gcp(&nums::<f64>(values, "e-gcp")?)),
        other => Err(CliError(format!(
            "unknown axis `{other}` (expected line-bytes, llc-mib, pt-dimm, e-gcp)"
        ))),
    }
}

/// The `fpb help` text.
pub const USAGE: &str = "\
fpb — fine-grained power budgeting for MLC PCM (MICRO 2012 reproduction)

USAGE:
  fpb run     --workload <name> --scheme <spec> [options]
  fpb compare --workload <name> [options]
  fpb sweep   --workload <name> --axis <name=v1,v2,..> [--axis ..] [--csv out.csv]
              [--journal <file> | --resume <file>] [--json-out <file>]
              [--retries <n>] [--backoff-ms <n>] [--deadline-ms <n>]
              [--cancel-after <n>] [options]
  fpb bench   [--jobs <n>] [--instructions <n>] [--repeats <n>]
              [--out BENCH_sweep.json] [--hotpath-out BENCH_hotpath.json]
  fpb list
  fpb record  --program <C.mcf|...> --ops <n> --out <file.fpbt>
  fpb lint    [--format text|json|sarif] [--out <file>] [--sarif-out <file>]
              [--no-cache] [--cache <file>] [--update-baseline] [--rules]
              [--root <dir>] [--baseline lint-baseline.toml]
  fpb inspect record  --log <file.fpbi> [run options]
  fpb inspect replay  --log <file.fpbi> [--metrics-out <file>] [--json]
              [--require-complete]
  fpb inspect break   --break <expr> [--log <file.fpbi> | run options]
  fpb inspect lineage --log <file.fpbi> --write <id>
  fpb inspect stalls  --log <file.fpbi> [--top <n>]

SCHEMES: --scheme takes a registry spec: BASE[:ARG...][+MOD...], e.g.
  fpb, dimm-chip, gcp:vim:0.5, fpb+wc+wp+wt8, 2xlocal. Run
  `fpb run --scheme help` for the full grammar and scheme list.

SWEEP AXES: line-bytes, llc-mib, pt-dimm, e-gcp (--scheme vs DIMM+chip
  per point)

PARALLELISM:
  --jobs <n>           worker threads for sweep points / compare schemes
                       [machine parallelism]; results are bit-for-bit
                       identical to --jobs 1, in the same order
  --quiet              suppress informational stderr (the sweep's result-
                       reuse summary line); simulation output is unchanged

INSPECT (time-travel debugging): `record` runs a workload with the
  lifecycle event recorder on and writes a checksummed fpbi1 event log;
  recording is a pure observer — the run's metrics are bit-identical
  with it on or off. `replay` re-derives the full metrics block and
  bank-activity timeline from the log alone (byte-identical to the live
  run; CI gates on it). `break` halts at the first event matching an
  expression: degraded, brownout, verify-fail, cancelled, watchdog,
  truncated, stage:<name>, write:<id>, or token-stalled><cycles> —
  verbless `fpb inspect --break <expr> [run options]` records in memory
  and scans in one step, exiting nonzero if the breakpoint never fires.
  `lineage` prints one write's complete event trace; `stalls` attributes
  every cycle writes spent waiting (tokens, pauses, backoff, draining).
  A torn log replays its valid prefix by default; --require-complete
  makes truncation an error.

SWEEP SUPERVISION: every sweep point runs supervised — a panicking point
  is quarantined (reported with its panic message) without aborting the
  rest of the grid, and the run exits with code 3 when any point was
  quarantined or the sweep was cancelled.
  --retries <n>        re-run a panicking point up to n times before
                       quarantining it [0]
  --backoff-ms <n>     base retry backoff (doubles per retry, capped) [50]
  --deadline-ms <n>    per-point wall-clock deadline; an overdue point is
                       marked timed-out and the grid continues [0 = off]
  --journal <file>     append each finished point to a durable, fsync'd,
                       checksummed journal (refuses to clobber)
  --resume <file>      skip points already in the journal and finish the
                       rest; the final JSON is byte-identical to an
                       uninterrupted run
  --json-out <file>    write the full fpb-sweep/v1 JSON document
  --cancel-after <n>   stop admitting new points after n completions (the
                       deterministic stand-in for Ctrl-C in tests/CI)
  --inject-panic I[:N] test hook: panic at grid point I for its first N
                       attempts (every attempt when :N is omitted)

SWEEP RESULT REUSE: grid points whose differing knobs cannot reach the
  simulation (the scheme declares which config inputs it reads) share one
  simulation, and finished results persist across invocations in a cache
  keyed by effective config + code version. Reuse never changes output:
  spliced results are byte-identical to fresh simulation, and the journal
  always outranks the cache on --resume.
  --result-cache <f>   persistent point-result cache file
                       [target/fpb-sweep-cache.v1]
  --no-result-cache    disable result reuse (semantic dedup and the
                       persistent cache); every point simulates fresh

BENCH: runs a pinned 36-point sweep grid (line-bytes x pt-dimm x e-gcp
  on mcf_m) up a 1/2/4-job scaling ladder (--repeats timed passes per
  rung, minimum kept, after an untimed warmup pass), checks every rung
  matches serial bit-for-bit, and writes wall time, points/sec, the
  detected core count, the scaling curve, and the parallel-efficiency
  gate to BENCH_sweep.json. Rungs that cannot exercise real parallelism
  (one effective worker) are skipped and recorded as skipped_rungs
  instead of re-measuring the serial pass. The grid also runs with
  result reuse off and twice against a private cold/warm result cache —
  every pass feeds the same identical gate — and the report carries
  points_unique, dedup_ratio, and the cold-vs-warm cache walls. Then
  races the optimized write path (word-level change sampling, pooled
  buffers, event-heap stepper) against the pre-optimization reference
  path and writes BENCH_hotpath.json. Exits nonzero if parallel and
  serial metrics diverge, if the 4-job rung misses the efficiency floor
  for the machine's core count, if the heap stepper or buffer pool
  fails bit-for-bit equivalence, if the word-level sampler drifts from
  the per-bit reference, or if the pooled line-write build falls below
  its floor.

OPTIONS (run/compare):
  --instructions <n>   instructions per core        [200000]
  --line-bytes <n>     PCM/LLC line size            [256]
  --llc-mib <n>        LLC capacity per core, MiB   [32]
  --wrq <n>            write-queue entries          [24]
  --pt-dimm <n>        DIMM power tokens            [560]
  --e-gcp <f>          GCP efficiency               [0.7]
  --mapping <NE|VIM|BIM>  cell-to-chip mapping
  --seed <n>           RNG seed
  --wc / --wp / --wt <ecc>  write cancellation / pausing / truncation

FAULT INJECTION (run/compare; all off by default):
  --fault-verify-rate <f>        P(round fails verify)          [0]
  --fault-stuck-rate <f>         P(worn line sticks per write)  [0]
  --fault-stuck-threshold <n>    region wear before sticking    [0]
  --fault-brownout-period <n>    cycles between brownouts       [0 = off]
  --fault-brownout-duration <n>  brownout window length         [0]
  --fault-brownout-scale <f>     budget fraction kept in window [0.5]
  --fault-max-retries <n>        retries before remap + SLC     [3]
  --fault-backoff <n>            base retry backoff, cycles     [1000]
  --fault-watchdog <n>           per-round iteration cap        [256]
  --fault-degraded-after <n>     browned-out cycles before SLC  [0 = never]
  --audit-ledger                 check token conservation after every
                                 grant/release (reports violations)

LINT: scans the workspace sources for determinism, panic-freedom,
  power-accounting, and unsafe-hygiene violations (see `fpb lint --rules`)
  and checks the counts against the ratchet baseline. Exits nonzero on any
  regression. After burning down debt, `--update-baseline` tightens the
  checked-in counts.
";

#[cfg(test)]
mod tests {
    use super::*;

    fn v(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn empty_and_help() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&v(&["help"])).unwrap(), Command::Help);
        assert_eq!(parse(&v(&["--help"])).unwrap(), Command::Help);
        assert_eq!(parse(&v(&["list"])).unwrap(), Command::List);
    }

    #[test]
    fn run_with_options() {
        let cmd = parse(&v(&[
            "run",
            "--workload",
            "lbm_m",
            "--scheme",
            "gcp-ipm",
            "--instructions",
            "50_000",
            "--line-bytes",
            "128",
            "--pt-dimm",
            "466",
            "--mapping",
            "vim",
            "--wc",
            "--wt",
            "8",
        ]))
        .unwrap();
        let Command::Run(ra) = cmd else {
            panic!("expected Run")
        };
        assert_eq!(ra.workload, "lbm_m");
        assert_eq!(ra.scheme, "gcp-ipm");
        assert_eq!(ra.instructions, 50_000);
        assert_eq!(ra.cfg.pcm.line_bytes, 128);
        assert_eq!(ra.cfg.power.pt_dimm, 466);
        assert_eq!(ra.mapping, Some(CellMapping::Vim));
        assert!(ra.wc && !ra.wp);
        assert_eq!(ra.wt, Some(8));
    }

    #[test]
    fn rejects_unknowns_and_bad_values() {
        assert!(parse(&v(&["frobnicate"])).is_err());
        assert!(parse(&v(&["run", "--bogus"])).is_err());
        assert!(parse(&v(&["run", "--instructions", "many"])).is_err());
        assert!(parse(&v(&["run", "--instructions"])).is_err());
        assert!(parse(&v(&["run", "--line-bytes", "100"])).is_err(), "invalid config");
        assert!(parse(&v(&["record", "--ops", "10"])).is_err(), "missing required");
    }

    #[test]
    fn fault_flags_parse_into_config() {
        let cmd = parse(&v(&[
            "run",
            "--fault-verify-rate",
            "0.25",
            "--fault-stuck-rate",
            "0.01",
            "--fault-stuck-threshold",
            "50_000",
            "--fault-brownout-period",
            "100000",
            "--fault-brownout-duration",
            "20000",
            "--fault-brownout-scale",
            "0.4",
            "--fault-max-retries",
            "5",
            "--fault-backoff",
            "250",
            "--fault-watchdog",
            "64",
            "--fault-degraded-after",
            "5000",
            "--audit-ledger",
        ]))
        .unwrap();
        let Command::Run(ra) = cmd else {
            panic!("expected Run")
        };
        let f = &ra.cfg.faults;
        assert_eq!(f.verify_fail_prob, 0.25);
        assert_eq!(f.stuck_cell_prob, 0.01);
        assert_eq!(f.stuck_wear_threshold, 50_000);
        assert_eq!(f.brownout_period, 100_000);
        assert_eq!(f.brownout_duration, 20_000);
        assert_eq!(f.brownout_budget_scale, 0.4);
        assert_eq!(f.max_retries, 5);
        assert_eq!(f.retry_backoff_cycles, 250);
        assert_eq!(f.watchdog_iterations, 64);
        assert_eq!(f.degraded_after_cycles, 5000);
        assert!(ra.audit_ledger);
        assert!(sim_options(&ra).audit_ledger);
    }

    #[test]
    fn bad_fault_values_name_the_flag_or_field() {
        let e = parse(&v(&["run", "--fault-verify-rate", "lots"])).unwrap_err();
        assert!(e.0.contains("--fault-verify-rate"), "{e}");
        let e = parse(&v(&["run", "--fault-max-retries", "300"])).unwrap_err();
        assert!(e.0.contains("--fault-max-retries"), "{e}");
        // A parseable but invalid value is caught by config validation,
        // which names the offending config field.
        let e = parse(&v(&["run", "--fault-verify-rate", "1.5"])).unwrap_err();
        assert!(e.0.contains("faults.verify_fail_prob"), "{e}");
        // Brownout duration must fit inside the period.
        let e = parse(&v(&[
            "run",
            "--fault-brownout-period",
            "100",
            "--fault-brownout-duration",
            "200",
        ]))
        .unwrap_err();
        assert!(e.0.contains("faults.brownout_duration"), "{e}");
    }

    #[test]
    fn sweep_parses_axes_and_csv() {
        let cmd = parse(&v(&[
            "sweep",
            "--workload",
            "lbm_m",
            "--axis",
            "pt-dimm=466,560",
            "--axis",
            "e-gcp=0.7,0.5",
            "--csv",
            "/tmp/out.csv",
        ]))
        .unwrap();
        let Command::Sweep {
            args,
            axes,
            csv,
            control,
        } = cmd
        else {
            panic!("expected Sweep")
        };
        assert_eq!(args.workload, "lbm_m");
        assert_eq!(axes.len(), 2);
        assert_eq!(axes[0], ("pt-dimm".into(), "466,560".into()));
        assert_eq!(csv.as_deref(), Some("/tmp/out.csv"));
        assert_eq!(control, SweepControl::default());
        // Axes resolve.
        for (n, vs) in &axes {
            assert!(build_axis(n, vs).is_ok());
        }
        assert!(build_axis("warp", "1").is_err());
        assert!(build_axis("pt-dimm", "many").is_err());
    }

    #[test]
    fn jobs_flag_parses_and_rejects_zero() {
        let cmd = parse(&v(&[
            "sweep",
            "--workload",
            "lbm_m",
            "--axis",
            "pt-dimm=466,560",
            "--jobs",
            "4",
        ]))
        .unwrap();
        let Command::Sweep { args, .. } = cmd else {
            panic!("expected Sweep")
        };
        assert_eq!(args.jobs, Some(4));
        assert_eq!(effective_jobs(args.jobs), 4);
        assert!(effective_jobs(None) >= 1);
        assert!(parse(&v(&["sweep", "--axis", "pt-dimm=1", "--jobs", "0"])).is_err());
        let Command::Compare(ra) = parse(&v(&["compare", "--jobs", "2"])).unwrap() else {
            panic!("expected Compare")
        };
        assert_eq!(ra.jobs, Some(2));
    }

    #[test]
    fn bench_parses_with_defaults_and_overrides() {
        let Command::Bench {
            jobs,
            instructions,
            repeats,
            out,
            hotpath_out,
        } = parse(&v(&["bench"])).unwrap()
        else {
            panic!("expected Bench")
        };
        assert_eq!(jobs, None);
        assert_eq!(instructions, fpb_sim::bench::BENCH_INSTRUCTIONS);
        assert_eq!(repeats, fpb_sim::bench::BENCH_REPEATS);
        assert_eq!(out, "BENCH_sweep.json");
        assert_eq!(hotpath_out, "BENCH_hotpath.json");
        let Command::Bench {
            jobs,
            instructions,
            repeats,
            out,
            hotpath_out,
        } = parse(&v(&[
            "bench",
            "--jobs",
            "8",
            "--instructions",
            "10_000",
            "--repeats",
            "3",
            "--out",
            "/tmp/b.json",
            "--hotpath-out",
            "/tmp/h.json",
        ]))
        .unwrap()
        else {
            panic!("expected Bench")
        };
        assert_eq!(jobs, Some(8));
        assert_eq!(instructions, 10_000);
        assert_eq!(repeats, 3);
        assert_eq!(out, "/tmp/b.json");
        assert_eq!(hotpath_out, "/tmp/h.json");
        assert!(parse(&v(&["bench", "--bogus"])).is_err());
        assert!(parse(&v(&["bench", "--jobs", "0"])).is_err());
        assert!(parse(&v(&["bench", "--repeats", "0"])).is_err());
    }

    #[test]
    fn sweep_requires_axes() {
        assert!(parse(&v(&["sweep", "--workload", "lbm_m"])).is_err());
        assert!(parse(&v(&["sweep", "--axis", "nope"])).is_err());
    }

    #[test]
    fn sweep_supervision_flags_parse() {
        let cmd = parse(&v(&[
            "sweep",
            "--axis",
            "pt-dimm=466,560",
            "--journal",
            "/tmp/run.fpbj",
            "--json-out",
            "/tmp/run.json",
            "--retries",
            "2",
            "--backoff-ms",
            "10",
            "--deadline-ms",
            "30000",
            "--cancel-after",
            "3",
            "--inject-panic",
            "1:2",
        ]))
        .unwrap();
        let Command::Sweep { control, .. } = cmd else {
            panic!("expected Sweep")
        };
        assert_eq!(control.journal.as_deref(), Some("/tmp/run.fpbj"));
        assert_eq!(control.resume, None);
        assert_eq!(control.json_out.as_deref(), Some("/tmp/run.json"));
        assert_eq!(control.retries, 2);
        assert_eq!(control.backoff_ms, 10);
        assert_eq!(control.deadline_ms, Some(30_000));
        assert_eq!(control.cancel_after, Some(3));
        assert_eq!(control.inject_panic, Some((1, 2)));
    }

    #[test]
    fn sweep_deadline_zero_means_off_and_inject_defaults_to_every_attempt() {
        let cmd = parse(&v(&[
            "sweep",
            "--axis",
            "pt-dimm=466",
            "--deadline-ms",
            "0",
            "--inject-panic",
            "2",
        ]))
        .unwrap();
        let Command::Sweep { control, .. } = cmd else {
            panic!("expected Sweep")
        };
        assert_eq!(control.deadline_ms, None);
        assert_eq!(control.inject_panic, Some((2, u32::MAX)));
    }

    #[test]
    fn sweep_result_cache_flags_parse() {
        let cmd = parse(&v(&[
            "sweep",
            "--axis",
            "pt-dimm=466,560",
            "--result-cache",
            "/tmp/cache.v1",
        ]))
        .unwrap();
        let Command::Sweep { control, .. } = cmd else {
            panic!("expected Sweep")
        };
        assert_eq!(control.result_cache.as_deref(), Some("/tmp/cache.v1"));
        assert!(!control.no_result_cache);

        let cmd = parse(&v(&["sweep", "--axis", "pt-dimm=466", "--no-result-cache"])).unwrap();
        let Command::Sweep { control, .. } = cmd else {
            panic!("expected Sweep")
        };
        assert!(control.no_result_cache);

        // Contradictory combination is rejected, and the flags belong to
        // sweep only.
        let e = parse(&v(&[
            "sweep",
            "--axis",
            "pt-dimm=466",
            "--no-result-cache",
            "--result-cache",
            "c.v1",
        ]))
        .unwrap_err();
        assert!(e.0.contains("--no-result-cache"), "{e}");
        assert!(parse(&v(&["run", "--no-result-cache"])).is_err());
        assert!(parse(&v(&["run", "--result-cache", "c.v1"])).is_err());
    }

    #[test]
    fn sweep_rejects_conflicting_journal_flags() {
        let base = ["sweep", "--axis", "pt-dimm=466"];
        let both: Vec<&str> = base
            .iter()
            .chain(&["--journal", "a.fpbj", "--resume", "b.fpbj"])
            .copied()
            .collect();
        let e = parse(&v(&both)).unwrap_err();
        assert!(e.0.contains("exactly one"), "{e}");
        let csv_resume: Vec<&str> = base
            .iter()
            .chain(&["--resume", "a.fpbj", "--csv", "out.csv"])
            .copied()
            .collect();
        let e = parse(&v(&csv_resume)).unwrap_err();
        assert!(e.0.contains("--json-out"), "{e}");
        // The supervision flags belong to sweep only.
        assert!(parse(&v(&["run", "--resume", "a.fpbj"])).is_err());
        assert!(parse(&v(&["run", "--retries", "1"])).is_err());
        // Bad inject-panic specs name the flag.
        assert!(parse(&v(&["sweep", "--axis", "pt-dimm=466", "--inject-panic", "x"])).is_err());
        assert!(parse(&v(&["sweep", "--axis", "pt-dimm=466", "--inject-panic", "1:y"])).is_err());
    }

    #[test]
    fn record_parses() {
        let cmd = parse(&v(&[
            "record",
            "--program",
            "C.mcf",
            "--ops",
            "5000",
            "--out",
            "/tmp/t.fpbt",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Record {
                program: "C.mcf".into(),
                ops: 5000,
                out: "/tmp/t.fpbt".into()
            }
        );
    }

    #[test]
    fn every_scheme_name_builds() {
        let ra = RunArgs::default();
        for name in scheme_names() {
            let s = build_scheme(name, &ra).unwrap_or_else(|e| panic!("{name}: {e}"));
            s.policy.validate().unwrap();
        }
        assert!(build_scheme("nope", &ra).is_err());
    }

    #[test]
    fn modifiers_compose() {
        let ra = RunArgs {
            wc: true,
            wp: true,
            wt: Some(8),
            mapping: Some(CellMapping::Naive),
            ..RunArgs::default()
        };
        let s = build_scheme("fpb", &ra).unwrap();
        assert!(s.boosts.cancellation && s.boosts.pausing);
        assert_eq!(s.termination.truncation_ecc, Some(8));
        assert_eq!(s.mapping, CellMapping::Naive);
    }

    #[test]
    fn spec_strings_pass_through_to_the_registry() {
        let ra = RunArgs::default();
        let s = build_scheme("fpb+wc+wt8", &ra).unwrap();
        assert_eq!(s.label, "FPB+WC+WT");
        let s = build_scheme("gcp:vim:0.5", &ra).unwrap();
        assert_eq!(s.mapping, CellMapping::Vim);
        assert!(build_scheme("dimm-chip+reg", &ra).is_err(), "+reg needs a GCP");
    }

    #[test]
    fn mapping_flag_shapes_the_gcp_label() {
        // `--scheme gcp --mapping ne` must behave like `gcp:ne` (the
        // mapping folds into the base argument and shows in the label).
        let ra = RunArgs {
            mapping: Some(CellMapping::Naive),
            ..RunArgs::default()
        };
        let s = build_scheme("gcp", &ra).unwrap();
        assert_eq!(s.mapping, CellMapping::Naive);
        assert!(s.label.contains("NE"), "label `{}`", s.label);
        // An explicit base argument wins; the flag becomes an override.
        let s = build_scheme("gcp:vim", &ra).unwrap();
        assert_eq!(s.mapping, CellMapping::Naive);
    }

    #[test]
    fn quiet_flag_parses_and_defaults_off() {
        let Command::Run(ra) = parse(&v(&["run", "--quiet"])).unwrap() else {
            panic!("expected Run")
        };
        assert!(ra.quiet);
        assert!(!RunArgs::default().quiet, "default stderr contract must not change");
        let Command::Sweep { args, .. } =
            parse(&v(&["sweep", "--axis", "pt-dimm=466", "--quiet"])).unwrap()
        else {
            panic!("expected Sweep")
        };
        assert!(args.quiet);
    }

    #[test]
    fn inspect_verbs_parse() {
        let Command::Inspect(ia) = parse(&v(&[
            "inspect", "record", "--log", "a.fpbi", "--workload", "lbm_m", "--seed", "7",
        ]))
        .unwrap() else {
            panic!("expected Inspect")
        };
        assert_eq!(ia.verb, InspectVerb::Record);
        assert_eq!(ia.log.as_deref(), Some("a.fpbi"));
        assert_eq!(ia.run.workload, "lbm_m");
        assert_eq!(ia.run.cfg.seed, 7);

        let Command::Inspect(ia) = parse(&v(&[
            "inspect",
            "replay",
            "--log",
            "a.fpbi",
            "--metrics-out",
            "m.json",
            "--json",
            "--require-complete",
        ]))
        .unwrap() else {
            panic!("expected Inspect")
        };
        assert_eq!(ia.verb, InspectVerb::Replay);
        assert_eq!(ia.metrics_out.as_deref(), Some("m.json"));
        assert!(ia.json && ia.require_complete);

        let Command::Inspect(ia) =
            parse(&v(&["inspect", "lineage", "--log", "a.fpbi", "--write", "42"])).unwrap()
        else {
            panic!("expected Inspect")
        };
        assert_eq!(ia.verb, InspectVerb::Lineage);
        assert_eq!(ia.write, Some(42));

        let Command::Inspect(ia) =
            parse(&v(&["inspect", "stalls", "--log", "a.fpbi", "--top", "9"])).unwrap()
        else {
            panic!("expected Inspect")
        };
        assert_eq!(ia.verb, InspectVerb::Stalls);
        assert_eq!(ia.top, 9);
    }

    #[test]
    fn verbless_inspect_with_break_means_break() {
        let Command::Inspect(ia) = parse(&v(&[
            "inspect",
            "--break",
            "degraded",
            "--fault-brownout-period",
            "20000",
            "--fault-brownout-duration",
            "12000",
            "--fault-degraded-after",
            "5000",
        ]))
        .unwrap() else {
            panic!("expected Inspect")
        };
        assert_eq!(ia.verb, InspectVerb::Break);
        assert_eq!(ia.break_expr.as_deref(), Some("degraded"));
        assert_eq!(ia.run.cfg.faults.degraded_after_cycles, 5000);
        // Verbless without --break means replay, which needs a log.
        assert!(parse(&v(&["inspect"])).is_err());
        let Command::Inspect(ia) = parse(&v(&["inspect", "--log", "a.fpbi"])).unwrap() else {
            panic!("expected Inspect")
        };
        assert_eq!(ia.verb, InspectVerb::Replay);
    }

    #[test]
    fn inspect_rejects_incomplete_and_unknown_forms() {
        assert!(parse(&v(&["inspect", "rewind"])).is_err(), "unknown verb");
        assert!(parse(&v(&["inspect", "record"])).is_err(), "record needs --log");
        assert!(parse(&v(&["inspect", "replay"])).is_err(), "replay needs --log");
        assert!(parse(&v(&["inspect", "break"])).is_err(), "break needs --break");
        assert!(
            parse(&v(&["inspect", "lineage", "--log", "a.fpbi"])).is_err(),
            "lineage needs --write"
        );
        assert!(parse(&v(&["inspect", "stalls"])).is_err(), "stalls needs --log");
        assert!(parse(&v(&["inspect", "--bogus"])).is_err());
        assert!(parse(&v(&["inspect", "replay", "--write", "nope"])).is_err());
    }

    #[test]
    fn lint_defaults() {
        let cmd = parse(&v(&["lint"])).unwrap();
        assert_eq!(cmd, Command::Lint(LintArgs::default()));
        let Command::Lint(la) = cmd else { unreachable!() };
        assert_eq!(la.root, ".");
        assert_eq!(la.baseline, "lint-baseline.toml");
        assert_eq!(la.format, LintFormat::Text);
        assert!(!la.no_cache && !la.update_baseline && !la.rules);
        assert!(la.out.is_none() && la.sarif_out.is_none() && la.cache.is_none());
    }

    #[test]
    fn lint_with_options() {
        let cmd = parse(&v(&[
            "lint",
            "--format",
            "json",
            "--out",
            "lint.json",
            "--root",
            "/repo",
            "--baseline",
            "debt.toml",
            "--sarif-out",
            "lint.sarif",
            "--cache",
            "facts.v1",
            "--no-cache",
            "--update-baseline",
        ]))
        .unwrap();
        let Command::Lint(la) = cmd else {
            panic!("expected lint")
        };
        assert_eq!(la.format, LintFormat::Json);
        assert!(la.update_baseline && la.no_cache);
        assert_eq!(la.out.as_deref(), Some("lint.json"));
        assert_eq!(la.sarif_out.as_deref(), Some("lint.sarif"));
        assert_eq!(la.cache.as_deref(), Some("facts.v1"));
        assert_eq!(la.root, "/repo");
        assert_eq!(la.baseline, "debt.toml");
    }

    #[test]
    fn lint_format_sarif_parses() {
        let cmd = parse(&v(&["lint", "--format", "sarif"])).unwrap();
        let Command::Lint(la) = cmd else {
            panic!("expected lint")
        };
        assert_eq!(la.format, LintFormat::Sarif);
    }

    #[test]
    fn lint_rejects_bad_flags() {
        assert!(parse(&v(&["lint", "--format", "xml"])).is_err());
        assert!(parse(&v(&["lint", "--format"])).is_err());
        assert!(parse(&v(&["lint", "--sarif-out"])).is_err());
        assert!(parse(&v(&["lint", "--cache"])).is_err());
        assert!(parse(&v(&["lint", "--workload", "x"])).is_err());
    }
}
