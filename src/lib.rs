//! # FPB: Fine-grained Power Budgeting for MLC PCM
//!
//! A complete, from-scratch reproduction of *"FPB: Fine-grained Power
//! Budgeting to Improve Write Throughput of Multi-level Cell Phase Change
//! Memory"* (Jiang, Zhang, Childers, Yang — MICRO 2012), as a Rust
//! workspace: the MLC PCM device model, the cache hierarchy and memory
//! controller it sits behind, synthetic versions of the paper's workloads,
//! every power-budgeting scheme the paper evaluates, and a bench harness
//! that regenerates every table and figure.
//!
//! This crate re-exports the workspace's public API under stable paths:
//!
//! * [`types`] — configuration ([`types::SystemConfig`] is Table 1),
//!   cycles, tokens, deterministic RNG.
//! * [`pcm`] — the MLC PCM device: program-and-verify line writes, cell
//!   mappings (NE/VIM/BIM), charge pumps, wear leveling.
//! * [`power`] — the paper's contribution: the token ledger and the
//!   FPB-IPM / Multi-RESET / FPB-GCP schemes plus all baselines.
//! * [`cache`] — set-associative write-back caches and the L1/L2/L3
//!   hierarchy.
//! * [`trace`] — the Table 2 workload catalog and trace generators.
//! * [`sim`] — the cycle-driven system simulator and named scheme setups.
//!
//! ## Quickstart
//!
//! Run one workload under the paper's baseline and under full FPB, and
//! compare (this is `examples/quickstart.rs`, trimmed):
//!
//! ```
//! use fpb::sim::{run_workload, SchemeSetup, SimOptions};
//! use fpb::trace::catalog;
//! use fpb::types::SystemConfig;
//!
//! let cfg = SystemConfig::default();                 // Table 1
//! let workload = catalog::workload("mcf_m").unwrap(); // Table 2
//! let opts = SimOptions::with_instructions(50_000);
//!
//! let baseline = run_workload(&workload, &cfg, &SchemeSetup::dimm_chip(&cfg), &opts);
//! let fpb = run_workload(&workload, &cfg, &SchemeSetup::fpb(&cfg), &opts);
//! assert!(fpb.speedup_over(&baseline) > 1.0);
//! ```
//!
//! ## Reproducing the paper
//!
//! Every table and figure has a bench target in `crates/bench` —
//! `cargo bench -p fpb-bench --bench fig16_ipm` prints Figure 16's series,
//! and `cargo bench --workspace` regenerates everything. See
//! `EXPERIMENTS.md` for paper-vs-measured numbers and `DESIGN.md` for the
//! system inventory and the documented substitutions (synthetic traces for
//! PIN traces, the two-population write-iteration model, etc.).

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod cli;

pub use fpb_analyze as analyze;
pub use fpb_cache as cache;
pub use fpb_core as power;
pub use fpb_pcm as pcm;
pub use fpb_sim as sim;
pub use fpb_trace as trace;
pub use fpb_types as types;

/// Version of the FPB reproduction.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn reexports_reach_all_crates() {
        let cfg = crate::types::SystemConfig::default();
        assert!(cfg.validate().is_ok());
        assert_eq!(crate::pcm::CellMapping::Bim.label(), "BIM");
        assert!(crate::trace::catalog::workload("mcf_m").is_some());
        let setup = crate::sim::SchemeSetup::fpb(&cfg);
        assert!(setup.policy.validate().is_ok());
        assert!(!crate::VERSION.is_empty());
    }
}
