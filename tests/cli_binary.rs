//! End-to-end tests of the `fpb` binary (spawned as a real process).

use std::process::Command;

fn fpb() -> Command {
    Command::new(env!("CARGO_BIN_EXE_fpb"))
}

#[test]
fn help_prints_usage() {
    let out = fpb().arg("help").output().expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("USAGE"));
    assert!(text.contains("--workload"));
}

#[test]
fn list_names_all_workloads_and_schemes() {
    let out = fpb().arg("list").output().expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for name in fpb::trace::catalog::WORKLOADS {
        assert!(text.contains(name), "missing {name}");
    }
    assert!(text.contains("fpb") && text.contains("dimm-chip"));
}

#[test]
fn run_produces_metrics_table() {
    let out = fpb()
        .args([
            "run",
            "--workload",
            "cop_m",
            "--scheme",
            "fpb",
            "--instructions",
            "30000",
        ])
        .output()
        .expect("spawn");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("CPI"));
    assert!(text.contains("FPB"));
    assert!(text.contains("wear:"), "wear summary expected: {text}");
}

#[test]
fn bad_arguments_fail_with_diagnostics() {
    let out = fpb().args(["run", "--scheme", "warp-drive"]).output().expect("spawn");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown scheme"), "stderr: {err}");

    let out = fpb().args(["run", "--workload", "nope_m"]).output().expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown workload"));

    let out = fpb().arg("frobnicate").output().expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown subcommand"));
}

const SWEEP_ARGS: [&str; 8] = [
    "sweep",
    "--workload",
    "cop_m",
    "--instructions",
    "3000",
    "--axis",
    "pt-dimm=466,560",
    "--jobs",
];

fn sweep_cmd(jobs: &str, extra: &[&str]) -> Command {
    let mut c = fpb();
    c.args(SWEEP_ARGS).arg(jobs).args(extra);
    c
}

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("fpb-cli-test");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let p = dir.join(name);
    std::fs::remove_file(&p).ok();
    p
}

#[test]
fn injected_panic_quarantines_then_resume_restores_byte_identity() {
    let clean_json = tmp("cli_clean.json");
    let out = sweep_cmd("2", &["--json-out", clean_json.to_str().expect("utf8")])
        .output()
        .expect("spawn");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    // Inject a deterministic panic at point 1: the grid still finishes,
    // the point is quarantined, and the exit code flags the incomplete run.
    let journal = tmp("cli_crash.fpbj");
    let crash_json = tmp("cli_crash.json");
    let out = sweep_cmd(
        "2",
        &[
            "--inject-panic",
            "1",
            "--journal",
            journal.to_str().expect("utf8"),
            "--json-out",
            crash_json.to_str().expect("utf8"),
        ],
    )
    .output()
    .expect("spawn");
    assert_eq!(out.status.code(), Some(3), "quarantine must exit 3");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("1 panicked"), "stdout: {text}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("quarantined point 1"), "stderr: {err}");
    assert!(err.contains("injected panic at point 1"), "stderr: {err}");
    let crash_doc = std::fs::read_to_string(&crash_json).expect("crash json");
    assert!(crash_doc.contains("\"class\": \"panicked\""), "{crash_doc}");

    // Resume without the injection: the healthy point is restored from
    // the journal, only the quarantined one reruns, and the final JSON
    // is byte-identical to the uninterrupted run's.
    let resumed_json = tmp("cli_resumed.json");
    let out = sweep_cmd(
        "2",
        &[
            "--resume",
            journal.to_str().expect("utf8"),
            "--json-out",
            resumed_json.to_str().expect("utf8"),
        ],
    )
    .output()
    .expect("spawn");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("restored 1 points"), "stdout: {text}");
    let clean = std::fs::read(&clean_json).expect("clean json");
    let resumed = std::fs::read(&resumed_json).expect("resumed json");
    assert_eq!(clean, resumed, "resume must render byte-identical JSON");
    for p in [&clean_json, &journal, &crash_json, &resumed_json] {
        std::fs::remove_file(p).ok();
    }
}

#[test]
fn killed_mid_sweep_then_resume_matches_a_clean_run() {
    use std::io::Read as _;
    use std::time::{Duration, Instant};

    let clean_json = tmp("cli_kill_clean.json");
    let out = sweep_cmd("1", &["--json-out", clean_json.to_str().expect("utf8")])
        .output()
        .expect("spawn");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    // Start a journaled sweep with a longer run, wait until the journal
    // holds at least one durable record, then kill the process outright
    // (SIGKILL — no handler could run even if one existed).
    let journal = tmp("cli_kill.fpbj");
    let mut child = fpb()
        .args([
            "sweep",
            "--workload",
            "cop_m",
            "--instructions",
            "60000",
            "--axis",
            "pt-dimm=466,560",
            "--jobs",
            "1",
            // The kill must land mid-simulation; a warm result cache
            // could finish the whole grid before the signal arrives.
            "--no-result-cache",
            "--journal",
        ])
        .arg(&journal)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawn journaled sweep");
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let records = std::fs::read_to_string(&journal)
            .map(|s| s.lines().filter(|l| l.contains(" r ")).count())
            .unwrap_or(0);
        if records >= 1 {
            break;
        }
        if let Some(status) = child.try_wait().expect("try_wait") {
            let mut err = String::new();
            if let Some(mut s) = child.stderr.take() {
                s.read_to_string(&mut err).ok();
            }
            panic!("sweep exited ({status}) before journaling a record: {err}");
        }
        assert!(Instant::now() < deadline, "no journal record within 120s");
        std::thread::sleep(Duration::from_millis(20));
    }
    child.kill().expect("kill");
    child.wait().expect("wait");

    // The interrupted run's instruction budget differs from the clean
    // run's, so resuming it must be refused as a different sweep...
    let out = sweep_cmd("1", &["--resume", journal.to_str().expect("utf8")])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("different sweep"),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // ...while resuming with the matching parameters completes the grid.
    // The resume deliberately runs under --jobs 2: the worker count is an
    // execution parameter, not sweep identity, and restored points feed
    // the cost-aware scheduler its journal-refined estimates.
    let resumed_json = tmp("cli_kill_resumed.json");
    let out = fpb()
        .args([
            "sweep",
            "--workload",
            "cop_m",
            "--instructions",
            "60000",
            "--axis",
            "pt-dimm=466,560",
            "--jobs",
            "2",
            "--resume",
        ])
        .arg(&journal)
        .args(["--json-out", resumed_json.to_str().expect("utf8")])
        .output()
        .expect("spawn");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("restored"), "stdout: {text}");
    let resumed = std::fs::read_to_string(&resumed_json).expect("resumed json");
    assert!(resumed.contains("\"skipped\": 0"), "{resumed}");
    assert!(resumed.contains("\"panicked\": 0"), "{resumed}");
    for p in [&clean_json, &journal, &resumed_json] {
        std::fs::remove_file(p).ok();
    }
}

#[test]
fn result_reuse_is_byte_invisible_and_warm_cache_splices() {
    // Reference: reuse fully disabled.
    let off_json = tmp("cli_reuse_off.json");
    let out = sweep_cmd(
        "2",
        &["--no-result-cache", "--json-out", off_json.to_str().expect("utf8")],
    )
    .output()
    .expect("spawn");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(
        !String::from_utf8_lossy(&out.stderr).contains("result reuse"),
        "--no-result-cache must silence the reuse stats line"
    );

    // Cold pass against a private cache file: simulates, saves, and must
    // render byte-identical JSON.
    let cache = tmp("cli_reuse_cache.v1");
    let cold_json = tmp("cli_reuse_cold.json");
    let out = sweep_cmd(
        "2",
        &[
            "--result-cache",
            cache.to_str().expect("utf8"),
            "--json-out",
            cold_json.to_str().expect("utf8"),
        ],
    )
    .output()
    .expect("spawn");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("result reuse"), "stderr: {err}");
    assert!(err.contains("0 cache hit(s)"), "cold pass claimed hits: {err}");
    assert!(cache.exists(), "cold pass must persist the cache");

    // Warm pass: every unit splices from the cache, bytes still equal.
    let warm_json = tmp("cli_reuse_warm.json");
    let out = sweep_cmd(
        "2",
        &[
            "--result-cache",
            cache.to_str().expect("utf8"),
            "--json-out",
            warm_json.to_str().expect("utf8"),
        ],
    )
    .output()
    .expect("spawn");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("0 simulated"), "warm pass re-simulated: {err}");

    let off = std::fs::read(&off_json).expect("off json");
    let cold = std::fs::read(&cold_json).expect("cold json");
    let warm = std::fs::read(&warm_json).expect("warm json");
    assert_eq!(off, cold, "cold cache run diverged from reuse-off run");
    assert_eq!(off, warm, "warm cache run diverged from reuse-off run");

    // Corrupt the cache (truncate mid-record): the next run discards it
    // wholesale, runs cold, and still produces identical bytes.
    let text = std::fs::read_to_string(&cache).expect("cache text");
    std::fs::write(&cache, &text[..text.len() / 2]).expect("truncate");
    let after_json = tmp("cli_reuse_after_corrupt.json");
    let out = sweep_cmd(
        "2",
        &[
            "--result-cache",
            cache.to_str().expect("utf8"),
            "--json-out",
            after_json.to_str().expect("utf8"),
        ],
    )
    .output()
    .expect("spawn");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("0 cache hit(s)"), "corrupt cache must read empty: {err}");
    let after = std::fs::read(&after_json).expect("post-corruption json");
    assert_eq!(off, after, "post-corruption run diverged");

    for p in [&off_json, &cold_json, &warm_json, &after_json, &cache] {
        std::fs::remove_file(p).ok();
    }
}

#[test]
fn record_writes_a_replayable_trace() {
    let dir = std::env::temp_dir().join("fpb-cli-test");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("mcf.fpbt");
    let out = fpb()
        .args([
            "record",
            "--program",
            "C.mcf",
            "--ops",
            "2000",
            "--out",
            path.to_str().expect("utf8 path"),
        ])
        .output()
        .expect("spawn");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let bytes = std::fs::read(&path).expect("file written");
    let ops = fpb::trace::record::read_trace(&bytes[..]).expect("valid trace");
    assert_eq!(ops.len(), 2000);
    let mut replay = fpb::trace::record::ReplayStream::new(ops).expect("nonempty");
    assert!(replay.next_op().gap_instructions >= 1);
    std::fs::remove_file(&path).ok();
}
