//! End-to-end tests of the `fpb` binary (spawned as a real process).

use std::process::Command;

fn fpb() -> Command {
    Command::new(env!("CARGO_BIN_EXE_fpb"))
}

#[test]
fn help_prints_usage() {
    let out = fpb().arg("help").output().expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("USAGE"));
    assert!(text.contains("--workload"));
}

#[test]
fn list_names_all_workloads_and_schemes() {
    let out = fpb().arg("list").output().expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for name in fpb::trace::catalog::WORKLOADS {
        assert!(text.contains(name), "missing {name}");
    }
    assert!(text.contains("fpb") && text.contains("dimm-chip"));
}

#[test]
fn run_produces_metrics_table() {
    let out = fpb()
        .args([
            "run",
            "--workload",
            "cop_m",
            "--scheme",
            "fpb",
            "--instructions",
            "30000",
        ])
        .output()
        .expect("spawn");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("CPI"));
    assert!(text.contains("FPB"));
    assert!(text.contains("wear:"), "wear summary expected: {text}");
}

#[test]
fn bad_arguments_fail_with_diagnostics() {
    let out = fpb().args(["run", "--scheme", "warp-drive"]).output().expect("spawn");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown scheme"), "stderr: {err}");

    let out = fpb().args(["run", "--workload", "nope_m"]).output().expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown workload"));

    let out = fpb().arg("frobnicate").output().expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown subcommand"));
}

#[test]
fn record_writes_a_replayable_trace() {
    let dir = std::env::temp_dir().join("fpb-cli-test");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("mcf.fpbt");
    let out = fpb()
        .args([
            "record",
            "--program",
            "C.mcf",
            "--ops",
            "2000",
            "--out",
            path.to_str().expect("utf8 path"),
        ])
        .output()
        .expect("spawn");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let bytes = std::fs::read(&path).expect("file written");
    let ops = fpb::trace::record::read_trace(&bytes[..]).expect("valid trace");
    assert_eq!(ops.len(), 2000);
    let mut replay = fpb::trace::record::ReplayStream::new(ops).expect("nonempty");
    assert!(replay.next_op().gap_instructions >= 1);
    std::fs::remove_file(&path).ok();
}
