//! Property: `fpb bench` emits the same deterministic metric fields no
//! matter how many workers run the sweep. The `wall` section may differ
//! run to run (it measures time), but [`BenchReport::metric_fields_json`]
//! — workload, points, per-point metrics, the `identical` flag — must be
//! byte-identical between `--jobs 1` and `--jobs N`.
//!
//! [`BenchReport::metric_fields_json`]: fpb::sim::BenchReport::metric_fields_json

use proptest::prelude::*;

use fpb::sim::run_fixed_bench;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2))]

    #[test]
    fn metric_fields_identical_across_job_counts(
        jobs in 2usize..9,
        instructions in 1_000u64..2_000,
    ) {
        let serial = run_fixed_bench(1, instructions).expect("pinned workload in catalog");
        let parallel = run_fixed_bench(jobs, instructions).expect("pinned workload in catalog");

        prop_assert!(serial.identical, "serial report flagged divergence");
        prop_assert!(parallel.identical, "parallel report flagged divergence");
        prop_assert_eq!(
            serial.metric_fields_json(2),
            parallel.metric_fields_json(2),
            "metric fields diverged between jobs=1 and jobs={}",
            jobs
        );
    }
}
