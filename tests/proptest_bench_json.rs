//! Property: `fpb bench` emits the same deterministic metric fields no
//! matter how many workers run the sweep. The `wall` section may differ
//! run to run (it measures time), but [`BenchReport::metric_fields_json`]
//! — workload, points, per-point metrics, the `identical` flag — must be
//! byte-identical between `--jobs 1` and `--jobs N`.
//!
//! The second property pins the scheduler itself: the cost estimates fed
//! to the chunked claim loop steer only *when* items run, so arbitrary
//! (even adversarially wrong) cost vectors must leave the output array
//! untouched.
//!
//! [`BenchReport::metric_fields_json`]: fpb::sim::BenchReport::metric_fields_json

use proptest::prelude::*;

use fpb::sim::{parallel_map_arena, run_fixed_bench_repeats};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2))]

    #[test]
    fn metric_fields_identical_across_job_counts(
        jobs in 2usize..9,
        instructions in 400u64..1_000,
    ) {
        let serial =
            run_fixed_bench_repeats(1, instructions, 1).expect("pinned workload in catalog");
        let parallel =
            run_fixed_bench_repeats(jobs, instructions, 1).expect("pinned workload in catalog");

        prop_assert!(serial.identical, "serial report flagged divergence");
        prop_assert!(parallel.identical, "parallel report flagged divergence");
        prop_assert_eq!(
            serial.metric_fields_json(2),
            parallel.metric_fields_json(2),
            "metric fields diverged between jobs=1 and jobs={}",
            jobs
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn parallel_map_arena_invariant_under_arbitrary_costs(
        costs in prop::collection::vec(0u64..1_000_000, 40),
        jobs in 1usize..5,
    ) {
        let items: Vec<u64> = (0..40).collect();
        let expect: Vec<u64> = items
            .iter()
            .enumerate()
            .map(|(i, &x)| x * 7 + i as u64)
            .collect();
        let got = parallel_map_arena(
            &items,
            jobs,
            Some(&costs),
            |_slot| (),
            |(), i, &x| x * 7 + i as u64,
        );
        prop_assert_eq!(got, expect, "output order must ignore the cost schedule");
    }
}
