//! Refactor safety net: the staged, scheme-plugin engine must be
//! **byte-for-byte** invisible in the results.
//!
//! For two pinned workloads and two registry schemes (the full FPB
//! extension stack and the paper's baseline), a run on the optimized
//! path (event heap, pooled buffers, sampled words) and a twin run on
//! the reference path (linear scan, fresh allocation per write) must
//! serialize to identical [`Metrics::to_json`] strings. CI's
//! `scheme-matrix` job fails on any byte difference.
//!
//! [`Metrics::to_json`]: fpb::sim::Metrics::to_json

use fpb::sim::{run_workload, SchemeRegistry, SimOptions};
use fpb::trace::catalog;
use fpb::types::SystemConfig;

const INSTRUCTIONS: u64 = 25_000;
const WORKLOADS: [&str; 2] = ["mcf_m", "lbm_m"];
const SCHEMES: [&str; 2] = ["fpb+wc+wp+wt8", "dimm-chip"];

#[test]
fn optimized_and_reference_paths_serialize_identically() {
    let cfg = SystemConfig::default();
    let registry = SchemeRegistry::standard();
    for wl_name in WORKLOADS {
        let wl = catalog::workload(wl_name).expect("pinned workload in catalog");
        for spec in SCHEMES {
            let setup = registry
                .build(spec, &cfg)
                .unwrap_or_else(|e| panic!("scheme spec `{spec}`: {e}"));
            let opts = SimOptions::with_instructions(INSTRUCTIONS);
            let optimized = run_workload(&wl, &cfg, &setup, &opts).to_json();
            // Only the stepper and allocator references are bit-identical
            // twins; the reference sampler is distributional, so it stays
            // off on both sides.
            let mut ref_opts = opts;
            ref_opts.reference_stepper = true;
            ref_opts.reference_alloc = true;
            let reference = run_workload(&wl, &cfg, &setup, &ref_opts).to_json();
            assert_eq!(
                optimized, reference,
                "metrics JSON diverged for workload `{wl_name}`, scheme `{spec}`"
            );
        }
    }
}
