//! System tests for the fault-injection and graceful-degradation
//! subsystem: injected runs finish, recovery metrics fire, runs are
//! deterministic, and disabled injection is bit-for-bit free.

use fpb::sim::{run_workload, try_run_workload, FaultMetrics, Metrics, SchemeSetup, SimOptions};
use fpb::trace::catalog;
use fpb::types::{FaultConfig, SystemConfig};

fn opts() -> SimOptions {
    SimOptions::with_instructions(60_000)
}

fn run_cfg(cfg: &SystemConfig) -> Metrics {
    let wl = catalog::workload("mcf_m").expect("workload");
    run_workload(&wl, cfg, &SchemeSetup::fpb(cfg), &opts())
}

/// A fault mix that exercises every recovery path: a high verify-failure
/// rate (to exhaust retries and force remap + SLC fallback) and brownout
/// windows frequent enough to land inside a short run.
fn faulty_cfg() -> SystemConfig {
    SystemConfig::default().with_faults(FaultConfig {
        verify_fail_prob: 0.4,
        brownout_period: 200_000,
        brownout_duration: 40_000,
        ..FaultConfig::default()
    })
}

#[test]
fn faulty_run_completes_with_recovery_activity() {
    let cfg = faulty_cfg();
    let m = run_cfg(&cfg);
    assert!(m.cycles > 0);
    assert!(m.pcm_writes > 0, "writes must still complete under faults");
    let f = &m.faults;
    assert!(f.verify_failures > 0, "verify injection never fired: {f:?}");
    assert!(f.retries > 0, "no retries issued: {f:?}");
    assert!(f.brownout_windows > 0, "no brownout window hit: {f:?}");
    assert!(f.brownout_cycles > 0, "brownout cycles unaccounted: {f:?}");
    assert!(f.any_activity());
}

#[test]
fn retry_exhaustion_remaps_and_degrades_to_slc() {
    // Every round fails verify, so each write burns through max_retries
    // and must be remapped + rewritten in SLC form (which skips the
    // injected verify, guaranteeing forward progress).
    let cfg = SystemConfig::default().with_faults(FaultConfig {
        verify_fail_prob: 1.0,
        max_retries: 2,
        retry_backoff_cycles: 100,
        ..FaultConfig::default()
    });
    let m = run_cfg(&cfg);
    assert!(m.pcm_writes > 0);
    assert!(m.faults.remaps > 0, "{:?}", m.faults);
    assert_eq!(m.faults.remaps, m.faults.slc_fallbacks);
    assert!(m.faults.retries >= 2 * m.faults.remaps);
}

#[test]
fn same_seed_same_faults_identical_metrics() {
    let cfg = faulty_cfg();
    let a = run_cfg(&cfg);
    let b = run_cfg(&cfg);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.pcm_reads, b.pcm_reads);
    assert_eq!(a.pcm_writes, b.pcm_writes);
    assert_eq!(a.cells_written, b.cells_written);
    assert_eq!(a.faults, b.faults, "fault counters must be bit-identical");
}

#[test]
fn disabled_injection_is_bit_for_bit_free() {
    // Recovery knobs without any enabled injection (all probabilities and
    // the brownout period zero) must not perturb the run at all: the
    // injector is never constructed, so not a single RNG draw differs.
    let tuned_but_off = SystemConfig::default().with_faults(FaultConfig {
        max_retries: 7,
        retry_backoff_cycles: 12_345,
        watchdog_iterations: 9,
        brownout_budget_scale: 0.1,
        ..FaultConfig::default()
    });
    let baseline = run_cfg(&SystemConfig::default());
    let off = run_cfg(&tuned_but_off);
    assert_eq!(baseline.cycles, off.cycles);
    assert_eq!(baseline.pcm_reads, off.pcm_reads);
    assert_eq!(baseline.pcm_writes, off.pcm_writes);
    assert_eq!(baseline.cells_written, off.cells_written);
    assert_eq!(baseline.write_queue_delay, off.write_queue_delay);
    assert_eq!(baseline.read_latency_sum, off.read_latency_sum);
    assert_eq!(off.faults, FaultMetrics::default());
    assert!(!off.faults.any_activity());
}

#[test]
fn ledger_audit_runs_clean_under_faults() {
    // The conservation auditor checks avail + outstanding + withheld == cap
    // after every grant and release; a faulty run with brownout withholding
    // is exactly where bookkeeping bugs would surface.
    let cfg = faulty_cfg();
    let wl = catalog::workload("mcf_m").expect("workload");
    let mut o = opts();
    o.audit_ledger = true;
    let m = try_run_workload(&wl, &cfg, &SchemeSetup::fpb(&cfg), &o)
        .expect("faulty audited run must not error");
    assert_eq!(m.faults.audit_violations, 0, "ledger conservation violated");
    assert!(m.faults.brownout_windows > 0);
}
