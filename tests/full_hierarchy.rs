//! Full three-level hierarchy integration: the paper's L1/L2/DRAM-L3
//! stack (fpb-cache) driven by the synthetic trace generators.
//!
//! The simulation engine uses an LLC-level front end for speed; these
//! tests exercise the full-fidelity [`fpb::cache::CoreCaches`] path and
//! check that the two agree on the traffic that matters.

use fpb::cache::{CoreCaches, HitLevel};
use fpb::trace::{catalog, CoreTraceGenerator};
use fpb::types::{CacheHierarchyConfig, SimRng};

fn drive(program: &str, ops: usize, seed: u64) -> (CoreCaches, u64, u64, u64) {
    let profile = catalog::program(program).expect("program");
    let mut rng = SimRng::seed_from(seed);
    let mut gen = CoreTraceGenerator::new(profile, &mut rng);
    let mut caches = CoreCaches::new(&CacheHierarchyConfig::default()).expect("config");
    let (mut fills, mut wbs, mut instr) = (0u64, 0u64, 0u64);
    for _ in 0..ops {
        let op = gen.next_op();
        instr += op.gap_instructions;
        let out = caches.access(op.addr, op.is_write);
        fills += out.pcm_fills.len() as u64;
        wbs += out.pcm_writebacks.len() as u64;
    }
    (caches, fills, wbs, instr)
}

#[test]
fn hierarchy_filters_reuse_traffic() {
    // xalancbmk's traffic is dominated by a 20 MiB reuse set: after the
    // stack warms, most accesses must be absorbed before PCM. (The trace
    // profiles model post-L2 traffic, so cold-random programs like mcf
    // legitimately miss everywhere; reuse-heavy programs are the ones a
    // full hierarchy must filter.)
    let (caches, fills, _, _) = drive("C.xalancbmk", 150_000, 1);
    let l1 = caches.l1_stats();
    assert!(l1.accesses() as usize >= 150_000);
    assert!(
        (fills as f64) < 0.6 * l1.accesses() as f64,
        "fills {fills} vs accesses {}",
        l1.accesses()
    );
}

#[test]
fn hit_levels_are_exercised() {
    let profile = catalog::program("C.xalancbmk").expect("program");
    let mut rng = SimRng::seed_from(2);
    let mut gen = CoreTraceGenerator::new(profile, &mut rng);
    let mut caches = CoreCaches::new(&CacheHierarchyConfig::default()).expect("config");
    let mut seen = std::collections::HashSet::new();
    for _ in 0..200_000 {
        let op = gen.next_op();
        seen.insert(caches.access(op.addr, op.is_write).level);
        if seen.len() == 4 {
            break;
        }
    }
    for lvl in [HitLevel::L1, HitLevel::L2, HitLevel::L3, HitLevel::Memory] {
        assert!(seen.contains(&lvl), "never hit {lvl:?}");
    }
}

#[test]
fn writeback_traffic_requires_stores() {
    // A pure-load profile can never generate PCM writes through the
    // hierarchy.
    let profile = fpb::trace::WorkloadProfile::new(
        "reads-only",
        vec![fpb::trace::TrafficTier::new(2.0, 0.0, 256.0, true)],
        fpb::trace::DataProfile::new(fpb::trace::DataClass::Streaming, 0.5),
    );
    let mut rng = SimRng::seed_from(3);
    let mut gen = CoreTraceGenerator::new(profile, &mut rng);
    let mut caches = CoreCaches::new(&CacheHierarchyConfig::default()).expect("config");
    let mut wbs = 0;
    for _ in 0..100_000 {
        let op = gen.next_op();
        wbs += caches.access(op.addr, op.is_write).pcm_writebacks.len();
    }
    assert_eq!(wbs, 0);
}

#[test]
fn store_heavy_stream_eventually_writes_back() {
    let profile = fpb::trace::WorkloadProfile::new(
        "store-stream",
        vec![fpb::trace::TrafficTier::new(0.2, 1.8, 512.0, true)],
        fpb::trace::DataProfile::new(fpb::trace::DataClass::Streaming, 0.7),
    );
    let mut rng = SimRng::seed_from(4);
    let mut gen = CoreTraceGenerator::new(profile, &mut rng);
    // Small hierarchy so the test saturates it quickly.
    let cfg = CacheHierarchyConfig {
        l3_mib_per_core: 2,
        ..CacheHierarchyConfig::default()
    };
    let mut caches = CoreCaches::new(&cfg).expect("config");
    let mut wbs = 0usize;
    for _ in 0..200_000 {
        let op = gen.next_op();
        wbs += caches.access(op.addr, op.is_write).pcm_writebacks.len();
    }
    assert!(wbs > 0, "dirty data larger than the LLC must spill to PCM");
}

#[test]
fn deterministic_hierarchy_replay() {
    let (_, f1, w1, i1) = drive("B.mummer", 30_000, 7);
    let (_, f2, w2, i2) = drive("B.mummer", 30_000, 7);
    assert_eq!((f1, w1, i1), (f2, w2, i2));
}
