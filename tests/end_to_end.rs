//! End-to-end system tests: whole-simulation invariants that span every
//! crate in the workspace.

use fpb::sim::engine::{run_workload_warmed, warm_cores};
use fpb::sim::{run_workload, Metrics, SchemeSetup, SimOptions};
use fpb::trace::catalog;
use fpb::types::SystemConfig;

fn opts() -> SimOptions {
    SimOptions::with_instructions(80_000)
}

fn run(name: &str, setup: &SchemeSetup) -> Metrics {
    let cfg = SystemConfig::default();
    let wl = catalog::workload(name).expect("workload");
    run_workload(&wl, &cfg, setup, &opts())
}

#[test]
fn every_workload_completes_under_every_major_scheme() {
    let cfg = SystemConfig::default();
    for name in catalog::WORKLOADS {
        let wl = catalog::workload(name).expect("workload");
        let cores = warm_cores(&wl, &cfg, &opts());
        for setup in [
            SchemeSetup::ideal(&cfg),
            SchemeSetup::dimm_only(&cfg),
            SchemeSetup::dimm_chip(&cfg),
            SchemeSetup::fpb(&cfg),
        ] {
            let m = run_workload_warmed(&wl, &cfg, &setup, &opts(), &cores);
            assert!(m.cycles > 0, "{name}/{}", setup.label);
            assert!(m.cpi() >= 1.0, "{name}/{}: CPI {}", setup.label, m.cpi());
        }
    }
}

#[test]
fn determinism_full_stack() {
    let a = run("bwa_m", &SchemeSetup::fpb(&SystemConfig::default()));
    let b = run("bwa_m", &SchemeSetup::fpb(&SystemConfig::default()));
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.pcm_reads, b.pcm_reads);
    assert_eq!(a.pcm_writes, b.pcm_writes);
    assert_eq!(a.cells_written, b.cells_written);
    assert_eq!(a.burst_cycles, b.burst_cycles);
    assert_eq!(a.power.gcp_usable_total(), b.power.gcp_usable_total());
}

#[test]
fn different_seeds_change_the_run_but_not_the_story() {
    let cfg1 = SystemConfig::default().with_seed(1);
    let cfg2 = SystemConfig::default().with_seed(2);
    let wl = catalog::workload("lbm_m").expect("workload");
    let a = run_workload(&wl, &cfg1, &SchemeSetup::dimm_chip(&cfg1), &opts());
    let b = run_workload(&wl, &cfg2, &SchemeSetup::dimm_chip(&cfg2), &opts());
    assert_ne!(a.cycles, b.cycles, "seeds must matter");
    // ...but the workload's character is stable: within 2x of each other.
    let ratio = a.cpi() / b.cpi();
    assert!((0.5..2.0).contains(&ratio), "ratio {ratio}");
}

#[test]
fn ideal_upper_bounds_all_budgeted_schemes() {
    let cfg = SystemConfig::default();
    let wl = catalog::workload("mcf_m").expect("workload");
    let cores = warm_cores(&wl, &cfg, &opts());
    let ideal = run_workload_warmed(&wl, &cfg, &SchemeSetup::ideal(&cfg), &opts(), &cores);
    for setup in [
        SchemeSetup::dimm_only(&cfg),
        SchemeSetup::dimm_chip(&cfg),
        SchemeSetup::pwl(&cfg),
        SchemeSetup::fpb(&cfg),
    ] {
        let m = run_workload_warmed(&wl, &cfg, &setup, &opts(), &cores);
        assert!(
            m.cycles as f64 >= ideal.cycles as f64 * 0.98,
            "{} ({}) beat Ideal ({})",
            setup.label,
            m.cycles,
            ideal.cycles
        );
    }
}

#[test]
fn fpb_ordering_on_write_heavy_workloads() {
    // The paper's core result, at test scale: DIMM+chip <= FPB <= Ideal
    // with strict improvement on write-bound workloads.
    let cfg = SystemConfig::default();
    for name in ["mcf_m", "lbm_m", "bwa_m", "mum_m"] {
        let wl = catalog::workload(name).expect("workload");
        let cores = warm_cores(&wl, &cfg, &opts());
        let chip = run_workload_warmed(&wl, &cfg, &SchemeSetup::dimm_chip(&cfg), &opts(), &cores);
        let fpb = run_workload_warmed(&wl, &cfg, &SchemeSetup::fpb(&cfg), &opts(), &cores);
        assert!(
            fpb.cycles < chip.cycles,
            "{name}: FPB {} !< DIMM+chip {}",
            fpb.cycles,
            chip.cycles
        );
    }
}

#[test]
fn read_and_write_counts_are_scheme_invariant_for_warmed_runs() {
    // The front end is deterministic and closed-loop: schemes change
    // *when* requests are served, not how many exist. With shared warmed
    // cores the totals must be nearly identical (tail effects only).
    let cfg = SystemConfig::default();
    let wl = catalog::workload("les_m").expect("workload");
    let cores = warm_cores(&wl, &cfg, &opts());
    let a = run_workload_warmed(&wl, &cfg, &SchemeSetup::dimm_chip(&cfg), &opts(), &cores);
    let b = run_workload_warmed(&wl, &cfg, &SchemeSetup::fpb(&cfg), &opts(), &cores);
    let read_ratio = a.pcm_reads as f64 / b.pcm_reads.max(1) as f64;
    assert!(
        (0.9..1.1).contains(&read_ratio),
        "read volume moved with the scheme: {read_ratio}"
    );
}

#[test]
fn burst_fraction_tracks_write_pressure() {
    let heavy = run("mum_m", &SchemeSetup::dimm_chip(&SystemConfig::default()));
    let light = run("xal_m", &SchemeSetup::dimm_chip(&SystemConfig::default()));
    assert!(
        heavy.burst_fraction() > light.burst_fraction(),
        "write-heavy {} vs light {}",
        heavy.burst_fraction(),
        light.burst_fraction()
    );
}

#[test]
fn metrics_internal_consistency() {
    let m = run("cop_m", &SchemeSetup::fpb(&SystemConfig::default()));
    assert!(m.write_rounds >= m.pcm_writes, "rounds contain writes");
    assert!(m.burst_cycles <= m.cycles);
    assert!(m.write_active_cycles <= m.cycles);
    if m.pcm_writes > 0 {
        assert!(m.avg_cell_changes() > 0.0);
        assert!(m.cells_written >= m.pcm_writes);
    }
}

#[test]
fn wear_leveling_changes_little_as_in_the_paper() {
    // PWL was the paper's null result (~2 % gain): it must neither crash
    // nor transform performance.
    let base = run("mcf_m", &SchemeSetup::dimm_chip(&SystemConfig::default()));
    let pwl = run("mcf_m", &SchemeSetup::pwl(&SystemConfig::default()));
    let speedup = pwl.speedup_over(&base);
    assert!((0.85..1.25).contains(&speedup), "PWL speedup {speedup}");
}
