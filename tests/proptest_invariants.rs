//! Property-based tests (proptest) on the core data structures and
//! cross-crate invariants.

// Test-only crate: unwrap on known-good values is the clearest failure mode.
#![allow(clippy::unwrap_used)]

use proptest::prelude::*;

use fpb::pcm::{CellMapping, ChangeSet, DimmGeometry, IterationSampler, LineWrite, MlcLevel};
use fpb::power::{Ledger, PowerManager, PowerPolicyConfig, WriteId};
use fpb::sim::request::split_rounds;
use fpb::types::{MlcWriteModel, PowerConfig, SimRng, Tokens};

fn arb_level() -> impl Strategy<Value = MlcLevel> {
    prop_oneof![
        Just(MlcLevel::L00),
        Just(MlcLevel::L01),
        Just(MlcLevel::L10),
        Just(MlcLevel::L11),
    ]
}

fn arb_changes(max: usize) -> impl Strategy<Value = ChangeSet> {
    prop::collection::btree_set(0u32..1024, 0..max).prop_flat_map(|cells| {
        let n = cells.len();
        (
            Just(cells),
            prop::collection::vec(arb_level(), n..=n),
        )
            .prop_map(|(cells, levels)| {
                cells
                    .into_iter()
                    .zip(levels)
                    .collect::<ChangeSet>()
            })
    })
}

fn arb_mapping() -> impl Strategy<Value = CellMapping> {
    prop_oneof![
        Just(CellMapping::Naive),
        Just(CellMapping::Vim),
        Just(CellMapping::Bim),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every write's iteration schedule is internally consistent: per-chip
    /// rows sum to the totals, demand never increases within the SET
    /// phase, and the write finishes in exactly `total_iterations` steps.
    #[test]
    fn line_write_schedule_consistent(
        changes in arb_changes(400),
        mapping in arb_mapping(),
        seed in 0u64..1000,
        groups in 1u8..4,
    ) {
        let geom = DimmGeometry::new(8, 1024);
        let sampler = IterationSampler::new(MlcWriteModel::default());
        let mut rng = SimRng::seed_from(seed);
        let mut w = LineWrite::new(&changes, &geom, mapping, &sampler, &mut rng, groups);
        prop_assert_eq!(w.total_changed() as usize, changes.len());
        let planned = w.total_iterations();
        let mut steps = 0;
        let mut last_set = u32::MAX;
        while let Some(d) = w.next_demand() {
            prop_assert_eq!(d.per_chip.iter().sum::<u32>(), d.active_cells);
            if !d.kind.is_reset() {
                prop_assert!(d.active_cells <= last_set);
                last_set = d.active_cells;
            }
            w.advance();
            steps += 1;
            prop_assert!(steps <= planned);
        }
        prop_assert_eq!(steps, planned);
        prop_assert!(w.is_complete());
    }

    /// Rounds partition the change set and each round fits its caps.
    #[test]
    fn split_rounds_partitions(
        changes in arb_changes(1024),
        cap_total in 32u64..600,
        cap_chip in 16u64..80,
        mapping in arb_mapping(),
    ) {
        let rounds = split_rounds(&changes, Some(cap_total), Some(cap_chip), mapping, 8);
        let total: usize = rounds.iter().map(ChangeSet::len).sum();
        prop_assert_eq!(total, changes.len());
        for r in &rounds {
            prop_assert!(r.len() as u64 <= cap_total);
            let rc = mapping.distribute(r.iter().map(|&(c, _)| c), 8);
            prop_assert!(
                rc.iter().all(|&c| (c as u64) <= cap_chip),
                "round chip demand {:?} over cap {}", rc, cap_chip
            );
        }
        // All cells preserved (as a multiset of indices).
        let mut orig: Vec<u32> = changes.iter().map(|&(c, _)| c).collect();
        let mut got: Vec<u32> = rounds.iter().flat_map(|r| r.iter().map(|&(c, _)| c)).collect();
        orig.sort_unstable();
        got.sort_unstable();
        prop_assert_eq!(orig, got);
    }

    /// Flat ledger: any sequence of grants and releases conserves tokens.
    #[test]
    fn flat_ledger_conserves(
        requests in prop::collection::vec(1u64..200, 1..40),
        budget in 100u64..800,
    ) {
        let mut ledger = Ledger::flat(budget);
        let mut held = Vec::new();
        for r in requests {
            if let Some(g) = ledger.try_grant_flat(Tokens::from_cells(r)) {
                held.push(g);
            }
            let outstanding: Tokens = held.iter().map(|g| g.flat).sum();
            let avail = ledger.dimm_available().expect("flat has a budget");
            prop_assert_eq!(avail + outstanding, Tokens::from_cells(budget));
        }
        for g in &held {
            ledger.release(g).unwrap();
        }
        prop_assert_eq!(ledger.dimm_available(), Some(Tokens::from_cells(budget)));
    }

    /// Brownout windows conserve tokens under any grant/release
    /// interleaving: budgets never underflow while shrunk, pre-window
    /// grants release cleanly mid-window, and ending the window restores
    /// the exact pre-window state.
    #[test]
    fn brownout_withhold_restores_exactly(
        pre_demands in prop::collection::vec(0u64..40, 8..=8),
        in_demands in prop::collection::vec(0u64..40, 8..=8),
        keep in 0.0f64..1.0,
    ) {
        let mut ledger = Ledger::with_chips(560, 8, 66_500, 0.95, Some((0.8, 66_500)));
        let full: Vec<Tokens> = (0..8).map(|i| ledger.chip_available(i)).collect();
        let full_dimm = ledger.dimm_available();
        let full_gcp = ledger.gcp_available();
        let to_demand = |ds: &[u64]| ds.iter().map(|&d| Tokens::from_cells(d)).collect::<Vec<_>>();

        // Grant before the window; this power is in flight and cannot be
        // clawed back by the brownout.
        let pre = ledger.try_grant_chips(&to_demand(&pre_demands));

        ledger.begin_brownout(keep);
        prop_assert!(ledger.in_brownout());
        let withheld = ledger.brownout_hold().expect("active window").total_millis();

        // Conservation with the hold counted as a third bucket.
        fn count(
            g: &fpb::power::Grant,
            dimm: &mut Tokens,
            chips: &mut [Tokens],
            gcp: &mut Tokens,
        ) {
            *dimm += g.dimm_raw;
            *gcp += g.gcp_total;
            for (chip, (&l, &b)) in chips.iter_mut().zip(g.lcp.iter().zip(g.borrowed.iter())) {
                *chip += l + b;
            }
        }
        let (mut out_dimm, mut out_chips, mut out_gcp) =
            (Tokens::default(), vec![Tokens::default(); 8], Tokens::default());
        if let Some(g) = &pre {
            count(g, &mut out_dimm, &mut out_chips, &mut out_gcp);
        }
        ledger.audit(out_dimm, &out_chips, out_gcp).unwrap();

        // Grants inside the window see only the shrunk budget and must not
        // underflow it (Tokens arithmetic would panic on underflow).
        let inside = ledger.try_grant_chips(&to_demand(&in_demands));
        if let Some(g) = &inside {
            count(g, &mut out_dimm, &mut out_chips, &mut out_gcp);
        }
        ledger.audit(out_dimm, &out_chips, out_gcp).unwrap();

        // A pre-window grant released mid-window must not be flagged.
        if let Some(g) = &pre {
            ledger.release(g).unwrap();
        }

        ledger.end_brownout();
        prop_assert!(!ledger.in_brownout());
        if let Some(g) = &inside {
            ledger.release(g).unwrap();
        }
        prop_assert!(withheld <= 560_000 + 8 * 66_500 + 66_500);
        for (i, &f) in full.iter().enumerate() {
            prop_assert_eq!(ledger.chip_available(i), f);
        }
        prop_assert_eq!(ledger.dimm_available(), full_dimm);
        prop_assert_eq!(ledger.gcp_available(), full_gcp);
    }

    /// Chip ledger with GCP: failed grants change nothing; successful
    /// grant/release round-trips restore the exact state.
    #[test]
    fn chip_ledger_grant_release_roundtrip(
        demands in prop::collection::vec(0u64..80, 8..=8),
        e_gcp in 0.3f64..0.95,
    ) {
        let mut ledger = Ledger::with_chips(560, 8, 66_500, 0.95, Some((e_gcp, 66_500)));
        let before: Vec<Tokens> = (0..8).map(|i| ledger.chip_available(i)).collect();
        let before_dimm = ledger.dimm_available();
        let before_gcp = ledger.gcp_available();
        let demand: Vec<Tokens> = demands.iter().map(|&d| Tokens::from_cells(d)).collect();
        if let Some(g) = ledger.try_grant_chips(&demand) {
            ledger.release(&g).unwrap();
        }
        for (i, &b) in before.iter().enumerate() {
            prop_assert_eq!(ledger.chip_available(i), b);
        }
        prop_assert_eq!(ledger.dimm_available(), before_dimm);
        prop_assert_eq!(ledger.gcp_available(), before_gcp);
    }

    /// The power manager completes any admissible write and restores the
    /// full budget, for every scheme.
    #[test]
    fn manager_roundtrip_for_all_schemes(
        changes in arb_changes(300),
        seed in 0u64..500,
        scheme_idx in 0usize..5,
    ) {
        let power = PowerConfig::default();
        let cfg = match scheme_idx {
            0 => PowerPolicyConfig::ideal(&power, 8),
            1 => PowerPolicyConfig::dimm_only(&power, 8),
            2 => PowerPolicyConfig::dimm_chip(&power, 8),
            3 => PowerPolicyConfig::gcp_ipm(&power, 8),
            _ => PowerPolicyConfig::fpb(&power, 8),
        };
        let geom = DimmGeometry::new(8, 1024);
        let sampler = IterationSampler::new(MlcWriteModel::default());
        let mut rng = SimRng::seed_from(seed);
        // Keep the write within every scheme's worst-case caps.
        let bounded: ChangeSet = changes.iter().take(250).cloned().collect();
        let per_chip_ok = CellMapping::Bim
            .distribute(bounded.iter().map(|&(c, _)| c), 8)
            .into_iter()
            .all(|c| c <= 66);
        prop_assume!(per_chip_ok);
        let mut w = LineWrite::new(&bounded, &geom, CellMapping::Bim, &sampler, &mut rng, 1);
        let mut pm = PowerManager::new(cfg, &geom);
        let id = WriteId::new(1);
        prop_assert!(pm.try_admit(id, &mut w), "solo admissible write refused");
        loop {
            w.advance();
            if w.is_complete() {
                pm.release(id);
                break;
            }
            prop_assert!(pm.try_advance(id, &w), "solo write stalled");
        }
        if let Some(avail) = pm.ledger().dimm_available() {
            prop_assert_eq!(avail, Tokens::from_cells(560));
        }
    }

    /// Tokens arithmetic: efficiency conversions are conservative in both
    /// directions (no free energy).
    #[test]
    fn token_efficiency_is_lossy_not_creative(
        cells in 1u64..2000,
        eff in 0.05f64..1.0,
    ) {
        let t = Tokens::from_cells(cells);
        let raw = t.scale_up(eff);
        prop_assert!(raw >= t);
        let usable = raw.scale_down(eff);
        prop_assert!(usable >= t.saturating_sub(Tokens::from_millis(1)));
        prop_assert!(usable <= raw);
    }
}
