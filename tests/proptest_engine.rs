//! Property-based fuzzing of the whole simulation engine: arbitrary
//! workload profiles and scheme combinations must complete, conserve
//! counts, and stay deterministic — the engine's "no panic, no deadlock"
//! guarantee under inputs nobody hand-picked.

use proptest::prelude::*;

use fpb::sim::{run_workload, SchemeSetup, SimOptions};
use fpb::trace::{DataClass, DataProfile, TrafficTier, Workload, WorkloadProfile};
use fpb::types::SystemConfig;

fn arb_class() -> impl Strategy<Value = DataClass> {
    prop_oneof![
        Just(DataClass::Integer),
        Just(DataClass::Float),
        Just(DataClass::Streaming),
        Just(DataClass::Pointer),
    ]
}

prop_compose! {
    fn arb_profile()(
        class in arb_class(),
        wcp in 0.1f64..0.9,
        hot_r in 0.05f64..2.0,
        hot_w in 0.05f64..1.0,
        hot_mib in 1.0f64..8.0,
        cold_r in 0.05f64..1.5,
        cold_w in 0.05f64..1.0,
        cold_mib in 64.0f64..400.0,
        streaming in any::<bool>(),
    ) -> WorkloadProfile {
        WorkloadProfile::new(
            "fuzz",
            vec![
                TrafficTier::new(hot_r, hot_w, hot_mib, false),
                TrafficTier::new(cold_r, cold_w, cold_mib, streaming),
            ],
            DataProfile::new(class, wcp),
        )
    }
}

fn scheme_for(idx: usize, cfg: &SystemConfig) -> SchemeSetup {
    match idx {
        0 => SchemeSetup::ideal(cfg),
        1 => SchemeSetup::dimm_only(cfg),
        2 => SchemeSetup::dimm_chip(cfg),
        3 => SchemeSetup::gcp(cfg, fpb::pcm::CellMapping::Vim, 0.6),
        4 => SchemeSetup::gcp_ipm(cfg),
        5 => SchemeSetup::fpb(cfg),
        6 => SchemeSetup::fpb(cfg).with_wc().with_wp(),
        _ => SchemeSetup::fpb(cfg).with_wt(8).with_preset(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn engine_survives_arbitrary_workloads(
        profile in arb_profile(),
        scheme_idx in 0usize..8,
        seed in 0u64..10_000,
        pt_dimm in 200u64..900,
    ) {
        // Small LLC keeps the fuzz fast without changing the invariants.
        let cfg = SystemConfig::default()
            .with_llc_mib(4)
            .with_pt_dimm(pt_dimm)
            .with_seed(seed);
        let workload = Workload {
            name: "fuzz",
            per_core: vec![profile; 8],
            table2_rpki: 0.0,
            table2_wpki: 0.0,
        };
        let opts = SimOptions::with_instructions(8_000);
        let setup = scheme_for(scheme_idx, &cfg);
        let m = run_workload(&workload, &cfg, &setup, &opts);

        // Liveness and accounting invariants.
        prop_assert!(m.cycles >= 8_000, "cycles {}", m.cycles);
        prop_assert!(m.cpi() >= 1.0);
        prop_assert!(m.write_rounds >= m.pcm_writes);
        prop_assert!(m.burst_cycles <= m.cycles);
        prop_assert!(m.write_active_cycles <= m.cycles);
        if m.pcm_writes > 0 {
            prop_assert!(m.cells_written > 0);
            // Endurance counts every completed *round* (cells physically
            // written), so it can exceed cells_written when a multi-round
            // task is mid-flight at run end — never the reverse.
            let e = m.endurance.as_ref().expect("tracked");
            prop_assert!(e.total_cells_written() >= m.cells_written);
        }

        // Determinism.
        let again = run_workload(&workload, &cfg, &setup, &opts);
        prop_assert_eq!(m.cycles, again.cycles);
        prop_assert_eq!(m.pcm_reads, again.pcm_reads);
        prop_assert_eq!(m.pcm_writes, again.pcm_writes);
    }
}
