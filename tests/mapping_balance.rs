//! Cell-mapping × data-model integration: the statistical claims behind
//! §4.3 — which mapping balances which data class, measured end to end
//! from the bit-level change model to per-chip demand.

use fpb::pcm::CellMapping;
use fpb::trace::{DataClass, DataProfile};
use fpb::types::SimRng;

/// Mean ratio of (max per-chip demand) to (balanced share) across many
/// sampled writes — 1.0 is perfect balance.
fn imbalance(class: DataClass, wcp: f64, mapping: CellMapping, seed: u64) -> f64 {
    let profile = DataProfile::new(class, wcp);
    let mut rng = SimRng::seed_from(seed);
    let mut total_ratio = 0.0;
    let mut n = 0;
    for _ in 0..300 {
        let cs = profile.sample_change_set(256, &mut rng);
        if cs.len() < 16 {
            continue;
        }
        let counts = mapping.distribute(cs.iter().map(|&(c, _)| c), 8);
        let max = *counts.iter().max().expect("8 chips") as f64;
        let fair = cs.len() as f64 / 8.0;
        total_ratio += max / fair;
        n += 1;
    }
    assert!(n > 100, "not enough samples");
    total_ratio / n as f64
}

#[test]
fn bim_balances_integer_data_best() {
    let ne = imbalance(DataClass::Integer, 0.5, CellMapping::Naive, 1);
    let bim = imbalance(DataClass::Integer, 0.5, CellMapping::Bim, 1);
    assert!(
        bim <= ne,
        "BIM must balance integer data at least as well as NE: {bim} vs {ne}"
    );
    assert!(bim < 1.5, "BIM imbalance on integers too high: {bim}");
}

#[test]
fn vim_balances_float_data() {
    // FP changes cluster within words; NE puts whole words on one chip,
    // VIM spreads each word across all chips (the paper's motivation for
    // VIM, §4.3).
    let ne = imbalance(DataClass::Float, 0.3, CellMapping::Naive, 2);
    let vim = imbalance(DataClass::Float, 0.3, CellMapping::Vim, 2);
    assert!(
        vim < ne,
        "VIM must balance float data better than NE: {vim} vs {ne}"
    );
}

#[test]
fn streaming_data_is_balanced_under_every_mapping() {
    for mapping in CellMapping::ALL {
        let r = imbalance(DataClass::Streaming, 0.7, mapping, 3);
        assert!(r < 1.35, "{mapping}: streaming imbalance {r}");
    }
}

#[test]
fn mappings_preserve_total_demand() {
    // Distributing never loses or invents cells.
    let profile = DataProfile::new(DataClass::Pointer, 0.4);
    let mut rng = SimRng::seed_from(4);
    for _ in 0..100 {
        let cs = profile.sample_change_set(256, &mut rng);
        for mapping in CellMapping::ALL {
            let counts = mapping.distribute(cs.iter().map(|&(c, _)| c), 8);
            assert_eq!(counts.iter().sum::<u32>() as usize, cs.len(), "{mapping}");
        }
    }
}

#[test]
fn imbalance_ranking_drives_gcp_need() {
    // The worst-balanced (mapping, class) pair must show per-write chip
    // spikes above the per-chip fair share — the phenomenon that makes
    // the chip budget bind and the GCP earn its area.
    let spiky = imbalance(DataClass::Float, 0.3, CellMapping::Naive, 5);
    assert!(
        spiky > 1.6,
        "NE on float data should spike per-chip demand: {spiky}"
    );
}
