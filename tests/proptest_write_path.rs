//! Property: the pooled (zero-allocation) write path is invisible in the
//! results. For arbitrary seeds and fault-injection settings, a run with
//! recycled write buffers and a run with fresh allocation per write must
//! produce **byte-identical** metrics JSON ([`Metrics::to_json`]) — not
//! merely equal aggregates.
//!
//! [`Metrics::to_json`]: fpb::sim::Metrics::to_json

use proptest::prelude::*;

use fpb::sim::{run_workload, SchemeSetup, SimOptions};
use fpb::trace::catalog;
use fpb::types::SystemConfig;

const INSTRUCTIONS: u64 = 15_000;

fn run_json(cfg: &SystemConfig, fresh_alloc: bool) -> String {
    let wl = catalog::workload("mcf_m").expect("pinned workload in catalog");
    let setup = SchemeSetup::fpb(cfg);
    let mut opts = SimOptions::with_instructions(INSTRUCTIONS);
    opts.reference_alloc = fresh_alloc;
    run_workload(&wl, cfg, &setup, &opts).to_json()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn pooled_and_fresh_runs_serialize_identically(
        seed in 0u64..10_000,
        inject_faults in any::<bool>(),
    ) {
        let mut cfg = SystemConfig {
            seed,
            ..SystemConfig::default()
        };
        if inject_faults {
            cfg.faults.verify_fail_prob = 0.2;
            cfg.faults.stuck_cell_prob = 0.01;
            cfg.faults.stuck_wear_threshold = 64;
            cfg.faults.brownout_period = 12_000;
            cfg.faults.brownout_duration = 2_000;
        }
        let pooled = run_json(&cfg, false);
        let fresh = run_json(&cfg, true);
        prop_assert_eq!(
            pooled,
            fresh,
            "pooled vs fresh JSON diverged (seed {}, faults {})",
            seed,
            inject_faults
        );
    }
}
