//! Token-conservation tests: drive many concurrent writes through the
//! power manager (as the simulator does) and prove budgets are never
//! exceeded and always fully restored.

use fpb::pcm::{CellMapping, ChangeSet, DimmGeometry, IterationSampler, LineWrite, MlcLevel};
use fpb::power::{PowerManager, PowerPolicyConfig, WriteId};
use fpb::trace::{DataClass, DataProfile};
use fpb::types::{MlcWriteModel, PowerConfig, SimRng, Tokens};

fn geom() -> DimmGeometry {
    DimmGeometry::new(8, 1024)
}

fn sampler() -> IterationSampler {
    IterationSampler::new(MlcWriteModel::default())
}

/// A toy concurrent scheduler: writes progress round-robin one iteration
/// at a time, exactly like banks would, stalling when the manager says so.
fn drive_concurrent(
    pm: &mut PowerManager,
    mut writes: Vec<LineWrite>,
    check: &mut impl FnMut(&PowerManager),
) {
    #[derive(PartialEq)]
    enum Phase {
        Pending,
        Running,
        Stalled,
    }
    let mut state: Vec<(WriteId, Option<LineWrite>, Phase)> = writes
        .drain(..)
        .enumerate()
        .map(|(i, w)| (WriteId::new(i as u64), Some(w), Phase::Pending))
        .collect();
    let mut progressed = true;
    while progressed {
        progressed = false;
        for (id, slot, phase) in state.iter_mut() {
            let Some(w) = slot.as_mut() else { continue };
            match phase {
                Phase::Pending => {
                    if pm.try_admit(*id, w) {
                        *phase = Phase::Running;
                        progressed = true;
                    }
                }
                Phase::Stalled => {
                    // A stalled write holds nothing and may not pulse; it
                    // must reacquire tokens before advancing.
                    assert!(!pm.holds_tokens(*id), "stalled write must hold nothing");
                    if pm.try_advance(*id, w) {
                        *phase = Phase::Running;
                        progressed = true;
                    }
                }
                Phase::Running => {
                    w.advance();
                    progressed = true;
                    if w.is_complete() {
                        pm.release(*id);
                        *slot = None;
                    } else if !pm.try_advance(*id, w) {
                        *phase = Phase::Stalled;
                    }
                }
            }
            check(pm);
        }
    }
    assert!(
        state.iter().all(|(_, s, _)| s.is_none()),
        "all writes must eventually complete"
    );
}

fn random_writes(n: usize, seed: u64, max_cells: u32) -> Vec<LineWrite> {
    let g = geom();
    let s = sampler();
    let mut rng = SimRng::seed_from(seed);
    let data = DataProfile::new(DataClass::Integer, 0.5);
    (0..n)
        .map(|_| {
            let mut cs = data.sample_change_set(256, &mut rng);
            if cs.len() as u32 > max_cells {
                cs = cs.iter().take(max_cells as usize).cloned().collect();
            }
            LineWrite::new(&cs, &g, CellMapping::Bim, &s, &mut rng, 1)
        })
        .collect()
}

#[test]
fn dimm_budget_never_exceeded_under_ipm() {
    let power = PowerConfig::default();
    let cfg = PowerPolicyConfig {
        ipm: true,
        ..PowerPolicyConfig::dimm_only(&power, 8)
    };
    let mut pm = PowerManager::new(cfg, &geom());
    let cap = Tokens::from_cells(560);
    drive_concurrent(&mut pm, random_writes(40, 11, 500), &mut |pm| {
        let avail = pm.ledger().dimm_available().expect("budgeted");
        assert!(avail <= cap, "ledger over capacity: {avail}");
    });
    assert_eq!(pm.ledger().dimm_available(), Some(cap), "budget restored");
}

#[test]
fn chip_budgets_never_exceeded_under_full_fpb() {
    let cfg = PowerPolicyConfig::fpb(&PowerConfig::default(), 8);
    let mut pm = PowerManager::new(cfg, &geom());
    let chip_cap = Tokens::from_millis(66_500);
    drive_concurrent(&mut pm, random_writes(60, 13, 500), &mut |pm| {
        for i in 0..8 {
            assert!(
                pm.ledger().chip_available(i) <= chip_cap,
                "chip {i} over capacity"
            );
        }
        if let Some(g) = pm.ledger().gcp_available() {
            assert!(g <= chip_cap, "GCP over capacity");
        }
    });
    for i in 0..8 {
        assert_eq!(pm.ledger().chip_available(i), chip_cap, "chip {i} restored");
    }
    assert_eq!(pm.ledger().gcp_available(), Some(chip_cap), "GCP restored");
}

#[test]
fn multi_reset_splits_are_bounded_and_complete() {
    // A tight budget forces Multi-RESET; the writes must still finish and
    // restore the ledger.
    let power = PowerConfig {
        pt_dimm: 120,
        ..PowerConfig::default()
    };
    let cfg = PowerPolicyConfig {
        ipm: true,
        multi_reset_splits: 3,
        ..PowerPolicyConfig::dimm_only(&power, 8)
    };
    let mut pm = PowerManager::new(cfg, &geom());
    drive_concurrent(&mut pm, random_writes(20, 17, 110), &mut |_| {});
    assert!(
        pm.stats().multi_reset_splits() > 0,
        "the tight budget must trigger Multi-RESET"
    );
    assert_eq!(
        pm.ledger().dimm_available(),
        Some(Tokens::from_cells(120))
    );
}

#[test]
fn gcp_accounting_balances_borrowed_power() {
    // Saturate one chip, push traffic through the GCP, and verify the
    // stats ledger agrees with the token ledger at every step.
    let cfg = PowerPolicyConfig::gcp_only(&PowerConfig::default(), 8);
    let mut pm = PowerManager::new(cfg, &geom());
    let g = geom();
    let s = sampler();
    let mut rng = SimRng::seed_from(23);

    // All cells on chip 0 under VIM (cell % 8 == 0).
    let hot: ChangeSet = (0..60u32).map(|i| (i * 8, MlcLevel::L10)).collect();
    let mut w1 = LineWrite::new(&hot, &g, CellMapping::Vim, &s, &mut rng, 1);
    let mut w2 = LineWrite::new(&hot, &g, CellMapping::Vim, &s, &mut rng, 1);
    assert!(pm.try_admit(WriteId::new(1), &mut w1));
    assert!(pm.try_admit(WriteId::new(2), &mut w2), "GCP must rescue");
    assert_eq!(pm.stats().gcp_grants(), 1);
    assert_eq!(pm.stats().gcp_usable_total(), Tokens::from_cells(60));
    // Waste = raw - usable = 60/0.7 - 60 ≈ 25.72 tokens.
    let waste = pm.stats().gcp_waste_total();
    assert!(
        waste > Tokens::from_cells(25) && waste < Tokens::from_cells(27),
        "waste = {waste}"
    );
    pm.release(WriteId::new(1));
    pm.release(WriteId::new(2));
    assert_eq!(
        pm.ledger().gcp_available(),
        Some(Tokens::from_millis(66_500))
    );
}

#[test]
fn write_cancellation_path_releases_tokens() {
    let cfg = PowerPolicyConfig::fpb(&PowerConfig::default(), 8);
    let mut pm = PowerManager::new(cfg, &geom());
    let mut writes = random_writes(5, 29, 300);
    for (i, w) in writes.iter_mut().enumerate() {
        let id = WriteId::new(i as u64);
        assert!(pm.try_admit(id, w));
        w.advance();
        // Cancel mid-flight (what WC does): release + restart.
        pm.release(id);
        w.restart();
        assert!(!pm.holds_tokens(id));
        assert_eq!(w.iterations_done(), 0);
    }
    assert_eq!(
        pm.ledger().dimm_available(),
        Some(Tokens::from_cells(560))
    );
}
