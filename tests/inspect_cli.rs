//! End-to-end tests of `fpb inspect` (spawned as a real process): the
//! acceptance path — break on the first brownout-degraded write of a
//! fault-injected run — plus record → replay byte-identity through the
//! on-disk log, torn-log handling, and the `--quiet` stderr contract.

use std::path::PathBuf;
use std::process::Command;

fn fpb() -> Command {
    Command::new(env!("CARGO_BIN_EXE_fpb"))
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("fpb-inspect-cli-tests");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let p = dir.join(format!("{}-{name}", std::process::id()));
    std::fs::remove_file(&p).ok();
    p
}

/// Run flags for a fault-injected run where brownouts last long enough
/// to push writes into degraded (SLC) mode.
const DEGRADING_RUN: [&str; 12] = [
    "--workload",
    "mcf_m",
    "--scheme",
    "fpb",
    "--instructions",
    "40000",
    "--fault-brownout-period",
    "20000",
    "--fault-brownout-duration",
    "12000",
    "--fault-degraded-after",
    "5000",
];

#[test]
fn break_halts_on_first_degraded_write() {
    let out = fpb()
        .args(["inspect", "--break", "degraded"])
        .args(DEGRADING_RUN)
        .output()
        .expect("spawn");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("break at event"), "no hit reported: {text}");
    assert!(
        text.contains("created in degraded (SLC) mode"),
        "wrong hit reason: {text}"
    );
    // The hit write's lineage follows the hit line.
    assert!(text.contains("write #"), "{text}");
}

#[test]
fn break_that_never_fires_exits_nonzero() {
    let out = fpb()
        .args([
            "inspect",
            "--break",
            "watchdog",
            "--workload",
            "mcf_m",
            "--instructions",
            "5000",
        ])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("never fired"), "stderr: {err}");
}

#[test]
fn record_then_replay_derives_identical_metrics() {
    let log = tmp("roundtrip.fpbi");
    let metrics = tmp("roundtrip-metrics.json");
    let out = fpb()
        .args(["inspect", "record", "--log"])
        .arg(&log)
        .args(DEGRADING_RUN)
        .output()
        .expect("spawn");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("recorded"));

    let out = fpb()
        .args(["inspect", "replay", "--require-complete", "--json", "--metrics-out"])
        .arg(&metrics)
        .arg("--log")
        .arg(&log)
        .output()
        .expect("spawn");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("derived metrics"), "{text}");

    // The derived JSON equals what the same run derives in process.
    let written = std::fs::read_to_string(&metrics).expect("metrics json");
    assert!(written.contains("\"schema\": \"fpb-metrics/v1\""), "{written}");
    assert!(text.contains(&written), "--json stdout must match --metrics-out");

    // Recording refuses to clobber an existing log.
    let out = fpb()
        .args(["inspect", "record", "--log"])
        .arg(&log)
        .args(DEGRADING_RUN)
        .output()
        .expect("spawn");
    assert!(!out.status.success(), "clobbered {}", log.display());

    std::fs::remove_file(&log).ok();
    std::fs::remove_file(&metrics).ok();
}

#[test]
fn torn_log_replays_prefix_unless_complete_required() {
    let log = tmp("torn.fpbi");
    let out = fpb()
        .args(["inspect", "record", "--log"])
        .arg(&log)
        .args(DEGRADING_RUN)
        .output()
        .expect("spawn");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    // Tear off the trailer and the last few events.
    let bytes = std::fs::read(&log).expect("read log");
    std::fs::write(&log, &bytes[..bytes.len() - 200]).expect("truncate");

    let out = fpb()
        .args(["inspect", "replay", "--require-complete", "--log"])
        .arg(&log)
        .output()
        .expect("spawn");
    assert!(!out.status.success(), "--require-complete must reject a torn log");
    assert!(String::from_utf8_lossy(&out.stderr).contains("incomplete"));

    let out = fpb()
        .args(["inspect", "replay", "--log"])
        .arg(&log)
        .output()
        .expect("spawn");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stderr).contains("truncated"));
    assert!(String::from_utf8_lossy(&out.stdout).contains("derived metrics"));

    std::fs::remove_file(&log).ok();
}

#[test]
fn quiet_suppresses_reuse_stats_line_only_when_asked() {
    // The reuse line only prints on the reuse path, so give the sweep a
    // throwaway cache rather than `--no-result-cache`.
    let cache = tmp("quiet-cache.v1");
    let loud = fpb()
        .args(["sweep", "--workload", "cop_m", "--instructions", "5000"])
        .args(["--axis", "pt-dimm=466,560", "--result-cache"])
        .arg(&cache)
        .output()
        .expect("spawn");
    assert!(loud.status.success(), "{}", String::from_utf8_lossy(&loud.stderr));
    assert!(
        String::from_utf8_lossy(&loud.stderr).contains("result reuse"),
        "default stderr must keep the reuse line (CI greps it): {}",
        String::from_utf8_lossy(&loud.stderr)
    );

    let quiet = fpb()
        .args(["sweep", "--workload", "cop_m", "--instructions", "5000"])
        .args(["--axis", "pt-dimm=466,560", "--quiet", "--result-cache"])
        .arg(&cache)
        .output()
        .expect("spawn");
    assert!(quiet.status.success(), "{}", String::from_utf8_lossy(&quiet.stderr));
    assert!(
        !String::from_utf8_lossy(&quiet.stderr).contains("result reuse"),
        "--quiet must drop the reuse line: {}",
        String::from_utf8_lossy(&quiet.stderr)
    );
    // Simulation output is unchanged.
    assert_eq!(loud.stdout, quiet.stdout);

    // `fpb run --quiet` is accepted too.
    let out = fpb()
        .args(["run", "--workload", "cop_m", "--instructions", "5000", "--quiet"])
        .output()
        .expect("spawn");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    std::fs::remove_file(&cache).ok();
}
