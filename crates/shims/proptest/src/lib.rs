//! A vendored, dependency-free stand-in for the `proptest` crate.
//!
//! This workspace builds in environments with no crates.io access, so the
//! real `proptest` cannot be fetched. This shim re-implements exactly the
//! API surface the workspace's property tests use — the `proptest!`,
//! `prop_compose!`, `prop_oneof!` and assertion macros, the [`Strategy`]
//! trait with `prop_map`/`prop_flat_map`, `Just`, integer/float range
//! strategies, tuples, `any::<T>()`, and `prop::collection::{vec,
//! btree_set}` — on top of a deterministic SplitMix64 generator.
//!
//! Differences from the real crate, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports its seed so it can be
//!   replayed, but is not minimized.
//! * **Deterministic cases.** Case seeds are derived from the test name,
//!   so runs are reproducible across machines and invocations (the real
//!   crate randomizes unless `PROPTEST_RNG_SEED` is set).
//! * `*.proptest-regressions` files are ignored.

use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    //! Case scheduling, configuration, and the deterministic RNG.

    /// Subset of `proptest::test_runner::Config` that the tests set.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` successful cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// An explicit failure from `prop_assert!`-family macros.
        Fail(String),
        /// The case was vetoed by `prop_assume!` and should be retried.
        Reject,
    }

    /// SplitMix64: tiny, full-period, plenty for test-case generation.
    #[derive(Debug, Clone)]
    pub struct TestRng(u64);

    impl TestRng {
        pub fn new(seed: u64) -> Self {
            TestRng(seed)
        }

        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, bound)`. `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            // Lemire's multiply-shift; the slight bias is irrelevant here.
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }

        pub fn usize_below(&mut self, bound: usize) -> usize {
            self.below(bound as u64) as usize
        }

        /// Uniform draw in `[0, 1)`.
        pub fn f64_unit(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Deterministic per-case seed: FNV-1a of the test name mixed with the
    /// attempt index. Stable across runs so failures are replayable.
    pub fn case_seed(test_name: &str, attempt: u32) -> u64 {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in test_name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
        }
        h ^ (attempt as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use super::test_runner::TestRng;

    /// A recipe for generating values of one type.
    ///
    /// Unlike the real crate there is no value tree: a strategy is just a
    /// sampling function, which is all non-shrinking generation needs.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, T, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        T: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T::Value;
        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.usize_below(self.arms.len());
            self.arms[i].generate(rng)
        }
    }

    /// Wraps a plain sampling closure as a strategy (`prop_compose!`).
    pub struct Generator<F>(F);

    impl<F> Generator<F> {
        pub fn new(f: F) -> Self {
            Generator(f)
        }
    }

    impl<T, F> Strategy for Generator<F>
    where
        F: Fn(&mut TestRng) -> T,
    {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))+) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+};
    }

    tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
    }
}

mod ranges {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use super::{Range, RangeInclusive};

    macro_rules! int_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty integer range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start + rng.below(span) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty integer range strategy");
                    let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                    if span == 0 {
                        // Full-width inclusive range.
                        return rng.next_u64() as $t;
                    }
                    lo + rng.below(span) as $t
                }
            }
        )+};
    }

    int_range_strategy!(u8, u16, u32, u64, usize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty float range strategy");
            let v = self.start + rng.f64_unit() * (self.end - self.start);
            // Guard against rounding up onto the excluded endpoint.
            if v >= self.end {
                self.start
            } else {
                v
            }
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` for the handful of types the tests ask for.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::marker::PhantomData;

    pub struct Any<T>(PhantomData<T>);

    /// The full-domain strategy for `T` (`any::<bool>()`, `any::<u64>()`).
    pub fn any<T>() -> Any<T> {
        Any(PhantomData)
    }

    impl Strategy for Any<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! any_int {
        ($($t:ty),+) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )+};
    }

    any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64);
}

pub mod collection {
    //! `prop::collection::{vec, btree_set}`.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use super::{Range, RangeInclusive};
    use std::collections::BTreeSet;

    /// Inclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            self.lo + rng.usize_below(self.hi - self.lo + 1)
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `n` independent draws of `element`, `n` sampled from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A set built from draws of `element`; duplicates collapse, so the
    /// result may be smaller than the sampled target (never below one when
    /// the minimum is at least one, matching how the tests rely on it).
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size: size.into() }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.sample(rng);
            let mut set = BTreeSet::new();
            // A few extra attempts to approach the target size despite
            // collisions; exactness is not part of the contract.
            let mut attempts = target.saturating_mul(2);
            while set.len() < target && attempts > 0 {
                set.insert(self.element.generate(rng));
                attempts -= 1;
            }
            set
        }
    }
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_compose, prop_oneof,
        proptest,
    };

    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr)
      $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*
    ) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut passed: u32 = 0;
            let mut attempt: u32 = 0;
            while passed < config.cases {
                attempt += 1;
                if attempt > config.cases.saturating_mul(16).saturating_add(64) {
                    panic!(
                        "proptest {}: too many cases rejected by prop_assume!",
                        stringify!($name)
                    );
                }
                let seed = $crate::test_runner::case_seed(stringify!($name), attempt);
                let mut prop_rng = $crate::test_runner::TestRng::new(seed);
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut prop_rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match outcome {
                    ::std::result::Result::Ok(()) => passed += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest {} failed at case {} (seed {:#018x}):\n{}",
                            stringify!($name),
                            passed,
                            seed,
                            msg
                        );
                    }
                }
            }
        }
    )*};
}

/// Defines a function returning a composite strategy.
#[macro_export]
macro_rules! prop_compose {
    ( $(#[$meta:meta])* $vis:vis fn $name:ident ( $($outer:ident: $oty:ty),* $(,)? )
      ( $($arg:ident in $strat:expr),+ $(,)? ) -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($outer: $oty),*) -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::Generator::new(
                move |prop_rng: &mut $crate::test_runner::TestRng| {
                    $(let $arg =
                        $crate::strategy::Strategy::generate(&($strat), prop_rng);)+
                    $body
                },
            )
        }
    };
}

/// Uniform choice between alternative strategies for one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Like `assert!` but fails the current case instead of unwinding, so the
/// harness can report the case seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `prop_assert!` specialized to equality, printing both operands.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: `{:?}` != `{:?}`",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(__l == __r, $($fmt)+);
    }};
}

/// `prop_assert!` specialized to inequality.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l != __r,
            "assertion failed: both sides equal `{:?}`",
            __l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(__l != __r, $($fmt)+);
    }};
}

/// Vetoes the current case; the harness draws a replacement.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod self_tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_runner::TestRng::new(7);
        for _ in 0..1000 {
            let v = (10u64..20).generate(&mut rng);
            assert!((10..20).contains(&v));
            let f = (0.25f64..0.75).generate(&mut rng);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn collections_respect_sizes() {
        let mut rng = crate::test_runner::TestRng::new(11);
        for _ in 0..200 {
            let v = prop::collection::vec(0u32..100, 3..6).generate(&mut rng);
            assert!((3..6).contains(&v.len()));
            let s = prop::collection::btree_set(0u32..1_000_000, 1..40).generate(&mut rng);
            assert!(!s.is_empty() && s.len() < 40);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_pipeline_works(
            a in 1u32..50,
            b in prop_oneof![Just(1u32), Just(2), Just(3)],
            flip in any::<bool>(),
        ) {
            prop_assume!(a != 13);
            prop_assert!(a >= 1 && a < 50);
            prop_assert_eq!(b.min(3), b);
            prop_assert_ne!(a + b, 0);
            let _ = flip;
        }
    }
}
