//! A vendored, dependency-free stand-in for the `criterion` crate.
//!
//! This workspace builds in environments with no crates.io access, so the
//! real `criterion` cannot be fetched. This shim provides the macros and
//! types the workspace's one criterion bench uses (`criterion_group!`,
//! `criterion_main!`, [`Criterion::bench_function`], [`Bencher::iter`])
//! and reports plain fixed-iteration wall-clock timings — no statistics,
//! warm-up sizing, or HTML reports.

use std::time::{Duration, Instant};

/// Entry point handed to each benchmark function by `criterion_group!`.
pub struct Criterion {
    iterations: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        // Overridable so CI can shrink benches to a smoke test.
        let iterations = std::env::var("CRITERION_SHIM_ITERS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(10_000);
        Criterion { iterations }
    }
}

impl Criterion {
    /// Times `routine` and prints a mean per-iteration figure.
    pub fn bench_function<F>(&mut self, id: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iterations: self.iterations,
            elapsed: Duration::ZERO,
        };
        routine(&mut b);
        let per_iter = b.elapsed.as_nanos() / u128::from(b.iterations.max(1));
        println!(
            "{id:<44} {per_iter:>10} ns/iter ({} iters, {:?} total)",
            b.iterations, b.elapsed
        );
        self
    }
}

/// Runs the measured routine a fixed number of times.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iterations {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Opaque value barrier, re-exported for parity with the real crate.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Bundles benchmark functions into one runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn bench_function_runs_routine() {
        std::env::set_var("CRITERION_SHIM_ITERS", "32");
        let mut c = crate::Criterion::default();
        let mut calls = 0u64;
        c.bench_function("shim/self", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 32);
    }
}
