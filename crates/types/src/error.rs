//! Error types shared across the workspace.

use std::error::Error;
use std::fmt;

/// An invalid configuration was supplied.
///
/// Returned by [`crate::SystemConfig::validate`] and by constructors that
/// take configuration fragments. The message identifies the offending field
/// and constraint.
///
/// # Examples
///
/// ```
/// use fpb_types::SystemConfig;
///
/// let mut cfg = SystemConfig::default();
/// cfg.pcm.chips = 0;
/// let err = cfg.validate().unwrap_err();
/// assert!(err.to_string().contains("chips"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    field: &'static str,
    reason: String,
}

impl ConfigError {
    /// Creates an error for `field` with a human-readable `reason`.
    pub fn new(field: &'static str, reason: impl Into<String>) -> Self {
        ConfigError {
            field,
            reason: reason.into(),
        }
    }

    /// The configuration field that failed validation.
    pub fn field(&self) -> &'static str {
        self.field
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid config `{}`: {}", self.field, self.reason)
    }
}

impl Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_field_and_reason() {
        let e = ConfigError::new("pcm.banks", "must be nonzero");
        assert_eq!(e.field(), "pcm.banks");
        let s = e.to_string();
        assert!(s.contains("pcm.banks") && s.contains("must be nonzero"));
    }

    #[test]
    fn is_std_error() {
        fn takes_err<E: Error + Send + Sync + 'static>(_: E) {}
        takes_err(ConfigError::new("x", "y"));
    }
}
