//! Error types shared across the workspace.

use std::error::Error;
use std::fmt;

/// An invalid configuration was supplied.
///
/// Returned by [`crate::SystemConfig::validate`] and by constructors that
/// take configuration fragments. The message identifies the offending field
/// and constraint.
///
/// # Examples
///
/// ```
/// use fpb_types::SystemConfig;
///
/// let mut cfg = SystemConfig::default();
/// cfg.pcm.chips = 0;
/// let err = cfg.validate().unwrap_err();
/// assert!(err.to_string().contains("chips"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    field: &'static str,
    reason: String,
}

impl ConfigError {
    /// Creates an error for `field` with a human-readable `reason`.
    pub fn new(field: &'static str, reason: impl Into<String>) -> Self {
        ConfigError {
            field,
            reason: reason.into(),
        }
    }

    /// The configuration field that failed validation.
    pub fn field(&self) -> &'static str {
        self.field
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid config `{}`: {}", self.field, self.reason)
    }
}

impl Error for ConfigError {}

/// Which accounting domain of the token ledger an error concerns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LedgerDomain {
    /// The DIMM-level raw budget.
    Dimm,
    /// One chip's local-charge-pump budget.
    Chip(usize),
    /// The global charge pump.
    Gcp,
}

impl fmt::Display for LedgerDomain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            LedgerDomain::Dimm => f.write_str("DIMM"),
            LedgerDomain::Chip(i) => write!(f, "chip {i}"),
            LedgerDomain::Gcp => f.write_str("GCP"),
        }
    }
}

/// A token-accounting violation detected by the ledger or its auditor.
///
/// The ledger's conservation contract is exact: every released [`Grant`]
/// must return precisely what was deducted, and no budget may go negative
/// or exceed its capacity. All quantities are reported in millitokens (the
/// ledger's fixed-point unit).
///
/// [`Grant`]: https://docs.rs/fpb-core
///
/// # Examples
///
/// ```
/// use fpb_types::{LedgerDomain, LedgerError};
///
/// let e = LedgerError::OverRelease {
///     domain: LedgerDomain::Chip(3),
///     released_millis: 70_000,
///     headroom_millis: 1_500,
/// };
/// assert!(e.to_string().contains("chip 3"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LedgerError {
    /// A release would push a budget above its capacity: more tokens came
    /// back than are outstanding.
    OverRelease {
        /// Domain whose budget would overflow.
        domain: LedgerDomain,
        /// Millitokens the release tried to return.
        released_millis: u64,
        /// Millitokens of headroom the budget actually had.
        headroom_millis: u64,
    },
    /// An audit found a budget that does not equal capacity minus the sum
    /// of outstanding grants.
    Unbalanced {
        /// Domain whose books do not balance.
        domain: LedgerDomain,
        /// Millitokens the domain should have available.
        expected_millis: u64,
        /// Millitokens it actually has available.
        actual_millis: u64,
    },
}

impl fmt::Display for LedgerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LedgerError::OverRelease {
                domain,
                released_millis,
                headroom_millis,
            } => write!(
                f,
                "ledger over-release on {domain}: returned {released_millis} \
                 millitokens into {headroom_millis} millitokens of headroom"
            ),
            LedgerError::Unbalanced {
                domain,
                expected_millis,
                actual_millis,
            } => write!(
                f,
                "ledger unbalanced on {domain}: expected {expected_millis} \
                 millitokens available, found {actual_millis}"
            ),
        }
    }
}

impl Error for LedgerError {}

/// A failure of the simulation engine itself (as opposed to a modeled
/// device fault, which the engine is expected to absorb).
///
/// # Examples
///
/// ```
/// use fpb_types::{ConfigError, SimError};
///
/// let e = SimError::from(ConfigError::new("power.pt_dimm", "must be nonzero"));
/// assert!(e.to_string().contains("pt_dimm"));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The scheduler found no runnable work and no future event: the
    /// simulated system can make no further progress.
    Deadlock {
        /// Cycle at which progress stopped.
        cycle: u64,
        /// Writes still queued at the controller.
        pending_writes: usize,
        /// Reads still queued at the controller.
        pending_reads: usize,
    },
    /// Token accounting was violated (see [`LedgerError`]).
    Ledger(LedgerError),
    /// The run was given an invalid configuration.
    Config(ConfigError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock {
                cycle,
                pending_writes,
                pending_reads,
            } => write!(
                f,
                "scheduling deadlock at cycle {cycle}: no future event while \
                 {pending_writes} write(s) and {pending_reads} read(s) are queued"
            ),
            SimError::Ledger(e) => write!(f, "power-token accounting error: {e}"),
            SimError::Config(e) => e.fmt(f),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Ledger(e) => Some(e),
            SimError::Config(e) => Some(e),
            SimError::Deadlock { .. } => None,
        }
    }
}

impl From<LedgerError> for SimError {
    fn from(e: LedgerError) -> Self {
        SimError::Ledger(e)
    }
}

impl From<ConfigError> for SimError {
    fn from(e: ConfigError) -> Self {
        SimError::Config(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_field_and_reason() {
        let e = ConfigError::new("pcm.banks", "must be nonzero");
        assert_eq!(e.field(), "pcm.banks");
        let s = e.to_string();
        assert!(s.contains("pcm.banks") && s.contains("must be nonzero"));
    }

    #[test]
    fn is_std_error() {
        fn takes_err<E: Error + Send + Sync + 'static>(_: E) {}
        takes_err(ConfigError::new("x", "y"));
        takes_err(LedgerError::Unbalanced {
            domain: LedgerDomain::Gcp,
            expected_millis: 1,
            actual_millis: 0,
        });
        takes_err(SimError::Deadlock {
            cycle: 9,
            pending_writes: 1,
            pending_reads: 0,
        });
    }

    #[test]
    fn sim_error_display_and_source() {
        let dl = SimError::Deadlock {
            cycle: 1234,
            pending_writes: 3,
            pending_reads: 1,
        };
        let s = dl.to_string();
        assert!(s.contains("1234") && s.contains("3 write(s)"));
        assert!(dl.source().is_none());

        let le = LedgerError::Unbalanced {
            domain: LedgerDomain::Dimm,
            expected_millis: 560_000,
            actual_millis: 559_000,
        };
        let se = SimError::from(le.clone());
        assert!(se.to_string().contains("DIMM"));
        assert!(se.source().is_some());
        assert_eq!(se, SimError::Ledger(le));
    }
}
