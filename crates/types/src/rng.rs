//! Deterministic pseudo-random number generation.
//!
//! Every stochastic model in the simulator (trace generation, MLC write
//! iteration counts, wear-leveling offsets) draws from a [`SimRng`] seeded
//! from the experiment configuration, so a given configuration always
//! produces bit-identical results. The generator is xoshiro256++ seeded via
//! SplitMix64 — fast, statistically strong for simulation purposes, and
//! entirely self-contained so results cannot drift with a dependency bump.

/// A seedable, forkable PRNG for simulation.
///
/// # Examples
///
/// ```
/// use fpb_types::SimRng;
///
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // deterministic
///
/// // Independent stream for a subcomponent:
/// let mut trace_rng = a.fork(7);
/// let x = trace_rng.f64();
/// assert!((0.0..1.0).contains(&x));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
    /// Cached second output of the Box–Muller transform.
    gauss_spare: Option<u64>,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng {
            s,
            gauss_spare: None,
        }
    }

    /// Derives an independent generator for a labeled substream.
    ///
    /// Forking with distinct `stream` values from the same parent yields
    /// streams that do not overlap in practice, letting each core / chip /
    /// model own its own RNG while the whole simulation stays reproducible.
    pub fn fork(&mut self, stream: u64) -> SimRng {
        let base = self.next_u64();
        SimRng::seed_from(base ^ stream.wrapping_mul(0xA24B_AED4_963E_E407))
    }

    /// Next raw 64-bit output (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform integer in `[0, bound)` via Lemire's method.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn u64_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be nonzero");
        // Widening multiply rejection sampling (unbiased).
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let low = m as u64;
            if low >= bound || low >= low.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform `usize` in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn usize_below(&mut self, bound: usize) -> usize {
        self.u64_below(bound as u64) as usize
    }

    /// Uniform integer in `[lo, hi)` .
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + self.u64_below(hi - lo)
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn bernoulli(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.f64() < p
        }
    }

    /// Standard normal sample (Box–Muller, cached pair).
    pub fn gaussian(&mut self) -> f64 {
        if let Some(bits) = self.gauss_spare.take() {
            return f64::from_bits(bits);
        }
        // Draw until u1 is nonzero so ln() is finite.
        let mut u1 = self.f64();
        while u1 <= f64::MIN_POSITIVE {
            u1 = self.f64();
        }
        let u2 = self.f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.gauss_spare = Some(f64::to_bits(r * theta.sin()));
        r * theta.cos()
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn gaussian_with(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.gaussian()
    }

    /// Geometric-ish sample: number of Bernoulli(p) trials up to and
    /// including the first success, clamped to `max`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `(0, 1]` or `max` is zero.
    pub fn geometric_clamped(&mut self, p: f64, max: u32) -> u32 {
        assert!(p > 0.0 && p <= 1.0, "p must be in (0, 1]");
        assert!(max > 0, "max must be nonzero");
        let mut n = 1;
        while n < max && !self.bernoulli(p) {
            n += 1;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = SimRng::seed_from(123);
        let mut b = SimRng::seed_from(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn forked_streams_are_independent() {
        let mut parent = SimRng::seed_from(7);
        let mut c1 = parent.fork(1);
        let mut c2 = parent.fork(2);
        let same = (0..32).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn bounded_draws_stay_in_bounds() {
        let mut rng = SimRng::seed_from(99);
        for _ in 0..10_000 {
            assert!(rng.u64_below(7) < 7);
            let x = rng.range_u64(10, 20);
            assert!((10..20).contains(&x));
            let f = rng.f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn uniformity_rough_check() {
        let mut rng = SimRng::seed_from(5);
        let mut buckets = [0u32; 8];
        for _ in 0..80_000 {
            buckets[rng.usize_below(8)] += 1;
        }
        for b in buckets {
            // Expected 10_000 per bucket; allow 5% deviation.
            assert!((9_500..10_500).contains(&b), "bucket count {b}");
        }
    }

    #[test]
    fn bernoulli_matches_probability() {
        let mut rng = SimRng::seed_from(11);
        let hits = (0..100_000).filter(|_| rng.bernoulli(0.3)).count();
        assert!((28_000..32_000).contains(&hits), "hits = {hits}");
        assert!(!rng.bernoulli(0.0));
        assert!(rng.bernoulli(1.0));
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = SimRng::seed_from(13);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.gaussian()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.05, "var = {var}");
    }

    #[test]
    fn geometric_clamped_mean_and_bounds() {
        let mut rng = SimRng::seed_from(17);
        let n = 50_000;
        let sum: u64 = (0..n)
            .map(|_| rng.geometric_clamped(0.5, 100) as u64)
            .sum();
        let mean = sum as f64 / n as f64;
        assert!((1.9..2.1).contains(&mean), "mean = {mean}");
        for _ in 0..1000 {
            assert!(rng.geometric_clamped(0.01, 5) <= 5);
        }
    }
}
