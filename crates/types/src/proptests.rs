//! Property-based tests for the foundation types.

use proptest::prelude::*;

use crate::config::SystemConfig;
use crate::power::Tokens;
use crate::rng::SimRng;
use crate::time::Cycles;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Token add/sub round-trips exactly (fixed point has no drift).
    #[test]
    fn tokens_add_sub_roundtrip(a in 0u64..10_000_000, b in 0u64..10_000_000) {
        let ta = Tokens::from_millis(a);
        let tb = Tokens::from_millis(b);
        prop_assert_eq!((ta + tb) - tb, ta);
        prop_assert_eq!((ta + tb).saturating_sub(ta), tb);
        prop_assert_eq!(ta.checked_sub(ta + tb + Tokens::from_millis(1)), None);
    }

    /// div_ratio times ratio never loses tokens (conservative ceil).
    #[test]
    fn div_ratio_is_conservative(cells in 0u64..100_000, ratio in 1u64..10) {
        let t = Tokens::from_cells(cells);
        let part = t.div_ratio(ratio);
        let mut back = Tokens::ZERO;
        for _ in 0..ratio {
            back += part;
        }
        prop_assert!(back >= t);
    }

    /// Cycle arithmetic is order-preserving.
    #[test]
    fn cycles_ordering(a in 0u64..1_000_000, b in 0u64..1_000_000, d in 1u64..1000) {
        let ca = Cycles::new(a);
        let cb = Cycles::new(b);
        prop_assert_eq!(ca < cb, a < b);
        prop_assert!(ca + Cycles::new(d) > ca);
        prop_assert_eq!(ca.max(cb).get(), a.max(b));
    }

    /// Range draws are uniform-ish and in bounds for arbitrary bounds.
    #[test]
    fn rng_bounds(seed in any::<u64>(), bound in 1u64..1_000_000) {
        let mut rng = SimRng::seed_from(seed);
        for _ in 0..50 {
            prop_assert!(rng.u64_below(bound) < bound);
        }
    }

    /// Every config produced by the sweep helpers on the baseline stays
    /// valid.
    #[test]
    fn sweep_helpers_preserve_validity(
        line_idx in 0usize..3,
        llc in prop_oneof![Just(8u32), Just(16), Just(32), Just(128)],
        wq in prop_oneof![Just(24usize), Just(48), Just(96), Just(320)],
        pt in 100u64..2000,
        eff in 0.05f64..1.0f64,
        seed in any::<u64>(),
    ) {
        let line = [64u32, 128, 256][line_idx];
        let cfg = SystemConfig::default()
            .with_line_bytes(line)
            .with_llc_mib(llc)
            .with_write_queue(wq)
            .with_pt_dimm(pt)
            .with_gcp_efficiency(eff)
            .with_seed(seed);
        prop_assert!(cfg.validate().is_ok(), "{:?}", cfg.validate());
    }
}
