//! Shared foundation types for the FPB MLC-PCM simulator.
//!
//! This crate holds the vocabulary every other crate speaks:
//!
//! * [`Cycles`] — simulation time in CPU cycles (4 GHz per Table 1 of the
//!   paper).
//! * [`LineAddr`], [`CoreId`], [`BankId`], [`ChipId`] — address/identity
//!   newtypes that make it impossible to confuse a bank with a chip.
//! * [`Tokens`] — fixed-point power tokens (1 token = the RESET power of one
//!   MLC cell; SET pulses consume fractional tokens).
//! * [`config`] — the baseline system configuration (Table 1) plus every
//!   knob the paper's design-space exploration turns.
//! * [`rng`] — a deterministic, seedable, forkable PRNG so every experiment
//!   is exactly reproducible.
//!
//! # Examples
//!
//! ```
//! use fpb_types::{Cycles, Tokens};
//!
//! let reset = Cycles::new(500);
//! let set = Cycles::new(1000);
//! assert_eq!(reset + set, Cycles::new(1500));
//!
//! // A RESET on 50 cells costs 50 tokens; the following SET costs half.
//! let reset_cost = Tokens::from_cells(50);
//! let set_cost = reset_cost.div_ratio(2);
//! assert_eq!(set_cost, Tokens::from_cells(25));
//! ```

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod config;
pub mod error;
pub mod ids;
pub mod power;
pub mod rng;
pub mod time;

#[cfg(test)]
mod proptests;

pub use config::{
    CacheHierarchyConfig, FaultConfig, MlcLevelModel, MlcWriteModel, PcmConfig, PowerConfig,
    QueueConfig, SystemConfig,
};
pub use error::{ConfigError, LedgerDomain, LedgerError, SimError};
pub use ids::{BankId, ChipId, CoreId, LineAddr};
pub use power::Tokens;
pub use rng::SimRng;
pub use time::Cycles;
