//! Identity and address newtypes.

use std::fmt;

/// A physical memory line address, in units of the PCM line size.
///
/// The simulator never deals in byte addresses below the cache hierarchy:
/// once a request reaches the memory controller it is a whole-line read or
/// write, so a `LineAddr` of `n` denotes the `n`-th line of main memory.
///
/// # Examples
///
/// ```
/// use fpb_types::LineAddr;
///
/// let a = LineAddr::new(42);
/// assert_eq!(a.get(), 42);
/// // With 8 banks, line 42 lives in bank 2 under modulo interleaving.
/// assert_eq!(a.bank_of(8).get(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(u64);

impl LineAddr {
    /// Creates a line address.
    pub const fn new(n: u64) -> Self {
        LineAddr(n)
    }

    /// Returns the raw line index.
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Bank this line maps to under modulo interleaving across `banks` banks.
    ///
    /// # Panics
    ///
    /// Panics if `banks` is zero.
    pub fn bank_of(self, banks: u8) -> BankId {
        assert!(banks > 0, "bank count must be nonzero");
        BankId((self.0 % banks as u64) as u8)
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line:{:#x}", self.0)
    }
}

impl From<u64> for LineAddr {
    fn from(n: u64) -> Self {
        LineAddr(n)
    }
}

macro_rules! small_id {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub(crate) u8);

        impl $name {
            /// Creates the id.
            pub const fn new(n: u8) -> Self {
                $name(n)
            }

            /// Returns the raw index.
            pub const fn get(self) -> u8 {
                self.0
            }

            /// Returns the raw index widened to `usize` for array indexing.
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}{}", stringify!($name), self.0)
            }
        }

        impl From<u8> for $name {
            fn from(n: u8) -> Self {
                $name(n)
            }
        }
    };
}

small_id! {
    /// One of the CMP's cores (8 in the baseline).
    ///
    /// ```
    /// use fpb_types::CoreId;
    /// assert_eq!(CoreId::new(3).index(), 3);
    /// ```
    CoreId
}

small_id! {
    /// One of the DIMM's logical banks (8 in the baseline, each striped
    /// across all chips).
    ///
    /// ```
    /// use fpb_types::BankId;
    /// assert_eq!(BankId::new(7).get(), 7);
    /// ```
    BankId
}

small_id! {
    /// One of the DIMM's PCM chips (8 in the baseline).
    ///
    /// ```
    /// use fpb_types::ChipId;
    /// assert_eq!(ChipId::new(0), ChipId::default());
    /// ```
    ChipId
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_addr_bank_mapping() {
        for n in 0..64u64 {
            assert_eq!(LineAddr::new(n).bank_of(8).get() as u64, n % 8);
        }
    }

    #[test]
    #[should_panic(expected = "bank count must be nonzero")]
    fn zero_banks_panics() {
        let _ = LineAddr::new(1).bank_of(0);
    }

    #[test]
    fn ids_roundtrip() {
        assert_eq!(CoreId::from(5).get(), 5);
        assert_eq!(BankId::new(2).index(), 2);
        assert_eq!(ChipId::new(9).get(), 9);
    }

    #[test]
    fn display_non_empty() {
        assert_eq!(format!("{}", ChipId::new(1)), "ChipId1");
        assert_eq!(format!("{}", LineAddr::new(16)), "line:0x10");
    }
}
