//! Fixed-point power tokens.
//!
//! The paper's budgeting schemes are *token driven*: "Each token represents
//! the power for a single cell RESET" (§3). SET pulses need a fraction of a
//! token (half, in the paper's running example), and the global charge pump
//! converts tokens at efficiencies like 0.7, so tokens must support exact
//! fractional arithmetic. Floating point would accumulate rounding error in
//! a ledger that is incremented and decremented millions of times, so
//! [`Tokens`] is fixed point with a resolution of 1/1000 token.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// Resolution of the fixed-point representation: 1 token = 1000 units.
const SCALE: u64 = 1000;

/// A quantity of write-power tokens (fixed point, millitoken resolution).
///
/// One whole token is the power required to RESET one MLC cell. The DIMM
/// budget in the baseline is 560 tokens (§2.1.2).
///
/// # Examples
///
/// ```
/// use fpb_types::Tokens;
///
/// let budget = Tokens::from_cells(560);
/// let reset = Tokens::from_cells(50);
/// let set = reset.div_ratio(2); // SET power = RESET / 2
/// assert_eq!(set, Tokens::from_cells(25));
/// assert!(budget.checked_sub(reset).is_some());
/// assert_eq!(budget - reset - set, Tokens::from_cells(485));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Tokens(u64);

impl Tokens {
    /// No tokens.
    pub const ZERO: Tokens = Tokens(0);

    /// Tokens required to RESET `cells` cells (1 token per cell).
    pub const fn from_cells(cells: u64) -> Self {
        Tokens(cells * SCALE)
    }

    /// Constructs from raw millitokens. Prefer [`Tokens::from_cells`] or the
    /// arithmetic helpers; this exists for serialization and tests.
    pub const fn from_millis(millis: u64) -> Self {
        Tokens(millis)
    }

    /// Raw millitoken count.
    pub const fn millis(self) -> u64 {
        self.0
    }

    /// Value as whole tokens, rounded toward zero.
    pub const fn whole(self) -> u64 {
        self.0 / SCALE
    }

    /// Value as whole tokens, rounded up. Area-overhead estimates (Table 3)
    /// round charge-pump sizes up to whole cell-RESET units.
    pub const fn whole_ceil(self) -> u64 {
        self.0.div_ceil(SCALE)
    }

    /// Value as an `f64` token count (for reporting only).
    pub fn as_f64(self) -> f64 {
        self.0 as f64 / SCALE as f64
    }

    /// Divides by an integer ratio, rounding up (a SET on `n` cells with
    /// C = RESET/SET power ratio needs `ceil(n/C)` tokens — rounding up keeps
    /// the ledger conservative so budgets are never exceeded).
    ///
    /// # Panics
    ///
    /// Panics if `ratio` is zero.
    pub fn div_ratio(self, ratio: u64) -> Tokens {
        assert!(ratio > 0, "token ratio must be nonzero");
        Tokens(self.0.div_ceil(ratio))
    }

    /// Scales by an efficiency factor in `(0, 1]`, rounding down — converting
    /// borrowed raw power into usable GCP output must never overstate the
    /// deliverable power.
    ///
    /// # Panics
    ///
    /// Panics if `eff` is not in `(0.0, 1.0]`.
    pub fn scale_down(self, eff: f64) -> Tokens {
        assert!(eff > 0.0 && eff <= 1.0, "efficiency must be in (0, 1]");
        Tokens((self.0 as f64 * eff).floor() as u64)
    }

    /// Divides by an efficiency factor in `(0, 1]`, rounding up — computing
    /// the raw power that must be drawn to deliver this many usable tokens
    /// must never understate the draw.
    ///
    /// # Panics
    ///
    /// Panics if `eff` is not in `(0.0, 1.0]`.
    pub fn scale_up(self, eff: f64) -> Tokens {
        assert!(eff > 0.0 && eff <= 1.0, "efficiency must be in (0, 1]");
        Tokens((self.0 as f64 / eff).ceil() as u64)
    }

    /// `self - other`, or `None` if it would underflow. Ledgers use this to
    /// test-and-take in one step.
    pub fn checked_sub(self, other: Tokens) -> Option<Tokens> {
        self.0.checked_sub(other.0).map(Tokens)
    }

    /// `self - other`, clamped at zero.
    pub fn saturating_sub(self, other: Tokens) -> Tokens {
        Tokens(self.0.saturating_sub(other.0))
    }

    /// The smaller of two quantities.
    pub fn min(self, other: Tokens) -> Tokens {
        Tokens(self.0.min(other.0))
    }

    /// The larger of two quantities.
    pub fn max(self, other: Tokens) -> Tokens {
        Tokens(self.0.max(other.0))
    }

    /// True if this is exactly zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add for Tokens {
    type Output = Tokens;
    fn add(self, rhs: Tokens) -> Tokens {
        Tokens(self.0 + rhs.0)
    }
}

impl AddAssign for Tokens {
    fn add_assign(&mut self, rhs: Tokens) {
        self.0 += rhs.0;
    }
}

impl Sub for Tokens {
    type Output = Tokens;
    /// # Panics
    ///
    /// Panics if `rhs > self`; ledgers that may legitimately underflow should
    /// use [`Tokens::checked_sub`].
    fn sub(self, rhs: Tokens) -> Tokens {
        Tokens(self.0 - rhs.0)
    }
}

impl SubAssign for Tokens {
    fn sub_assign(&mut self, rhs: Tokens) {
        self.0 -= rhs.0;
    }
}

impl Sum for Tokens {
    fn sum<I: Iterator<Item = Tokens>>(iter: I) -> Tokens {
        Tokens(iter.map(|t| t.0).sum())
    }
}

impl fmt::Display for Tokens {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_multiple_of(SCALE) {
            write!(f, "{} tok", self.0 / SCALE)
        } else {
            write!(f, "{:.3} tok", self.as_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cells_roundtrip() {
        let t = Tokens::from_cells(560);
        assert_eq!(t.whole(), 560);
        assert_eq!(t.millis(), 560_000);
        assert!(!t.is_zero());
        assert!(Tokens::ZERO.is_zero());
    }

    #[test]
    fn set_cost_is_half_reset() {
        // Paper §3 example: SET power is half of RESET power, so a SET on 6
        // cells costs 3 tokens.
        assert_eq!(Tokens::from_cells(6).div_ratio(2), Tokens::from_cells(3));
        // Odd counts round up: 7 cells -> 3.5 tokens.
        assert_eq!(Tokens::from_cells(7).div_ratio(2).millis(), 3500);
    }

    #[test]
    fn efficiency_rounding_is_conservative() {
        let usable = Tokens::from_cells(28);
        // Table 3: GCP-BIM-0.70 -> 28 / 0.7 = 40 raw tokens.
        assert_eq!(usable.scale_up(0.70).whole_ceil(), 40);
        // Raw->usable never overstates: floor.
        let raw = Tokens::from_cells(10);
        assert!(raw.scale_down(0.7) <= raw);
        assert_eq!(raw.scale_down(1.0), raw);
    }

    #[test]
    fn scale_roundtrip_never_gains_power() {
        for cells in [1u64, 3, 17, 560] {
            for eff in [0.3, 0.5, 0.7, 0.95] {
                let t = Tokens::from_cells(cells);
                // Converting raw->usable->raw must need at least the original.
                assert!(t.scale_down(eff).scale_up(eff) <= t + Tokens::from_millis(1));
                // usable->raw->usable must deliver at least the original.
                assert!(t.scale_up(eff).scale_down(eff) >= t.saturating_sub(Tokens::from_millis(1)));
            }
        }
    }

    #[test]
    fn checked_and_saturating() {
        let a = Tokens::from_cells(5);
        let b = Tokens::from_cells(7);
        assert_eq!(a.checked_sub(b), None);
        assert_eq!(b.checked_sub(a), Some(Tokens::from_cells(2)));
        assert_eq!(a.saturating_sub(b), Tokens::ZERO);
    }

    #[test]
    #[should_panic(expected = "efficiency must be in (0, 1]")]
    fn bad_efficiency_panics() {
        let _ = Tokens::from_cells(1).scale_up(0.0);
    }

    #[test]
    fn display_forms() {
        assert_eq!(format!("{}", Tokens::from_cells(5)), "5 tok");
        assert_eq!(format!("{}", Tokens::from_millis(2500)), "2.500 tok");
    }

    #[test]
    fn sum_min_max() {
        let total: Tokens = [1u64, 2, 3].into_iter().map(Tokens::from_cells).sum();
        assert_eq!(total, Tokens::from_cells(6));
        assert_eq!(
            Tokens::from_cells(2).max(Tokens::from_cells(9)),
            Tokens::from_cells(9)
        );
        assert_eq!(
            Tokens::from_cells(2).min(Tokens::from_cells(9)),
            Tokens::from_cells(2)
        );
    }
}
