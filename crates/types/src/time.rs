//! Simulation time measured in CPU cycles.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Sub, SubAssign};

/// A duration or point in time, in CPU cycles.
///
/// The baseline CPU runs at 4 GHz (Table 1), so 1 cycle = 0.25 ns. All
/// latencies in the simulator are expressed in this unit: an MLC read is
/// 1000 cycles, a RESET pulse 500 cycles, a SET pulse 1000 cycles.
///
/// # Examples
///
/// ```
/// use fpb_types::Cycles;
///
/// let t = Cycles::new(500) + Cycles::new(1000) * 3;
/// assert_eq!(t.get(), 3500);
/// assert_eq!(t.as_nanos_at_4ghz(), 875.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycles(u64);

impl Cycles {
    /// Zero cycles.
    pub const ZERO: Cycles = Cycles(0);
    /// The largest representable time; used as "never" by schedulers.
    pub const MAX: Cycles = Cycles(u64::MAX);

    /// Creates a duration of `n` cycles.
    pub const fn new(n: u64) -> Self {
        Cycles(n)
    }

    /// Returns the raw cycle count.
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Returns `self - other`, or [`Cycles::ZERO`] if `other` is later.
    pub fn saturating_sub(self, other: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(other.0))
    }

    /// Returns the later of two times.
    pub fn max(self, other: Cycles) -> Cycles {
        Cycles(self.0.max(other.0))
    }

    /// Returns the earlier of two times.
    pub fn min(self, other: Cycles) -> Cycles {
        Cycles(self.0.min(other.0))
    }

    /// Converts to nanoseconds assuming the baseline 4 GHz clock.
    pub fn as_nanos_at_4ghz(self) -> f64 {
        self.0 as f64 * 0.25
    }
}

impl Add for Cycles {
    type Output = Cycles;
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycles {
    type Output = Cycles;
    /// # Panics
    ///
    /// Panics in debug builds if `rhs > self` (time underflow).
    fn sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 - rhs.0)
    }
}

impl SubAssign for Cycles {
    fn sub_assign(&mut self, rhs: Cycles) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Cycles {
    type Output = Cycles;
    fn mul(self, rhs: u64) -> Cycles {
        Cycles(self.0 * rhs)
    }
}

impl Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Cycles {
        Cycles(iter.map(|c| c.0).sum())
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cy", self.0)
    }
}

impl From<u64> for Cycles {
    fn from(n: u64) -> Self {
        Cycles(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Cycles::new(100);
        let b = Cycles::new(40);
        assert_eq!(a + b, Cycles::new(140));
        assert_eq!(a - b, Cycles::new(60));
        assert_eq!(a * 3, Cycles::new(300));
        assert_eq!(b.saturating_sub(a), Cycles::ZERO);
        assert_eq!(a.saturating_sub(b), Cycles::new(60));
    }

    #[test]
    fn ordering_and_extremes() {
        assert!(Cycles::ZERO < Cycles::new(1));
        assert!(Cycles::new(1) < Cycles::MAX);
        assert_eq!(Cycles::new(5).max(Cycles::new(9)), Cycles::new(9));
        assert_eq!(Cycles::new(5).min(Cycles::new(9)), Cycles::new(5));
    }

    #[test]
    fn sum_and_display() {
        let total: Cycles = [1u64, 2, 3].into_iter().map(Cycles::new).sum();
        assert_eq!(total, Cycles::new(6));
        assert_eq!(format!("{total}"), "6 cy");
    }

    #[test]
    fn nanos_conversion_matches_table1() {
        // MLC read: 250 ns = 1000 cycles at 4 GHz.
        assert_eq!(Cycles::new(1000).as_nanos_at_4ghz(), 250.0);
        // RESET: 125 ns = 500 cycles.
        assert_eq!(Cycles::new(500).as_nanos_at_4ghz(), 125.0);
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(Cycles::default(), Cycles::ZERO);
    }
}
