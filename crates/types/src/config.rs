//! System configuration: the paper's Table 1 baseline plus every knob the
//! design-space exploration (§6.4) turns.

use crate::error::ConfigError;

/// Complete configuration of the simulated system.
///
/// [`SystemConfig::default`] reproduces Table 1 of the paper: an 8-core
/// 4 GHz in-order CMP with private L1/L2, a 32 MB/core DRAM L3 with 256 B
/// lines, a 4 GB MLC PCM DIMM with 8 banks striped over 8 chips, 24-entry
/// read/write queues, and a 560-token DIMM power budget.
///
/// # Examples
///
/// ```
/// use fpb_types::SystemConfig;
///
/// let cfg = SystemConfig::default();
/// cfg.validate().expect("baseline must be valid");
/// assert_eq!(cfg.cores, 8);
/// assert_eq!(cfg.pcm.line_bytes, 256);
/// assert_eq!(cfg.pcm.cells_per_line(), 1024); // 256 B × 8 bit ÷ 2 bit/cell
/// assert_eq!(cfg.power.pt_dimm, 560);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    /// Number of CPU cores (each in-order, single-issue, 1 instr/cycle).
    pub cores: u8,
    /// Master RNG seed; every stochastic component forks from it.
    pub seed: u64,
    /// Cache hierarchy parameters.
    pub cache: CacheHierarchyConfig,
    /// Memory-controller queue parameters.
    pub queues: QueueConfig,
    /// PCM device parameters.
    pub pcm: PcmConfig,
    /// Power-budget parameters.
    pub power: PowerConfig,
    /// Fault-injection and recovery parameters (all injection knobs zero in
    /// the baseline, so the fault paths are completely inert by default).
    pub faults: FaultConfig,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            cores: 8,
            seed: 0xF9B_2012,
            cache: CacheHierarchyConfig::default(),
            queues: QueueConfig::default(),
            pcm: PcmConfig::default(),
            power: PowerConfig::default(),
            faults: FaultConfig::default(),
        }
    }
}

impl SystemConfig {
    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] naming the first offending field. Notable
    /// constraints: nonzero structural counts, power-of-two line sizes, the
    /// PCM line size must equal the L3 line size (the L3 is the write-back
    /// client of PCM), and cells per line must be divisible by the chip
    /// count so lines stripe evenly.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.cores == 0 {
            return Err(ConfigError::new("cores", "must be nonzero"));
        }
        self.cache.validate()?;
        self.queues.validate()?;
        self.pcm.validate()?;
        self.power.validate()?;
        self.faults.validate()?;
        if self.pcm.line_bytes != self.cache.l3_line_bytes {
            return Err(ConfigError::new(
                "pcm.line_bytes",
                format!(
                    "must equal L3 line size ({} != {})",
                    self.pcm.line_bytes, self.cache.l3_line_bytes
                ),
            ));
        }
        // u8 → u32 widens, it cannot truncate. fpb-lint: allow(truncating_cast)
        if !self.pcm.cells_per_line().is_multiple_of(self.pcm.chips as u32) {
            return Err(ConfigError::new(
                "pcm.chips",
                "cells per line must divide evenly across chips",
            ));
        }
        Ok(())
    }

    /// Returns a copy with a different PCM/L3 line size (Fig. 19 sweep).
    #[must_use]
    pub fn with_line_bytes(mut self, bytes: u32) -> Self {
        self.pcm.line_bytes = bytes;
        self.cache.l3_line_bytes = bytes;
        self
    }

    /// Returns a copy with a different per-core LLC capacity (Fig. 20 sweep).
    #[must_use]
    pub fn with_llc_mib(mut self, mib: u32) -> Self {
        self.cache.l3_mib_per_core = mib;
        self
    }

    /// Returns a copy with a different write-queue depth (Fig. 21 sweep).
    #[must_use]
    pub fn with_write_queue(mut self, entries: usize) -> Self {
        self.queues.write_entries = entries;
        self
    }

    /// Returns a copy with a different DIMM token budget (Fig. 22 sweep).
    #[must_use]
    pub fn with_pt_dimm(mut self, tokens: u64) -> Self {
        self.power.pt_dimm = tokens;
        self
    }

    /// Returns a copy with a different GCP efficiency (Figs. 11–15 sweeps).
    #[must_use]
    pub fn with_gcp_efficiency(mut self, eff: f64) -> Self {
        self.power.e_gcp = eff;
        self
    }

    /// Returns a copy with a different RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns a copy with the given fault-injection parameters.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultConfig) -> Self {
        self.faults = faults;
        self
    }
}

/// Cache hierarchy parameters (Table 1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheHierarchyConfig {
    /// Private L1 data cache size in KiB (per core).
    pub l1_kib: u32,
    /// L1 associativity.
    pub l1_ways: u32,
    /// L1/L2 line size in bytes.
    pub l12_line_bytes: u32,
    /// L1 hit latency in cycles.
    pub l1_hit_cycles: u64,
    /// Private L2 size in KiB (per core).
    pub l2_kib: u32,
    /// L2 associativity.
    pub l2_ways: u32,
    /// L2 hit latency in cycles (tag + data, as seen from the core).
    pub l2_hit_cycles: u64,
    /// Private off-chip DRAM L3 size in MiB per core.
    pub l3_mib_per_core: u32,
    /// L3 associativity.
    pub l3_ways: u32,
    /// L3 line size in bytes (also the PCM line size).
    pub l3_line_bytes: u32,
    /// L3 hit latency in cycles (50 ns at 4 GHz).
    pub l3_hit_cycles: u64,
    /// CPU-to-L3 interconnect latency in cycles.
    pub cpu_to_l3_cycles: u64,
}

impl Default for CacheHierarchyConfig {
    fn default() -> Self {
        CacheHierarchyConfig {
            l1_kib: 32,
            l1_ways: 4,
            l12_line_bytes: 64,
            l1_hit_cycles: 2,
            l2_kib: 2048,
            l2_ways: 4,
            l2_hit_cycles: 21, // 5-cycle data hit + 16-cycle CPU-to-L2
            l3_mib_per_core: 32,
            l3_ways: 8,
            l3_line_bytes: 256,
            l3_hit_cycles: 200,
            cpu_to_l3_cycles: 64,
        }
    }
}

impl CacheHierarchyConfig {
    fn validate(&self) -> Result<(), ConfigError> {
        for (field, v) in [
            ("cache.l1_kib", self.l1_kib),
            ("cache.l1_ways", self.l1_ways),
            ("cache.l2_kib", self.l2_kib),
            ("cache.l2_ways", self.l2_ways),
            ("cache.l3_mib_per_core", self.l3_mib_per_core),
            ("cache.l3_ways", self.l3_ways),
        ] {
            if v == 0 {
                return Err(ConfigError::new(field, "must be nonzero"));
            }
        }
        for (field, v) in [
            ("cache.l12_line_bytes", self.l12_line_bytes),
            ("cache.l3_line_bytes", self.l3_line_bytes),
        ] {
            if !v.is_power_of_two() {
                return Err(ConfigError::new(field, "must be a power of two"));
            }
        }
        if self.l3_line_bytes < self.l12_line_bytes {
            return Err(ConfigError::new(
                "cache.l3_line_bytes",
                "must be >= the L1/L2 line size",
            ));
        }
        Ok(())
    }
}

/// Memory-controller queue parameters (Table 1: 24-entry R/W queues).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueueConfig {
    /// Read-queue capacity.
    pub read_entries: usize,
    /// Write-queue capacity; when full, a write burst is issued (§5.2).
    pub write_entries: usize,
    /// Memory-controller-to-bank latency in cycles.
    pub mc_to_bank_cycles: u64,
    /// Bus occupancy per line transfer in cycles (models the shared channel
    /// between the controller and the DIMM's bridge chip).
    pub bus_cycles_per_line: u64,
}

impl Default for QueueConfig {
    fn default() -> Self {
        QueueConfig {
            read_entries: 24,
            write_entries: 24,
            mc_to_bank_cycles: 64,
            bus_cycles_per_line: 16,
        }
    }
}

impl QueueConfig {
    fn validate(&self) -> Result<(), ConfigError> {
        if self.read_entries == 0 {
            return Err(ConfigError::new("queues.read_entries", "must be nonzero"));
        }
        if self.write_entries == 0 {
            return Err(ConfigError::new("queues.write_entries", "must be nonzero"));
        }
        Ok(())
    }
}

/// MLC PCM device parameters (Table 1).
#[derive(Debug, Clone, PartialEq)]
pub struct PcmConfig {
    /// Total capacity in GiB.
    pub capacity_gib: u32,
    /// Logical banks per DIMM.
    pub banks: u8,
    /// PCM chips per DIMM (a bank stripes across all of them).
    pub chips: u8,
    /// Line size in bytes (equals the L3 line size).
    pub line_bytes: u32,
    /// Bits stored per cell (2 for the baseline MLC; 1 models SLC).
    pub bits_per_cell: u8,
    /// Array read latency in cycles (250 ns at 4 GHz).
    pub read_cycles: u64,
    /// RESET pulse width in cycles (125 ns).
    pub reset_cycles: u64,
    /// SET pulse width (including verify) in cycles (250 ns).
    pub set_cycles: u64,
    /// Latency of the bridge chip's read-before-write comparison (§3.1).
    /// The row is already activated for the incoming write, so this is a
    /// row-hit read, cheaper than a full array read.
    pub compare_read_cycles: u64,
    /// Iteration-count model for each 2-bit target level.
    pub write_model: MlcWriteModel,
}

impl Default for PcmConfig {
    fn default() -> Self {
        PcmConfig {
            capacity_gib: 4,
            banks: 8,
            chips: 8,
            line_bytes: 256,
            bits_per_cell: 2,
            read_cycles: 1000,
            reset_cycles: 500,
            set_cycles: 1000,
            compare_read_cycles: 500,
            write_model: MlcWriteModel::default(),
        }
    }
}

impl PcmConfig {
    /// Number of MLC cells in one memory line.
    ///
    /// ```
    /// use fpb_types::PcmConfig;
    /// assert_eq!(PcmConfig::default().cells_per_line(), 1024);
    /// ```
    pub fn cells_per_line(&self) -> u32 {
        self.line_bytes * 8 / self.bits_per_cell as u32
    }

    /// Number of cells of one line held by each chip.
    pub fn cells_per_chip_per_line(&self) -> u32 {
        // u8 → u32 widens, it cannot truncate. fpb-lint: allow(truncating_cast)
        self.cells_per_line() / self.chips as u32
    }

    /// Total number of lines in main memory.
    pub fn total_lines(&self) -> u64 {
        self.capacity_gib as u64 * (1 << 30) / self.line_bytes as u64
    }

    fn validate(&self) -> Result<(), ConfigError> {
        if self.banks == 0 {
            return Err(ConfigError::new("pcm.banks", "must be nonzero"));
        }
        if self.chips == 0 {
            return Err(ConfigError::new("pcm.chips", "must be nonzero"));
        }
        if self.capacity_gib == 0 {
            return Err(ConfigError::new("pcm.capacity_gib", "must be nonzero"));
        }
        if !self.line_bytes.is_power_of_two() {
            return Err(ConfigError::new("pcm.line_bytes", "must be a power of two"));
        }
        if !matches!(self.bits_per_cell, 1 | 2) {
            return Err(ConfigError::new("pcm.bits_per_cell", "must be 1 or 2"));
        }
        self.write_model.validate()?;
        Ok(())
    }
}

/// Iteration-count models for the four 2-bit MLC target levels (Table 1).
///
/// Writing a cell to `00` (full RESET, amorphous) finishes in the RESET
/// iteration itself; `11` (full SET, crystalline) needs one SET pulse; the
/// intermediate levels `01` and `10` are programmed with program-and-verify
/// and take a non-deterministic number of SET iterations (8 and 6 on
/// average in the paper's model).
#[derive(Debug, Clone, PartialEq)]
pub struct MlcWriteModel {
    /// Model for target level `00`.
    pub l00: MlcLevelModel,
    /// Model for target level `01`.
    pub l01: MlcLevelModel,
    /// Model for target level `10`.
    pub l10: MlcLevelModel,
    /// Model for target level `11`.
    pub l11: MlcLevelModel,
}

impl Default for MlcWriteModel {
    fn default() -> Self {
        MlcWriteModel {
            l00: MlcLevelModel::Fixed(1),
            // Two-population substitution for the paper's i/F1/F2 model,
            // calibrated to the stated means (8 and 6 iterations).
            l01: MlcLevelModel::TwoPhase {
                fast_fraction: 0.375,
                fast_mean: 4.0,
                fast_std: 1.0,
                slow_mean: 10.4,
                slow_std: 2.0,
                min: 2,
                max: 16,
            },
            l10: MlcLevelModel::TwoPhase {
                fast_fraction: 0.425,
                fast_mean: 3.0,
                fast_std: 1.0,
                slow_mean: 8.2,
                slow_std: 1.5,
                min: 2,
                max: 12,
            },
            l11: MlcLevelModel::Fixed(2),
        }
    }
}

impl MlcWriteModel {
    fn validate(&self) -> Result<(), ConfigError> {
        for (field, m) in [
            ("pcm.write_model.l00", &self.l00),
            ("pcm.write_model.l01", &self.l01),
            ("pcm.write_model.l10", &self.l10),
            ("pcm.write_model.l11", &self.l11),
        ] {
            m.validate(field)?;
        }
        Ok(())
    }
}

/// Iteration-count model for a single MLC target level.
#[derive(Debug, Clone, PartialEq)]
pub enum MlcLevelModel {
    /// Always exactly this many iterations (iteration 1 is the RESET pulse).
    Fixed(u32),
    /// Two-population model: with probability `fast_fraction` the cell
    /// converges in a Gaussian number of iterations around `fast_mean`,
    /// otherwise around `slow_mean`; results are rounded and clamped to
    /// `[min, max]`.
    TwoPhase {
        /// Probability of the fast-converging population.
        fast_fraction: f64,
        /// Mean iterations for the fast population.
        fast_mean: f64,
        /// Std deviation for the fast population.
        fast_std: f64,
        /// Mean iterations for the slow population.
        slow_mean: f64,
        /// Std deviation for the slow population.
        slow_std: f64,
        /// Minimum total iterations (RESET counts as iteration 1).
        min: u32,
        /// Maximum total iterations (worst-case P&V bound).
        max: u32,
    },
}

impl MlcLevelModel {
    /// Expected number of iterations under this model (for reporting and
    /// calibration checks; the clamp's effect on the mean is ignored).
    pub fn mean_iterations(&self) -> f64 {
        match *self {
            MlcLevelModel::Fixed(n) => n as f64,
            MlcLevelModel::TwoPhase {
                fast_fraction,
                fast_mean,
                slow_mean,
                ..
            } => fast_fraction * fast_mean + (1.0 - fast_fraction) * slow_mean,
        }
    }

    fn validate(&self, field: &'static str) -> Result<(), ConfigError> {
        match *self {
            MlcLevelModel::Fixed(n) => {
                if n == 0 {
                    return Err(ConfigError::new(field, "fixed iterations must be >= 1"));
                }
            }
            MlcLevelModel::TwoPhase {
                fast_fraction,
                min,
                max,
                ..
            } => {
                if !(0.0..=1.0).contains(&fast_fraction) {
                    return Err(ConfigError::new(field, "fast_fraction must be in [0, 1]"));
                }
                if min == 0 || max < min {
                    return Err(ConfigError::new(field, "need 1 <= min <= max"));
                }
            }
        }
        Ok(())
    }
}

/// Power-budget parameters (§2.1.2–§2.1.4, §5.1).
#[derive(Debug, Clone, PartialEq)]
pub struct PowerConfig {
    /// DIMM-level budget in whole tokens (560 in the baseline: the DDR3-1066
    /// power envelope expressed as simultaneous cell RESETs).
    pub pt_dimm: u64,
    /// Local charge-pump power efficiency (0.95 in the paper).
    pub e_lcp: f64,
    /// Global charge-pump effective power efficiency (0.70 typical).
    pub e_gcp: f64,
    /// RESET-to-SET power ratio `C` (`SET power = RESET power / C`; 2 in the
    /// paper's running example).
    pub reset_set_power_ratio: u64,
    /// Maximum GCP output, as a multiple of one LCP's usable capacity (§4.1:
    /// "the maximum power that the GCP can provide is set to the same power
    /// as one LCP", i.e. 1.0).
    pub gcp_capacity_lcps: f64,
}

impl Default for PowerConfig {
    fn default() -> Self {
        PowerConfig {
            pt_dimm: 560,
            e_lcp: 0.95,
            e_gcp: 0.70,
            reset_set_power_ratio: 2,
            gcp_capacity_lcps: 1.0,
        }
    }
}

impl PowerConfig {
    /// Usable per-chip token budget `PT_LCP = PT_DIMM × E_LCP / chips`
    /// (Eq. 4), in millitokens for exactness.
    pub fn pt_lcp_millis(&self, chips: u8) -> u64 {
        ((self.pt_dimm * 1000) as f64 * self.e_lcp / chips as f64).floor() as u64
    }

    fn validate(&self) -> Result<(), ConfigError> {
        if self.pt_dimm == 0 {
            return Err(ConfigError::new("power.pt_dimm", "must be nonzero"));
        }
        if !(self.e_lcp > 0.0 && self.e_lcp <= 1.0) {
            return Err(ConfigError::new("power.e_lcp", "must be in (0, 1]"));
        }
        if !(self.e_gcp > 0.0 && self.e_gcp <= 1.0) {
            return Err(ConfigError::new("power.e_gcp", "must be in (0, 1]"));
        }
        if self.reset_set_power_ratio == 0 {
            return Err(ConfigError::new(
                "power.reset_set_power_ratio",
                "must be nonzero",
            ));
        }
        if self.gcp_capacity_lcps <= 0.0 {
            return Err(ConfigError::new("power.gcp_capacity_lcps", "must be > 0"));
        }
        Ok(())
    }
}

/// Fault-injection and graceful-degradation parameters.
///
/// Models the reliability hazards the paper's device physics imply
/// (§2.1.1: program-and-verify is non-deterministic; §2.1.2–2.1.3: charge
/// pumps are the fragile shared resource):
///
/// * **Verify failures** — a completed program-and-verify round reports
///   unconverged cells with probability [`verify_fail_prob`] and must be
///   re-issued by the controller.
/// * **Stuck-at faults** — once a line's wear region has absorbed
///   [`stuck_wear_threshold`] cell-writes, each further write sticks the
///   line with probability [`stuck_cell_prob`]; stuck lines fail every
///   verify until the controller remaps them to a spare.
/// * **Charge-pump brownout** — every [`brownout_period`] cycles the
///   DIMM's power delivery sags for [`brownout_duration`] cycles, leaving
///   only [`brownout_budget_scale`] of every token budget usable.
///
/// The remaining fields tune the controller's recovery behavior (bounded
/// retry-with-backoff, watchdog termination, degraded mode). With every
/// injection knob at zero — the default — no fault code runs and no RNG
/// stream is consumed, so baseline results are bit-identical to a build
/// without the subsystem.
///
/// [`verify_fail_prob`]: FaultConfig::verify_fail_prob
/// [`stuck_cell_prob`]: FaultConfig::stuck_cell_prob
/// [`stuck_wear_threshold`]: FaultConfig::stuck_wear_threshold
/// [`brownout_period`]: FaultConfig::brownout_period
/// [`brownout_duration`]: FaultConfig::brownout_duration
/// [`brownout_budget_scale`]: FaultConfig::brownout_budget_scale
///
/// # Examples
///
/// ```
/// use fpb_types::FaultConfig;
///
/// let f = FaultConfig::default();
/// assert!(!f.any_injection_enabled());
///
/// let f = FaultConfig {
///     verify_fail_prob: 0.01,
///     ..FaultConfig::default()
/// };
/// assert!(f.any_injection_enabled());
/// f.validate().expect("valid");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Probability that a completed write round fails its final verify and
    /// must be re-issued (0 disables verify-failure injection).
    pub verify_fail_prob: f64,
    /// Probability that a write to a worn line leaves it stuck
    /// (0 disables stuck-at injection).
    pub stuck_cell_prob: f64,
    /// Wear-region cell-write count after which stuck-at faults can
    /// trigger. Lines in younger regions never stick.
    pub stuck_wear_threshold: u64,
    /// Cycles between the starts of successive brownout windows
    /// (0 disables brownouts).
    pub brownout_period: u64,
    /// Length of each brownout window in cycles (0 disables brownouts;
    /// must be shorter than the period).
    pub brownout_duration: u64,
    /// Fraction of every token budget that stays usable during a brownout.
    pub brownout_budget_scale: f64,
    /// Maximum controller retries of a failed round before the line is
    /// remapped and the write degrades to SLC.
    pub max_retries: u8,
    /// Base backoff before the first retry, in cycles; doubles on each
    /// further retry of the same round.
    pub retry_backoff_cycles: u64,
    /// Watchdog limit on total write iterations (original + retried) a
    /// single line write may consume before it is forcibly terminated
    /// (0 disables the watchdog).
    pub watchdog_iterations: u32,
    /// Consecutive browned-out cycles after which the controller enters
    /// `DegradedMode` and commits writes in SLC form (0 = never degrade).
    pub degraded_after_cycles: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            verify_fail_prob: 0.0,
            stuck_cell_prob: 0.0,
            stuck_wear_threshold: 0,
            brownout_period: 0,
            brownout_duration: 0,
            brownout_budget_scale: 0.5,
            max_retries: 3,
            retry_backoff_cycles: 1000,
            watchdog_iterations: 256,
            degraded_after_cycles: 0,
        }
    }
}

impl FaultConfig {
    /// True when any fault *injection* is configured. Recovery knobs alone
    /// (retries, watchdog) do not count: with nothing injected they are
    /// unreachable.
    pub fn any_injection_enabled(&self) -> bool {
        self.verify_fail_prob > 0.0
            || self.stuck_cell_prob > 0.0
            || self.brownouts_enabled()
    }

    /// True when periodic brownout windows are configured.
    pub fn brownouts_enabled(&self) -> bool {
        self.brownout_period > 0 && self.brownout_duration > 0
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] naming the first offending field.
    pub fn validate(&self) -> Result<(), ConfigError> {
        for (field, p) in [
            ("faults.verify_fail_prob", self.verify_fail_prob),
            ("faults.stuck_cell_prob", self.stuck_cell_prob),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(ConfigError::new(field, "must be a probability in [0, 1]"));
            }
        }
        if !(0.0..=1.0).contains(&self.brownout_budget_scale) {
            return Err(ConfigError::new(
                "faults.brownout_budget_scale",
                "must be in [0, 1]",
            ));
        }
        if self.brownout_duration > 0 && self.brownout_period == 0 {
            return Err(ConfigError::new(
                "faults.brownout_period",
                "must be nonzero when a brownout duration is set",
            ));
        }
        if self.brownout_period > 0 && self.brownout_duration >= self.brownout_period {
            return Err(ConfigError::new(
                "faults.brownout_duration",
                "must be shorter than the brownout period",
            ));
        }
        if self.stuck_cell_prob > 0.0 && self.stuck_wear_threshold == 0 {
            return Err(ConfigError::new(
                "faults.stuck_wear_threshold",
                "must be nonzero when stuck-at injection is enabled",
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_table1() {
        let cfg = SystemConfig::default();
        cfg.validate().unwrap();
        assert_eq!(cfg.cores, 8);
        assert_eq!(cfg.cache.l1_kib, 32);
        assert_eq!(cfg.cache.l2_kib, 2048);
        assert_eq!(cfg.cache.l3_mib_per_core, 32);
        assert_eq!(cfg.cache.l3_line_bytes, 256);
        assert_eq!(cfg.queues.read_entries, 24);
        assert_eq!(cfg.queues.write_entries, 24);
        assert_eq!(cfg.pcm.capacity_gib, 4);
        assert_eq!(cfg.pcm.banks, 8);
        assert_eq!(cfg.pcm.chips, 8);
        assert_eq!(cfg.pcm.read_cycles, 1000);
        assert_eq!(cfg.pcm.reset_cycles, 500);
        assert_eq!(cfg.pcm.set_cycles, 1000);
        assert_eq!(cfg.pcm.compare_read_cycles, 500);
        assert_eq!(cfg.power.pt_dimm, 560);
        assert_eq!(cfg.power.e_lcp, 0.95);
    }

    #[test]
    fn write_model_means_match_paper() {
        let m = MlcWriteModel::default();
        assert_eq!(m.l00.mean_iterations(), 1.0);
        assert_eq!(m.l11.mean_iterations(), 2.0);
        assert!((m.l01.mean_iterations() - 8.0).abs() < 0.05);
        assert!((m.l10.mean_iterations() - 6.0).abs() < 0.05);
    }

    #[test]
    fn pt_lcp_matches_eq4() {
        let p = PowerConfig::default();
        // PT_LCP = 560 * 0.95 / 8 = 66.5 tokens.
        assert_eq!(p.pt_lcp_millis(8), 66_500);
    }

    #[test]
    fn sweep_helpers() {
        let cfg = SystemConfig::default()
            .with_line_bytes(128)
            .with_llc_mib(16)
            .with_write_queue(48)
            .with_pt_dimm(466)
            .with_gcp_efficiency(0.5)
            .with_seed(7);
        cfg.validate().unwrap();
        assert_eq!(cfg.pcm.line_bytes, 128);
        assert_eq!(cfg.cache.l3_line_bytes, 128);
        assert_eq!(cfg.cache.l3_mib_per_core, 16);
        assert_eq!(cfg.queues.write_entries, 48);
        assert_eq!(cfg.power.pt_dimm, 466);
        assert_eq!(cfg.power.e_gcp, 0.5);
        assert_eq!(cfg.seed, 7);
    }

    #[test]
    fn derived_geometry() {
        let pcm = PcmConfig::default();
        assert_eq!(pcm.cells_per_line(), 1024);
        assert_eq!(pcm.cells_per_chip_per_line(), 128);
        assert_eq!(pcm.total_lines(), 4 * (1 << 30) / 256);
        let slc = PcmConfig {
            bits_per_cell: 1,
            ..PcmConfig::default()
        };
        assert_eq!(slc.cells_per_line(), 2048);
    }

    #[test]
    fn rejects_bad_configs() {
        let mut c = SystemConfig::default();
        c.pcm.banks = 0;
        assert_eq!(c.validate().unwrap_err().field(), "pcm.banks");

        let mut c = SystemConfig::default();
        c.pcm.line_bytes = 100;
        assert!(c.validate().is_err());

        let mut c = SystemConfig::default();
        c.power.e_gcp = 1.5;
        assert_eq!(c.validate().unwrap_err().field(), "power.e_gcp");

        let mut c = SystemConfig::default();
        c.pcm.line_bytes = 128; // now != l3 line size
        assert_eq!(c.validate().unwrap_err().field(), "pcm.line_bytes");

        let mut c = SystemConfig::default();
        c.pcm.bits_per_cell = 3;
        assert!(c.validate().is_err());

        let c = SystemConfig {
            cores: 0,
            ..SystemConfig::default()
        };
        assert_eq!(c.validate().unwrap_err().field(), "cores");
    }

    #[test]
    fn fault_config_validation() {
        let mut c = SystemConfig::default();
        assert!(!c.faults.any_injection_enabled());
        c.validate().unwrap();

        c.faults.verify_fail_prob = 1.5;
        assert_eq!(
            c.validate().unwrap_err().field(),
            "faults.verify_fail_prob"
        );

        let mut c = SystemConfig::default();
        c.faults.brownout_period = 100;
        c.faults.brownout_duration = 100;
        assert_eq!(
            c.validate().unwrap_err().field(),
            "faults.brownout_duration"
        );
        c.faults.brownout_duration = 40;
        c.validate().unwrap();
        assert!(c.faults.brownouts_enabled());
        assert!(c.faults.any_injection_enabled());

        let mut c = SystemConfig::default();
        c.faults.stuck_cell_prob = 0.2;
        assert_eq!(
            c.validate().unwrap_err().field(),
            "faults.stuck_wear_threshold"
        );
        c.faults.stuck_wear_threshold = 10_000;
        c.validate().unwrap();
    }

    #[test]
    fn rejects_bad_level_model() {
        let mut c = SystemConfig::default();
        c.pcm.write_model.l01 = MlcLevelModel::Fixed(0);
        assert!(c.validate().is_err());
        c.pcm.write_model.l01 = MlcLevelModel::TwoPhase {
            fast_fraction: 1.5,
            fast_mean: 1.0,
            fast_std: 0.0,
            slow_mean: 1.0,
            slow_std: 0.0,
            min: 1,
            max: 2,
        };
        assert!(c.validate().is_err());
    }
}
