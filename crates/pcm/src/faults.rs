//! Deterministic fault injection for the PCM device model.
//!
//! The paper's device physics imply three reliability hazards that a real
//! MLC PCM controller must survive:
//!
//! * **Verify failures** (§2.1.1) — program-and-verify is inherently
//!   non-deterministic; a round can end with cells still unconverged, and
//!   the controller must re-issue it.
//! * **Endurance-driven stuck-at faults** — worn cells eventually stick at
//!   one resistance level. The injector keys these off the
//!   [`EnduranceTracker`]'s per-region wear counts, so fault pressure
//!   grows exactly where the write traffic concentrates.
//! * **Charge-pump brownout** (§2.1.2–§2.1.3) — the pumps are the scarce,
//!   fragile resource; a supply sag shrinks every token budget for a
//!   window of cycles.
//!
//! Everything is driven by a dedicated [`SimRng`] stream, so fault
//! sequences are exactly reproducible from the seed, and **no RNG draw is
//! made for a knob that is at zero** — a fully-disabled injector is
//! bit-for-bit inert.
//!
//! # Examples
//!
//! ```
//! use fpb_pcm::faults::FaultInjector;
//! use fpb_types::{Cycles, FaultConfig, LineAddr, SimRng};
//!
//! let cfg = FaultConfig {
//!     verify_fail_prob: 0.5,
//!     ..FaultConfig::default()
//! };
//! let mut inj = FaultInjector::new(cfg, SimRng::seed_from(7));
//! let flaky = (0..100)
//!     .filter(|_| inj.round_fails_verify(LineAddr::new(0)))
//!     .count();
//! assert!(flaky > 20 && flaky < 80);
//! assert_eq!(inj.verify_failures(), flaky as u64);
//! ```

use std::collections::BTreeSet;

use fpb_types::{Cycles, FaultConfig, LineAddr, SimRng};

use crate::endurance::EnduranceTracker;

/// Injects verify failures, stuck-at faults, and brownout windows into the
/// write pipeline, reproducibly.
///
/// The injector is pure device model: it decides *what goes wrong*. The
/// controller-side recovery (retry, remap, degraded mode) lives in the
/// simulator and merely consults this type.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    cfg: FaultConfig,
    rng: SimRng,
    /// Lines currently stuck: every verify on them fails until remapped.
    stuck: BTreeSet<u64>,
    /// Lines remapped to spares: healthy again, and exempt from further
    /// stuck-at injection (spares are fresh cells).
    remapped: BTreeSet<u64>,
    verify_failures: u64,
    stuck_marked: u64,
}

impl FaultInjector {
    /// Creates an injector from validated config and a dedicated RNG
    /// stream (fork it off the run's master seed).
    pub fn new(cfg: FaultConfig, rng: SimRng) -> Self {
        FaultInjector {
            cfg,
            rng,
            stuck: BTreeSet::new(),
            remapped: BTreeSet::new(),
            verify_failures: 0,
            stuck_marked: 0,
        }
    }

    /// The configuration this injector runs with.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Decides whether the write round that just finished on `line` fails
    /// its final verify.
    ///
    /// Stuck lines fail deterministically (no RNG draw — the fault is in
    /// the cells, not the luck). Remapped lines never fail (and draw no
    /// RNG): spares are fresh, factory-verified cells, and exempting them
    /// is what makes remap a terminating recovery even at
    /// `verify_fail_prob = 1.0`. Otherwise a Bernoulli draw at
    /// `verify_fail_prob` decides, and only if that knob is nonzero.
    pub fn round_fails_verify(&mut self, line: LineAddr) -> bool {
        if self.stuck.contains(&line.get()) {
            self.verify_failures += 1;
            return true;
        }
        if self.remapped.contains(&line.get()) {
            return false;
        }
        if self.cfg.verify_fail_prob > 0.0 && self.rng.bernoulli(self.cfg.verify_fail_prob) {
            self.verify_failures += 1;
            return true;
        }
        false
    }

    /// Records a completed write to `line` and possibly marks the line
    /// stuck, based on the wear of its region in `wear`.
    ///
    /// Call after the round passed verify and its wear was recorded.
    pub fn note_write(&mut self, line: LineAddr, wear: &EnduranceTracker) {
        if self.cfg.stuck_cell_prob <= 0.0 {
            return;
        }
        let key = line.get();
        if self.stuck.contains(&key) || self.remapped.contains(&key) {
            return;
        }
        if wear.region_cells_written(line) < self.cfg.stuck_wear_threshold {
            return;
        }
        if self.rng.bernoulli(self.cfg.stuck_cell_prob) {
            self.stuck.insert(key);
            self.stuck_marked += 1;
        }
    }

    /// Remaps `line` to a spare: it stops failing and is exempt from
    /// further stuck-at injection. The controller calls this when retries
    /// are exhausted.
    pub fn remap(&mut self, line: LineAddr) {
        self.stuck.remove(&line.get());
        self.remapped.insert(line.get());
    }

    /// True if `line` is currently stuck (fails every verify).
    pub fn is_stuck(&self, line: LineAddr) -> bool {
        self.stuck.contains(&line.get())
    }

    /// True if `line` has been remapped to a spare.
    pub fn is_remapped(&self, line: LineAddr) -> bool {
        self.remapped.contains(&line.get())
    }

    /// Number of injected verify failures so far (including deterministic
    /// failures on stuck lines).
    pub fn verify_failures(&self) -> u64 {
        self.verify_failures
    }

    /// Number of lines marked stuck so far.
    pub fn stuck_marked(&self) -> u64 {
        self.stuck_marked
    }

    /// Number of lines currently stuck (marked and not yet remapped).
    pub fn stuck_lines(&self) -> usize {
        self.stuck.len()
    }

    /// Number of lines remapped to spares.
    pub fn remapped_lines(&self) -> usize {
        self.remapped.len()
    }

    /// True if the DIMM is browned out at `now`.
    ///
    /// Brownout windows are periodic and occupy the *end* of each period
    /// (the first window starts at `period − duration`, so a run always
    /// begins at full power). Purely a function of time: brownouts model a
    /// deterministic supply-sag schedule, not a random process, which
    /// keeps window edges exactly reproducible for event scheduling.
    pub fn brownout_active(&self, now: Cycles) -> bool {
        if !self.cfg.brownouts_enabled() {
            return false;
        }
        let phase = now.get() % self.cfg.brownout_period;
        phase >= self.cfg.brownout_period - self.cfg.brownout_duration
    }

    /// The next cycle at which the brownout state flips (window start or
    /// end), or `None` when brownouts are disabled. Event-driven engines
    /// must include this in their next-event computation so they wake at
    /// window edges.
    pub fn next_brownout_boundary(&self, now: Cycles) -> Option<Cycles> {
        if !self.cfg.brownouts_enabled() {
            return None;
        }
        let period = self.cfg.brownout_period;
        let start_phase = period - self.cfg.brownout_duration;
        let phase = now.get() % period;
        let base = now.get() - phase;
        let next = if phase < start_phase {
            base + start_phase // upcoming window start
        } else {
            base + period // end of the active window
        };
        Some(Cycles::new(next))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wear_tracker() -> EnduranceTracker {
        EnduranceTracker::new(1024, 16, 8, 1_000_000)
    }

    #[test]
    fn disabled_injector_never_fires_and_never_draws() {
        let mut a = FaultInjector::new(FaultConfig::default(), SimRng::seed_from(1));
        let wear = wear_tracker();
        for i in 0..200 {
            assert!(!a.round_fails_verify(LineAddr::new(i)));
            a.note_write(LineAddr::new(i), &wear);
        }
        assert_eq!(a.verify_failures(), 0);
        assert_eq!(a.stuck_lines(), 0);
        // The RNG stream was never touched: it still matches a fresh one.
        let mut fresh = SimRng::seed_from(1);
        let mut used = a.rng.clone();
        for _ in 0..8 {
            assert_eq!(used.next_u64(), fresh.next_u64());
        }
    }

    #[test]
    fn verify_failures_are_reproducible() {
        let cfg = FaultConfig {
            verify_fail_prob: 0.3,
            ..FaultConfig::default()
        };
        let run = |seed| {
            let mut inj = FaultInjector::new(cfg.clone(), SimRng::seed_from(seed));
            (0..64)
                .map(|i| inj.round_fails_verify(LineAddr::new(i)))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43), "different seeds should differ");
    }

    #[test]
    fn stuck_at_requires_wear_then_fails_until_remap() {
        let cfg = FaultConfig {
            stuck_cell_prob: 1.0,
            stuck_wear_threshold: 100,
            ..FaultConfig::default()
        };
        let mut inj = FaultInjector::new(cfg, SimRng::seed_from(5));
        let mut wear = wear_tracker();
        let line = LineAddr::new(7);

        // Young region: cannot stick.
        inj.note_write(line, &wear);
        assert!(!inj.is_stuck(line));

        // Push the region past the threshold; certainty prob then sticks it.
        wear.record_write(line, &[20; 8]);
        inj.note_write(line, &wear);
        assert!(inj.is_stuck(line));
        assert_eq!(inj.stuck_marked(), 1);

        // Stuck lines fail verify deterministically.
        assert!(inj.round_fails_verify(line));
        assert!(inj.round_fails_verify(line));

        // Remap heals the line and exempts it from re-sticking.
        inj.remap(line);
        assert!(!inj.is_stuck(line));
        assert!(inj.is_remapped(line));
        assert!(!inj.round_fails_verify(line));
        inj.note_write(line, &wear);
        assert!(!inj.is_stuck(line), "remapped spare must not re-stick");
        assert_eq!(inj.remapped_lines(), 1);
    }

    #[test]
    fn remapped_lines_pass_verify_even_at_certainty() {
        // Remap must terminate recovery: even with every verify failing,
        // the rewrite onto the spare succeeds — and without an RNG draw.
        let cfg = FaultConfig {
            verify_fail_prob: 1.0,
            ..FaultConfig::default()
        };
        let mut inj = FaultInjector::new(cfg, SimRng::seed_from(9));
        let line = LineAddr::new(3);
        assert!(inj.round_fails_verify(line));
        inj.remap(line);
        let before = inj.rng.clone();
        assert!(!inj.round_fails_verify(line));
        let mut a = inj.rng.clone();
        let mut b = before.clone();
        assert_eq!(a.next_u64(), b.next_u64(), "remapped verify must not draw");
    }

    #[test]
    fn brownout_windows_sit_at_period_end() {
        let cfg = FaultConfig {
            brownout_period: 1000,
            brownout_duration: 200,
            ..FaultConfig::default()
        };
        let inj = FaultInjector::new(cfg, SimRng::seed_from(1));
        assert!(!inj.brownout_active(Cycles::new(0)));
        assert!(!inj.brownout_active(Cycles::new(799)));
        assert!(inj.brownout_active(Cycles::new(800)));
        assert!(inj.brownout_active(Cycles::new(999)));
        assert!(!inj.brownout_active(Cycles::new(1000)));

        assert_eq!(
            inj.next_brownout_boundary(Cycles::new(0)),
            Some(Cycles::new(800))
        );
        assert_eq!(
            inj.next_brownout_boundary(Cycles::new(800)),
            Some(Cycles::new(1000))
        );
        assert_eq!(
            inj.next_brownout_boundary(Cycles::new(1500)),
            Some(Cycles::new(1800))
        );
    }

    #[test]
    fn brownouts_disabled_by_default() {
        let inj = FaultInjector::new(FaultConfig::default(), SimRng::seed_from(1));
        assert!(!inj.brownout_active(Cycles::new(123_456)));
        assert_eq!(inj.next_brownout_boundary(Cycles::new(0)), None);
    }
}
