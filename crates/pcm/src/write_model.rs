//! Program-and-verify iteration-count sampling.

use crate::cell::MlcLevel;
use fpb_types::{MlcLevelModel, MlcWriteModel, SimRng};

/// Samples how many write iterations a cell needs to reach a target level.
///
/// Iteration 1 is the RESET pulse; iterations 2..n are SET pulses, each
/// followed by a verify read. MLC PCM writes are non-deterministic (§2.1.1):
/// the same cell can take a different number of iterations on different
/// writes, and most cells finish early while a tail is slow. The sampler
/// implements the two-population substitution for the paper's `i/F1/F2`
/// model, calibrated to the Table 1 means (8 iterations for target `01`,
/// 6 for `10`, fixed 1 for `00`, fixed 2 for `11`).
///
/// # Examples
///
/// ```
/// use fpb_pcm::{IterationSampler, MlcLevel};
/// use fpb_types::{MlcWriteModel, SimRng};
///
/// let sampler = IterationSampler::new(MlcWriteModel::default());
/// let mut rng = SimRng::seed_from(3);
/// assert_eq!(sampler.sample(MlcLevel::L00, &mut rng), 1);
/// assert_eq!(sampler.sample(MlcLevel::L11, &mut rng), 2);
/// let n = sampler.sample(MlcLevel::L01, &mut rng);
/// assert!((2..=16).contains(&n));
/// ```
#[derive(Debug, Clone)]
pub struct IterationSampler {
    model: MlcWriteModel,
}

impl IterationSampler {
    /// Creates a sampler for the given per-level model.
    pub fn new(model: MlcWriteModel) -> Self {
        IterationSampler { model }
    }

    /// The model this sampler draws from.
    pub fn model(&self) -> &MlcWriteModel {
        &self.model
    }

    /// Samples the total number of iterations (including the RESET) needed
    /// to program one cell to `target`.
    pub fn sample(&self, target: MlcLevel, rng: &mut SimRng) -> u32 {
        let m = match target {
            MlcLevel::L00 => &self.model.l00,
            MlcLevel::L01 => &self.model.l01,
            MlcLevel::L10 => &self.model.l10,
            MlcLevel::L11 => &self.model.l11,
        };
        sample_level(m, rng)
    }

    /// Upper bound on iterations across all levels (the worst-case P&V
    /// bound a controller without device feedback would have to assume).
    pub fn worst_case_iterations(&self) -> u32 {
        [
            &self.model.l00,
            &self.model.l01,
            &self.model.l10,
            &self.model.l11,
        ]
        .into_iter()
        .map(level_max)
        .max()
        .unwrap_or(1)
    }
}

fn sample_level(m: &MlcLevelModel, rng: &mut SimRng) -> u32 {
    match *m {
        MlcLevelModel::Fixed(n) => n,
        MlcLevelModel::TwoPhase {
            fast_fraction,
            fast_mean,
            fast_std,
            slow_mean,
            slow_std,
            min,
            max,
        } => {
            let (mean, std) = if rng.bernoulli(fast_fraction) {
                (fast_mean, fast_std)
            } else {
                (slow_mean, slow_std)
            };
            let x = rng.gaussian_with(mean, std).round();
            (x.max(min as f64) as u32).clamp(min, max)
        }
    }
}

fn level_max(m: &MlcLevelModel) -> u32 {
    match *m {
        MlcLevelModel::Fixed(n) => n,
        MlcLevelModel::TwoPhase { max, .. } => max,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sampler() -> IterationSampler {
        IterationSampler::new(MlcWriteModel::default())
    }

    #[test]
    fn fixed_levels_are_deterministic() {
        let s = sampler();
        let mut rng = SimRng::seed_from(1);
        for _ in 0..100 {
            assert_eq!(s.sample(MlcLevel::L00, &mut rng), 1);
            assert_eq!(s.sample(MlcLevel::L11, &mut rng), 2);
        }
    }

    #[test]
    fn intermediate_means_match_table1() {
        let s = sampler();
        let mut rng = SimRng::seed_from(2);
        let n = 60_000;
        let mean01: f64 = (0..n)
            .map(|_| s.sample(MlcLevel::L01, &mut rng) as f64)
            .sum::<f64>()
            / n as f64;
        let mean10: f64 = (0..n)
            .map(|_| s.sample(MlcLevel::L10, &mut rng) as f64)
            .sum::<f64>()
            / n as f64;
        // Paper: 8 iterations on average for `01`, 6 for `10`. The clamp
        // shifts the mean slightly; allow a quarter-iteration.
        assert!((mean01 - 8.0).abs() < 0.25, "mean01 = {mean01}");
        assert!((mean10 - 6.0).abs() < 0.25, "mean10 = {mean10}");
    }

    #[test]
    fn samples_respect_bounds() {
        let s = sampler();
        let mut rng = SimRng::seed_from(3);
        for _ in 0..10_000 {
            let n01 = s.sample(MlcLevel::L01, &mut rng);
            assert!((2..=16).contains(&n01), "n01 = {n01}");
            let n10 = s.sample(MlcLevel::L10, &mut rng);
            assert!((2..=12).contains(&n10), "n10 = {n10}");
        }
    }

    #[test]
    fn most_cells_finish_early() {
        // §2.1.1: "most cells finish in only a small number of iterations" —
        // the distribution must be bimodal-ish with a meaningful early mass.
        let s = sampler();
        let mut rng = SimRng::seed_from(4);
        let n = 20_000;
        let early = (0..n)
            .filter(|_| s.sample(MlcLevel::L01, &mut rng) <= 5)
            .count();
        assert!(
            early as f64 / n as f64 > 0.25,
            "early fraction = {}",
            early as f64 / n as f64
        );
    }

    #[test]
    fn worst_case_covers_all_levels() {
        assert_eq!(sampler().worst_case_iterations(), 16);
    }

    #[test]
    fn deterministic_given_seed() {
        let s = sampler();
        let mut a = SimRng::seed_from(9);
        let mut b = SimRng::seed_from(9);
        for _ in 0..200 {
            assert_eq!(
                s.sample(MlcLevel::L01, &mut a),
                s.sample(MlcLevel::L01, &mut b)
            );
        }
    }
}
