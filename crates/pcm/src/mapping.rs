//! Logical-cell-to-chip mappings (§4.3, Figure 9).
//!
//! Storing one 64 B chunk needs 256 2-bit cells. How those logical cells are
//! distributed over the 8 physical chips determines how balanced per-chip
//! write power demand is — and therefore how often the (inefficient) global
//! charge pump must be used. The paper studies three static mappings:
//!
//! * **NE** (naïve): consecutive cells stay in one chip (`chip = cell / 32`).
//! * **VIM** (Vertical Interleaving, Eq. 2): `chip = cell mod 8` — spreads a
//!   word's consecutive cells across chips, good for FP data whose changes
//!   cluster within words.
//! * **BIM** (Braided Interleaving, Eq. 3): `chip = (cell − cell/16) mod 8`
//!   — additionally staggers same-significance cells of *different* words
//!   onto different chips, good for integer data whose low-order cells
//!   change most.

use std::fmt;
use std::str::FromStr;

use fpb_types::ChipId;

/// Number of logical 2-bit cells per 64 B mapping chunk (16×16 matrix in
/// Figure 9).
pub const CELLS_PER_CHUNK: u32 = 256;
/// Cells per word row in the Figure 9 layout (a 32-bit word = 16 cells).
pub const CELLS_PER_WORD: u32 = 16;

/// A static cell-to-chip mapping scheme.
///
/// # Examples
///
/// ```
/// use fpb_pcm::CellMapping;
///
/// // Naïve mapping keeps cells 0..32 in chip 0.
/// assert_eq!(CellMapping::Naive.chip_of(31, 8).get(), 0);
/// assert_eq!(CellMapping::Naive.chip_of(32, 8).get(), 1);
///
/// // VIM round-robins cells across chips (Eq. 2).
/// assert_eq!(CellMapping::Vim.chip_of(10, 8).get(), 2);
///
/// // BIM braids rows so column c of row r lands on chip (c - r) mod 8 (Eq. 3).
/// assert_eq!(CellMapping::Bim.chip_of(17, 8).get(), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CellMapping {
    /// Consecutive cells within one chip (Figure 9(b)).
    Naive,
    /// Vertical interleaving: `chip = cell mod chips` (Figure 9(c), Eq. 2).
    Vim,
    /// Braided interleaving: `chip = (cell − cell/16) mod chips`
    /// (Figure 9(d), Eq. 3).
    #[default]
    Bim,
}

impl CellMapping {
    /// All mapping schemes, in the order the paper introduces them.
    pub const ALL: [CellMapping; 3] = [CellMapping::Naive, CellMapping::Vim, CellMapping::Bim];

    /// Short name used in the paper's figure legends (`NE`, `VIM`, `BIM`).
    pub fn label(self) -> &'static str {
        match self {
            CellMapping::Naive => "NE",
            CellMapping::Vim => "VIM",
            CellMapping::Bim => "BIM",
        }
    }

    /// Chip that stores logical cell `cell` of a line, for `chips` chips.
    ///
    /// Cells are mapped chunk-by-chunk: each group of [`CELLS_PER_CHUNK`]
    /// cells (one 64 B chunk) applies the Figure 9 pattern independently,
    /// which is how larger lines (128 B, 256 B) stripe in the baseline
    /// architecture (all chips participate in every chunk).
    ///
    /// # Panics
    ///
    /// Panics if `chips` is zero.
    pub fn chip_of(self, cell: u32, chips: u8) -> ChipId {
        assert!(chips > 0, "chip count must be nonzero");
        let chips32 = chips as u32;
        let within = cell % CELLS_PER_CHUNK;
        let chip = match self {
            CellMapping::Naive => (within / CELLS_PER_CHUNK.div_ceil(chips32)).min(chips32 - 1),
            CellMapping::Vim => fast_mod(within, chips32),
            CellMapping::Bim => fast_mod(within - within / CELLS_PER_WORD, chips32),
        };
        ChipId::new(chip as u8)
    }

    /// Per-chip cell counts for an iterator of changed logical cells.
    ///
    /// ```
    /// use fpb_pcm::CellMapping;
    ///
    /// let counts = CellMapping::Vim.distribute([0, 8, 16, 1], 8);
    /// assert_eq!(counts[0], 3); // cells 0, 8, 16 all hit chip 0 under VIM
    /// assert_eq!(counts[1], 1);
    /// ```
    pub fn distribute<I: IntoIterator<Item = u32>>(self, cells: I, chips: u8) -> Vec<u32> {
        let mut counts = Vec::new();
        self.distribute_into(cells, chips, &mut counts);
        counts
    }

    /// [`CellMapping::distribute`] into a caller-owned buffer (cleared and
    /// resized to the chip count), for hot paths that tally per-chip
    /// demand repeatedly and must not allocate.
    pub fn distribute_into<I: IntoIterator<Item = u32>>(
        self,
        cells: I,
        chips: u8,
        counts: &mut Vec<u32>,
    ) {
        counts.clear();
        counts.resize(chips as usize, 0u32);
        for c in cells {
            counts[self.chip_of(c, chips).index()] += 1;
        }
    }
}

/// `x % m`, with the division avoided for power-of-two `m` — the common
/// 4/8/16-chip configurations. `chip_of` runs once per changed cell on
/// the write hot path, where a hardware divide is the dominant cost.
#[inline]
fn fast_mod(x: u32, m: u32) -> u32 {
    if m.is_power_of_two() {
        x & (m - 1)
    } else {
        x % m
    }
}

impl fmt::Display for CellMapping {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Error returned when parsing an unknown mapping name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseMappingError(String);

impl fmt::Display for ParseMappingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown cell mapping `{}` (expected NE, VIM or BIM)", self.0)
    }
}

impl std::error::Error for ParseMappingError {}

impl FromStr for CellMapping {
    type Err = ParseMappingError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_uppercase().as_str() {
            "NE" | "NAIVE" => Ok(CellMapping::Naive),
            "VIM" => Ok(CellMapping::Vim),
            "BIM" => Ok(CellMapping::Bim),
            other => Err(ParseMappingError(other.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_blocks_of_32() {
        for cell in 0..CELLS_PER_CHUNK {
            assert_eq!(
                CellMapping::Naive.chip_of(cell, 8).get() as u32,
                cell / 32
            );
        }
    }

    #[test]
    fn vim_matches_eq2() {
        for cell in 0..CELLS_PER_CHUNK {
            assert_eq!(CellMapping::Vim.chip_of(cell, 8).get() as u32, cell % 8);
        }
    }

    #[test]
    fn bim_matches_eq3() {
        for cell in 0..CELLS_PER_CHUNK {
            let expect = (cell - cell / 16) % 8;
            assert_eq!(CellMapping::Bim.chip_of(cell, 8).get() as u32, expect);
        }
    }

    #[test]
    fn bim_staggers_low_order_cells() {
        // The last cell of each 16-cell word (lowest-order bits of an
        // integer) must land on a different chip for 8 consecutive words.
        let chips: Vec<u8> = (0..8)
            .map(|word| CellMapping::Bim.chip_of(word * 16 + 15, 8).get())
            .collect();
        let mut sorted = chips.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 8, "chips = {chips:?}");
    }

    #[test]
    fn vim_spreads_a_word_across_chips() {
        // Cells 0..16 of one word touch every chip exactly twice under VIM.
        let counts = CellMapping::Vim.distribute(0..16, 8);
        assert!(counts.iter().all(|&c| c == 2), "counts = {counts:?}");
        // ...but all land in two chips under the naïve mapping.
        let counts = CellMapping::Naive.distribute(0..16, 8);
        assert_eq!(counts[0], 16);
    }

    #[test]
    fn every_mapping_is_balanced_over_a_full_chunk() {
        for m in CellMapping::ALL {
            let counts = m.distribute(0..CELLS_PER_CHUNK, 8);
            assert!(
                counts.iter().all(|&c| c == 32),
                "{m}: counts = {counts:?}"
            );
        }
    }

    #[test]
    fn chunks_repeat_for_large_lines() {
        for m in CellMapping::ALL {
            for cell in 0..CELLS_PER_CHUNK {
                assert_eq!(
                    m.chip_of(cell, 8),
                    m.chip_of(cell + CELLS_PER_CHUNK, 8),
                    "{m} cell {cell}"
                );
            }
        }
    }

    #[test]
    fn parse_labels() {
        assert_eq!("NE".parse::<CellMapping>().unwrap(), CellMapping::Naive);
        assert_eq!("vim".parse::<CellMapping>().unwrap(), CellMapping::Vim);
        assert_eq!("Bim".parse::<CellMapping>().unwrap(), CellMapping::Bim);
        assert!("xyz".parse::<CellMapping>().is_err());
        for m in CellMapping::ALL {
            assert_eq!(m.label().parse::<CellMapping>().unwrap(), m);
        }
    }

    #[test]
    fn four_chip_configs_work() {
        for m in CellMapping::ALL {
            let counts = m.distribute(0..CELLS_PER_CHUNK, 4);
            assert_eq!(counts.iter().sum::<u32>(), CELLS_PER_CHUNK);
            assert!(counts.iter().all(|&c| c > 0));
        }
    }
}
