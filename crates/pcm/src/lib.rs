//! Multi-level-cell phase-change-memory device model.
//!
//! This crate models everything that happens *inside* the PCM DIMM for the
//! FPB power-budgeting study:
//!
//! * [`cell`] — 2-bit MLC levels and per-level write characteristics.
//! * [`write_model`] — the program-and-verify iteration-count sampler
//!   (two-phase model from Table 1 of the paper).
//! * [`line_write`] — the state machine for one in-flight line write:
//!   RESET iteration(s), SET iterations, per-chip power demand per
//!   iteration, Multi-RESET grouping, truncation, cancellation.
//! * [`mapping`] — logical-cell-to-chip mappings: naïve, Vertical
//!   Interleaving (VIM, Eq. 2) and Braided Interleaving (BIM, Eq. 3).
//! * [`geometry`] — DIMM/chip/bank organization and per-chip demand math.
//! * [`charge_pump`] — the charge-pump area model (Eq. 1) used for the
//!   Table 3 overhead comparison.
//! * [`wear_level`] — intra-line wear leveling (the PWL baseline of §2.2).
//!
//! # Examples
//!
//! ```
//! use fpb_pcm::{ChangeSet, DimmGeometry, IterationSampler, LineWrite, MlcLevel};
//! use fpb_pcm::mapping::CellMapping;
//! use fpb_types::{MlcWriteModel, SimRng};
//!
//! let geom = DimmGeometry::new(8, 1024);
//! let mut rng = SimRng::seed_from(1);
//! let sampler = IterationSampler::new(MlcWriteModel::default());
//!
//! // A write that changes three cells.
//! let changes = ChangeSet::from_cells(vec![
//!     (0, MlcLevel::L01),
//!     (17, MlcLevel::L00),
//!     (900, MlcLevel::L11),
//! ]);
//! let write = LineWrite::new(&changes, &geom, CellMapping::Vim, &sampler, &mut rng, 1);
//! assert_eq!(write.total_changed(), 3);
//! assert!(write.total_iterations() >= 2);
//! ```

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod cell;
pub mod drift;
pub mod endurance;
pub mod faults;
pub mod charge_pump;
pub mod geometry;
pub mod line_write;
pub mod mapping;
pub mod wear_level;
pub mod write_model;

#[cfg(test)]
mod proptests;

pub use cell::MlcLevel;
pub use drift::DriftModel;
pub use endurance::EnduranceTracker;
pub use faults::FaultInjector;
pub use charge_pump::ChargePump;
pub use geometry::DimmGeometry;
pub use line_write::{ChangeSet, IterKind, IterationDemand, LineWrite, WriteBufferPool};
pub use mapping::CellMapping;
pub use wear_level::IntraLineWearLeveler;
pub use write_model::IterationSampler;
