//! DIMM organization: chips, lines, and Multi-RESET cell groups.

use crate::mapping::CELLS_PER_CHUNK;

/// Physical organization of one PCM DIMM as seen by a line write.
///
/// The baseline (Figure 1): 8 chips per rank, 8 logical banks each striped
/// across *all* chips, so every line write touches every chip. A 256 B line
/// holds 1024 2-bit cells, 128 per chip.
///
/// # Examples
///
/// ```
/// use fpb_pcm::DimmGeometry;
///
/// let g = DimmGeometry::new(8, 1024);
/// assert_eq!(g.cells_per_chip(), 128);
/// // Multi-RESET splits each chunk into static thirds:
/// assert_eq!(g.reset_group_of(0, 3), 0);
/// assert_eq!(g.reset_group_of(255, 3), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DimmGeometry {
    chips: u8,
    cells_per_line: u32,
}

impl DimmGeometry {
    /// Creates a geometry with `chips` chips and `cells_per_line` MLC cells
    /// per memory line.
    ///
    /// # Panics
    ///
    /// Panics if either argument is zero or cells do not divide evenly
    /// across chips.
    pub fn new(chips: u8, cells_per_line: u32) -> Self {
        assert!(chips > 0, "chip count must be nonzero");
        assert!(cells_per_line > 0, "cells per line must be nonzero");
        assert_eq!(
            // u8 → u32 widens, it cannot truncate. fpb-lint: allow(truncating_cast)
            cells_per_line % chips as u32,
            0,
            "cells per line must divide evenly across chips"
        );
        DimmGeometry {
            chips,
            cells_per_line,
        }
    }

    /// Number of chips in the DIMM.
    pub fn chips(&self) -> u8 {
        self.chips
    }

    /// MLC cells per memory line.
    pub fn cells_per_line(&self) -> u32 {
        self.cells_per_line
    }

    /// Cells of each line held by a single chip.
    pub fn cells_per_chip(&self) -> u32 {
        // u8 → u32 widens, it cannot truncate. fpb-lint: allow(truncating_cast)
        self.cells_per_line / self.chips as u32
    }

    /// Static Multi-RESET group of a logical cell when the RESET is split
    /// into `groups` iterations (§3.2: cells are grouped statically,
    /// regardless of whether they are changed, needing only a narrow
    /// group-enable control signal per chip).
    ///
    /// # Panics
    ///
    /// Panics if `groups` is zero.
    pub fn reset_group_of(&self, cell: u32, groups: u8) -> u8 {
        assert!(groups > 0, "group count must be nonzero");
        if groups == 1 {
            // The non-Multi-RESET common case: every cell is in group 0.
            // This runs once per changed cell on the write hot path, where
            // the two divisions below would dominate.
            return 0;
        }
        let within = cell % CELLS_PER_CHUNK;
        // u8 → u32 widens, it cannot truncate. fpb-lint: allow(truncating_cast)
        let per_group = CELLS_PER_CHUNK.div_ceil(groups as u32);
        ((within / per_group) as u8).min(groups - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_geometry() {
        let g = DimmGeometry::new(8, 1024);
        assert_eq!(g.chips(), 8);
        assert_eq!(g.cells_per_line(), 1024);
        assert_eq!(g.cells_per_chip(), 128);
    }

    #[test]
    #[should_panic(expected = "divide evenly")]
    fn uneven_cells_panic() {
        let _ = DimmGeometry::new(8, 1001);
    }

    #[test]
    fn reset_groups_are_contiguous_thirds() {
        let g = DimmGeometry::new(8, 1024);
        let mut counts = [0u32; 3];
        for cell in 0..CELLS_PER_CHUNK {
            counts[g.reset_group_of(cell, 3) as usize] += 1;
        }
        // 256 cells in groups of ceil(256/3)=86: 86, 86, 84.
        assert_eq!(counts, [86, 86, 84]);
    }

    #[test]
    fn one_group_means_all_zero() {
        let g = DimmGeometry::new(8, 1024);
        for cell in (0..1024).step_by(17) {
            assert_eq!(g.reset_group_of(cell, 1), 0);
        }
    }

    #[test]
    fn groups_repeat_per_chunk() {
        let g = DimmGeometry::new(8, 1024);
        for cell in 0..CELLS_PER_CHUNK {
            assert_eq!(
                g.reset_group_of(cell, 3),
                g.reset_group_of(cell + CELLS_PER_CHUNK, 3)
            );
        }
    }

    #[test]
    fn four_groups_cover_all() {
        let g = DimmGeometry::new(8, 1024);
        for cell in 0..1024 {
            assert!(g.reset_group_of(cell, 4) < 4);
        }
    }
}
