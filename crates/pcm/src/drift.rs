//! MLC resistance drift and scrubbing (§3.2's drift remark, §7's related
//! work on Helmet [30] and scrub mechanisms [1]).
//!
//! An MLC cell's resistance drifts upward over time as
//! `R(t) = R0 · (t/t0)^ν`: the amorphous-phase resistance grows, so the
//! intermediate levels `01`/`10` creep toward their upper read boundary
//! and eventually misread. Full RESET/SET states have wide margins and are
//! effectively immune. FPB's Multi-RESET pauses are far too short to
//! matter (the paper's observation), but long idle periods need periodic
//! *scrubbing* — background reads that rewrite drifted lines — which costs
//! memory bandwidth. This module provides the analytical drift model and a
//! scrub-interval calculator the simulator's scrub traffic uses.

use crate::cell::MlcLevel;

/// Analytical resistance-drift model `R(t) = R0 · (t/t0)^ν`.
///
/// # Examples
///
/// ```
/// use fpb_pcm::{DriftModel, MlcLevel};
///
/// let m = DriftModel::default();
/// // Intermediate levels drift; full RESET/SET do not misread.
/// assert!(m.time_to_misread(MlcLevel::L01).is_finite());
/// assert!(m.time_to_misread(MlcLevel::L00).is_infinite());
///
/// // A safe scrub interval leaves margin before the earliest misread.
/// let interval = m.scrub_interval_secs(0.5);
/// assert!(interval > 0.0 && interval < m.time_to_misread(MlcLevel::L01));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftModel {
    /// Drift exponent `ν` for the partially-amorphous intermediate levels
    /// (literature values 0.01–0.1; intermediate states drift fastest).
    pub nu_intermediate: f64,
    /// Normalization time `t0` in seconds (time of the post-write verify).
    pub t0_secs: f64,
    /// Resistance guard band of the intermediate levels: the factor by
    /// which `R` may grow before crossing the next read boundary.
    pub guard_band: f64,
}

impl Default for DriftModel {
    fn default() -> Self {
        DriftModel {
            nu_intermediate: 0.1,
            t0_secs: 1e-6,
            guard_band: 10.0,
        }
    }
}

impl DriftModel {
    /// Relative resistance growth factor `R(t)/R0` of an intermediate
    /// level after `t` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `t` is negative.
    pub fn growth_factor(&self, t_secs: f64) -> f64 {
        assert!(t_secs >= 0.0, "time must be nonnegative");
        if t_secs <= self.t0_secs {
            1.0
        } else {
            (t_secs / self.t0_secs).powf(self.nu_intermediate)
        }
    }

    /// Seconds until `level` drifts across its read boundary
    /// (`f64::INFINITY` for the immune full-RESET/SET states).
    pub fn time_to_misread(&self, level: MlcLevel) -> f64 {
        if !level.is_intermediate() {
            return f64::INFINITY;
        }
        // Solve (t/t0)^nu = guard_band.
        self.t0_secs * self.guard_band.powf(1.0 / self.nu_intermediate)
    }

    /// A scrub interval that rewrites lines after `margin_fraction` of the
    /// time-to-misread has elapsed (0 < fraction < 1; smaller = safer and
    /// more scrub traffic).
    ///
    /// # Panics
    ///
    /// Panics if `margin_fraction` is not in `(0, 1)`.
    pub fn scrub_interval_secs(&self, margin_fraction: f64) -> f64 {
        assert!(
            margin_fraction > 0.0 && margin_fraction < 1.0,
            "margin fraction must be in (0, 1)"
        );
        self.time_to_misread(MlcLevel::L01) * margin_fraction
    }

    /// Scrub-read bandwidth in reads/second for a memory of `lines` lines
    /// scrubbed every [`DriftModel::scrub_interval_secs`].
    pub fn scrub_reads_per_sec(&self, lines: u64, margin_fraction: f64) -> f64 {
        lines as f64 / self.scrub_interval_secs(margin_fraction)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn growth_is_monotone_and_starts_at_one() {
        let m = DriftModel::default();
        assert_eq!(m.growth_factor(0.0), 1.0);
        assert_eq!(m.growth_factor(1e-7), 1.0);
        let g1 = m.growth_factor(1.0);
        let g2 = m.growth_factor(100.0);
        assert!(1.0 < g1 && g1 < g2);
    }

    #[test]
    fn only_intermediate_levels_misread() {
        let m = DriftModel::default();
        assert!(m.time_to_misread(MlcLevel::L00).is_infinite());
        assert!(m.time_to_misread(MlcLevel::L11).is_infinite());
        let t01 = m.time_to_misread(MlcLevel::L01);
        let t10 = m.time_to_misread(MlcLevel::L10);
        assert!(t01.is_finite() && t10.is_finite());
        // At the misread time the growth equals the guard band.
        assert!((m.growth_factor(t01) - m.guard_band).abs() < 1e-6);
    }

    #[test]
    fn multi_reset_pauses_are_drift_safe() {
        // The paper's §3.2 claim: a Multi-RESET pause (a few extra RESET
        // pulses, ~hundreds of ns) consumes a negligible part of the
        // drift budget.
        let m = DriftModel::default();
        let pause_secs = 2.0 * 125e-9; // two extra RESET pulses
        let growth = m.growth_factor(pause_secs);
        assert!(
            growth < 1.01,
            "pause growth {growth} must be negligible"
        );
        // The misread horizon is hours, not nanoseconds.
        assert!(m.time_to_misread(MlcLevel::L01) > 3600.0);
    }

    #[test]
    fn scrub_interval_scales_with_margin() {
        let m = DriftModel::default();
        let tight = m.scrub_interval_secs(0.25);
        let loose = m.scrub_interval_secs(0.75);
        assert!(tight < loose);
        assert!(loose < m.time_to_misread(MlcLevel::L01));
    }

    #[test]
    fn faster_drift_needs_faster_scrubbing() {
        let slow = DriftModel {
            nu_intermediate: 0.02,
            ..DriftModel::default()
        };
        let fast = DriftModel {
            nu_intermediate: 0.10,
            ..DriftModel::default()
        };
        assert!(fast.scrub_interval_secs(0.5) < slow.scrub_interval_secs(0.5));
        assert!(fast.scrub_reads_per_sec(1 << 24, 0.5) > slow.scrub_reads_per_sec(1 << 24, 0.5));
    }

    #[test]
    #[should_panic(expected = "margin fraction")]
    fn bad_margin_panics() {
        let _ = DriftModel::default().scrub_interval_secs(1.5);
    }
}
