//! Write-endurance tracking and lifetime projection.
//!
//! MLC PCM's write endurance is one of its headline weaknesses (§1: MLC
//! "has shorter write endurance" than SLC). The budgeting schemes do not
//! change how *many* cells are written, but the cell-mapping optimizations
//! and wear leveling change *where* — so an adopter evaluating FPB needs
//! per-chip and per-region wear accounting and a lifetime projection. This
//! module provides both, at a configurable coarse granularity so tracking
//! a 4 GB part stays cheap.

use fpb_types::LineAddr;

/// Tracks cell-write volume per chip and per coarse line region, and
/// projects device lifetime against a per-cell endurance budget.
///
/// # Examples
///
/// ```
/// use fpb_pcm::endurance::EnduranceTracker;
/// use fpb_types::LineAddr;
///
/// // 1024 lines tracked in 16 regions, 8 chips, 10^6 writes/cell.
/// let mut t = EnduranceTracker::new(1024, 16, 8, 1_000_000);
/// t.record_write(LineAddr::new(3), &[10, 0, 0, 0, 0, 0, 0, 2]);
/// assert_eq!(t.chip_cells_written(0), 10);
/// assert_eq!(t.total_cells_written(), 12);
/// assert!(t.hottest_region().1 > 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnduranceTracker {
    lines_per_region: u64,
    per_region: Vec<u64>,
    per_chip: Vec<u64>,
    cells_per_line_per_chip: u64,
    endurance: u64,
}

impl EnduranceTracker {
    /// Creates a tracker for `total_lines` lines grouped into `regions`
    /// regions, over `chips` chips, with a per-cell `endurance` budget
    /// (typically 10^6–10^8 for PCM).
    ///
    /// # Panics
    ///
    /// Panics if any argument is zero or `regions > total_lines`.
    pub fn new(total_lines: u64, regions: usize, chips: u8, endurance: u64) -> Self {
        assert!(total_lines > 0 && regions > 0 && chips > 0 && endurance > 0);
        assert!(regions as u64 <= total_lines, "more regions than lines");
        EnduranceTracker {
            lines_per_region: total_lines.div_ceil(regions as u64),
            per_region: vec![0; regions],
            per_chip: vec![0; chips as usize],
            cells_per_line_per_chip: 128,
            endurance,
        }
    }

    /// Overrides the cells-per-line-per-chip used for wear-density math
    /// (128 in the baseline: 1024 cells over 8 chips).
    #[must_use]
    pub fn with_cells_per_chip(mut self, cells: u64) -> Self {
        assert!(cells > 0, "cells per chip must be nonzero");
        self.cells_per_line_per_chip = cells;
        self
    }

    /// Records one completed line write's per-chip changed-cell counts.
    ///
    /// # Panics
    ///
    /// Panics if `per_chip_cells` length differs from the chip count.
    pub fn record_write(&mut self, line: LineAddr, per_chip_cells: &[u32]) {
        assert_eq!(per_chip_cells.len(), self.per_chip.len(), "chip count");
        let total: u64 = per_chip_cells.iter().map(|&c| c as u64).sum();
        let region = (line.get() / self.lines_per_region) as usize % self.per_region.len();
        self.per_region[region] += total;
        for (acc, &c) in self.per_chip.iter_mut().zip(per_chip_cells) {
            *acc += c as u64;
        }
    }

    /// Total cells written on chip `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn chip_cells_written(&self, i: usize) -> u64 {
        self.per_chip[i]
    }

    /// Total cells written across the device.
    pub fn total_cells_written(&self) -> u64 {
        self.per_chip.iter().sum()
    }

    /// Cells written so far in the wear region containing `line` (the wear
    /// signal endurance-triggered fault models key off).
    pub fn region_cells_written(&self, line: LineAddr) -> u64 {
        let region = (line.get() / self.lines_per_region) as usize % self.per_region.len();
        self.per_region[region]
    }

    /// `(region index, cells written)` of the most-worn region, or
    /// `(0, 0)` for a zero-region device.
    pub fn hottest_region(&self) -> (usize, u64) {
        self.per_region
            .iter()
            .copied()
            .enumerate()
            .max_by_key(|&(_, v)| v)
            .unwrap_or((0, 0))
    }

    /// Max-over-mean chip wear (1.0 = perfectly even; what VIM/BIM and
    /// wear leveling improve).
    pub fn chip_imbalance(&self) -> f64 {
        if self.per_chip.is_empty() {
            return 1.0;
        }
        let max = self.per_chip.iter().copied().max().unwrap_or(0) as f64;
        let mean = self.total_cells_written() as f64 / self.per_chip.len() as f64;
        // `mean` is an integer sum over a nonzero count: it is exactly 0.0
        // iff no cells were written, so exact equality is the right guard.
        // fpb-lint: allow(float_eq)
        if mean == 0.0 {
            0.0
        } else {
            max / mean
        }
    }

    /// Decomposes the tracker into its raw accumulator state, in the
    /// order [`EnduranceTracker::from_parts`] consumes:
    /// `(lines_per_region, per_region, per_chip, cells_per_line_per_chip,
    /// endurance)`. Exists for exact persistence (the sweep result cache
    /// stores trackers as flat integers and must round-trip them
    /// bit-for-bit).
    pub fn to_parts(&self) -> (u64, Vec<u64>, Vec<u64>, u64, u64) {
        (
            self.lines_per_region,
            self.per_region.clone(),
            self.per_chip.clone(),
            self.cells_per_line_per_chip,
            self.endurance,
        )
    }

    /// Rebuilds a tracker from [`EnduranceTracker::to_parts`] output.
    /// Returns `None` instead of panicking when the parts violate the
    /// constructor invariants (zero sizes, empty vectors) — callers are
    /// deserializing untrusted bytes and must treat a bad record as a
    /// cache miss, not a crash.
    pub fn from_parts(
        lines_per_region: u64,
        per_region: Vec<u64>,
        per_chip: Vec<u64>,
        cells_per_line_per_chip: u64,
        endurance: u64,
    ) -> Option<Self> {
        if lines_per_region == 0
            || per_region.is_empty()
            || per_chip.is_empty()
            || cells_per_line_per_chip == 0
            || endurance == 0
        {
            return None;
        }
        Some(EnduranceTracker {
            lines_per_region,
            per_region,
            per_chip,
            cells_per_line_per_chip,
            endurance,
        })
    }

    /// Projects device lifetime as a multiple of the observation window:
    /// how many times the observed write volume could repeat before the
    /// hottest region's *average cell* exhausts its endurance. Returns
    /// `f64::INFINITY` when nothing was written.
    ///
    /// This is an average-wear projection (it assumes intra-region
    /// leveling); hot single cells die earlier without it.
    pub fn lifetime_multiple(&self) -> f64 {
        let (_, hottest) = self.hottest_region();
        if hottest == 0 {
            return f64::INFINITY;
        }
        let region_cells =
            self.lines_per_region * self.cells_per_line_per_chip * self.per_chip.len() as u64;
        let writes_per_cell = hottest as f64 / region_cells as f64;
        self.endurance as f64 / writes_per_cell
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracker() -> EnduranceTracker {
        EnduranceTracker::new(1024, 16, 8, 1_000_000)
    }

    #[test]
    fn accumulates_per_chip_and_region() {
        let mut t = tracker();
        t.record_write(LineAddr::new(0), &[1, 2, 3, 4, 0, 0, 0, 0]);
        t.record_write(LineAddr::new(1), &[1, 0, 0, 0, 0, 0, 0, 9]);
        assert_eq!(t.chip_cells_written(0), 2);
        assert_eq!(t.chip_cells_written(7), 9);
        assert_eq!(t.total_cells_written(), 20);
        // Lines 0 and 1 are in region 0 (64 lines per region).
        assert_eq!(t.hottest_region(), (0, 20));
    }

    #[test]
    fn imbalance_reflects_distribution() {
        let mut even = tracker();
        even.record_write(LineAddr::new(0), &[10; 8]);
        assert!((even.chip_imbalance() - 1.0).abs() < 1e-12);

        let mut skew = tracker();
        skew.record_write(LineAddr::new(0), &[80, 0, 0, 0, 0, 0, 0, 0]);
        assert_eq!(skew.chip_imbalance(), 8.0);
    }

    #[test]
    fn lifetime_scales_inversely_with_wear() {
        let mut t = tracker();
        t.record_write(LineAddr::new(0), &[100; 8]);
        let l1 = t.lifetime_multiple();
        t.record_write(LineAddr::new(0), &[100; 8]);
        let l2 = t.lifetime_multiple();
        assert!(l1.is_finite() && l2.is_finite());
        assert!((l1 / l2 - 2.0).abs() < 1e-9, "double wear halves lifetime");
        assert_eq!(tracker().lifetime_multiple(), f64::INFINITY);
    }

    #[test]
    fn hot_region_dominates_lifetime() {
        // Same total volume, concentrated vs spread: concentration must
        // shorten the projection.
        let mut spread = tracker();
        for r in 0..16u64 {
            spread.record_write(LineAddr::new(r * 64), &[10; 8]);
        }
        let mut hot = tracker();
        for _ in 0..16 {
            hot.record_write(LineAddr::new(0), &[10; 8]);
        }
        assert!(hot.lifetime_multiple() < spread.lifetime_multiple());
    }

    #[test]
    #[should_panic(expected = "chip count")]
    fn wrong_chip_count_panics() {
        let mut t = tracker();
        t.record_write(LineAddr::new(0), &[1, 2]);
    }

    #[test]
    fn region_mapping_wraps_safely() {
        let mut t = EnduranceTracker::new(100, 16, 8, 1_000_000);
        // Line addresses beyond total_lines still land in a valid region.
        t.record_write(LineAddr::new(1_000_000), &[1; 8]);
        assert_eq!(t.total_cells_written(), 8);
    }
}
