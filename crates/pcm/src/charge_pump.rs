//! Charge-pump area model (§2.1.3, Eq. 1) and the Table 3 overhead math.
//!
//! PCM writes need voltages above `Vdd`, supplied by on-chip Dickson-style
//! charge pumps whose area is proportional to the maximum current they can
//! deliver. This is why chip power budgets exist at all — and why FPB-GCP's
//! one small shared pump beats doubling every local pump.

/// An analytical charge-pump model.
///
/// Implements Eq. 1 of the paper:
///
/// ```text
/// A_tot = k · N² / ((N+1)·Vdd − Vout) · I_L / f
/// ```
///
/// where `N` is the stage count, `Vdd` the supply, `Vout` the programming
/// voltage, `I_L` the load (write) current and `f` the pump frequency.
///
/// # Examples
///
/// ```
/// use fpb_pcm::ChargePump;
///
/// let lcp = ChargePump::new(4, 1.0, 1.6, 100.0e6, 1.0).unwrap();
/// // Area scales linearly with deliverable current (Eq. 1) ...
/// let a1 = lcp.area(0.3);
/// let a2 = lcp.area(0.6);
/// assert!((a2 / a1 - 2.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChargePump {
    stages: u32,
    vdd: f64,
    vout: f64,
    freq_hz: f64,
    k: f64,
}

impl ChargePump {
    /// Creates a pump model.
    ///
    /// # Errors
    ///
    /// Returns `Err` with a description if the parameters are non-physical:
    /// zero stages, non-positive voltages/frequency/process constant, or a
    /// target voltage the stage count cannot reach (`(N+1)·Vdd ≤ Vout`).
    pub fn new(stages: u32, vdd: f64, vout: f64, freq_hz: f64, k: f64) -> Result<Self, String> {
        if stages == 0 {
            return Err("charge pump needs at least one stage".into());
        }
        if vdd <= 0.0 || vout <= 0.0 {
            return Err("voltages must be positive".into());
        }
        if freq_hz <= 0.0 || k <= 0.0 {
            return Err("frequency and process constant must be positive".into());
        }
        if (stages as f64 + 1.0) * vdd <= vout {
            return Err(format!(
                "{} stages at Vdd={vdd} cannot pump to Vout={vout}",
                stages
            ));
        }
        Ok(ChargePump {
            stages,
            vdd,
            vout,
            freq_hz,
            k,
        })
    }

    /// Total pump area (arbitrary process units) to deliver load current
    /// `il` amperes (Eq. 1).
    pub fn area(&self, il: f64) -> f64 {
        let n = self.stages as f64;
        self.k * n * n / ((n + 1.0) * self.vdd - self.vout) * il / self.freq_hz
    }

    /// Maximum deliverable current for a given area budget (Eq. 1 inverted).
    pub fn max_current(&self, area: f64) -> f64 {
        let n = self.stages as f64;
        area * ((n + 1.0) * self.vdd - self.vout) * self.freq_hz / (self.k * n * n)
    }
}

/// Computes a charge pump's area overhead relative to the baseline DIMM's
/// total local-pump capacity, the metric of Table 3.
///
/// `raw_tokens` is the pump's size in *raw* power tokens (usable tokens
/// divided by the pump's efficiency) and `baseline_dimm_tokens` is the sum
/// of all local pumps (560 in the baseline). Area is proportional to
/// current, which is proportional to tokens, so the overhead is their
/// ratio.
///
/// # Examples
///
/// ```
/// use fpb_pcm::charge_pump::area_overhead_percent;
///
/// // Table 3: GCP-NE-0.95 needs 66 usable tokens -> 70 raw -> 12.5 %.
/// let pct = area_overhead_percent(70, 560);
/// assert!((pct - 12.5).abs() < 1e-9);
/// // Doubling every local pump costs 100 %.
/// assert_eq!(area_overhead_percent(560, 560), 100.0);
/// ```
///
/// # Panics
///
/// Panics if `baseline_dimm_tokens` is zero.
pub fn area_overhead_percent(raw_tokens: u64, baseline_dimm_tokens: u64) -> f64 {
    assert!(baseline_dimm_tokens > 0, "baseline tokens must be nonzero");
    raw_tokens as f64 / baseline_dimm_tokens as f64 * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pump() -> ChargePump {
        ChargePump::new(4, 1.0, 1.6, 100.0e6, 1.0).unwrap()
    }

    #[test]
    fn area_linear_in_current() {
        let p = pump();
        assert!((p.area(0.2) * 3.0 - p.area(0.6)).abs() < 1e-12);
    }

    #[test]
    fn area_and_current_are_inverses() {
        let p = pump();
        let a = p.area(0.42);
        assert!((p.max_current(a) - 0.42).abs() < 1e-9);
    }

    #[test]
    fn more_stages_reach_higher_voltage() {
        assert!(ChargePump::new(1, 1.0, 2.5, 1e8, 1.0).is_err());
        assert!(ChargePump::new(2, 1.0, 2.5, 1e8, 1.0).is_ok());
    }

    #[test]
    fn rejects_non_physical_parameters() {
        assert!(ChargePump::new(0, 1.0, 1.6, 1e8, 1.0).is_err());
        assert!(ChargePump::new(4, -1.0, 1.6, 1e8, 1.0).is_err());
        assert!(ChargePump::new(4, 1.0, 0.0, 1e8, 1.0).is_err());
        assert!(ChargePump::new(4, 1.0, 1.6, 0.0, 1.0).is_err());
        assert!(ChargePump::new(4, 1.0, 1.6, 1e8, 0.0).is_err());
    }

    #[test]
    fn table3_overheads() {
        // Values from Table 3 of the paper.
        assert!((area_overhead_percent(70, 560) - 12.5).abs() < 1e-9); // NE-0.95
        assert!((area_overhead_percent(92, 560) - 16.43).abs() < 0.01); // NE-0.70
        assert!((area_overhead_percent(23, 560) - 4.1).abs() < 0.01); // VIM-0.70
        assert!((area_overhead_percent(40, 560) - 7.14).abs() < 0.01); // BIM-0.70
        assert_eq!(area_overhead_percent(1120 - 560, 560), 100.0); // 2xLocal
    }

    #[test]
    fn higher_frequency_shrinks_pump() {
        let slow = ChargePump::new(4, 1.0, 1.6, 50.0e6, 1.0).unwrap();
        let fast = ChargePump::new(4, 1.0, 1.6, 200.0e6, 1.0).unwrap();
        assert!(fast.area(0.3) < slow.area(0.3));
    }
}
