//! 2-bit MLC cell levels.

use std::fmt;

/// One of the four resistance levels of a 2-bit MLC PCM cell.
///
/// `L00` is the fully amorphous (RESET) state and `L11` the fully
/// crystalline (SET) state; `L01`/`L10` are intermediate levels reached with
/// program-and-verify. Programming cost differs per level (Table 1): `00`
/// is done after the RESET pulse, `11` needs one SET pulse, and the
/// intermediate levels need many verify-bounded SET pulses.
///
/// # Examples
///
/// ```
/// use fpb_pcm::MlcLevel;
///
/// assert_eq!(MlcLevel::from_bits(0b01), MlcLevel::L01);
/// assert_eq!(MlcLevel::L10.bits(), 0b10);
/// assert!(MlcLevel::L01.is_intermediate());
/// assert!(!MlcLevel::L00.is_intermediate());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MlcLevel {
    /// Fully RESET (amorphous, highest resistance) — bits `00`.
    L00,
    /// Intermediate level — bits `01` (hardest level: ~8 iterations mean).
    L01,
    /// Intermediate level — bits `10` (~6 iterations mean).
    L10,
    /// Fully SET (crystalline, lowest resistance) — bits `11`.
    L11,
}

impl MlcLevel {
    /// All four levels, in bit order.
    pub const ALL: [MlcLevel; 4] = [
        MlcLevel::L00,
        MlcLevel::L01,
        MlcLevel::L10,
        MlcLevel::L11,
    ];

    /// Level encoding a 2-bit value (only the low 2 bits are used).
    pub const fn from_bits(bits: u8) -> MlcLevel {
        match bits & 0b11 {
            0b00 => MlcLevel::L00,
            0b01 => MlcLevel::L01,
            0b10 => MlcLevel::L10,
            _ => MlcLevel::L11,
        }
    }

    /// The 2-bit value this level stores.
    pub const fn bits(self) -> u8 {
        match self {
            MlcLevel::L00 => 0b00,
            MlcLevel::L01 => 0b01,
            MlcLevel::L10 => 0b10,
            MlcLevel::L11 => 0b11,
        }
    }

    /// True for the partially-crystalline levels that need iterative
    /// program-and-verify (`01` and `10`).
    pub const fn is_intermediate(self) -> bool {
        matches!(self, MlcLevel::L01 | MlcLevel::L10)
    }
}

impl fmt::Display for MlcLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:02b}", self.bits())
    }
}

impl Default for MlcLevel {
    /// Defaults to the fully-RESET state, matching a freshly-initialized
    /// array.
    fn default() -> Self {
        MlcLevel::L00
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_roundtrip() {
        for lvl in MlcLevel::ALL {
            assert_eq!(MlcLevel::from_bits(lvl.bits()), lvl);
        }
        // High bits are ignored.
        assert_eq!(MlcLevel::from_bits(0b1110), MlcLevel::L10);
    }

    #[test]
    fn intermediate_classification() {
        assert!(MlcLevel::L01.is_intermediate());
        assert!(MlcLevel::L10.is_intermediate());
        assert!(!MlcLevel::L00.is_intermediate());
        assert!(!MlcLevel::L11.is_intermediate());
    }

    #[test]
    fn display_is_two_bits() {
        assert_eq!(MlcLevel::L00.to_string(), "00");
        assert_eq!(MlcLevel::L11.to_string(), "11");
        assert_eq!(MlcLevel::L01.to_string(), "01");
    }

    #[test]
    fn default_is_reset_state() {
        assert_eq!(MlcLevel::default(), MlcLevel::L00);
    }
}
