//! Property-based tests for mappings and the line-write state machine.

use proptest::prelude::*;

use crate::cell::MlcLevel;
use crate::geometry::DimmGeometry;
use crate::line_write::{ChangeSet, LineWrite};
use crate::mapping::{CellMapping, CELLS_PER_CHUNK};
use crate::write_model::IterationSampler;
use fpb_types::{MlcWriteModel, SimRng};

fn arb_mapping() -> impl Strategy<Value = CellMapping> {
    prop_oneof![
        Just(CellMapping::Naive),
        Just(CellMapping::Vim),
        Just(CellMapping::Bim),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every mapping is a function onto valid chips, balanced over a full
    /// chunk, and stable under chunk translation.
    #[test]
    fn mapping_properties(mapping in arb_mapping(), cell in 0u32..8192) {
        let chip = mapping.chip_of(cell, 8);
        prop_assert!(chip.get() < 8);
        prop_assert_eq!(chip, mapping.chip_of(cell + CELLS_PER_CHUNK, 8));
    }

    /// Within one chunk, NE/VIM/BIM are all bijective onto chip-local
    /// slots: exactly 32 cells per chip.
    #[test]
    fn mapping_chunk_balance(mapping in arb_mapping()) {
        let counts = mapping.distribute(0..CELLS_PER_CHUNK, 8);
        prop_assert!(counts.iter().all(|&c| c == 32));
    }

    /// Wear-leveling rotation preserves the change-set size and keeps
    /// cells in range.
    #[test]
    fn rotation_preserves_changes(
        cells in prop::collection::btree_set(0u32..1024, 1..300),
        offset in 0u32..1024,
    ) {
        let cs: ChangeSet = cells.iter().map(|&c| (c, MlcLevel::L01)).collect();
        let rotated = cs.rotated(offset, 1024);
        prop_assert_eq!(rotated.len(), cs.len());
        prop_assert!(rotated.iter().all(|&(c, _)| c < 1024));
        // Rotating back restores the original set of cells.
        let back = rotated.rotated(1024 - offset % 1024, 1024);
        let mut orig: Vec<u32> = cs.iter().map(|&(c, _)| c).collect();
        let mut got: Vec<u32> = back.iter().map(|&(c, _)| c).collect();
        orig.sort_unstable();
        got.sort_unstable();
        prop_assert_eq!(orig, got);
    }

    /// Truncated writes never do more iterations than untruncated ones,
    /// and the skipped tail is within the ECC budget.
    #[test]
    fn truncation_is_sound(
        n in 1u32..300,
        ecc in 1u32..16,
        seed in 0u64..300,
    ) {
        let geom = DimmGeometry::new(8, 1024);
        let sampler = IterationSampler::new(MlcWriteModel::default());
        let cs: ChangeSet = (0..n).map(|i| (i * 3 % 1024, MlcLevel::L01)).collect();
        let mut rng = SimRng::seed_from(seed);
        let full = LineWrite::new(&cs, &geom, CellMapping::Bim, &sampler, &mut rng, 1);
        let mut t = full.clone().with_truncation(ecc);
        let mut steps = 0;
        while !t.is_complete() {
            t.advance();
            steps += 1;
        }
        prop_assert!(steps <= full.total_iterations());
        if t.was_truncated() {
            prop_assert!(full.unfinished_after(steps) <= ecc);
        }
    }

    /// Multi-RESET re-splitting never changes the SET schedule, only the
    /// RESET phase.
    #[test]
    fn resplit_preserves_sets(
        cells in prop::collection::btree_set(0u32..1024, 1..400),
        groups in 2u8..5,
        seed in 0u64..300,
    ) {
        let geom = DimmGeometry::new(8, 1024);
        let sampler = IterationSampler::new(MlcWriteModel::default());
        let cs: ChangeSet = cells.iter().map(|&c| (c, MlcLevel::L10)).collect();
        let mut rng = SimRng::seed_from(seed);
        let base = LineWrite::new(&cs, &geom, CellMapping::Vim, &sampler, &mut rng, 1);
        let mut split = base.clone();
        split.resplit_reset(&geom, groups);
        prop_assert_eq!(split.reset_groups(), groups);
        prop_assert_eq!(
            split.total_iterations(),
            base.total_iterations() + groups as u32 - 1
        );
        let sum: u32 = (0..groups).map(|g| split.reset_group_cells(g)).sum();
        prop_assert_eq!(sum, base.total_changed());
    }
}
