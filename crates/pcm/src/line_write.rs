//! The state machine for one in-flight MLC line write.
//!
//! A line write proceeds in *iterations* (§2.1.1): one RESET pulse over all
//! changed cells (optionally split into several group-RESETs by Multi-RESET,
//! §3.2), then SET pulses in which every not-yet-converged cell
//! participates. [`LineWrite`] precomputes, at admission time, the per-chip
//! active-cell counts of every future iteration so that power policies can
//! query demand in O(1) per iteration.

use crate::cell::MlcLevel;
use crate::geometry::DimmGeometry;
use crate::mapping::CellMapping;
use crate::write_model::IterationSampler;
use fpb_types::SimRng;

/// The set of cells a write must actually change, with their target levels.
///
/// Produced by the differential-write comparison (read-before-write in the
/// bridge chip, §3.1): only cells whose stored level differs from the new
/// data are programmed.
///
/// # Examples
///
/// ```
/// use fpb_pcm::{ChangeSet, MlcLevel};
///
/// let cs = ChangeSet::from_cells(vec![(3, MlcLevel::L01), (64, MlcLevel::L11)]);
/// assert_eq!(cs.len(), 2);
/// let rotated = cs.rotated(10, 1024);
/// assert_eq!(rotated.iter().next().unwrap().0, 13);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ChangeSet {
    cells: Vec<(u32, MlcLevel)>,
}

impl ChangeSet {
    /// Creates a change set from `(cell index, target level)` pairs.
    pub fn from_cells(cells: Vec<(u32, MlcLevel)>) -> Self {
        ChangeSet { cells }
    }

    /// An empty change set (a silent write: no cell differs).
    pub fn empty() -> Self {
        ChangeSet::default()
    }

    /// Number of changed cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True if no cells change.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Iterates over `(cell index, target level)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = &(u32, MlcLevel)> {
        self.cells.iter()
    }

    /// Returns the change set shifted by a wear-leveling rotation `offset`
    /// (cells wrap modulo `cells_per_line`).
    ///
    /// # Panics
    ///
    /// Panics if `cells_per_line` is zero.
    #[must_use]
    pub fn rotated(&self, offset: u32, cells_per_line: u32) -> ChangeSet {
        assert!(cells_per_line > 0, "cells_per_line must be nonzero");
        ChangeSet {
            cells: self
                .cells
                .iter()
                .map(|&(c, l)| ((c + offset) % cells_per_line, l))
                .collect(),
        }
    }
}

impl FromIterator<(u32, MlcLevel)> for ChangeSet {
    fn from_iter<I: IntoIterator<Item = (u32, MlcLevel)>>(iter: I) -> Self {
        ChangeSet {
            cells: iter.into_iter().collect(),
        }
    }
}

/// What kind of pulse the next (or a given) iteration applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IterKind {
    /// A RESET pulse over group `group` of `of` groups (`of` = 1 for a
    /// normal single-RESET write).
    Reset {
        /// Zero-based group index.
        group: u8,
        /// Total number of RESET groups for this write.
        of: u8,
    },
    /// The `index`-th SET pulse (1-based).
    Set {
        /// 1-based SET iteration number.
        index: u32,
    },
}

impl IterKind {
    /// True for RESET iterations.
    pub fn is_reset(self) -> bool {
        matches!(self, IterKind::Reset { .. })
    }
}

/// Power demand of one write iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IterationDemand<'a> {
    /// Pulse kind.
    pub kind: IterKind,
    /// Total cells pulsed in this iteration.
    pub active_cells: u32,
    /// Cells pulsed per chip (length = chip count).
    pub per_chip: &'a [u32],
}

/// One in-flight MLC line write.
///
/// Construction samples each changed cell's total iteration count and
/// precomputes every iteration's per-chip demand. The simulator then calls
/// [`LineWrite::next_demand`] / [`LineWrite::advance`] once per iteration.
///
/// # Examples
///
/// ```
/// use fpb_pcm::{ChangeSet, CellMapping, DimmGeometry, IterationSampler, LineWrite, MlcLevel};
/// use fpb_types::{MlcWriteModel, SimRng};
///
/// let geom = DimmGeometry::new(8, 1024);
/// let sampler = IterationSampler::new(MlcWriteModel::default());
/// let mut rng = SimRng::seed_from(5);
/// let changes = ChangeSet::from_cells(vec![(0, MlcLevel::L11), (1, MlcLevel::L00)]);
/// let mut w = LineWrite::new(&changes, &geom, CellMapping::Bim, &sampler, &mut rng, 1);
///
/// // Iteration 1: RESET both cells.
/// let d = w.next_demand().unwrap();
/// assert!(d.kind.is_reset());
/// assert_eq!(d.active_cells, 2);
/// w.advance();
///
/// // Iteration 2: only the L11 cell needs its single SET pulse.
/// let d = w.next_demand().unwrap();
/// assert_eq!(d.active_cells, 1);
/// w.advance();
/// assert!(w.is_complete());
/// ```
#[derive(Debug, Clone)]
pub struct LineWrite {
    chips: u8,
    reset_groups: u8,
    total_changed: u32,
    /// `(cell index, chip)` per changed cell, kept so Multi-RESET can
    /// re-split the RESET before the write starts.
    cell_chips: Vec<(u16, u8)>,
    /// `[group]` → total changed cells in that RESET group.
    reset_totals: Vec<u32>,
    /// `[group * chips + chip]` → changed cells of that group on that chip.
    reset_per_chip: Vec<u32>,
    /// `[j-1]` → cells active in SET iteration `j` (those with iters ≥ j+1).
    set_totals: Vec<u32>,
    /// `[(j-1) * chips + chip]` → active cells of SET iteration `j` on chip.
    set_per_chip: Vec<u32>,
    /// Completed iterations (RESET groups count individually).
    iters_done: u32,
    /// ECC-backed write-truncation threshold (None = WT disabled).
    truncate_at: Option<u32>,
    truncated: bool,
}

impl LineWrite {
    /// Builds the write state for `changes`, sampling per-cell iteration
    /// counts from `sampler`, distributing cells to chips with `mapping`,
    /// and splitting the RESET into `reset_groups` group-iterations
    /// (1 = normal write; Multi-RESET uses 2–4).
    ///
    /// # Panics
    ///
    /// Panics if `reset_groups` is zero.
    pub fn new(
        changes: &ChangeSet,
        geom: &DimmGeometry,
        mapping: CellMapping,
        sampler: &IterationSampler,
        rng: &mut SimRng,
        reset_groups: u8,
    ) -> Self {
        assert!(reset_groups > 0, "reset_groups must be nonzero");
        let chips = geom.chips();
        let n_chips = chips as usize;
        let m = reset_groups as usize;

        let mut reset_totals = vec![0u32; m];
        let mut reset_per_chip = vec![0u32; m * n_chips];
        let mut max_iters = 1u32;
        // (chip, iters) per changed cell; small scratch reused below.
        let mut cell_info: Vec<(usize, u32)> = Vec::with_capacity(changes.len());
        let mut cell_chips: Vec<(u16, u8)> = Vec::with_capacity(changes.len());

        for &(cell, level) in changes.iter() {
            let chip = mapping.chip_of(cell, chips).index();
            let group = geom.reset_group_of(cell, reset_groups) as usize;
            let iters = sampler.sample(level, rng);
            reset_totals[group] += 1;
            reset_per_chip[group * n_chips + chip] += 1;
            max_iters = max_iters.max(iters);
            cell_info.push((chip, iters));
            cell_chips.push((cell as u16, chip as u8));
        }

        // SET iteration j (1-based) pulses cells whose total iteration count
        // is at least j + 1. Build the tables with suffix sums.
        let set_iters = (max_iters - 1) as usize;
        let mut set_totals = vec![0u32; set_iters];
        let mut set_per_chip = vec![0u32; set_iters * n_chips];
        for &(chip, iters) in &cell_info {
            // This cell participates in SET iterations 1..=iters-1.
            for j in 1..iters {
                let idx = (j - 1) as usize;
                set_totals[idx] += 1;
                set_per_chip[idx * n_chips + chip] += 1;
            }
        }

        LineWrite {
            chips,
            reset_groups,
            total_changed: changes.len() as u32,
            cell_chips,
            reset_totals,
            reset_per_chip,
            set_totals,
            set_per_chip,
            iters_done: 0,
            truncate_at: None,
            truncated: false,
        }
    }

    /// Enables write truncation (§6.4.5, ref. 10 of the paper): once the number of cells
    /// still unconverged going into a SET iteration drops to `ecc_cells` or
    /// fewer, the write completes early and ECC covers the residue.
    #[must_use]
    pub fn with_truncation(mut self, ecc_cells: u32) -> Self {
        self.truncate_at = Some(ecc_cells);
        self
    }

    /// Total cells this write changes.
    pub fn total_changed(&self) -> u32 {
        self.total_changed
    }

    /// Number of RESET group-iterations (1 unless Multi-RESET split).
    pub fn reset_groups(&self) -> u8 {
        self.reset_groups
    }

    /// Changed cells in RESET group `g`.
    ///
    /// # Panics
    ///
    /// Panics if `g` is out of range.
    pub fn reset_group_cells(&self, g: u8) -> u32 {
        self.reset_totals[g as usize]
    }

    /// Total iterations this write takes if not truncated: all RESET groups
    /// plus the slowest cell's SET pulses.
    pub fn total_iterations(&self) -> u32 {
        self.reset_groups as u32 + self.set_totals.len() as u32
    }

    /// Iterations completed so far.
    pub fn iterations_done(&self) -> u32 {
        self.iters_done
    }

    /// Fraction of iterations completed, in `[0, 1]` (used by write
    /// cancellation to decide whether restarting is worthwhile).
    pub fn progress(&self) -> f64 {
        if self.total_iterations() == 0 {
            1.0
        } else {
            self.iters_done as f64 / self.total_iterations() as f64
        }
    }

    /// True once every changed cell has converged (or the write truncated).
    pub fn is_complete(&self) -> bool {
        self.truncated || self.iters_done >= self.total_iterations()
    }

    /// True if write truncation ended this write early.
    pub fn was_truncated(&self) -> bool {
        self.truncated
    }

    /// Demand of the next iteration, or `None` if the write is complete.
    ///
    /// Iterations with zero active cells (e.g. an empty RESET group under
    /// Multi-RESET) still appear — the pulse slot is occupied even if no
    /// cell in this line uses it — so callers can rely on the iteration
    /// sequence being dense.
    pub fn next_demand(&self) -> Option<IterationDemand<'_>> {
        if self.is_complete() {
            return None;
        }
        let i = self.iters_done;
        let n = self.chips as usize;
        if i < self.reset_groups as u32 {
            let g = i as usize;
            Some(IterationDemand {
                kind: IterKind::Reset {
                    group: g as u8,
                    of: self.reset_groups,
                },
                active_cells: self.reset_totals[g],
                per_chip: &self.reset_per_chip[g * n..(g + 1) * n],
            })
        } else {
            let j = (i - self.reset_groups as u32) as usize; // 0-based SET idx
            Some(IterationDemand {
                kind: IterKind::Set {
                    index: j as u32 + 1,
                },
                active_cells: self.set_totals[j],
                per_chip: &self.set_per_chip[j * n..(j + 1) * n],
            })
        }
    }

    /// Marks the current iteration finished and returns its kind.
    ///
    /// Applies write truncation if enabled: after finishing an iteration,
    /// if the cells that would be pulsed next number at most the ECC
    /// threshold, the write completes.
    ///
    /// # Panics
    ///
    /// Panics if called on a completed write.
    pub fn advance(&mut self) -> IterKind {
        let demand = self
            .next_demand()
            .expect("advance() called on a completed write");
        let kind = demand.kind;
        self.iters_done += 1;
        if let Some(limit) = self.truncate_at {
            // Only truncate once all RESET groups have fired.
            if self.iters_done >= self.reset_groups as u32 && !self.is_complete() {
                if let Some(next) = self.next_demand() {
                    if next.active_cells <= limit {
                        self.truncated = true;
                    }
                }
            }
        }
        kind
    }

    /// Number of cells still unfinished after `iters` completed iterations
    /// (the quantity PCM chips report back for FPB-IPM's allocation rule,
    /// §3.1 — available to the policy one iteration in arrears).
    ///
    /// Before all RESET groups have fired, every changed cell is
    /// outstanding. After RESET group `m` and `j` SET iterations, exactly
    /// the cells needing more than `j + 1` total iterations remain.
    pub fn unfinished_after(&self, iters: u32) -> u32 {
        if iters < self.reset_groups as u32 {
            return self.total_changed;
        }
        let j = (iters - self.reset_groups as u32) as usize; // SET pulses done
        // Cells remaining = those active in SET iteration j+1.
        self.set_totals.get(j).copied().unwrap_or(0)
    }

    /// Restarts the write from scratch (used by write cancellation). The
    /// sampled per-cell iteration counts are preserved, so a restarted
    /// write repeats the same power-demand profile.
    pub fn restart(&mut self) {
        self.iters_done = 0;
        self.truncated = false;
    }

    /// Total changed cells per chip (the whole-write per-chip demand used
    /// by Hay-style hold-for-the-duration budgeting).
    pub fn per_chip_changed(&self) -> Vec<u32> {
        let mut out = Vec::new();
        self.per_chip_changed_into(&mut out);
        out
    }

    /// [`LineWrite::per_chip_changed`] into a caller-owned buffer, for hot
    /// paths that re-budget writes every scheduling pass and must not
    /// allocate. The buffer is cleared and resized to the chip count.
    pub fn per_chip_changed_into(&self, out: &mut Vec<u32>) {
        let n = self.chips as usize;
        out.clear();
        out.resize(n, 0u32);
        for g in 0..self.reset_groups as usize {
            for (c, v) in out.iter_mut().zip(&self.reset_per_chip[g * n..(g + 1) * n]) {
                *c += v;
            }
        }
    }

    /// Per-chip counterpart of [`LineWrite::unfinished_after`]: how many of
    /// each chip's cells remain unfinished after `iters` completed
    /// iterations. Returns `None` before all RESET groups have fired (when
    /// the answer is simply "all changed cells", see
    /// [`LineWrite::per_chip_changed`]).
    pub fn per_chip_unfinished_after(&self, iters: u32) -> Option<&[u32]> {
        if iters < self.reset_groups as u32 {
            return None;
        }
        let j = (iters - self.reset_groups as u32) as usize;
        let n = self.chips as usize;
        if j < self.set_totals.len() {
            Some(&self.set_per_chip[j * n..(j + 1) * n])
        } else {
            Some(&[])
        }
    }

    /// Degrades this write to its SLC fallback form: the RESET pulse(s)
    /// still fire, but the multi-level program-and-verify SET schedule is
    /// dropped — the data is committed in single-bit form (to a spare SLC
    /// region or as the MSB-only encoding), which needs no iterative
    /// verification. Used by the controller's graceful-degradation path
    /// when retries are exhausted or the DIMM is in degraded mode.
    ///
    /// Safe at any point in the write's life: if the SET phase had already
    /// begun, the write completes at the end of its RESET phase.
    pub fn degrade_to_slc(&mut self) {
        self.set_totals.clear();
        self.set_per_chip.clear();
        self.iters_done = self.iters_done.min(self.reset_groups as u32);
    }

    /// Re-splits the RESET into `groups` group-iterations (Multi-RESET,
    /// §3.2). Used by the power manager when a write cannot be admitted
    /// whole: splitting lowers the per-iteration RESET demand at the cost
    /// of `groups − 1` extra RESET pulses of latency.
    ///
    /// # Panics
    ///
    /// Panics if the write has already started or `groups` is zero.
    pub fn resplit_reset(&mut self, geom: &DimmGeometry, groups: u8) {
        assert_eq!(self.iters_done, 0, "cannot re-split a started write");
        assert!(groups > 0, "groups must be nonzero");
        let n = self.chips as usize;
        let m = groups as usize;
        let mut reset_totals = vec![0u32; m];
        let mut reset_per_chip = vec![0u32; m * n];
        for &(cell, chip) in &self.cell_chips {
            let g = geom.reset_group_of(cell as u32, groups) as usize;
            reset_totals[g] += 1;
            reset_per_chip[g * n + chip as usize] += 1;
        }
        self.reset_groups = groups;
        self.reset_totals = reset_totals;
        self.reset_per_chip = reset_per_chip;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpb_types::MlcWriteModel;

    fn fixture() -> (DimmGeometry, IterationSampler) {
        (
            DimmGeometry::new(8, 1024),
            IterationSampler::new(MlcWriteModel::default()),
        )
    }

    fn changes(n: u32, level: MlcLevel) -> ChangeSet {
        (0..n).map(|i| (i, level)).collect()
    }

    #[test]
    fn empty_write_is_instantly_empty() {
        let (geom, s) = fixture();
        let mut rng = SimRng::seed_from(1);
        let w = LineWrite::new(&ChangeSet::empty(), &geom, CellMapping::Bim, &s, &mut rng, 1);
        assert_eq!(w.total_changed(), 0);
        // A zero-change write still has its RESET slot but pulses nothing.
        assert_eq!(w.total_iterations(), 1);
        assert_eq!(w.next_demand().unwrap().active_cells, 0);
    }

    #[test]
    fn all_l00_completes_after_reset() {
        let (geom, s) = fixture();
        let mut rng = SimRng::seed_from(2);
        let mut w = LineWrite::new(&changes(50, MlcLevel::L00), &geom, CellMapping::Vim, &s, &mut rng, 1);
        assert_eq!(w.total_iterations(), 1);
        let d = w.next_demand().unwrap();
        assert_eq!(d.kind, IterKind::Reset { group: 0, of: 1 });
        assert_eq!(d.active_cells, 50);
        w.advance();
        assert!(w.is_complete());
        assert!(w.next_demand().is_none());
    }

    #[test]
    fn l11_needs_exactly_one_set() {
        let (geom, s) = fixture();
        let mut rng = SimRng::seed_from(3);
        let mut w = LineWrite::new(&changes(10, MlcLevel::L11), &geom, CellMapping::Vim, &s, &mut rng, 1);
        assert_eq!(w.total_iterations(), 2);
        w.advance(); // RESET
        let d = w.next_demand().unwrap();
        assert_eq!(d.kind, IterKind::Set { index: 1 });
        assert_eq!(d.active_cells, 10);
        w.advance();
        assert!(w.is_complete());
    }

    #[test]
    fn set_demand_is_monotonically_nonincreasing() {
        let (geom, s) = fixture();
        let mut rng = SimRng::seed_from(4);
        let mut w = LineWrite::new(
            &changes(200, MlcLevel::L01),
            &geom,
            CellMapping::Bim,
            &s,
            &mut rng,
            1,
        );
        w.advance(); // RESET
        let mut prev = u32::MAX;
        while let Some(d) = w.next_demand() {
            assert!(d.active_cells <= prev, "demand must step down");
            assert!(d.active_cells > 0, "trailing iterations must pulse cells");
            prev = d.active_cells;
            w.advance();
        }
        assert!(w.is_complete());
    }

    #[test]
    fn per_chip_sums_match_totals() {
        let (geom, s) = fixture();
        let mut rng = SimRng::seed_from(5);
        let cs: ChangeSet = (0..300u32).map(|i| (i * 3 % 1024, MlcLevel::L01)).collect();
        for mapping in CellMapping::ALL {
            let mut w = LineWrite::new(&cs, &geom, mapping, &s, &mut rng, 1);
            while let Some(d) = w.next_demand() {
                assert_eq!(
                    d.per_chip.iter().sum::<u32>(),
                    d.active_cells,
                    "{mapping} {:?}",
                    d.kind
                );
                assert_eq!(d.per_chip.len(), 8);
                w.advance();
            }
        }
    }

    #[test]
    fn multi_reset_splits_demand() {
        let (geom, s) = fixture();
        let mut rng = SimRng::seed_from(6);
        // Change every 4th cell: spread across the whole chunk layout.
        let cs: ChangeSet = (0..256u32).map(|i| (i * 4, MlcLevel::L11)).collect();
        let mut w = LineWrite::new(&cs, &geom, CellMapping::Vim, &s, &mut rng, 3);
        assert_eq!(w.reset_groups(), 3);
        assert_eq!(w.total_iterations(), 3 + 1); // 3 RESET groups + 1 SET
        let mut reset_cells = 0;
        for g in 0..3u8 {
            let d = w.next_demand().unwrap();
            assert_eq!(d.kind, IterKind::Reset { group: g, of: 3 });
            assert!(
                d.active_cells < 256,
                "each group must RESET a strict subset"
            );
            reset_cells += d.active_cells;
            w.advance();
        }
        assert_eq!(reset_cells, 256, "groups must partition the changes");
        // All cells then SET together.
        assert_eq!(w.next_demand().unwrap().active_cells, 256);
    }

    #[test]
    fn multi_reset_group_totals_accessible() {
        let (geom, s) = fixture();
        let mut rng = SimRng::seed_from(7);
        let cs = changes(100, MlcLevel::L00);
        let w = LineWrite::new(&cs, &geom, CellMapping::Naive, &s, &mut rng, 3);
        let total: u32 = (0..3).map(|g| w.reset_group_cells(g)).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn unfinished_after_tracks_set_tail() {
        let (geom, s) = fixture();
        let mut rng = SimRng::seed_from(8);
        let cs = changes(64, MlcLevel::L01);
        let w = LineWrite::new(&cs, &geom, CellMapping::Bim, &s, &mut rng, 1);
        // Before and right after the RESET everything is outstanding.
        assert_eq!(w.unfinished_after(0), 64);
        // unfinished_after(i) equals demand of iteration i+1 for SET iters.
        let mut probe = w.clone();
        probe.advance(); // RESET done: 1 iteration complete
        let mut done = 1;
        while let Some(d) = probe.next_demand() {
            assert_eq!(w.unfinished_after(done), d.active_cells);
            probe.advance();
            done += 1;
        }
        assert_eq!(w.unfinished_after(done), 0);
        assert_eq!(w.unfinished_after(done + 10), 0);
    }

    #[test]
    fn truncation_ends_write_early() {
        let (geom, s) = fixture();
        let mut rng = SimRng::seed_from(9);
        let cs = changes(64, MlcLevel::L01);
        let full = LineWrite::new(&cs, &geom, CellMapping::Bim, &s, &mut rng, 1);
        let mut truncated = full.clone().with_truncation(8);
        let mut iters = 0;
        while !truncated.is_complete() {
            truncated.advance();
            iters += 1;
        }
        assert!(truncated.was_truncated());
        assert!(
            iters < full.total_iterations(),
            "truncated {iters} vs full {}",
            full.total_iterations()
        );
        // The tail it skipped was within the ECC budget.
        assert!(full.unfinished_after(iters) <= 8);
    }

    #[test]
    fn truncation_respects_reset_groups() {
        let (geom, s) = fixture();
        let mut rng = SimRng::seed_from(10);
        // 4 slow cells, under the ECC limit from the start.
        let cs = changes(4, MlcLevel::L01);
        let mut w = LineWrite::new(&cs, &geom, CellMapping::Vim, &s, &mut rng, 3)
            .with_truncation(8);
        // Must still fire all 3 RESET groups before truncating.
        for _ in 0..3 {
            assert!(!w.is_complete());
            assert!(w.next_demand().is_some());
            w.advance();
        }
        assert!(w.is_complete());
        assert!(w.was_truncated());
    }

    #[test]
    fn restart_resets_progress_and_keeps_profile() {
        let (geom, s) = fixture();
        let mut rng = SimRng::seed_from(11);
        let cs = changes(32, MlcLevel::L01);
        let mut w = LineWrite::new(&cs, &geom, CellMapping::Bim, &s, &mut rng, 1);
        let first_demand = w.next_demand().unwrap().active_cells;
        w.advance();
        w.advance();
        assert!(w.progress() > 0.0);
        w.restart();
        assert_eq!(w.iterations_done(), 0);
        assert_eq!(w.progress(), 0.0);
        assert_eq!(w.next_demand().unwrap().active_cells, first_demand);
    }

    #[test]
    #[should_panic(expected = "completed write")]
    fn advancing_completed_write_panics() {
        let (geom, s) = fixture();
        let mut rng = SimRng::seed_from(12);
        let mut w = LineWrite::new(
            &changes(1, MlcLevel::L00),
            &geom,
            CellMapping::Vim,
            &s,
            &mut rng,
            1,
        );
        w.advance();
        w.advance();
    }

    #[test]
    fn per_chip_changed_sums_to_total() {
        let (geom, s) = fixture();
        let mut rng = SimRng::seed_from(20);
        let cs: ChangeSet = (0..150u32).map(|i| (i * 7 % 1024, MlcLevel::L10)).collect();
        for groups in [1u8, 3] {
            let w = LineWrite::new(&cs, &geom, CellMapping::Bim, &s, &mut rng, groups);
            let pc = w.per_chip_changed();
            assert_eq!(pc.iter().sum::<u32>(), 150);
        }
    }

    #[test]
    fn per_chip_unfinished_matches_global() {
        let (geom, s) = fixture();
        let mut rng = SimRng::seed_from(21);
        let cs = changes(80, MlcLevel::L01);
        let w = LineWrite::new(&cs, &geom, CellMapping::Vim, &s, &mut rng, 1);
        assert!(w.per_chip_unfinished_after(0).is_none());
        for i in 1..w.total_iterations() + 2 {
            let per_chip = w.per_chip_unfinished_after(i).unwrap();
            assert_eq!(
                per_chip.iter().sum::<u32>(),
                w.unfinished_after(i),
                "iteration {i}"
            );
        }
    }

    #[test]
    fn resplit_preserves_totals_and_sets() {
        let (geom, s) = fixture();
        let mut rng = SimRng::seed_from(22);
        let cs: ChangeSet = (0..240u32).map(|i| (i * 4 % 1024, MlcLevel::L01)).collect();
        let mut w = LineWrite::new(&cs, &geom, CellMapping::Bim, &s, &mut rng, 1);
        let set_iters_before = w.total_iterations() - 1;
        w.resplit_reset(&geom, 3);
        assert_eq!(w.reset_groups(), 3);
        assert_eq!(
            (0..3).map(|g| w.reset_group_cells(g)).sum::<u32>(),
            240,
            "re-split must partition the changes"
        );
        // SET schedule unchanged; only RESET latency grows.
        assert_eq!(w.total_iterations(), 3 + set_iters_before);
        // Per-chip tables still consistent.
        let d = w.next_demand().unwrap();
        assert_eq!(d.per_chip.iter().sum::<u32>(), d.active_cells);
    }

    #[test]
    #[should_panic(expected = "cannot re-split")]
    fn resplit_after_start_panics() {
        let (geom, s) = fixture();
        let mut rng = SimRng::seed_from(23);
        let mut w = LineWrite::new(
            &changes(10, MlcLevel::L00),
            &geom,
            CellMapping::Vim,
            &s,
            &mut rng,
            1,
        );
        w.advance();
        w.resplit_reset(&geom, 3);
    }

    #[test]
    fn changeset_rotation_wraps() {
        let cs = ChangeSet::from_cells(vec![(1020, MlcLevel::L01)]);
        let r = cs.rotated(10, 1024);
        assert_eq!(r.iter().next().unwrap().0, 6);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn progress_spans_zero_to_one() {
        let (geom, s) = fixture();
        let mut rng = SimRng::seed_from(13);
        let mut w = LineWrite::new(
            &changes(16, MlcLevel::L10),
            &geom,
            CellMapping::Bim,
            &s,
            &mut rng,
            1,
        );
        assert_eq!(w.progress(), 0.0);
        while !w.is_complete() {
            w.advance();
        }
        assert_eq!(w.progress(), 1.0);
    }
}
