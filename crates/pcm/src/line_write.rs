//! The state machine for one in-flight MLC line write.
//!
//! A line write proceeds in *iterations* (§2.1.1): one RESET pulse over all
//! changed cells (optionally split into several group-RESETs by Multi-RESET,
//! §3.2), then SET pulses in which every not-yet-converged cell
//! participates. [`LineWrite`] precomputes, at admission time, the per-chip
//! active-cell counts of every future iteration so that power policies can
//! query demand in O(1) per iteration.

use crate::cell::MlcLevel;
use crate::geometry::DimmGeometry;
use crate::mapping::CellMapping;
use crate::write_model::IterationSampler;
use fpb_types::SimRng;

/// The set of cells a write must actually change, with their target levels.
///
/// Produced by the differential-write comparison (read-before-write in the
/// bridge chip, §3.1): only cells whose stored level differs from the new
/// data are programmed.
///
/// # Examples
///
/// ```
/// use fpb_pcm::{ChangeSet, MlcLevel};
///
/// let cs = ChangeSet::from_cells(vec![(3, MlcLevel::L01), (64, MlcLevel::L11)]);
/// assert_eq!(cs.len(), 2);
/// let rotated = cs.rotated(10, 1024);
/// assert_eq!(rotated.iter().next().unwrap().0, 13);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ChangeSet {
    cells: Vec<(u32, MlcLevel)>,
}

impl ChangeSet {
    /// Creates a change set from `(cell index, target level)` pairs.
    pub fn from_cells(cells: Vec<(u32, MlcLevel)>) -> Self {
        ChangeSet { cells }
    }

    /// An empty change set (a silent write: no cell differs).
    pub fn empty() -> Self {
        ChangeSet::default()
    }

    /// Number of changed cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True if no cells change.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Iterates over `(cell index, target level)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = &(u32, MlcLevel)> {
        self.cells.iter()
    }

    /// The `(cell index, target level)` pairs as a slice.
    pub fn cells(&self) -> &[(u32, MlcLevel)] {
        &self.cells
    }

    /// Removes all cells, keeping the backing storage for reuse.
    pub fn clear(&mut self) {
        self.cells.clear();
    }

    /// Appends one `(cell index, target level)` pair.
    pub fn push(&mut self, cell: u32, level: MlcLevel) {
        self.cells.push((cell, level));
    }

    /// Shifts every cell by a wear-leveling rotation `offset` in place
    /// (cells wrap modulo `cells_per_line`), without reallocating.
    ///
    /// # Panics
    ///
    /// Panics if `cells_per_line` is zero.
    pub fn rotate_in_place(&mut self, offset: u32, cells_per_line: u32) {
        assert!(cells_per_line > 0, "cells_per_line must be nonzero");
        for (c, _) in &mut self.cells {
            *c = (*c + offset) % cells_per_line;
        }
    }

    /// Returns the change set shifted by a wear-leveling rotation `offset`
    /// (cells wrap modulo `cells_per_line`).
    ///
    /// # Panics
    ///
    /// Panics if `cells_per_line` is zero.
    #[must_use]
    pub fn rotated(&self, offset: u32, cells_per_line: u32) -> ChangeSet {
        let mut out = self.clone();
        out.rotate_in_place(offset, cells_per_line);
        out
    }
}

impl FromIterator<(u32, MlcLevel)> for ChangeSet {
    fn from_iter<I: IntoIterator<Item = (u32, MlcLevel)>>(iter: I) -> Self {
        ChangeSet {
            cells: iter.into_iter().collect(),
        }
    }
}

/// What kind of pulse the next (or a given) iteration applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IterKind {
    /// A RESET pulse over group `group` of `of` groups (`of` = 1 for a
    /// normal single-RESET write).
    Reset {
        /// Zero-based group index.
        group: u8,
        /// Total number of RESET groups for this write.
        of: u8,
    },
    /// The `index`-th SET pulse (1-based).
    Set {
        /// 1-based SET iteration number.
        index: u32,
    },
}

impl IterKind {
    /// True for RESET iterations.
    pub fn is_reset(self) -> bool {
        matches!(self, IterKind::Reset { .. })
    }
}

/// Power demand of one write iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IterationDemand<'a> {
    /// Pulse kind.
    pub kind: IterKind,
    /// Total cells pulsed in this iteration.
    pub active_cells: u32,
    /// Cells pulsed per chip (length = chip count).
    pub per_chip: &'a [u32],
}

/// One in-flight MLC line write.
///
/// Construction samples each changed cell's total iteration count and
/// precomputes every iteration's per-chip demand. The simulator then calls
/// [`LineWrite::next_demand`] / [`LineWrite::advance`] once per iteration.
///
/// # Examples
///
/// ```
/// use fpb_pcm::{ChangeSet, CellMapping, DimmGeometry, IterationSampler, LineWrite, MlcLevel};
/// use fpb_types::{MlcWriteModel, SimRng};
///
/// let geom = DimmGeometry::new(8, 1024);
/// let sampler = IterationSampler::new(MlcWriteModel::default());
/// let mut rng = SimRng::seed_from(5);
/// let changes = ChangeSet::from_cells(vec![(0, MlcLevel::L11), (1, MlcLevel::L00)]);
/// let mut w = LineWrite::new(&changes, &geom, CellMapping::Bim, &sampler, &mut rng, 1);
///
/// // Iteration 1: RESET both cells.
/// let d = w.next_demand().unwrap();
/// assert!(d.kind.is_reset());
/// assert_eq!(d.active_cells, 2);
/// w.advance();
///
/// // Iteration 2: only the L11 cell needs its single SET pulse.
/// let d = w.next_demand().unwrap();
/// assert_eq!(d.active_cells, 1);
/// w.advance();
/// assert!(w.is_complete());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineWrite {
    chips: u8,
    reset_groups: u8,
    total_changed: u32,
    /// `(cell index, chip, sampled iteration count)` per changed cell,
    /// kept so Multi-RESET can re-split the RESET before the write starts.
    cell_chips: Vec<(u16, u8, u32)>,
    /// `[group]` → total changed cells in that RESET group.
    reset_totals: Vec<u32>,
    /// `[group * chips + chip]` → changed cells of that group on that chip.
    reset_per_chip: Vec<u32>,
    /// `[j-1]` → cells active in SET iteration `j` (those with iters ≥ j+1).
    set_totals: Vec<u32>,
    /// `[(j-1) * chips + chip]` → active cells of SET iteration `j` on chip.
    set_per_chip: Vec<u32>,
    /// Completed iterations (RESET groups count individually).
    iters_done: u32,
    /// ECC-backed write-truncation threshold (None = WT disabled).
    truncate_at: Option<u32>,
    truncated: bool,
}

impl LineWrite {
    /// Builds the write state for `changes`, sampling per-cell iteration
    /// counts from `sampler`, distributing cells to chips with `mapping`,
    /// and splitting the RESET into `reset_groups` group-iterations
    /// (1 = normal write; Multi-RESET uses 2–4).
    ///
    /// # Panics
    ///
    /// Panics if `reset_groups` is zero.
    pub fn new(
        changes: &ChangeSet,
        geom: &DimmGeometry,
        mapping: CellMapping,
        sampler: &IterationSampler,
        rng: &mut SimRng,
        reset_groups: u8,
    ) -> Self {
        Self::from_cells(changes.cells(), geom, mapping, sampler, rng, reset_groups)
    }

    /// [`LineWrite::new`] over a raw cell slice, with freshly allocated
    /// backing storage. See [`WriteBufferPool::build`] for the pooled
    /// variant; both produce identical writes given the same RNG state.
    ///
    /// # Panics
    ///
    /// Panics if `reset_groups` is zero.
    pub fn from_cells(
        cells: &[(u32, MlcLevel)],
        geom: &DimmGeometry,
        mapping: CellMapping,
        sampler: &IterationSampler,
        rng: &mut SimRng,
        reset_groups: u8,
    ) -> Self {
        Self::build_with(
            WriteBuffers::default(),
            cells,
            geom,
            mapping,
            sampler,
            rng,
            reset_groups,
        )
    }

    /// Shared construction core: fills `bufs` (cleared first, so recycled
    /// storage is safe) with the per-iteration demand tables for `cells`.
    fn build_with(
        bufs: WriteBuffers,
        cells: &[(u32, MlcLevel)],
        geom: &DimmGeometry,
        mapping: CellMapping,
        sampler: &IterationSampler,
        rng: &mut SimRng,
        reset_groups: u8,
    ) -> Self {
        assert!(reset_groups > 0, "reset_groups must be nonzero");
        let chips = geom.chips();
        let n_chips = chips as usize;
        let m = reset_groups as usize;

        let WriteBuffers {
            mut cell_chips,
            mut reset_totals,
            mut reset_per_chip,
            mut set_totals,
            mut set_per_chip,
        } = bufs;
        cell_chips.clear();
        cell_chips.reserve(cells.len());
        reset_totals.clear();
        reset_totals.resize(m, 0u32);
        reset_per_chip.clear();
        reset_per_chip.resize(m * n_chips, 0u32);

        let mut max_iters = 1u32;
        for &(cell, level) in cells {
            let chip = mapping.chip_of(cell, chips).index();
            let group = geom.reset_group_of(cell, reset_groups) as usize;
            let iters = sampler.sample(level, rng);
            reset_totals[group] += 1;
            reset_per_chip[group * n_chips + chip] += 1;
            max_iters = max_iters.max(iters);
            cell_chips.push((cell as u16, chip as u8, iters));
        }

        // SET iteration j (1-based) pulses cells whose total iteration count
        // is at least j + 1 — i.e. a cell with `iters` total participates in
        // SET rows 0..iters-1. Rather than incrementing every row a cell
        // touches (O(cells × iters)), mark each cell only at its *last* row
        // and suffix-sum downward (O(cells + rows × chips)).
        let set_iters = (max_iters - 1) as usize;
        set_totals.clear();
        set_totals.resize(set_iters, 0u32);
        set_per_chip.clear();
        set_per_chip.resize(set_iters * n_chips, 0u32);
        for &(_, chip, iters) in &cell_chips {
            if iters >= 2 {
                let last = (iters - 2) as usize;
                set_totals[last] += 1;
                set_per_chip[last * n_chips + chip as usize] += 1;
            }
        }
        for idx in (0..set_iters.saturating_sub(1)).rev() {
            set_totals[idx] += set_totals[idx + 1];
            for c in 0..n_chips {
                set_per_chip[idx * n_chips + c] += set_per_chip[(idx + 1) * n_chips + c];
            }
        }

        LineWrite {
            chips,
            reset_groups,
            // A line holds at most a few thousand cells, far below u32.
            // fpb-lint: allow(truncating_cast)
            total_changed: cells.len() as u32,
            cell_chips,
            reset_totals,
            reset_per_chip,
            set_totals,
            set_per_chip,
            iters_done: 0,
            truncate_at: None,
            truncated: false,
        }
    }

    /// Enables write truncation (§6.4.5, ref. 10 of the paper): once the number of cells
    /// still unconverged going into a SET iteration drops to `ecc_cells` or
    /// fewer, the write completes early and ECC covers the residue.
    #[must_use]
    pub fn with_truncation(mut self, ecc_cells: u32) -> Self {
        self.truncate_at = Some(ecc_cells);
        self
    }

    /// Total cells this write changes.
    pub fn total_changed(&self) -> u32 {
        self.total_changed
    }

    /// Number of RESET group-iterations (1 unless Multi-RESET split).
    pub fn reset_groups(&self) -> u8 {
        self.reset_groups
    }

    /// Changed cells in RESET group `g`.
    ///
    /// # Panics
    ///
    /// Panics if `g` is out of range.
    pub fn reset_group_cells(&self, g: u8) -> u32 {
        self.reset_totals[g as usize]
    }

    /// Total iterations this write takes if not truncated: all RESET groups
    /// plus the slowest cell's SET pulses.
    pub fn total_iterations(&self) -> u32 {
        self.reset_groups as u32 + self.set_totals.len() as u32
    }

    /// Iterations completed so far.
    pub fn iterations_done(&self) -> u32 {
        self.iters_done
    }

    /// Fraction of iterations completed, in `[0, 1]` (used by write
    /// cancellation to decide whether restarting is worthwhile).
    pub fn progress(&self) -> f64 {
        if self.total_iterations() == 0 {
            1.0
        } else {
            self.iters_done as f64 / self.total_iterations() as f64
        }
    }

    /// True once every changed cell has converged (or the write truncated).
    pub fn is_complete(&self) -> bool {
        self.truncated || self.iters_done >= self.total_iterations()
    }

    /// True if write truncation ended this write early.
    pub fn was_truncated(&self) -> bool {
        self.truncated
    }

    /// Demand of the next iteration, or `None` if the write is complete.
    ///
    /// Iterations with zero active cells (e.g. an empty RESET group under
    /// Multi-RESET) still appear — the pulse slot is occupied even if no
    /// cell in this line uses it — so callers can rely on the iteration
    /// sequence being dense.
    pub fn next_demand(&self) -> Option<IterationDemand<'_>> {
        if self.is_complete() {
            return None;
        }
        let i = self.iters_done;
        let n = self.chips as usize;
        if i < self.reset_groups as u32 {
            let g = i as usize;
            Some(IterationDemand {
                kind: IterKind::Reset {
                    group: g as u8,
                    of: self.reset_groups,
                },
                active_cells: self.reset_totals[g],
                per_chip: &self.reset_per_chip[g * n..(g + 1) * n],
            })
        } else {
            let j = (i - self.reset_groups as u32) as usize; // 0-based SET idx
            Some(IterationDemand {
                kind: IterKind::Set {
                    index: j as u32 + 1,
                },
                active_cells: self.set_totals[j],
                per_chip: &self.set_per_chip[j * n..(j + 1) * n],
            })
        }
    }

    /// Marks the current iteration finished and returns its kind, or
    /// `None` if the write is already complete (a completed write has no
    /// iteration to advance; the call is a no-op).
    ///
    /// Applies write truncation if enabled: after finishing an iteration,
    /// if the cells that would be pulsed next number at most the ECC
    /// threshold, the write completes.
    pub fn advance(&mut self) -> Option<IterKind> {
        let kind = self.next_demand()?.kind;
        self.iters_done += 1;
        if let Some(limit) = self.truncate_at {
            // Only truncate once all RESET groups have fired.
            if self.iters_done >= self.reset_groups as u32 && !self.is_complete() {
                if let Some(next) = self.next_demand() {
                    if next.active_cells <= limit {
                        self.truncated = true;
                    }
                }
            }
        }
        Some(kind)
    }

    /// Number of cells still unfinished after `iters` completed iterations
    /// (the quantity PCM chips report back for FPB-IPM's allocation rule,
    /// §3.1 — available to the policy one iteration in arrears).
    ///
    /// Before all RESET groups have fired, every changed cell is
    /// outstanding. After RESET group `m` and `j` SET iterations, exactly
    /// the cells needing more than `j + 1` total iterations remain.
    pub fn unfinished_after(&self, iters: u32) -> u32 {
        if iters < self.reset_groups as u32 {
            return self.total_changed;
        }
        let j = (iters - self.reset_groups as u32) as usize; // SET pulses done
        // Cells remaining = those active in SET iteration j+1.
        self.set_totals.get(j).copied().unwrap_or(0)
    }

    /// Restarts the write from scratch (used by write cancellation). The
    /// sampled per-cell iteration counts are preserved, so a restarted
    /// write repeats the same power-demand profile.
    pub fn restart(&mut self) {
        self.iters_done = 0;
        self.truncated = false;
    }

    /// Total changed cells per chip (the whole-write per-chip demand used
    /// by Hay-style hold-for-the-duration budgeting).
    pub fn per_chip_changed(&self) -> Vec<u32> {
        let mut out = Vec::new();
        self.per_chip_changed_into(&mut out);
        out
    }

    /// [`LineWrite::per_chip_changed`] into a caller-owned buffer, for hot
    /// paths that re-budget writes every scheduling pass and must not
    /// allocate. The buffer is cleared and resized to the chip count.
    pub fn per_chip_changed_into(&self, out: &mut Vec<u32>) {
        let n = self.chips as usize;
        out.clear();
        out.resize(n, 0u32);
        for g in 0..self.reset_groups as usize {
            for (c, v) in out.iter_mut().zip(&self.reset_per_chip[g * n..(g + 1) * n]) {
                *c += v;
            }
        }
    }

    /// Per-chip counterpart of [`LineWrite::unfinished_after`]: how many of
    /// each chip's cells remain unfinished after `iters` completed
    /// iterations. Returns `None` before all RESET groups have fired (when
    /// the answer is simply "all changed cells", see
    /// [`LineWrite::per_chip_changed`]).
    pub fn per_chip_unfinished_after(&self, iters: u32) -> Option<&[u32]> {
        if iters < self.reset_groups as u32 {
            return None;
        }
        let j = (iters - self.reset_groups as u32) as usize;
        let n = self.chips as usize;
        if j < self.set_totals.len() {
            Some(&self.set_per_chip[j * n..(j + 1) * n])
        } else {
            Some(&[])
        }
    }

    /// Degrades this write to its SLC fallback form: the RESET pulse(s)
    /// still fire, but the multi-level program-and-verify SET schedule is
    /// dropped — the data is committed in single-bit form (to a spare SLC
    /// region or as the MSB-only encoding), which needs no iterative
    /// verification. Used by the controller's graceful-degradation path
    /// when retries are exhausted or the DIMM is in degraded mode.
    ///
    /// Safe at any point in the write's life: if the SET phase had already
    /// begun, the write completes at the end of its RESET phase.
    pub fn degrade_to_slc(&mut self) {
        self.set_totals.clear();
        self.set_per_chip.clear();
        self.iters_done = self.iters_done.min(self.reset_groups as u32);
    }

    /// Re-splits the RESET into `groups` group-iterations (Multi-RESET,
    /// §3.2). Used by the power manager when a write cannot be admitted
    /// whole: splitting lowers the per-iteration RESET demand at the cost
    /// of `groups − 1` extra RESET pulses of latency.
    ///
    /// # Panics
    ///
    /// Panics if the write has already started or `groups` is zero.
    pub fn resplit_reset(&mut self, geom: &DimmGeometry, groups: u8) {
        assert_eq!(self.iters_done, 0, "cannot re-split a started write");
        assert!(groups > 0, "groups must be nonzero");
        let n = self.chips as usize;
        let m = groups as usize;
        let mut reset_totals = vec![0u32; m];
        let mut reset_per_chip = vec![0u32; m * n];
        for &(cell, chip, _) in &self.cell_chips {
            let g = geom.reset_group_of(cell as u32, groups) as usize;
            reset_totals[g] += 1;
            reset_per_chip[g * n + chip as usize] += 1;
        }
        self.reset_groups = groups;
        self.reset_totals = reset_totals;
        self.reset_per_chip = reset_per_chip;
    }
}

/// The recyclable backing storage of one [`LineWrite`].
#[derive(Debug, Default)]
struct WriteBuffers {
    cell_chips: Vec<(u16, u8, u32)>,
    reset_totals: Vec<u32>,
    reset_per_chip: Vec<u32>,
    set_totals: Vec<u32>,
    set_per_chip: Vec<u32>,
}

/// Upper bound on retained buffer sets / change sets / round vectors, so a
/// pathological burst cannot turn the pool into an unbounded cache.
const MAX_POOLED: usize = 4096;

/// A free-list of retired write-pipeline buffers.
///
/// The simulator mints a [`LineWrite`] per admitted write (plus a
/// [`ChangeSet`] and a per-task round vector); at steady state every one of
/// those allocations can be served from storage recycled off completed
/// writes, making the per-write pipeline allocation-free. Recycled buffers
/// are always cleared before reuse, and pooling never touches an RNG, so a
/// pooled run is bit-for-bit identical to a fresh-allocation run (the
/// `pooled_vs_fresh` proptests hold this invariant down).
///
/// # Examples
///
/// ```
/// use fpb_pcm::{ChangeSet, CellMapping, DimmGeometry, IterationSampler, MlcLevel, WriteBufferPool};
/// use fpb_types::{MlcWriteModel, SimRng};
///
/// let geom = DimmGeometry::new(8, 1024);
/// let sampler = IterationSampler::new(MlcWriteModel::default());
/// let mut rng = SimRng::seed_from(5);
/// let mut pool = WriteBufferPool::new();
///
/// let w = pool.build(&[(0, MlcLevel::L11)], &geom, CellMapping::Bim, &sampler, &mut rng, 1);
/// pool.recycle(w);
/// let _next = pool.build(&[(1, MlcLevel::L00)], &geom, CellMapping::Bim, &sampler, &mut rng, 1);
/// assert_eq!(pool.reuses(), 1);
/// ```
#[derive(Debug, Default)]
pub struct WriteBufferPool {
    bufs: Vec<WriteBuffers>,
    change_sets: Vec<ChangeSet>,
    round_vecs: Vec<Vec<LineWrite>>,
    reuses: u64,
    fresh: u64,
}

impl WriteBufferPool {
    /// An empty pool.
    pub fn new() -> Self {
        WriteBufferPool::default()
    }

    /// Builds a [`LineWrite`] for `cells`, reusing retired backing storage
    /// when available. Identical in behaviour (including RNG consumption)
    /// to [`LineWrite::from_cells`].
    pub fn build(
        &mut self,
        cells: &[(u32, MlcLevel)],
        geom: &DimmGeometry,
        mapping: CellMapping,
        sampler: &IterationSampler,
        rng: &mut SimRng,
        reset_groups: u8,
    ) -> LineWrite {
        let bufs = match self.bufs.pop() {
            Some(b) => {
                self.reuses += 1;
                b
            }
            None => {
                self.fresh += 1;
                WriteBuffers::default()
            }
        };
        LineWrite::build_with(bufs, cells, geom, mapping, sampler, rng, reset_groups)
    }

    /// Returns a completed write's backing storage to the free-list.
    pub fn recycle(&mut self, write: LineWrite) {
        if self.bufs.len() >= MAX_POOLED {
            return;
        }
        let LineWrite {
            cell_chips,
            reset_totals,
            reset_per_chip,
            set_totals,
            set_per_chip,
            ..
        } = write;
        self.bufs.push(WriteBuffers {
            cell_chips,
            reset_totals,
            reset_per_chip,
            set_totals,
            set_per_chip,
        });
    }

    /// Takes a cleared [`ChangeSet`], reusing recycled storage if any.
    pub fn take_change_set(&mut self) -> ChangeSet {
        let mut cs = self.change_sets.pop().unwrap_or_default();
        cs.clear();
        cs
    }

    /// Returns a no-longer-needed change set's storage to the free-list.
    pub fn recycle_change_set(&mut self, cs: ChangeSet) {
        if self.change_sets.len() < MAX_POOLED {
            self.change_sets.push(cs);
        }
    }

    /// Takes an empty round vector (`Vec<LineWrite>`), reusing recycled
    /// storage if any.
    pub fn take_rounds(&mut self) -> Vec<LineWrite> {
        let mut v = self.round_vecs.pop().unwrap_or_default();
        v.clear();
        v
    }

    /// Recycles a completed task's rounds: every write's buffers go back to
    /// the free-list, and the vector itself is retained for reuse.
    pub fn recycle_rounds(&mut self, mut rounds: Vec<LineWrite>) {
        for w in rounds.drain(..) {
            self.recycle(w);
        }
        if self.round_vecs.len() < MAX_POOLED {
            self.round_vecs.push(rounds);
        }
    }

    /// Number of buffer sets currently pooled.
    pub fn pooled(&self) -> usize {
        self.bufs.len()
    }

    /// How many builds were served from recycled storage.
    pub fn reuses(&self) -> u64 {
        self.reuses
    }

    /// How many builds had to allocate fresh storage.
    pub fn fresh_allocations(&self) -> u64 {
        self.fresh
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpb_types::MlcWriteModel;

    fn fixture() -> (DimmGeometry, IterationSampler) {
        (
            DimmGeometry::new(8, 1024),
            IterationSampler::new(MlcWriteModel::default()),
        )
    }

    fn changes(n: u32, level: MlcLevel) -> ChangeSet {
        (0..n).map(|i| (i, level)).collect()
    }

    #[test]
    fn empty_write_is_instantly_empty() {
        let (geom, s) = fixture();
        let mut rng = SimRng::seed_from(1);
        let w = LineWrite::new(&ChangeSet::empty(), &geom, CellMapping::Bim, &s, &mut rng, 1);
        assert_eq!(w.total_changed(), 0);
        // A zero-change write still has its RESET slot but pulses nothing.
        assert_eq!(w.total_iterations(), 1);
        assert_eq!(w.next_demand().unwrap().active_cells, 0);
    }

    #[test]
    fn all_l00_completes_after_reset() {
        let (geom, s) = fixture();
        let mut rng = SimRng::seed_from(2);
        let mut w = LineWrite::new(&changes(50, MlcLevel::L00), &geom, CellMapping::Vim, &s, &mut rng, 1);
        assert_eq!(w.total_iterations(), 1);
        let d = w.next_demand().unwrap();
        assert_eq!(d.kind, IterKind::Reset { group: 0, of: 1 });
        assert_eq!(d.active_cells, 50);
        w.advance();
        assert!(w.is_complete());
        assert!(w.next_demand().is_none());
    }

    #[test]
    fn l11_needs_exactly_one_set() {
        let (geom, s) = fixture();
        let mut rng = SimRng::seed_from(3);
        let mut w = LineWrite::new(&changes(10, MlcLevel::L11), &geom, CellMapping::Vim, &s, &mut rng, 1);
        assert_eq!(w.total_iterations(), 2);
        w.advance(); // RESET
        let d = w.next_demand().unwrap();
        assert_eq!(d.kind, IterKind::Set { index: 1 });
        assert_eq!(d.active_cells, 10);
        w.advance();
        assert!(w.is_complete());
    }

    #[test]
    fn set_demand_is_monotonically_nonincreasing() {
        let (geom, s) = fixture();
        let mut rng = SimRng::seed_from(4);
        let mut w = LineWrite::new(
            &changes(200, MlcLevel::L01),
            &geom,
            CellMapping::Bim,
            &s,
            &mut rng,
            1,
        );
        w.advance(); // RESET
        let mut prev = u32::MAX;
        while let Some(d) = w.next_demand() {
            assert!(d.active_cells <= prev, "demand must step down");
            assert!(d.active_cells > 0, "trailing iterations must pulse cells");
            prev = d.active_cells;
            w.advance();
        }
        assert!(w.is_complete());
    }

    #[test]
    fn per_chip_sums_match_totals() {
        let (geom, s) = fixture();
        let mut rng = SimRng::seed_from(5);
        let cs: ChangeSet = (0..300u32).map(|i| (i * 3 % 1024, MlcLevel::L01)).collect();
        for mapping in CellMapping::ALL {
            let mut w = LineWrite::new(&cs, &geom, mapping, &s, &mut rng, 1);
            while let Some(d) = w.next_demand() {
                assert_eq!(
                    d.per_chip.iter().sum::<u32>(),
                    d.active_cells,
                    "{mapping} {:?}",
                    d.kind
                );
                assert_eq!(d.per_chip.len(), 8);
                w.advance();
            }
        }
    }

    #[test]
    fn multi_reset_splits_demand() {
        let (geom, s) = fixture();
        let mut rng = SimRng::seed_from(6);
        // Change every 4th cell: spread across the whole chunk layout.
        let cs: ChangeSet = (0..256u32).map(|i| (i * 4, MlcLevel::L11)).collect();
        let mut w = LineWrite::new(&cs, &geom, CellMapping::Vim, &s, &mut rng, 3);
        assert_eq!(w.reset_groups(), 3);
        assert_eq!(w.total_iterations(), 3 + 1); // 3 RESET groups + 1 SET
        let mut reset_cells = 0;
        for g in 0..3u8 {
            let d = w.next_demand().unwrap();
            assert_eq!(d.kind, IterKind::Reset { group: g, of: 3 });
            assert!(
                d.active_cells < 256,
                "each group must RESET a strict subset"
            );
            reset_cells += d.active_cells;
            w.advance();
        }
        assert_eq!(reset_cells, 256, "groups must partition the changes");
        // All cells then SET together.
        assert_eq!(w.next_demand().unwrap().active_cells, 256);
    }

    #[test]
    fn multi_reset_group_totals_accessible() {
        let (geom, s) = fixture();
        let mut rng = SimRng::seed_from(7);
        let cs = changes(100, MlcLevel::L00);
        let w = LineWrite::new(&cs, &geom, CellMapping::Naive, &s, &mut rng, 3);
        let total: u32 = (0..3).map(|g| w.reset_group_cells(g)).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn unfinished_after_tracks_set_tail() {
        let (geom, s) = fixture();
        let mut rng = SimRng::seed_from(8);
        let cs = changes(64, MlcLevel::L01);
        let w = LineWrite::new(&cs, &geom, CellMapping::Bim, &s, &mut rng, 1);
        // Before and right after the RESET everything is outstanding.
        assert_eq!(w.unfinished_after(0), 64);
        // unfinished_after(i) equals demand of iteration i+1 for SET iters.
        let mut probe = w.clone();
        probe.advance(); // RESET done: 1 iteration complete
        let mut done = 1;
        while let Some(d) = probe.next_demand() {
            assert_eq!(w.unfinished_after(done), d.active_cells);
            probe.advance();
            done += 1;
        }
        assert_eq!(w.unfinished_after(done), 0);
        assert_eq!(w.unfinished_after(done + 10), 0);
    }

    #[test]
    fn truncation_ends_write_early() {
        let (geom, s) = fixture();
        let mut rng = SimRng::seed_from(9);
        let cs = changes(64, MlcLevel::L01);
        let full = LineWrite::new(&cs, &geom, CellMapping::Bim, &s, &mut rng, 1);
        let mut truncated = full.clone().with_truncation(8);
        let mut iters = 0;
        while !truncated.is_complete() {
            truncated.advance();
            iters += 1;
        }
        assert!(truncated.was_truncated());
        assert!(
            iters < full.total_iterations(),
            "truncated {iters} vs full {}",
            full.total_iterations()
        );
        // The tail it skipped was within the ECC budget.
        assert!(full.unfinished_after(iters) <= 8);
    }

    #[test]
    fn truncation_respects_reset_groups() {
        let (geom, s) = fixture();
        let mut rng = SimRng::seed_from(10);
        // 4 slow cells, under the ECC limit from the start.
        let cs = changes(4, MlcLevel::L01);
        let mut w = LineWrite::new(&cs, &geom, CellMapping::Vim, &s, &mut rng, 3)
            .with_truncation(8);
        // Must still fire all 3 RESET groups before truncating.
        for _ in 0..3 {
            assert!(!w.is_complete());
            assert!(w.next_demand().is_some());
            w.advance();
        }
        assert!(w.is_complete());
        assert!(w.was_truncated());
    }

    #[test]
    fn restart_resets_progress_and_keeps_profile() {
        let (geom, s) = fixture();
        let mut rng = SimRng::seed_from(11);
        let cs = changes(32, MlcLevel::L01);
        let mut w = LineWrite::new(&cs, &geom, CellMapping::Bim, &s, &mut rng, 1);
        let first_demand = w.next_demand().unwrap().active_cells;
        w.advance();
        w.advance();
        assert!(w.progress() > 0.0);
        w.restart();
        assert_eq!(w.iterations_done(), 0);
        assert_eq!(w.progress(), 0.0);
        assert_eq!(w.next_demand().unwrap().active_cells, first_demand);
    }

    #[test]
    fn advancing_completed_write_returns_none() {
        let (geom, s) = fixture();
        let mut rng = SimRng::seed_from(12);
        let mut w = LineWrite::new(
            &changes(1, MlcLevel::L00),
            &geom,
            CellMapping::Vim,
            &s,
            &mut rng,
            1,
        );
        assert!(w.advance().is_some());
        assert!(w.is_complete());
        assert_eq!(w.advance(), None, "completed write must not advance");
        assert_eq!(w.iterations_done(), 1);
    }

    #[test]
    fn pooled_build_matches_fresh_build() {
        let (geom, s) = fixture();
        let cs: ChangeSet = (0..200u32).map(|i| (i * 5 % 1024, MlcLevel::L01)).collect();
        let mut pool = WriteBufferPool::new();
        // Seed the pool with retired storage from a first write.
        let mut warm_rng = SimRng::seed_from(40);
        let warm = pool.build(cs.cells(), &geom, CellMapping::Bim, &s, &mut warm_rng, 2);
        pool.recycle(warm);
        assert_eq!(pool.pooled(), 1);

        let mut rng_a = SimRng::seed_from(41);
        let mut rng_b = SimRng::seed_from(41);
        let pooled = pool.build(cs.cells(), &geom, CellMapping::Bim, &s, &mut rng_a, 2);
        let fresh = LineWrite::new(&cs, &geom, CellMapping::Bim, &s, &mut rng_b, 2);
        assert_eq!(pooled, fresh, "recycled buffers must not leak state");
        assert_eq!(rng_a, rng_b, "pooling must not change RNG consumption");
        assert_eq!(pool.reuses(), 1);
        assert_eq!(pool.fresh_allocations(), 1);
    }

    #[test]
    fn recycle_rounds_returns_all_buffers() {
        let (geom, s) = fixture();
        let mut rng = SimRng::seed_from(42);
        let mut pool = WriteBufferPool::new();
        let mut rounds = pool.take_rounds();
        for r in 0..3u32 {
            let cs = changes(10 + r, MlcLevel::L01);
            rounds.push(pool.build(cs.cells(), &geom, CellMapping::Vim, &s, &mut rng, 1));
        }
        pool.recycle_rounds(rounds);
        assert_eq!(pool.pooled(), 3);
        let again = pool.take_rounds();
        assert!(again.is_empty());
        assert!(again.capacity() >= 3, "round vector storage reused");
    }

    #[test]
    fn change_set_pooling_round_trips() {
        let mut pool = WriteBufferPool::new();
        let mut cs = pool.take_change_set();
        cs.push(7, MlcLevel::L10);
        cs.push(9, MlcLevel::L00);
        assert_eq!(cs.len(), 2);
        pool.recycle_change_set(cs);
        let cs2 = pool.take_change_set();
        assert!(cs2.is_empty(), "recycled change sets are cleared on take");
    }

    #[test]
    fn rotate_in_place_matches_rotated() {
        let cs = ChangeSet::from_cells(vec![
            (1020, MlcLevel::L01),
            (3, MlcLevel::L11),
            (511, MlcLevel::L00),
        ]);
        let by_clone = cs.rotated(10, 1024);
        let mut in_place = cs.clone();
        in_place.rotate_in_place(10, 1024);
        assert_eq!(by_clone, in_place);
        assert_eq!(in_place.iter().next().unwrap().0, 6);
    }

    #[test]
    fn per_chip_changed_sums_to_total() {
        let (geom, s) = fixture();
        let mut rng = SimRng::seed_from(20);
        let cs: ChangeSet = (0..150u32).map(|i| (i * 7 % 1024, MlcLevel::L10)).collect();
        for groups in [1u8, 3] {
            let w = LineWrite::new(&cs, &geom, CellMapping::Bim, &s, &mut rng, groups);
            let pc = w.per_chip_changed();
            assert_eq!(pc.iter().sum::<u32>(), 150);
        }
    }

    #[test]
    fn per_chip_unfinished_matches_global() {
        let (geom, s) = fixture();
        let mut rng = SimRng::seed_from(21);
        let cs = changes(80, MlcLevel::L01);
        let w = LineWrite::new(&cs, &geom, CellMapping::Vim, &s, &mut rng, 1);
        assert!(w.per_chip_unfinished_after(0).is_none());
        for i in 1..w.total_iterations() + 2 {
            let per_chip = w.per_chip_unfinished_after(i).unwrap();
            assert_eq!(
                per_chip.iter().sum::<u32>(),
                w.unfinished_after(i),
                "iteration {i}"
            );
        }
    }

    #[test]
    fn resplit_preserves_totals_and_sets() {
        let (geom, s) = fixture();
        let mut rng = SimRng::seed_from(22);
        let cs: ChangeSet = (0..240u32).map(|i| (i * 4 % 1024, MlcLevel::L01)).collect();
        let mut w = LineWrite::new(&cs, &geom, CellMapping::Bim, &s, &mut rng, 1);
        let set_iters_before = w.total_iterations() - 1;
        w.resplit_reset(&geom, 3);
        assert_eq!(w.reset_groups(), 3);
        assert_eq!(
            (0..3).map(|g| w.reset_group_cells(g)).sum::<u32>(),
            240,
            "re-split must partition the changes"
        );
        // SET schedule unchanged; only RESET latency grows.
        assert_eq!(w.total_iterations(), 3 + set_iters_before);
        // Per-chip tables still consistent.
        let d = w.next_demand().unwrap();
        assert_eq!(d.per_chip.iter().sum::<u32>(), d.active_cells);
    }

    #[test]
    #[should_panic(expected = "cannot re-split")]
    fn resplit_after_start_panics() {
        let (geom, s) = fixture();
        let mut rng = SimRng::seed_from(23);
        let mut w = LineWrite::new(
            &changes(10, MlcLevel::L00),
            &geom,
            CellMapping::Vim,
            &s,
            &mut rng,
            1,
        );
        w.advance();
        w.resplit_reset(&geom, 3);
    }

    #[test]
    fn changeset_rotation_wraps() {
        let cs = ChangeSet::from_cells(vec![(1020, MlcLevel::L01)]);
        let r = cs.rotated(10, 1024);
        assert_eq!(r.iter().next().unwrap().0, 6);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn progress_spans_zero_to_one() {
        let (geom, s) = fixture();
        let mut rng = SimRng::seed_from(13);
        let mut w = LineWrite::new(
            &changes(16, MlcLevel::L10),
            &geom,
            CellMapping::Bim,
            &s,
            &mut rng,
            1,
        );
        assert_eq!(w.progress(), 0.0);
        while !w.is_complete() {
            w.advance();
        }
        assert_eq!(w.progress(), 1.0);
    }
}
