//! Intra-line wear leveling (the PWL baseline of §2.2).
//!
//! Lower-order bits within a word change far more often than higher-order
//! ones, wearing out (and power-loading) some chips faster. Intra-line wear
//! leveling (ref. 31 of the paper) periodically rotates each line by a random cell offset so
//! changes spread across chips over time. The paper evaluates an
//! "overhead-free near-perfect" variant (PWL) as a baseline — it helps chip
//! power balance by only ~2 %, which motivates FPB-GCP.

use fpb_types::SimRng;

/// Tracks per-line rotation offsets for intra-line wear leveling.
///
/// Every `shift_period` writes to a line, the line's rotation offset is
/// re-randomized. Offsets are tracked only for lines that have been
/// written (lazily), so memory use is proportional to the write working
/// set, not the 4 GB address space.
///
/// # Examples
///
/// ```
/// use fpb_pcm::IntraLineWearLeveler;
/// use fpb_types::{LineAddr, SimRng};
///
/// let mut wl = IntraLineWearLeveler::new(8, 1024);
/// let mut rng = SimRng::seed_from(1);
/// let line = LineAddr::new(42);
/// let first = wl.offset_for_write(line, &mut rng);
/// // Offsets stay stable within a period...
/// for _ in 0..6 {
///     assert_eq!(wl.offset_for_write(line, &mut rng), first);
/// }
/// // ...and rotate afterwards (with 1023/1024 probability to a new value).
/// let _ = wl.offset_for_write(line, &mut rng);
/// ```
#[derive(Debug, Clone)]
pub struct IntraLineWearLeveler {
    shift_period: u32,
    cells_per_line: u32,
    // BTreeMap: iteration/debug order must not depend on hasher state.
    lines: std::collections::BTreeMap<u64, LineState>,
}

#[derive(Debug, Clone, Copy)]
struct LineState {
    offset: u32,
    writes_since_shift: u32,
}

impl IntraLineWearLeveler {
    /// Creates a leveler that re-randomizes a line's offset every
    /// `shift_period` writes (the paper sweeps 8..100 and reports the best;
    /// 8 is the most aggressive).
    ///
    /// # Panics
    ///
    /// Panics if either argument is zero.
    pub fn new(shift_period: u32, cells_per_line: u32) -> Self {
        assert!(shift_period > 0, "shift period must be nonzero");
        assert!(cells_per_line > 0, "cells per line must be nonzero");
        IntraLineWearLeveler {
            shift_period,
            cells_per_line,
            lines: std::collections::BTreeMap::new(),
        }
    }

    /// Returns the rotation offset to apply to this write's change set and
    /// records the write against the line's shift period.
    pub fn offset_for_write(&mut self, line: fpb_types::LineAddr, rng: &mut SimRng) -> u32 {
        let cells = self.cells_per_line;
        let period = self.shift_period;
        let state = self.lines.entry(line.get()).or_insert_with(|| LineState {
            offset: 0,
            writes_since_shift: 0,
        });
        state.writes_since_shift += 1;
        if state.writes_since_shift > period {
            // The draw is below `cells: u32`, so the narrowing is lossless.
            // fpb-lint: allow(truncating_cast)
            state.offset = rng.u64_below(cells as u64) as u32;
            state.writes_since_shift = 1;
        }
        state.offset
    }

    /// Number of lines with tracked offsets.
    pub fn tracked_lines(&self) -> usize {
        self.lines.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpb_types::LineAddr;

    #[test]
    fn offset_is_stable_within_period() {
        let mut wl = IntraLineWearLeveler::new(10, 1024);
        let mut rng = SimRng::seed_from(2);
        let line = LineAddr::new(7);
        let first = wl.offset_for_write(line, &mut rng);
        for _ in 0..9 {
            assert_eq!(wl.offset_for_write(line, &mut rng), first);
        }
    }

    #[test]
    fn offset_rotates_after_period() {
        let mut wl = IntraLineWearLeveler::new(4, 1024);
        let mut rng = SimRng::seed_from(3);
        let line = LineAddr::new(1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(wl.offset_for_write(line, &mut rng));
        }
        // 200 writes / period 4 = 50 shifts; expect many distinct offsets.
        assert!(seen.len() > 20, "only {} distinct offsets", seen.len());
        assert!(seen.iter().all(|&o| o < 1024));
    }

    #[test]
    fn lines_are_independent() {
        let mut wl = IntraLineWearLeveler::new(2, 1024);
        let mut rng = SimRng::seed_from(4);
        let a = LineAddr::new(10);
        let b = LineAddr::new(11);
        for _ in 0..20 {
            let _ = wl.offset_for_write(a, &mut rng);
        }
        // b was never written; its first offset is the initial zero.
        assert_eq!(wl.offset_for_write(b, &mut rng), 0);
        assert_eq!(wl.tracked_lines(), 2);
    }

    #[test]
    fn balances_changes_over_time() {
        // Rotating a low-cell-biased change pattern must spread RESET load
        // across all chips in the long run.
        use crate::mapping::CellMapping;
        let mut wl = IntraLineWearLeveler::new(8, 256);
        let mut rng = SimRng::seed_from(5);
        let line = LineAddr::new(0);
        let mut per_chip = [0u64; 8];
        // Pattern: always cells 0..8 (one chip under naïve mapping).
        for _ in 0..4000 {
            let off = wl.offset_for_write(line, &mut rng);
            for c in 0..8u32 {
                let cell = (c + off) % 256;
                per_chip[CellMapping::Naive.chip_of(cell, 8).index()] += 1;
            }
        }
        let max = *per_chip.iter().max().unwrap() as f64;
        let min = *per_chip.iter().min().unwrap() as f64;
        assert!(max / min < 2.0, "imbalance too high: {per_chip:?}");
    }
}
