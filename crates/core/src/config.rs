//! Power-policy configuration and the named schemes of the evaluation.

use fpb_types::PowerConfig;

/// Global-charge-pump parameters (§4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GcpParams {
    /// Effective power efficiency of the GCP (`E_GCP`, 0.3–0.95 in the
    /// paper's sweeps). Without per-chip regulation this worst-case
    /// (farthest-chip) efficiency applies to every chip.
    pub e_gcp: f64,
    /// GCP output capacity as a multiple of one LCP's usable capacity
    /// (1.0 in the paper: "the same power as one LCP").
    pub capacity_lcps: f64,
    /// Per-chip output regulation (§4.2's design alternative): nearer
    /// chips see less wire loss, so their effective efficiency ramps from
    /// `min(e_gcp + 0.2, 0.95)` at the nearest chip down to `e_gcp` at
    /// the farthest, at the cost of more complex control logic.
    pub per_chip_regulation: bool,
}

impl GcpParams {
    /// Effective efficiency for each chip under this configuration.
    ///
    /// # Examples
    ///
    /// ```
    /// use fpb_core::GcpParams;
    /// let g = GcpParams { e_gcp: 0.7, capacity_lcps: 1.0, per_chip_regulation: true };
    /// let e = g.chip_efficiencies(8);
    /// assert_eq!(e.len(), 8);
    /// assert!(e[0] > e[7] - 1e-12);
    /// assert!((e[7] - 0.7).abs() < 1e-12);
    /// ```
    pub fn chip_efficiencies(&self, chips: u8) -> Vec<f64> {
        let n = chips as usize;
        if !self.per_chip_regulation || n == 1 {
            return vec![self.e_gcp; n];
        }
        let best = (self.e_gcp + 0.2).min(0.95);
        (0..n)
            .map(|i| {
                let frac = (n - 1 - i) as f64 / (n - 1) as f64;
                self.e_gcp + (best - self.e_gcp) * frac
            })
            .collect()
    }
}

/// Complete configuration of a power-budgeting policy.
///
/// The named constructors build the exact schemes the paper evaluates;
/// fields can then be tweaked for ablations.
///
/// # Examples
///
/// ```
/// use fpb_core::PowerPolicyConfig;
/// use fpb_types::PowerConfig;
///
/// let power = PowerConfig::default();
/// let fpb = PowerPolicyConfig::fpb(&power, 8);
/// assert!(fpb.ipm);
/// assert_eq!(fpb.multi_reset_splits, 3);
/// assert!(fpb.gcp.is_some());
///
/// let hay = PowerPolicyConfig::dimm_only(&power, 8);
/// assert!(!hay.enforce_chip_budget);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PowerPolicyConfig {
    /// DIMM power budget in whole tokens; `None` disables all limits
    /// (the Ideal scheme).
    pub pt_dimm: Option<u64>,
    /// Enforce per-chip budgets (`PT_LCP`, Eq. 4).
    pub enforce_chip_budget: bool,
    /// Multiplier on the chip budget (1.5 / 2.0 model the enlarged local
    /// pumps of §2.2; 1.0 is the baseline).
    pub chip_budget_scale: f64,
    /// Local charge-pump efficiency (`E_LCP`).
    pub e_lcp: f64,
    /// Enable FPB-IPM iteration-granularity allocation.
    pub ipm: bool,
    /// Maximum Multi-RESET split count (1 disables Multi-RESET; the paper
    /// finds 3 optimal, Fig. 17). Splitting is applied on demand, only to
    /// writes that cannot otherwise be admitted.
    pub multi_reset_splits: u8,
    /// Global charge pump, if present.
    pub gcp: Option<GcpParams>,
    /// RESET-to-SET power ratio `C` (SET costs `1/C` token per cell).
    pub reset_set_ratio: u64,
    /// Number of PCM chips on the DIMM.
    pub chips: u8,
}

impl PowerPolicyConfig {
    /// The Ideal scheme: writes issue whenever their bank is idle.
    pub fn ideal(power: &PowerConfig, chips: u8) -> Self {
        PowerPolicyConfig {
            pt_dimm: None,
            enforce_chip_budget: false,
            chip_budget_scale: 1.0,
            e_lcp: power.e_lcp,
            ipm: false,
            multi_reset_splits: 1,
            gcp: None,
            reset_set_ratio: power.reset_set_power_ratio,
            chips,
        }
    }

    /// Hay et al.'s heuristic with only the DIMM budget enforced.
    pub fn dimm_only(power: &PowerConfig, chips: u8) -> Self {
        PowerPolicyConfig {
            pt_dimm: Some(power.pt_dimm),
            ..Self::ideal(power, chips)
        }
    }

    /// Hay et al.'s heuristic with DIMM *and* chip budgets (the paper's
    /// normalization baseline).
    pub fn dimm_chip(power: &PowerConfig, chips: u8) -> Self {
        PowerPolicyConfig {
            enforce_chip_budget: true,
            ..Self::dimm_only(power, chips)
        }
    }

    /// `DIMM+chip` with the chip budget scaled (the 1.5×/2× local-pump
    /// baselines of §2.2).
    pub fn scaled_local(power: &PowerConfig, chips: u8, scale: f64) -> Self {
        PowerPolicyConfig {
            chip_budget_scale: scale,
            ..Self::dimm_chip(power, chips)
        }
    }

    /// FPB-GCP only (no IPM): chip budgets plus a global charge pump at
    /// the configured `E_GCP`.
    pub fn gcp_only(power: &PowerConfig, chips: u8) -> Self {
        PowerPolicyConfig {
            gcp: Some(GcpParams {
                e_gcp: power.e_gcp,
                capacity_lcps: power.gcp_capacity_lcps,
                per_chip_regulation: false,
            }),
            ..Self::dimm_chip(power, chips)
        }
    }

    /// FPB-GCP + FPB-IPM without Multi-RESET.
    pub fn gcp_ipm(power: &PowerConfig, chips: u8) -> Self {
        PowerPolicyConfig {
            ipm: true,
            ..Self::gcp_only(power, chips)
        }
    }

    /// The full FPB scheme: GCP + IPM + Multi-RESET(3).
    pub fn fpb(power: &PowerConfig, chips: u8) -> Self {
        PowerPolicyConfig {
            multi_reset_splits: 3,
            ..Self::gcp_ipm(power, chips)
        }
    }

    /// Usable per-chip budget in millitokens (Eq. 4, including the scale
    /// factor). Zero when chip budgets are not enforced.
    pub fn chip_budget_millis(&self) -> u64 {
        match self.pt_dimm {
            Some(pt) if self.enforce_chip_budget => {
                ((pt * 1000) as f64 * self.e_lcp * self.chip_budget_scale / self.chips as f64)
                    .floor() as u64
            }
            _ => 0,
        }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a message naming the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.chips == 0 {
            return Err("chips must be nonzero".into());
        }
        if !(self.e_lcp > 0.0 && self.e_lcp <= 1.0) {
            return Err("e_lcp must be in (0, 1]".into());
        }
        if self.multi_reset_splits == 0 {
            return Err("multi_reset_splits must be >= 1".into());
        }
        if self.reset_set_ratio == 0 {
            return Err("reset_set_ratio must be nonzero".into());
        }
        if self.chip_budget_scale <= 0.0 {
            return Err("chip_budget_scale must be positive".into());
        }
        if let Some(g) = &self.gcp {
            if !(g.e_gcp > 0.0 && g.e_gcp <= 1.0) {
                return Err("gcp.e_gcp must be in (0, 1]".into());
            }
            if g.capacity_lcps <= 0.0 {
                return Err("gcp.capacity_lcps must be positive".into());
            }
            if !self.enforce_chip_budget {
                return Err("a GCP is meaningless without chip budgets".into());
            }
        }
        Ok(())
    }
}

/// Human-readable tags for the schemes compared in the paper's figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchemeKind {
    /// Unlimited power.
    Ideal,
    /// Hay et al., DIMM budget only.
    DimmOnly,
    /// Hay et al., DIMM + chip budgets.
    DimmChip,
    /// Chip budgets scaled ×1.5.
    Local15,
    /// Chip budgets scaled ×2.
    Local2,
    /// FPB-GCP alone.
    Gcp,
    /// FPB-GCP + FPB-IPM.
    GcpIpm,
    /// FPB-GCP + FPB-IPM + Multi-RESET (the full FPB).
    Fpb,
}

impl SchemeKind {
    /// Builds this scheme's configuration from the system power settings.
    pub fn config(self, power: &PowerConfig, chips: u8) -> PowerPolicyConfig {
        match self {
            SchemeKind::Ideal => PowerPolicyConfig::ideal(power, chips),
            SchemeKind::DimmOnly => PowerPolicyConfig::dimm_only(power, chips),
            SchemeKind::DimmChip => PowerPolicyConfig::dimm_chip(power, chips),
            SchemeKind::Local15 => PowerPolicyConfig::scaled_local(power, chips, 1.5),
            SchemeKind::Local2 => PowerPolicyConfig::scaled_local(power, chips, 2.0),
            SchemeKind::Gcp => PowerPolicyConfig::gcp_only(power, chips),
            SchemeKind::GcpIpm => PowerPolicyConfig::gcp_ipm(power, chips),
            SchemeKind::Fpb => PowerPolicyConfig::fpb(power, chips),
        }
    }

    /// Label used in figure legends.
    pub fn label(self) -> &'static str {
        match self {
            SchemeKind::Ideal => "Ideal",
            SchemeKind::DimmOnly => "DIMM-only",
            SchemeKind::DimmChip => "DIMM+chip",
            SchemeKind::Local15 => "1.5xlocal",
            SchemeKind::Local2 => "2xlocal",
            SchemeKind::Gcp => "GCP",
            SchemeKind::GcpIpm => "GCP+IPM",
            SchemeKind::Fpb => "GCP+IPM+MR",
        }
    }
}

impl std::fmt::Display for SchemeKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn power() -> PowerConfig {
        PowerConfig::default()
    }

    #[test]
    fn presets_compose_as_in_the_paper() {
        let p = power();
        let ideal = PowerPolicyConfig::ideal(&p, 8);
        assert!(ideal.pt_dimm.is_none());
        assert!(ideal.validate().is_ok());

        let d = PowerPolicyConfig::dimm_only(&p, 8);
        assert_eq!(d.pt_dimm, Some(560));
        assert!(!d.enforce_chip_budget);

        let dc = PowerPolicyConfig::dimm_chip(&p, 8);
        assert!(dc.enforce_chip_budget);
        // Eq. 4: 560 × 0.95 / 8 = 66.5 tokens.
        assert_eq!(dc.chip_budget_millis(), 66_500);

        let x2 = PowerPolicyConfig::scaled_local(&p, 8, 2.0);
        assert_eq!(x2.chip_budget_millis(), 133_000);

        let fpb = PowerPolicyConfig::fpb(&p, 8);
        assert!(fpb.ipm && fpb.gcp.is_some());
        assert_eq!(fpb.multi_reset_splits, 3);
        assert!(fpb.validate().is_ok());
    }

    #[test]
    fn all_scheme_kinds_validate() {
        let p = power();
        for kind in [
            SchemeKind::Ideal,
            SchemeKind::DimmOnly,
            SchemeKind::DimmChip,
            SchemeKind::Local15,
            SchemeKind::Local2,
            SchemeKind::Gcp,
            SchemeKind::GcpIpm,
            SchemeKind::Fpb,
        ] {
            let cfg = kind.config(&p, 8);
            cfg.validate().unwrap_or_else(|e| panic!("{kind}: {e}"));
            assert!(!kind.label().is_empty());
        }
    }

    #[test]
    fn validation_rejects_nonsense() {
        let p = power();
        let mut c = PowerPolicyConfig::fpb(&p, 8);
        c.chips = 0;
        assert!(c.validate().is_err());

        let mut c = PowerPolicyConfig::fpb(&p, 8);
        c.gcp = Some(GcpParams {
            e_gcp: 1.5,
            capacity_lcps: 1.0,
            per_chip_regulation: false,
        });
        assert!(c.validate().is_err());

        let mut c = PowerPolicyConfig::dimm_only(&p, 8);
        c.gcp = Some(GcpParams {
            e_gcp: 0.7,
            capacity_lcps: 1.0,
            per_chip_regulation: false,
        });
        assert!(c.validate().is_err(), "GCP without chip budgets");

        let mut c = PowerPolicyConfig::dimm_chip(&p, 8);
        c.multi_reset_splits = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn chip_budget_zero_when_unenforced() {
        let p = power();
        assert_eq!(PowerPolicyConfig::dimm_only(&p, 8).chip_budget_millis(), 0);
        assert_eq!(PowerPolicyConfig::ideal(&p, 8).chip_budget_millis(), 0);
    }
}
