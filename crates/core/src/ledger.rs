//! The token ledger: DIMM, per-chip, and GCP budgets with borrowing.
//!
//! All quantities are [`Tokens`] (millitoken fixed point). The ledger
//! enforces three nested constraints:
//!
//! 1. **DIMM raw budget** — total raw power drawn from the DIMM supply
//!    (`PT_DIMM`, §2.1.2). With unscaled chip budgets this is implied by
//!    the chip constraints; with 1.5×/2× local pumps it binds separately.
//! 2. **Per-chip usable budgets** — each chip's local charge pump delivers
//!    at most `PT_LCP = PT_DIMM × E_LCP / chips` usable tokens (Eq. 4).
//! 3. **GCP capacity and borrowing** — the global pump converts borrowed
//!    chip headroom into usable power for hot chips at `E_GCP` (Eq. 5),
//!    capped at one LCP's output.

use fpb_types::{LedgerDomain, LedgerError, Tokens};

/// Multiplies `t` by an efficiency in `(0, 1]`, rounding **up** — used when
/// the result is an obligation (borrowed power) that must not be
/// understated.
fn mul_eff_ceil(t: Tokens, eff: f64) -> Tokens {
    Tokens::from_millis((t.millis() as f64 * eff).ceil() as u64)
}

/// A committed allocation returned by [`Ledger::try_grant_chips`] or [`Ledger::try_grant_flat`].
///
/// Holds exactly what was deducted so [`Ledger::release`] can return it.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Grant {
    /// Usable tokens served per chip by its local pump (empty in flat
    /// mode).
    pub lcp: Vec<Tokens>,
    /// Usable tokens served per chip by the global pump (empty when no
    /// chip used the GCP).
    pub gcp: Vec<Tokens>,
    /// Total usable GCP output in this grant.
    pub gcp_total: Tokens,
    /// Raw GCP draw (`gcp_total / E_GCP`).
    pub gcp_raw: Tokens,
    /// Usable tokens borrowed from each chip's headroom to feed the GCP.
    pub borrowed: Vec<Tokens>,
    /// Raw power deducted from the DIMM ledger.
    pub dimm_raw: Tokens,
    /// Usable tokens deducted in flat (no-chip-budget) mode.
    pub flat: Tokens,
}

impl Grant {
    /// True if this grant used the global charge pump.
    pub fn used_gcp(&self) -> bool {
        !self.gcp_total.is_zero()
    }
}

/// Tokens withheld from every domain while a charge-pump brownout is in
/// force (see [`Ledger::begin_brownout`]).
///
/// The hold records *exactly* what was deducted, per domain, so ending the
/// brownout restores the ledger bit-for-bit — conservation holds even when
/// a window begins while grants are outstanding.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BrownoutHold {
    /// Raw DIMM tokens withheld.
    pub dimm: Tokens,
    /// Usable tokens withheld from each chip's local pump.
    pub chips: Vec<Tokens>,
    /// Usable GCP capacity withheld.
    pub gcp: Tokens,
}

impl BrownoutHold {
    /// Total millitokens withheld across all domains (for metrics).
    pub fn total_millis(&self) -> u64 {
        self.dimm.millis()
            + self.chips.iter().map(|t| t.millis()).sum::<u64>()
            + self.gcp.millis()
    }
}

/// The live token ledger.
///
/// # Examples
///
/// ```
/// use fpb_core::Ledger;
/// use fpb_types::Tokens;
///
/// // Flat DIMM-only ledger: 80 tokens.
/// let mut l = Ledger::flat(80);
/// let g = l.try_grant_flat(Tokens::from_cells(50)).unwrap();
/// assert!(l.try_grant_flat(Tokens::from_cells(40)).is_none());
/// l.release(&g).unwrap();
/// assert!(l.try_grant_flat(Tokens::from_cells(40)).is_some());
/// ```
#[derive(Debug, Clone)]
pub struct Ledger {
    /// Raw DIMM availability (`None` = unlimited).
    dimm_avail: Option<Tokens>,
    dimm_cap: Tokens,
    /// Usable per-chip availability (empty = chip budgets not enforced).
    chips_avail: Vec<Tokens>,
    chip_cap: Tokens,
    /// Usable GCP availability (`None` = no GCP).
    gcp_avail: Option<Tokens>,
    gcp_cap: Tokens,
    e_lcp: f64,
    /// Effective GCP efficiency per chip (uniform without per-chip
    /// regulation; see `GcpParams::chip_efficiencies`).
    e_gcp: Vec<f64>,
    /// Tokens currently withheld by an active brownout window.
    brownout: Option<BrownoutHold>,
    /// Reusable planning buffers for [`Ledger::try_grant_chips`]. Grant
    /// planning runs on every admission attempt — including refused ones,
    /// which the scheduler retries each pass — so the plan must not
    /// allocate. Only a successful grant pays for the `Grant`'s own vecs.
    scratch: GrantScratch,
}

/// Reusable buffers for grant planning (see [`Ledger::try_grant_chips`]).
///
/// Opaque outside this module: the fields are planning scratch whose
/// every use clears or overwrites them first, which is what makes a
/// scratch donated from an earlier run ([`Ledger::donate_scratch`])
/// behaviourally identical to a fresh one. Callers that sweep many
/// configurations hold one per worker and move it between ledgers so
/// the grant planner's vectors are allocated once per worker, not once
/// per simulated point.
#[derive(Debug, Clone, Default)]
pub struct GrantScratch {
    lcp: Vec<Tokens>,
    gcp: Vec<Tokens>,
    borrowed: Vec<Tokens>,
    order: Vec<usize>,
    /// Spent grants returned via [`Ledger::recycle_grant`], reused so a
    /// successful grant does not allocate its three vectors. Bounded by
    /// the number of concurrently held grants (one per in-flight write).
    free: Vec<Grant>,
}

impl Ledger {
    /// Unlimited ledger (the Ideal scheme).
    pub fn unlimited() -> Self {
        Ledger {
            dimm_avail: None,
            dimm_cap: Tokens::ZERO,
            chips_avail: Vec::new(),
            chip_cap: Tokens::ZERO,
            gcp_avail: None,
            gcp_cap: Tokens::ZERO,
            e_lcp: 1.0,
            e_gcp: Vec::new(),
            brownout: None,
            scratch: GrantScratch::default(),
        }
    }

    /// Flat DIMM-only ledger of `pt_dimm` whole tokens (Hay et al.'s
    /// accounting: usable = raw).
    pub fn flat(pt_dimm: u64) -> Self {
        let cap = Tokens::from_cells(pt_dimm);
        Ledger {
            dimm_avail: Some(cap),
            dimm_cap: cap,
            ..Ledger::unlimited()
        }
    }

    /// Full ledger with per-chip budgets and optionally a GCP.
    ///
    /// `chip_budget_millis` is each chip's usable budget (Eq. 4 with any
    /// scale factor applied); `gcp` is `(E_GCP, capacity in usable
    /// millitokens)`.
    ///
    /// # Panics
    ///
    /// Panics if `chips` is zero or an efficiency is out of `(0, 1]`.
    pub fn with_chips(
        pt_dimm: u64,
        chips: u8,
        chip_budget_millis: u64,
        e_lcp: f64,
        gcp: Option<(f64, u64)>,
    ) -> Self {
        assert!(chips > 0, "chips must be nonzero");
        assert!(e_lcp > 0.0 && e_lcp <= 1.0, "e_lcp must be in (0, 1]");
        let chip_cap = Tokens::from_millis(chip_budget_millis);
        let dimm_cap = Tokens::from_cells(pt_dimm);
        let (gcp_avail, gcp_cap, e_gcp) = match gcp {
            Some((e, cap_millis)) => {
                assert!(e > 0.0 && e <= 1.0, "e_gcp must be in (0, 1]");
                let cap = Tokens::from_millis(cap_millis);
                (Some(cap), cap, vec![e; chips as usize])
            }
            None => (None, Tokens::ZERO, Vec::new()),
        };
        Ledger {
            dimm_avail: Some(dimm_cap),
            dimm_cap,
            chips_avail: vec![chip_cap; chips as usize],
            chip_cap,
            gcp_avail,
            gcp_cap,
            e_lcp,
            e_gcp,
            brownout: None,
            scratch: GrantScratch::default(),
        }
    }

    /// True if this ledger enforces per-chip budgets.
    pub fn has_chip_budgets(&self) -> bool {
        !self.chips_avail.is_empty()
    }

    /// True if this ledger has a global charge pump.
    pub fn has_gcp(&self) -> bool {
        self.gcp_avail.is_some()
    }

    /// Overrides the per-chip GCP efficiencies (per-chip output
    /// regulation, §4.2).
    ///
    /// # Panics
    ///
    /// Panics if the ledger has no GCP, the length mismatches the chip
    /// count, or any efficiency is outside `(0, 1]`.
    pub fn set_gcp_efficiencies(&mut self, eff: Vec<f64>) {
        assert!(self.has_gcp(), "ledger has no GCP");
        assert_eq!(eff.len(), self.chips_avail.len(), "chip count mismatch");
        assert!(
            eff.iter().all(|&e| e > 0.0 && e <= 1.0),
            "efficiencies must be in (0, 1]"
        );
        self.e_gcp = eff;
    }

    /// Remaining raw DIMM budget (`None` if unlimited).
    pub fn dimm_available(&self) -> Option<Tokens> {
        self.dimm_avail
    }

    /// Remaining usable budget of chip `i`.
    ///
    /// # Panics
    ///
    /// Panics if chip budgets are not enforced or `i` is out of range.
    pub fn chip_available(&self, i: usize) -> Tokens {
        self.chips_avail[i]
    }

    /// Remaining usable GCP capacity (`None` if no GCP).
    pub fn gcp_available(&self) -> Option<Tokens> {
        self.gcp_avail
    }

    /// Grants a flat (no chip accounting) allocation of `usable` tokens.
    /// Used for DIMM-only and Ideal policies. Returns `None` (and changes
    /// nothing) if the budget is insufficient.
    pub fn try_grant_flat(&mut self, usable: Tokens) -> Option<Grant> {
        match self.dimm_avail {
            None => Some(Grant {
                flat: usable,
                ..Grant::default()
            }),
            Some(avail) => {
                let rest = avail.checked_sub(usable)?;
                self.dimm_avail = Some(rest);
                Some(Grant {
                    flat: usable,
                    dimm_raw: usable,
                    ..Grant::default()
                })
            }
        }
    }

    /// Grants a per-chip allocation. Each chip's demand is served by its
    /// LCP if it has headroom, otherwise entirely by the GCP (one segment
    /// never splits across pumps, §4.1). GCP output is capped and must be
    /// borrowed from other chips' headroom at the efficiency cost of
    /// Eq. 5. Returns `None` (and changes nothing) if any constraint
    /// fails.
    ///
    /// # Panics
    ///
    /// Panics if `per_chip` length differs from the chip count, or chip
    /// budgets are not enforced.
    pub fn try_grant_chips(&mut self, per_chip: &[Tokens]) -> Option<Grant> {
        assert!(
            self.has_chip_budgets(),
            "try_grant_chips requires chip budgets"
        );
        assert_eq!(per_chip.len(), self.chips_avail.len(), "chip count mismatch");

        // Phase 1: plan LCP vs GCP per chip, into the reusable scratch
        // buffers — a refused grant must not allocate (the scheduler
        // retries parked writes every pass, so refusals dominate under
        // contention).
        let n = per_chip.len();
        self.scratch.lcp.clear();
        self.scratch.lcp.resize(n, Tokens::ZERO);
        self.scratch.gcp.clear();
        self.scratch.gcp.resize(n, Tokens::ZERO);
        let mut gcp_total = Tokens::ZERO;
        for (i, &demand) in per_chip.iter().enumerate() {
            if demand.is_zero() {
                continue;
            }
            if self.chips_avail[i] >= demand {
                self.scratch.lcp[i] = demand;
            } else {
                self.scratch.gcp[i] = demand;
                gcp_total += demand;
            }
        }

        // Phase 2: GCP feasibility. Each served segment pays its own
        // chip's conversion efficiency (uniform unless regulated).
        self.scratch.borrowed.clear();
        self.scratch.borrowed.resize(n, Tokens::ZERO);
        let mut gcp_raw = Tokens::ZERO;
        if !gcp_total.is_zero() {
            let avail = self.gcp_avail?;
            if avail < gcp_total {
                return None;
            }
            gcp_raw = self
                .scratch
                .gcp
                .iter()
                .enumerate()
                .filter(|(_, d)| !d.is_zero())
                .map(|(i, d)| d.scale_up(self.e_gcp[i]))
                .sum();
            // Eq. 5 inverted: usable borrowed b with Σb/E_LCP = raw draw.
            let mut need = mul_eff_ceil(gcp_raw, self.e_lcp);
            // Borrow greedily from the chips with the most headroom.
            self.scratch.order.clear();
            self.scratch.order.extend(0..n);
            self.scratch.order.sort_by_key(|&i| {
                std::cmp::Reverse(self.chips_avail[i].saturating_sub(self.scratch.lcp[i]))
            });
            for k in 0..n {
                if need.is_zero() {
                    break;
                }
                let i = self.scratch.order[k];
                let headroom = self.chips_avail[i].saturating_sub(self.scratch.lcp[i]);
                let take = headroom.min(need);
                self.scratch.borrowed[i] = take;
                need = need.saturating_sub(take);
            }
            if !need.is_zero() {
                return None;
            }
        }

        // Phase 3: DIMM raw constraint.
        let lcp_total: Tokens = self.scratch.lcp.iter().copied().sum();
        let dimm_raw = lcp_total.scale_up(self.e_lcp) + gcp_raw;
        if let Some(avail) = self.dimm_avail {
            if avail < dimm_raw {
                return None;
            }
        }

        // Commit. Only now does the grant pay for its own vectors.
        for i in 0..n {
            self.chips_avail[i] =
                self.chips_avail[i] - self.scratch.lcp[i] - self.scratch.borrowed[i];
        }
        if !gcp_total.is_zero() {
            self.gcp_avail = self.gcp_avail.map(|avail| avail - gcp_total);
        }
        if let Some(avail) = self.dimm_avail {
            self.dimm_avail = Some(avail - dimm_raw);
        }
        let mut grant = self.scratch.free.pop().unwrap_or_default();
        grant.lcp.clear();
        grant.lcp.extend_from_slice(&self.scratch.lcp);
        grant.gcp.clear();
        grant.gcp.extend_from_slice(&self.scratch.gcp);
        grant.borrowed.clear();
        grant.borrowed.extend_from_slice(&self.scratch.borrowed);
        grant.gcp_total = gcp_total;
        grant.gcp_raw = gcp_raw;
        grant.dimm_raw = dimm_raw;
        grant.flat = Tokens::ZERO;
        Some(grant)
    }

    /// Returns a spent grant's backing storage to the ledger so the next
    /// [`Ledger::try_grant_chips`] reuses it instead of allocating.
    /// Optional: an unrecycled grant is simply dropped.
    pub fn recycle_grant(&mut self, grant: Grant) {
        self.scratch.free.push(grant);
    }

    /// Moves the grant-planning scratch out of this ledger, leaving an
    /// empty one behind. Pairs with [`Ledger::donate_scratch`] so a
    /// worker that retires one simulated configuration can carry the
    /// planner's warmed-up buffers into the next one.
    pub fn take_scratch(&mut self) -> GrantScratch {
        std::mem::take(&mut self.scratch)
    }

    /// Installs a previously taken scratch. Safe with scratch of any
    /// provenance (including a different chip count): every planning
    /// phase clears and resizes the buffers before reading them, so
    /// this only changes allocation behaviour, never grant decisions.
    pub fn donate_scratch(&mut self, scratch: GrantScratch) {
        self.scratch = scratch;
    }

    /// Returns a grant's tokens to the ledger.
    ///
    /// On an over-release (more tokens coming back than are outstanding —
    /// i.e. a double release), the budget is clamped at capacity and the
    /// first violated domain is reported; the ledger stays internally
    /// consistent either way. Capacity here accounts for any tokens a
    /// brownout window is currently withholding, so releasing a
    /// pre-brownout grant during a window is not a false positive.
    pub fn release(&mut self, grant: &Grant) -> Result<(), LedgerError> {
        let mut first_err: Option<LedgerError> = None;
        let mut violate = |domain, released: Tokens, headroom: Tokens| {
            if first_err.is_none() {
                first_err = Some(LedgerError::OverRelease {
                    domain,
                    released_millis: released.millis(),
                    headroom_millis: headroom.millis(),
                });
            }
        };
        // Take the hold out rather than cloning it (a live brownout would
        // otherwise cost a Vec allocation on every release) and restore it
        // before returning; nothing below touches `self.brownout`.
        let hold_opt = self.brownout.take();
        let hold = hold_opt.as_ref();
        if let Some(avail) = self.dimm_avail {
            let held = hold.map_or(Tokens::ZERO, |h| h.dimm);
            let cap = self.dimm_cap.saturating_sub(held);
            let back = avail + grant.dimm_raw;
            if back > cap {
                violate(LedgerDomain::Dimm, grant.dimm_raw, cap.saturating_sub(avail));
            }
            self.dimm_avail = Some(back.min(cap));
        }
        for i in 0..grant.lcp.len() {
            let held = hold
                .and_then(|h| h.chips.get(i))
                .copied()
                .unwrap_or(Tokens::ZERO);
            let cap = self.chip_cap.saturating_sub(held);
            let returned = grant.lcp[i] + grant.borrowed[i];
            let back = self.chips_avail[i] + returned;
            if back > cap {
                violate(
                    LedgerDomain::Chip(i),
                    returned,
                    cap.saturating_sub(self.chips_avail[i]),
                );
            }
            self.chips_avail[i] = back.min(cap);
        }
        if !grant.gcp_total.is_zero() {
            if let Some(avail) = self.gcp_avail {
                let held = hold.map_or(Tokens::ZERO, |h| h.gcp);
                let cap = self.gcp_cap.saturating_sub(held);
                let back = avail + grant.gcp_total;
                if back > cap {
                    violate(LedgerDomain::Gcp, grant.gcp_total, cap.saturating_sub(avail));
                }
                self.gcp_avail = Some(back.min(cap));
            }
        }
        self.brownout = hold_opt;
        match first_err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }

    /// Enters a brownout window: every budgeted domain is shrunk to
    /// `keep_fraction` of its capacity by withholding tokens from its
    /// *current availability* (§2.1.2–§2.1.3 model the charge pumps as the
    /// scarce supply; a sag hits all of them).
    ///
    /// Only currently-available tokens are withheld — in-flight grants
    /// cannot be clawed back, so a window starting under load sheds less
    /// than the nominal amount. The exact deduction is recorded and
    /// returned to the ledger by [`Ledger::end_brownout`]. Calling this
    /// while a window is already in force is a no-op.
    ///
    /// # Panics
    ///
    /// Panics if `keep_fraction` is outside `[0, 1]`.
    pub fn begin_brownout(&mut self, keep_fraction: f64) {
        assert!(
            (0.0..=1.0).contains(&keep_fraction),
            "keep_fraction must be in [0, 1]"
        );
        if self.brownout.is_some() {
            return;
        }
        let shed = 1.0 - keep_fraction;
        let target = |cap: Tokens| Tokens::from_millis((cap.millis() as f64 * shed).round() as u64);
        let mut hold = BrownoutHold {
            chips: vec![Tokens::ZERO; self.chips_avail.len()],
            ..BrownoutHold::default()
        };
        if let Some(avail) = self.dimm_avail {
            let w = target(self.dimm_cap).min(avail);
            self.dimm_avail = Some(avail.saturating_sub(w));
            hold.dimm = w;
        }
        for (i, avail) in self.chips_avail.iter_mut().enumerate() {
            let w = target(self.chip_cap).min(*avail);
            *avail = avail.saturating_sub(w);
            hold.chips[i] = w;
        }
        if let Some(avail) = self.gcp_avail {
            let w = target(self.gcp_cap).min(avail);
            self.gcp_avail = Some(avail.saturating_sub(w));
            hold.gcp = w;
        }
        self.brownout = Some(hold);
    }

    /// Ends the brownout window, returning exactly the withheld tokens to
    /// each domain. A no-op when no window is in force.
    pub fn end_brownout(&mut self) {
        let Some(hold) = self.brownout.take() else {
            return;
        };
        if let Some(avail) = self.dimm_avail {
            self.dimm_avail = Some(avail + hold.dimm);
        }
        for (avail, &w) in self.chips_avail.iter_mut().zip(hold.chips.iter()) {
            *avail += w;
        }
        if let Some(avail) = self.gcp_avail {
            self.gcp_avail = Some(avail + hold.gcp);
        }
    }

    /// True while a brownout window is withholding tokens.
    pub fn in_brownout(&self) -> bool {
        self.brownout.is_some()
    }

    /// The tokens the active brownout window is withholding, if any.
    pub fn brownout_hold(&self) -> Option<&BrownoutHold> {
        self.brownout.as_ref()
    }

    /// Verifies token conservation: for every budgeted domain,
    /// `available + outstanding + withheld` must equal capacity exactly.
    ///
    /// The caller supplies the outstanding sums from its grant records
    /// (`outstanding_chips[i]` is chip `i`'s LCP *plus borrowed* tokens
    /// across all held grants). Unlimited domains are exempt. Returns the
    /// first domain whose books do not balance.
    ///
    /// # Panics
    ///
    /// Panics if chip budgets are enforced and `outstanding_chips` length
    /// differs from the chip count.
    pub fn audit(
        &self,
        outstanding_dimm_raw: Tokens,
        outstanding_chips: &[Tokens],
        outstanding_gcp: Tokens,
    ) -> Result<(), LedgerError> {
        let hold = self.brownout.as_ref();
        if let Some(avail) = self.dimm_avail {
            let actual = avail + outstanding_dimm_raw + hold.map_or(Tokens::ZERO, |h| h.dimm);
            if actual != self.dimm_cap {
                return Err(LedgerError::Unbalanced {
                    domain: LedgerDomain::Dimm,
                    expected_millis: self.dimm_cap.millis(),
                    actual_millis: actual.millis(),
                });
            }
        }
        if self.has_chip_budgets() {
            assert_eq!(
                outstanding_chips.len(),
                self.chips_avail.len(),
                "chip count mismatch"
            );
            for (i, (&avail, &out)) in self
                .chips_avail
                .iter()
                .zip(outstanding_chips.iter())
                .enumerate()
            {
                let held = hold
                    .and_then(|h| h.chips.get(i))
                    .copied()
                    .unwrap_or(Tokens::ZERO);
                let actual = avail + out + held;
                if actual != self.chip_cap {
                    return Err(LedgerError::Unbalanced {
                        domain: LedgerDomain::Chip(i),
                        expected_millis: self.chip_cap.millis(),
                        actual_millis: actual.millis(),
                    });
                }
            }
        }
        if let Some(avail) = self.gcp_avail {
            let actual = avail + outstanding_gcp + hold.map_or(Tokens::ZERO, |h| h.gcp);
            if actual != self.gcp_cap {
                return Err(LedgerError::Unbalanced {
                    domain: LedgerDomain::Gcp,
                    expected_millis: self.gcp_cap.millis(),
                    actual_millis: actual.millis(),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn t(cells: u64) -> Tokens {
        Tokens::from_cells(cells)
    }

    /// Baseline-like ledger: 560 DIMM tokens, 8 chips at 66.5 usable each.
    fn baseline(gcp: Option<(f64, u64)>) -> Ledger {
        Ledger::with_chips(560, 8, 66_500, 0.95, gcp)
    }

    #[test]
    fn flat_ledger_enforces_dimm_budget() {
        let mut l = Ledger::flat(80);
        let a = l.try_grant_flat(t(50)).unwrap();
        assert_eq!(l.dimm_available(), Some(t(30)));
        assert!(l.try_grant_flat(t(40)).is_none());
        let b = l.try_grant_flat(t(30)).unwrap();
        assert_eq!(l.dimm_available(), Some(Tokens::ZERO));
        l.release(&a).unwrap();
        l.release(&b).unwrap();
        assert_eq!(l.dimm_available(), Some(t(80)));
    }

    #[test]
    fn unlimited_ledger_never_refuses() {
        let mut l = Ledger::unlimited();
        for _ in 0..100 {
            assert!(l.try_grant_flat(t(10_000)).is_some());
        }
        assert_eq!(l.dimm_available(), None);
    }

    #[test]
    fn chip_budget_blocks_hot_chip() {
        // Fig. 3's scenario: per-chip budget 4 tokens; WR-B needs 5 on one
        // chip even though the DIMM has room.
        let mut l = Ledger::with_chips(12, 3, 4_000, 1.0, None);
        let wr_a = [t(1), t(2), t(1)];
        assert!(l.try_grant_chips(&wr_a).is_some());
        let wr_b = [t(0), t(3), t(2)];
        // Chip 1 has 4 - 2 = 2 left but B needs 3 there: refused.
        assert!(l.try_grant_chips(&wr_b).is_none());
    }

    #[test]
    fn gcp_unblocks_hot_chip_by_borrowing() {
        // Same scenario with a GCP of 4 usable tokens (Fig. 8).
        let mut l = Ledger::with_chips(12, 3, 4_000, 1.0, Some((1.0, 4_000)));
        l.try_grant_chips(&[t(1), t(2), t(1)]).unwrap();
        let g = l.try_grant_chips(&[t(0), t(3), t(2)]).unwrap();
        assert!(g.used_gcp());
        assert_eq!(g.gcp[1], t(3), "chip 1's segment served by GCP");
        assert_eq!(g.lcp[2], t(2), "chip 2's segment served locally");
        // Borrowing took 3 usable tokens from other chips' headroom.
        assert_eq!(g.borrowed.iter().copied().sum::<Tokens>(), t(3));
    }

    #[test]
    fn gcp_capacity_caps_output() {
        let mut l = Ledger::with_chips(560, 8, 66_500, 0.95, Some((0.95, 66_500)));
        // Demand 67 tokens on chip 0: over the LCP, to the GCP — but also
        // over the GCP cap of 66.5.
        let mut d = vec![Tokens::ZERO; 8];
        d[0] = t(67);
        assert!(l.try_grant_chips(&d).is_none());
        d[0] = Tokens::from_millis(66_500);
        assert!(l.try_grant_chips(&d).is_some());
    }

    #[test]
    fn gcp_borrowing_costs_efficiency() {
        // E_GCP = 0.5: delivering 10 usable tokens needs 20 raw, i.e. 19
        // usable borrowed at E_LCP = 0.95.
        let mut l = Ledger::with_chips(560, 8, 66_500, 0.95, Some((0.5, 66_500)));
        let mut d = vec![Tokens::ZERO; 8];
        // Exhaust chip 0 so its next demand must use the GCP.
        d[0] = Tokens::from_millis(66_500);
        let _hold = l.try_grant_chips(&d).unwrap();
        let mut d2 = vec![Tokens::ZERO; 8];
        d2[0] = t(10);
        let g = l.try_grant_chips(&d2).unwrap();
        assert_eq!(g.gcp_total, t(10));
        assert_eq!(g.gcp_raw, t(20));
        let borrowed: Tokens = g.borrowed.iter().copied().sum();
        assert_eq!(borrowed, t(19));
        // The hot chip itself has nothing left to lend.
        assert!(g.borrowed[0].is_zero());
    }

    #[test]
    fn borrowing_fails_when_no_headroom() {
        let mut l = Ledger::with_chips(560, 2, 10_000, 1.0, Some((0.5, 10_000)));
        // Fill both chips completely.
        let hold = l.try_grant_chips(&[t(10), t(10)]).unwrap();
        // Now any GCP use has nothing to borrow from.
        assert!(l.try_grant_chips(&[t(1), Tokens::ZERO]).is_none());
        l.release(&hold).unwrap();
        assert!(l.try_grant_chips(&[t(1), Tokens::ZERO]).is_some());
    }

    #[test]
    fn dimm_raw_binds_with_scaled_chips() {
        // 2×local: chips can each deliver 20 usable (raw 20 at e=1.0), but
        // the DIMM raw cap is only 30.
        let mut l = Ledger::with_chips(30, 2, 20_000, 1.0, None);
        let a = l.try_grant_chips(&[t(20), Tokens::ZERO]).unwrap();
        // Chip 1 alone could serve 20 more, but DIMM raw has only 10 left.
        assert!(l.try_grant_chips(&[Tokens::ZERO, t(20)]).is_none());
        assert!(l.try_grant_chips(&[Tokens::ZERO, t(10)]).is_some());
        l.release(&a).unwrap();
    }

    #[test]
    fn release_restores_everything() {
        let mut l = baseline(Some((0.7, 66_500)));
        let before_dimm = l.dimm_available().unwrap();
        let before_chips: Vec<Tokens> = (0..8).map(|i| l.chip_available(i)).collect();
        let mut d = vec![t(5); 8];
        d[3] = Tokens::from_millis(66_500); // force chip 3 over budget? no — exactly at budget
        let g1 = l.try_grant_chips(&d).unwrap();
        // Second grant on chip 3 must go through the GCP.
        let mut d2 = vec![Tokens::ZERO; 8];
        d2[3] = t(4);
        let g2 = l.try_grant_chips(&d2).unwrap();
        assert!(g2.used_gcp());
        l.release(&g2).unwrap();
        l.release(&g1).unwrap();
        assert_eq!(l.dimm_available().unwrap(), before_dimm);
        for (i, before) in before_chips.iter().enumerate() {
            assert_eq!(l.chip_available(i), *before, "chip {i}");
        }
        assert_eq!(l.gcp_available(), Some(Tokens::from_millis(66_500)));
    }

    #[test]
    fn failed_grant_changes_nothing() {
        let mut l = baseline(None);
        let before: Vec<Tokens> = (0..8).map(|i| l.chip_available(i)).collect();
        let mut d = vec![Tokens::ZERO; 8];
        d[0] = t(100); // over the 66.5 chip budget, no GCP
        assert!(l.try_grant_chips(&d).is_none());
        for (i, b) in before.iter().enumerate() {
            assert_eq!(l.chip_available(i), *b, "chip {i} must be untouched");
        }
        assert_eq!(l.dimm_available().unwrap(), Tokens::from_cells(560));
    }

    #[test]
    fn zero_demand_grant_is_free() {
        let mut l = baseline(None);
        let g = l.try_grant_chips(&[Tokens::ZERO; 8]).unwrap();
        assert!(!g.used_gcp());
        assert!(g.dimm_raw.is_zero());
        l.release(&g).unwrap();
    }

    #[test]
    fn regulated_efficiencies_cut_raw_draw() {
        // Uniform 0.5 efficiency vs regulation ramping 0.7 -> 0.5.
        let mut uniform = Ledger::with_chips(560, 8, 66_500, 0.95, Some((0.5, 66_500)));
        let mut regulated = Ledger::with_chips(560, 8, 66_500, 0.95, Some((0.5, 66_500)));
        regulated.set_gcp_efficiencies(vec![0.7, 0.67, 0.64, 0.61, 0.58, 0.55, 0.52, 0.5]);
        // Exhaust chip 0 on both, then route 10 tokens through the GCP.
        let mut full = vec![Tokens::ZERO; 8];
        full[0] = Tokens::from_millis(66_500);
        let _hold_u = uniform.try_grant_chips(&full).unwrap();
        let _hold_r = regulated.try_grant_chips(&full).unwrap();
        let mut d = vec![Tokens::ZERO; 8];
        d[0] = t(10);
        let gu = uniform.try_grant_chips(&d).unwrap();
        let gr = regulated.try_grant_chips(&d).unwrap();
        assert_eq!(gu.gcp_raw, t(20), "10 / 0.5");
        assert!(
            gr.gcp_raw < gu.gcp_raw,
            "regulated draw {} must beat uniform {}",
            gr.gcp_raw,
            gu.gcp_raw
        );
        // Chip 0 at 0.7: raw = 10 / 0.7 = 14.286.
        assert_eq!(gr.gcp_raw, Tokens::from_millis((10_000f64 / 0.7).ceil() as u64));
    }

    #[test]
    #[should_panic(expected = "efficiencies must be in (0, 1]")]
    fn bad_regulation_panics() {
        let mut l = Ledger::with_chips(560, 2, 10_000, 1.0, Some((0.5, 10_000)));
        l.set_gcp_efficiencies(vec![0.5, 1.5]);
    }

    #[test]
    #[should_panic(expected = "chip count mismatch")]
    fn wrong_chip_count_panics() {
        let mut l = baseline(None);
        let _ = l.try_grant_chips(&[Tokens::ZERO; 4]);
    }

    #[test]
    fn double_release_reports_domain_and_clamps() {
        let mut l = Ledger::flat(80);
        let g = l.try_grant_flat(t(50)).unwrap();
        l.release(&g).unwrap();
        let err = l.release(&g).unwrap_err();
        match err {
            LedgerError::OverRelease {
                domain,
                released_millis,
                headroom_millis,
            } => {
                assert_eq!(domain, LedgerDomain::Dimm);
                assert_eq!(released_millis, 50_000);
                assert_eq!(headroom_millis, 0);
            }
            other => panic!("unexpected error: {other}"),
        }
        // The budget is clamped, not corrupted.
        assert_eq!(l.dimm_available(), Some(t(80)));
    }

    #[test]
    fn chip_double_release_names_the_chip() {
        let mut l = baseline(None);
        let mut demand_a = vec![Tokens::ZERO; 8];
        demand_a[0] = t(5);
        let a = l.try_grant_chips(&demand_a).unwrap();
        // A second grant keeps DIMM headroom below A's raw draw, so the
        // double release overflows only chip 0 — the error names it.
        let mut demand_b = vec![Tokens::ZERO; 8];
        demand_b[1] = t(10);
        let _b = l.try_grant_chips(&demand_b).unwrap();
        l.release(&a).unwrap();
        match l.release(&a).unwrap_err() {
            LedgerError::OverRelease { domain, .. } => {
                assert_eq!(domain, LedgerDomain::Chip(0));
            }
            other => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn brownout_withholds_and_restores_exactly() {
        let mut l = baseline(Some((0.7, 66_500)));
        assert!(!l.in_brownout());
        l.begin_brownout(0.5);
        assert!(l.in_brownout());
        // Idle ledger: every domain drops to half its capacity.
        assert_eq!(l.dimm_available(), Some(t(280)));
        for i in 0..8 {
            assert_eq!(l.chip_available(i), Tokens::from_millis(33_250), "chip {i}");
        }
        assert_eq!(l.gcp_available(), Some(Tokens::from_millis(33_250)));
        let withheld = l.brownout_hold().unwrap().total_millis();
        assert_eq!(withheld, 280_000 + 8 * 33_250 + 33_250);
        // Re-entering is a no-op; ending restores every domain exactly.
        l.begin_brownout(0.1);
        assert_eq!(l.dimm_available(), Some(t(280)));
        l.end_brownout();
        assert!(!l.in_brownout());
        assert_eq!(l.dimm_available(), Some(t(560)));
        for i in 0..8 {
            assert_eq!(l.chip_available(i), Tokens::from_millis(66_500), "chip {i}");
        }
        assert_eq!(l.gcp_available(), Some(Tokens::from_millis(66_500)));
    }

    #[test]
    fn brownout_under_load_never_underflows_and_conserves() {
        let mut l = baseline(None);
        // Hold most of the budget, then brown out to zero: only what is
        // actually available can be withheld.
        let g = l.try_grant_chips(&[t(60); 8]).unwrap();
        let chip_left = l.chip_available(0);
        l.begin_brownout(0.0);
        assert_eq!(l.chip_available(0), Tokens::ZERO);
        assert_eq!(l.brownout_hold().unwrap().chips[0], chip_left);
        // Releasing the pre-brownout grant during the window is legal and
        // must not trip the over-release check.
        l.release(&g).unwrap();
        l.end_brownout();
        assert_eq!(l.dimm_available(), Some(t(560)));
        for i in 0..8 {
            assert_eq!(l.chip_available(i), Tokens::from_millis(66_500), "chip {i}");
        }
    }

    #[test]
    fn grants_respect_browned_out_budgets() {
        let mut l = Ledger::flat(100);
        l.begin_brownout(0.4);
        assert!(l.try_grant_flat(t(50)).is_none(), "only 40 tokens remain");
        let g = l.try_grant_flat(t(40)).unwrap();
        l.release(&g).unwrap();
        l.end_brownout();
        assert!(l.try_grant_flat(t(50)).is_some());
    }

    #[test]
    fn audit_balances_with_outstanding_grants() {
        let mut l = baseline(Some((0.7, 66_500)));
        let zeros = [Tokens::ZERO; 8];
        l.audit(Tokens::ZERO, &zeros, Tokens::ZERO).unwrap();
        let g = l.try_grant_chips(&[t(5); 8]).unwrap();
        let outstanding: Vec<Tokens> = (0..8).map(|i| g.lcp[i] + g.borrowed[i]).collect();
        l.audit(g.dimm_raw, &outstanding, g.gcp_total).unwrap();
        // The audit also balances mid-brownout.
        l.begin_brownout(0.5);
        l.audit(g.dimm_raw, &outstanding, g.gcp_total).unwrap();
        l.end_brownout();
        // Claiming nothing is outstanding while a grant is held must fail.
        let err = l.audit(Tokens::ZERO, &zeros, Tokens::ZERO).unwrap_err();
        assert!(matches!(err, LedgerError::Unbalanced { .. }));
        l.release(&g).unwrap();
        l.audit(Tokens::ZERO, &zeros, Tokens::ZERO).unwrap();
    }
}
