//! Effective-config projection for sweep deduplication.
//!
//! Two sweep points with different raw [`SystemConfig`]s can still be the
//! *same simulation*: every power knob (`pt_dimm`, `e_lcp`, `e_gcp`, …)
//! is absorbed into a [`PowerPolicyConfig`](crate::PowerPolicyConfig) at
//! scheme-build time, and a scheme that ignores a knob (the DIMM+chip
//! baseline has no GCP, so `e_gcp` never reaches it) produces an
//! identical policy — and therefore identical metrics — across that
//! knob's whole axis. The sweep's semantic dedup exploits exactly this:
//! a scheme declares which slice of the config can reach its runs, the
//! sweep projects each point onto that slice, and points with equal
//! projections share one simulation.
//!
//! Correctness never depends on a declaration being *tight*. A scheme
//! that declares nothing gets [`ConfigSensitivity::FullConfig`]: the
//! projection is the whole config, every point is its own equivalence
//! class, and dedup degenerates to no sharing. A declaration may only
//! ever be *wrong* by claiming insensitivity to an input that does reach
//! the simulation — which is why the only non-conservative variant,
//! [`ConfigSensitivity::PolicyAbsorbed`], is paired with the built
//! scheme's own state in [`effective_config_desc`]'s callers: the power
//! section is dropped from the config precisely because its entire
//! influence is captured by the policy the caller appends.

use fpb_types::{PowerConfig, SystemConfig};

/// How much of the raw [`SystemConfig`] can influence a scheme's
/// simulation results, as declared by the scheme itself (the
/// `Scheme::sensitivity` hook in `fpb-sim`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigSensitivity {
    /// Conservative default: every config field may matter. The
    /// projection is the identity, so only bit-identical configs share a
    /// simulation. Any scheme that does not (or cannot) characterize its
    /// inputs gets this and stays correct.
    FullConfig,
    /// The scheme reads the `power` section of the config only through
    /// the policy built from it at setup time: once the built setup is
    /// part of the dedup key, the raw power knobs are redundant and two
    /// configs differing only in `power` are equivalent. This is the
    /// declaration `SchemeSetup` makes — the engine run path consumes
    /// `PowerPolicyConfig`, never `SystemConfig::power`.
    PolicyAbsorbed,
}

/// Renders the slice of `cfg` that can reach a simulation under the
/// given sensitivity, as a deterministic description string.
///
/// The string is built from `Debug` formatting: every config scalar is
/// either an integer or an `f64` rendered by Rust's shortest-round-trip
/// formatter, so two configs produce equal descriptions iff the
/// projected fields are bit-for-bit equal. Under
/// [`ConfigSensitivity::PolicyAbsorbed`] the `power` section is replaced
/// by its default (a fixed constant, *not* omitted — keeping the shape
/// stable guards against accidental collisions with `FullConfig`
/// strings) and the caller must append the built scheme state that
/// absorbed it.
///
/// # Examples
///
/// ```
/// use fpb_core::{effective_config_desc, ConfigSensitivity};
/// use fpb_types::SystemConfig;
///
/// let mut a = SystemConfig::default();
/// let mut b = SystemConfig::default();
/// a.power.e_gcp = 0.5;
/// b.power.e_gcp = 0.9;
/// // Full sensitivity keeps the points distinct…
/// assert_ne!(
///     effective_config_desc(&a, ConfigSensitivity::FullConfig),
///     effective_config_desc(&b, ConfigSensitivity::FullConfig),
/// );
/// // …while a policy-absorbed scheme sees them as the same simulation.
/// assert_eq!(
///     effective_config_desc(&a, ConfigSensitivity::PolicyAbsorbed),
///     effective_config_desc(&b, ConfigSensitivity::PolicyAbsorbed),
/// );
/// ```
pub fn effective_config_desc(cfg: &SystemConfig, sensitivity: ConfigSensitivity) -> String {
    match sensitivity {
        ConfigSensitivity::FullConfig => format!("full|{cfg:?}"),
        ConfigSensitivity::PolicyAbsorbed => {
            let mut projected = cfg.clone();
            projected.power = PowerConfig::default();
            format!("power-absorbed|{projected:?}")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_config_is_the_identity_projection() {
        let a = SystemConfig::default();
        let mut b = SystemConfig::default();
        assert_eq!(
            effective_config_desc(&a, ConfigSensitivity::FullConfig),
            effective_config_desc(&b, ConfigSensitivity::FullConfig)
        );
        b.seed ^= 1;
        assert_ne!(
            effective_config_desc(&a, ConfigSensitivity::FullConfig),
            effective_config_desc(&b, ConfigSensitivity::FullConfig)
        );
    }

    #[test]
    fn policy_absorbed_ignores_only_power() {
        let a = SystemConfig::default();

        // Any power knob: projected away.
        let mut p = SystemConfig::default();
        p.power.pt_dimm += 1;
        p.power.e_lcp = 0.5;
        assert_eq!(
            effective_config_desc(&a, ConfigSensitivity::PolicyAbsorbed),
            effective_config_desc(&p, ConfigSensitivity::PolicyAbsorbed)
        );

        // Every non-power section still splits the class.
        let mut c = SystemConfig::default();
        c.cores += 1;
        assert_ne!(
            effective_config_desc(&a, ConfigSensitivity::PolicyAbsorbed),
            effective_config_desc(&c, ConfigSensitivity::PolicyAbsorbed)
        );
        let mut s = SystemConfig::default();
        s.seed ^= 0xF00;
        assert_ne!(
            effective_config_desc(&a, ConfigSensitivity::PolicyAbsorbed),
            effective_config_desc(&s, ConfigSensitivity::PolicyAbsorbed)
        );
    }

    #[test]
    fn projections_never_collide_across_sensitivities() {
        let a = SystemConfig::default();
        assert_ne!(
            effective_config_desc(&a, ConfigSensitivity::FullConfig),
            effective_config_desc(&a, ConfigSensitivity::PolicyAbsorbed)
        );
    }

    #[test]
    fn float_debug_distinguishes_close_values() {
        // Debug floats are shortest-round-trip: distinct f64 bit patterns
        // render distinctly, so string equality is value equality.
        let mut a = SystemConfig::default();
        let mut b = SystemConfig::default();
        a.power.e_gcp = 0.7;
        b.power.e_gcp = 0.7 + f64::EPSILON;
        assert_ne!(
            effective_config_desc(&a, ConfigSensitivity::FullConfig),
            effective_config_desc(&b, ConfigSensitivity::FullConfig)
        );
    }
}
