//! The paper's power-budget equations (Eqs. 4–6), as standalone,
//! documented functions.
//!
//! The [`crate::Ledger`] enforces these relations dynamically; this module
//! states them closed-form so configurations can be sized and checked
//! (and so the tests can mirror the paper's own worked numbers).

use fpb_types::Tokens;

/// Eq. 4 — usable per-chip budget:
/// `PT_LCP = PT_DIMM × E_LCP / chips`.
///
/// # Panics
///
/// Panics if `chips` is zero or `e_lcp` is outside `(0, 1]`.
///
/// # Examples
///
/// ```
/// use fpb_core::budget::pt_lcp;
///
/// // The paper's baseline: 560 × 0.95 / 8 = 66.5 tokens per chip.
/// assert_eq!(pt_lcp(560, 0.95, 8).millis(), 66_500);
/// ```
pub fn pt_lcp(pt_dimm: u64, e_lcp: f64, chips: u8) -> Tokens {
    assert!(chips > 0, "chips must be nonzero");
    assert!(e_lcp > 0.0 && e_lcp <= 1.0, "e_lcp must be in (0, 1]");
    Tokens::from_millis(((pt_dimm * 1000) as f64 * e_lcp / chips as f64).floor() as u64)
}

/// Eq. 5 — usable GCP output from per-chip borrowed budgets:
/// `PT_GCP = Σ(Borrowed_i / E_LCP) × E_GCP`.
///
/// `borrowed` is in usable per-chip (LCP) tokens.
///
/// # Panics
///
/// Panics if an efficiency is outside `(0, 1]`.
///
/// # Examples
///
/// ```
/// use fpb_core::budget::pt_gcp;
/// use fpb_types::Tokens;
///
/// // Borrow 19 usable tokens at E_LCP = 0.95, convert at E_GCP = 0.5:
/// // raw 20 → 10 usable through the GCP.
/// let out = pt_gcp(&[Tokens::from_cells(19)], 0.95, 0.5);
/// assert_eq!(out, Tokens::from_cells(10));
/// ```
pub fn pt_gcp(borrowed: &[Tokens], e_lcp: f64, e_gcp: f64) -> Tokens {
    assert!(e_lcp > 0.0 && e_lcp <= 1.0, "e_lcp must be in (0, 1]");
    assert!(e_gcp > 0.0 && e_gcp <= 1.0, "e_gcp must be in (0, 1]");
    let total: Tokens = borrowed.iter().copied().sum();
    total.scale_up(e_lcp).scale_down(e_gcp)
}

/// Eq. 6 — conservation check: the raw DIMM budget equals the raw draw of
/// the un-borrowed LCP budgets plus the GCP's raw draw:
/// `PT_DIMM = Σ(PT_LCP − Borrowed_i)/E_LCP + PT_GCP/E_GCP`.
///
/// Returns the relative error of the identity for the given allocation
/// (≈0 up to fixed-point rounding when the allocation is consistent).
///
/// # Panics
///
/// Panics if `borrowed` length differs from `chips`, any borrow exceeds
/// `PT_LCP`, or an efficiency is out of range.
pub fn eq6_relative_error(
    pt_dimm: u64,
    chips: u8,
    e_lcp: f64,
    e_gcp: f64,
    borrowed: &[Tokens],
) -> f64 {
    assert_eq!(borrowed.len(), chips as usize, "chip count mismatch");
    let lcp = pt_lcp(pt_dimm, e_lcp, chips);
    let mut raw = 0.0;
    for &b in borrowed {
        assert!(b <= lcp, "cannot borrow more than PT_LCP");
        raw += (lcp - b).as_f64() / e_lcp;
    }
    let gcp = pt_gcp(borrowed, e_lcp, e_gcp);
    raw += gcp.as_f64() / e_gcp;
    (raw - pt_dimm as f64).abs() / pt_dimm as f64
}

/// Table 3's sizing rule: raw charge-pump tokens needed to deliver
/// `usable` tokens at efficiency `eff` (area is proportional to this).
///
/// # Panics
///
/// Panics if `eff` is outside `(0, 1]`.
///
/// # Examples
///
/// ```
/// use fpb_core::budget::raw_pump_tokens;
/// // Table 3: GCP-NE-0.95 delivers 66 usable → 70 raw tokens.
/// assert_eq!(raw_pump_tokens(66, 0.95), 70);
/// ```
pub fn raw_pump_tokens(usable: u64, eff: f64) -> u64 {
    assert!(eff > 0.0 && eff <= 1.0, "efficiency must be in (0, 1]");
    (usable as f64 / eff).ceil() as u64
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn eq4_matches_paper_baseline() {
        assert_eq!(pt_lcp(560, 0.95, 8), Tokens::from_millis(66_500));
        // Scaled budgets of Fig. 22: 466 and 598 tokens.
        assert_eq!(pt_lcp(466, 0.95, 8).millis(), 55_337);
        assert_eq!(pt_lcp(598, 0.95, 8).millis(), 71_012);
    }

    #[test]
    fn eq5_conversion_costs_power() {
        let borrowed = [Tokens::from_cells(10); 8];
        let full = pt_gcp(&borrowed, 0.95, 0.95);
        let lossy = pt_gcp(&borrowed, 0.95, 0.5);
        // Same-efficiency conversion is ~lossless; lower E_GCP delivers less.
        assert!((full.as_f64() - 80.0).abs() < 0.01);
        assert!(lossy < full);
        assert!((lossy.as_f64() - 80.0 * 0.5 / 0.95).abs() < 0.01);
    }

    #[test]
    fn eq6_holds_for_any_borrow_split() {
        for pattern in [
            [Tokens::ZERO; 8],
            [Tokens::from_cells(66); 8],
            {
                let mut p = [Tokens::ZERO; 8];
                p[0] = Tokens::from_cells(30);
                p[5] = Tokens::from_cells(12);
                p
            },
        ] {
            let err = eq6_relative_error(560, 8, 0.95, 0.7, &pattern);
            assert!(err < 1e-4, "relative error {err} for {pattern:?}");
        }
    }

    #[test]
    fn table3_raw_sizes() {
        // The paper's Table 3 conversions.
        assert_eq!(raw_pump_tokens(66, 0.95), 70);
        assert_eq!(raw_pump_tokens(16, 0.70), 23);
        assert_eq!(raw_pump_tokens(28, 0.70), 40);
        assert_eq!(raw_pump_tokens(28, 0.95), 30);
    }

    #[test]
    #[should_panic(expected = "cannot borrow more than PT_LCP")]
    fn overborrow_panics() {
        let mut b = [Tokens::ZERO; 8];
        b[0] = Tokens::from_cells(100);
        let _ = eq6_relative_error(560, 8, 0.95, 0.7, &b);
    }
}
