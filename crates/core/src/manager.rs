//! The power manager: admission and per-iteration budgeting of writes.

use std::fmt;

use fpb_pcm::{DimmGeometry, IterKind, LineWrite};
use fpb_types::{LedgerError, Tokens};

use crate::config::PowerPolicyConfig;
use crate::ledger::{Grant, Ledger};
use crate::stats::PowerStats;

/// Identifier of an in-flight write (assigned by the simulator).
///
/// # Examples
///
/// ```
/// use fpb_core::WriteId;
/// assert_eq!(WriteId::new(7).get(), 7);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WriteId(u64);

impl WriteId {
    /// Creates an id.
    pub const fn new(n: u64) -> Self {
        WriteId(n)
    }

    /// Raw value.
    pub const fn get(self) -> u64 {
        self.0
    }
}

impl fmt::Display for WriteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wr#{}", self.0)
    }
}

/// The budgeting engine driving one DIMM's power tokens.
///
/// The simulator's contract:
///
/// 1. [`PowerManager::try_admit`] before issuing a queued write — may apply
///    Multi-RESET splitting to the write; on `false` the write stays
///    queued.
/// 2. After each completed iteration (and `write.advance()`), if the write
///    is not finished, [`PowerManager::try_advance`] — on `false` the
///    write stalls *holding no tokens*; call again until it succeeds.
/// 3. [`PowerManager::release`] on completion, cancellation, or pause.
///
/// A stalled write holds nothing because a stalled write draws no power;
/// this also makes the protocol deadlock-free (every held allocation
/// belongs to an iteration that is actively burning cycles and will
/// complete).
#[derive(Debug, Clone)]
pub struct PowerManager {
    cfg: PowerPolicyConfig,
    geom: DimmGeometry,
    ledger: Ledger,
    /// Outstanding grants, sorted by `WriteId`. At most one grant exists
    /// per in-flight write (bounded by the bank count), so a sorted `Vec`
    /// beats a tree map on the per-iteration grant/release path while
    /// keeping audit iteration order (and any diagnostics derived from
    /// it) deterministic.
    holds: Vec<(WriteId, Grant)>,
    stats: PowerStats,
    /// When set, token conservation is re-verified after every grant and
    /// release (see [`PowerManager::enable_audit`]).
    audit: bool,
    audit_violations: u64,
    first_violation: Option<LedgerError>,
    /// Reusable per-chip demand buffer: admission is attempted (and often
    /// refused) on every scheduling pass, so demand computation must not
    /// allocate.
    demand_scratch: Vec<Tokens>,
    /// Reusable per-chip changed-cell counts feeding `demand_scratch`.
    chip_scratch: Vec<u32>,
    /// Reusable outstanding-per-chip buffer for the opt-in auditor.
    audit_scratch: Vec<Tokens>,
}

impl PowerManager {
    /// Builds the manager for a policy and DIMM geometry.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid ([`PowerPolicyConfig::validate`]).
    pub fn new(cfg: PowerPolicyConfig, geom: &DimmGeometry) -> Self {
        if let Err(e) = cfg.validate() {
            // Construction-time validation with a documented `# Panics`
            // contract; unreachable from run/step per panic_reachability.
            // fpb-lint: allow(panic_freedom)
            panic!("invalid power policy config: {e}");
        }
        let ledger = match cfg.pt_dimm {
            None => Ledger::unlimited(),
            Some(pt) if !cfg.enforce_chip_budget => Ledger::flat(pt),
            Some(pt) => {
                let gcp = cfg.gcp.as_ref().map(|g| {
                    let lcp_millis =
                        ((pt * 1000) as f64 * cfg.e_lcp / cfg.chips as f64).floor() as u64;
                    let cap = (lcp_millis as f64 * g.capacity_lcps).floor() as u64;
                    (g.e_gcp, cap)
                });
                let mut ledger =
                    Ledger::with_chips(pt, cfg.chips, cfg.chip_budget_millis(), cfg.e_lcp, gcp);
                if let Some(g) = cfg.gcp.as_ref() {
                    if g.per_chip_regulation {
                        ledger.set_gcp_efficiencies(g.chip_efficiencies(cfg.chips));
                    }
                }
                ledger
            }
        };
        PowerManager {
            cfg,
            geom: *geom,
            ledger,
            holds: Vec::new(),
            stats: PowerStats::default(),
            audit: false,
            audit_violations: 0,
            first_violation: None,
            demand_scratch: Vec::new(),
            chip_scratch: Vec::new(),
            audit_scratch: Vec::new(),
        }
    }

    /// Turns on the runtime conservation auditor: after every grant and
    /// release, the ledger's books are re-verified against the set of
    /// outstanding holds ([`Ledger::audit`]). Violations are counted and
    /// the first one kept — they indicate a budgeting bug, not a modeled
    /// device fault, so the simulation keeps running and the caller checks
    /// [`PowerManager::first_audit_violation`] at the end.
    pub fn enable_audit(&mut self) {
        self.audit = true;
    }

    /// Number of accounting violations observed (0 unless auditing).
    pub fn audit_violations(&self) -> u64 {
        self.audit_violations
    }

    /// The first accounting violation observed, if any.
    pub fn first_audit_violation(&self) -> Option<&LedgerError> {
        self.first_violation.as_ref()
    }

    /// Enters a brownout window on the underlying ledger, keeping
    /// `keep_fraction` of every capacity (see [`Ledger::begin_brownout`]).
    pub fn begin_brownout(&mut self, keep_fraction: f64) {
        self.ledger.begin_brownout(keep_fraction);
        self.audit_now();
    }

    /// Ends the brownout window, restoring withheld tokens exactly.
    pub fn end_brownout(&mut self) {
        self.ledger.end_brownout();
        self.audit_now();
    }

    /// True while the ledger is withholding brownout tokens.
    pub fn in_brownout(&self) -> bool {
        self.ledger.in_brownout()
    }

    /// The policy configuration in force.
    pub fn config(&self) -> &PowerPolicyConfig {
        &self.cfg
    }

    /// The live ledger (for inspection).
    pub fn ledger(&self) -> &Ledger {
        &self.ledger
    }

    /// Moves the ledger's grant-planning scratch out (see
    /// [`Ledger::take_scratch`]). Used by sweep workers to recycle the
    /// planner's buffers across simulated configurations.
    pub fn take_grant_scratch(&mut self) -> crate::ledger::GrantScratch {
        self.ledger.take_scratch()
    }

    /// Installs a donated grant-planning scratch (see
    /// [`Ledger::donate_scratch`]). Allocation-only: grant decisions are
    /// unaffected by scratch provenance.
    pub fn donate_grant_scratch(&mut self, scratch: crate::ledger::GrantScratch) {
        self.ledger.donate_scratch(scratch);
    }

    /// Statistics collected so far.
    pub fn stats(&self) -> &PowerStats {
        &self.stats
    }

    /// Attempts to admit a queued write (start its first iteration).
    ///
    /// With Multi-RESET enabled, a write refused at full RESET power is
    /// split into `multi_reset_splits` group-RESETs and retried — this is
    /// why the write is taken `&mut`.
    ///
    /// # Panics
    ///
    /// Panics if the write has already started.
    pub fn try_admit(&mut self, id: WriteId, write: &mut LineWrite) -> bool {
        assert_eq!(write.iterations_done(), 0, "write already started");
        if self.try_allocate_next(id, write) {
            self.stats.note_admit();
            return true;
        }
        if self.cfg.ipm
            && self.cfg.multi_reset_splits > 1
            && write.reset_groups() == 1
            && write.total_changed() > 0
        {
            write.resplit_reset(&self.geom, self.cfg.multi_reset_splits);
            self.stats.note_multi_reset();
            if self.try_allocate_next(id, write) {
                self.stats.note_admit();
                return true;
            }
        }
        self.stats.note_admit_failure();
        false
    }

    /// Re-budgets a write at an iteration boundary (its previous iteration
    /// has been `advance`d and it is not complete). Returns `false` if the
    /// next iteration's tokens are unavailable; the write then holds
    /// nothing and must retry.
    pub fn try_advance(&mut self, id: WriteId, write: &LineWrite) -> bool {
        debug_assert!(!write.is_complete(), "advancing a completed write");
        if !self.cfg.ipm {
            // Hay-style policies hold their whole-write grant throughout.
            // A write that is mid-flight always has its hold (or runs under
            // the unlimited ledger).
            return true;
        }
        self.release(id);
        if self.try_allocate_next(id, write) {
            true
        } else {
            self.stats.note_advance_stall();
            false
        }
    }

    /// Releases everything a write holds (completion, cancellation, or
    /// pause). Safe to call when nothing is held.
    ///
    /// An over-release detected by the ledger is recorded as an audit
    /// violation (the ledger clamps and stays consistent) rather than
    /// propagated — release sites must always succeed in freeing the hold.
    pub fn release(&mut self, id: WriteId) {
        if let Some(grant) = self.take_hold(id) {
            if grant.used_gcp() {
                self.stats.note_gcp_release(grant.gcp_total);
            }
            if let Err(e) = self.ledger.release(&grant) {
                self.record_violation(e);
            }
            self.audit_now();
            self.ledger.recycle_grant(grant);
        }
    }

    /// True if the write currently holds tokens.
    pub fn holds_tokens(&self, id: WriteId) -> bool {
        self.holds.binary_search_by_key(&id, |e| e.0).is_ok()
    }

    // ---- internals ----

    /// Removes and returns `id`'s grant, keeping `holds` sorted.
    fn take_hold(&mut self, id: WriteId) -> Option<Grant> {
        match self.holds.binary_search_by_key(&id, |e| e.0) {
            Ok(i) => Some(self.holds.remove(i).1),
            Err(_) => None,
        }
    }

    /// Inserts (or replaces) `id`'s grant, keeping `holds` sorted.
    fn put_hold(&mut self, id: WriteId, grant: Grant) {
        match self.holds.binary_search_by_key(&id, |e| e.0) {
            Ok(i) => self.holds[i].1 = grant,
            Err(i) => self.holds.insert(i, (id, grant)),
        }
    }

    /// Computes and commits the allocation covering the write from its
    /// current position: the *next iteration* under IPM, or the whole
    /// write under per-write budgeting.
    fn try_allocate_next(&mut self, id: WriteId, write: &LineWrite) -> bool {
        debug_assert!(!self.holds_tokens(id), "{id} double allocation");
        // The scratch buffers are taken out for the duration of the call so
        // `&self` demand helpers can fill them while the ledger is borrowed.
        let mut per_chip = std::mem::take(&mut self.demand_scratch);
        let mut counts = std::mem::take(&mut self.chip_scratch);
        let grant = if !self.ledger.has_chip_budgets() {
            let usable = if self.cfg.ipm {
                self.iteration_chip_demand_into(write, &mut counts, &mut per_chip);
                per_chip.iter().copied().sum()
            } else {
                Tokens::from_cells(write.total_changed() as u64)
            };
            self.ledger.try_grant_flat(usable)
        } else {
            if self.cfg.ipm {
                self.iteration_chip_demand_into(write, &mut counts, &mut per_chip);
            } else {
                write.per_chip_changed_into(&mut counts);
                per_chip.clear();
                per_chip.extend(counts.iter().map(|&c| Tokens::from_cells(c as u64)));
            }
            self.ledger.try_grant_chips(&per_chip)
        };
        self.demand_scratch = per_chip;
        self.chip_scratch = counts;
        match grant {
            Some(g) => {
                if g.used_gcp() {
                    self.stats.note_gcp_grant(g.gcp_total, g.gcp_raw);
                }
                self.put_hold(id, g);
                self.audit_now();
                true
            }
            None => false,
        }
    }

    /// Re-verifies conservation against the outstanding holds. The
    /// disabled case is a single inlined branch so the auditor costs
    /// nothing on the default (non-auditing) hot path.
    #[inline]
    fn audit_now(&mut self) {
        if self.audit {
            self.audit_outstanding();
        }
    }

    #[cold]
    fn audit_outstanding(&mut self) {
        let chips = self.cfg.chips as usize;
        let mut dimm = Tokens::ZERO;
        let mut per_chip = std::mem::take(&mut self.audit_scratch);
        per_chip.clear();
        per_chip.resize(chips, Tokens::ZERO);
        let mut gcp = Tokens::ZERO;
        for (_, grant) in &self.holds {
            dimm += grant.dimm_raw;
            gcp += grant.gcp_total;
            for (acc, (&l, &b)) in per_chip
                .iter_mut()
                .zip(grant.lcp.iter().zip(grant.borrowed.iter()))
            {
                *acc += l + b;
            }
        }
        if let Err(e) = self.ledger.audit(dimm, &per_chip, gcp) {
            self.record_violation(e);
        }
        self.audit_scratch = per_chip;
    }

    fn record_violation(&mut self, e: LedgerError) {
        self.audit_violations += 1;
        if self.first_violation.is_none() {
            self.first_violation = Some(e);
        }
    }

    /// FPB-IPM allocation for the write's next iteration, per chip (§3.1),
    /// written into `out` (cleared first; `counts` is a helper buffer for
    /// the first-SET path):
    ///
    /// * RESET group `g`: exactly the group's changed cells (known from the
    ///   read-before-write comparison).
    /// * First SET: the full change count divided by `C` ("half of the
    ///   allocated tokens are reclaimed in write iteration 2").
    /// * SET `j ≥ 2`: the cells unfinished after iteration `i − 2` divided
    ///   by `C` — the freshest device report available without adding
    ///   latency.
    fn iteration_chip_demand_into(
        &self,
        write: &LineWrite,
        counts: &mut Vec<u32>,
        out: &mut Vec<Tokens>,
    ) {
        let c = self.cfg.reset_set_ratio;
        out.clear();
        let Some(next) = write.next_demand() else {
            // A completed write demands nothing. Unreachable from the
            // engine (completed writes release, they don't allocate), but a
            // zero grant is benign where a panic would not be.
            out.resize(self.cfg.chips as usize, Tokens::ZERO);
            return;
        };
        match next.kind {
            IterKind::Reset { .. } => {
                out.extend(next.per_chip.iter().map(|&n| Tokens::from_cells(n as u64)));
            }
            IterKind::Set { index: 1 } => {
                write.per_chip_changed_into(counts);
                out.extend(
                    counts
                        .iter()
                        .map(|&n| Tokens::from_cells(n as u64).div_ratio(c)),
                );
            }
            IterKind::Set { .. } => {
                let lagged = write.iterations_done() - 1; // i - 2, 0-based done count
                let chips = self.cfg.chips as usize;
                out.resize(chips, Tokens::ZERO);
                if let Some(per_chip) = write.per_chip_unfinished_after(lagged) {
                    for (o, &n) in out.iter_mut().zip(per_chip.iter()) {
                        *o = Tokens::from_cells(n as u64).div_ratio(c);
                    }
                } else {
                    // No lagged report yet (SET ≥ 2 implies the RESET groups
                    // fired, so this is unreachable); fall back to the full
                    // change count, which can only over-reserve.
                    write.per_chip_changed_into(counts);
                    for (o, &n) in out.iter_mut().zip(counts.iter()) {
                        *o = Tokens::from_cells(n as u64).div_ratio(c);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use fpb_pcm::{CellMapping, ChangeSet, IterationSampler, MlcLevel};
    use fpb_types::{MlcWriteModel, PowerConfig, SimRng};

    fn geom() -> DimmGeometry {
        DimmGeometry::new(8, 1024)
    }

    fn sampler() -> IterationSampler {
        IterationSampler::new(MlcWriteModel::default())
    }

    fn write_of(n: u32, level: MlcLevel, seed: u64) -> LineWrite {
        let cs: ChangeSet = (0..n).map(|i| (i * 3 % 1024, level)).collect();
        let mut rng = SimRng::seed_from(seed);
        LineWrite::new(&cs, &geom(), CellMapping::Bim, &sampler(), &mut rng, 1)
    }

    fn drive_to_completion(pm: &mut PowerManager, id: WriteId, w: &mut LineWrite) {
        assert!(pm.try_admit(id, w));
        loop {
            w.advance();
            if w.is_complete() {
                pm.release(id);
                return;
            }
            assert!(pm.try_advance(id, w), "unexpected stall in solo run");
        }
    }

    #[test]
    fn ideal_never_refuses() {
        let mut pm = PowerManager::new(
            PowerPolicyConfig::ideal(&PowerConfig::default(), 8),
            &geom(),
        );
        for i in 0..10 {
            let mut w = write_of(1000, MlcLevel::L01, i);
            assert!(pm.try_admit(WriteId::new(i), &mut w));
        }
        assert_eq!(pm.stats().admissions(), 10);
    }

    #[test]
    fn dimm_only_serializes_oversized_writes() {
        // Paper §3 example: budget 80, WR-A 50 cells, WR-B 40 cells — the
        // per-write heuristic cannot overlap them.
        let power = PowerConfig {
            pt_dimm: 80,
            ..PowerConfig::default()
        };
        let mut pm = PowerManager::new(PowerPolicyConfig::dimm_only(&power, 8), &geom());
        let mut a = write_of(50, MlcLevel::L01, 1);
        let mut b = write_of(40, MlcLevel::L01, 2);
        assert!(pm.try_admit(WriteId::new(1), &mut a));
        assert!(!pm.try_admit(WriteId::new(2), &mut b));
        // Even when A is deep into its SETs, per-write budgeting holds all
        // 50 tokens.
        a.advance();
        assert!(pm.try_advance(WriteId::new(1), &a));
        assert!(!pm.try_admit(WriteId::new(2), &mut b));
        pm.release(WriteId::new(1));
        assert!(pm.try_admit(WriteId::new(2), &mut b));
    }

    #[test]
    fn ipm_overlaps_what_per_write_cannot() {
        // Same scenario with IPM: after WR-A's RESET, its allocation drops
        // to 25 tokens, freeing room for WR-B's 40-token RESET (Fig. 5b).
        let power = PowerConfig {
            pt_dimm: 80,
            ..PowerConfig::default()
        };
        let cfg = PowerPolicyConfig {
            ipm: true,
            ..PowerPolicyConfig::dimm_only(&power, 8)
        };
        let mut pm = PowerManager::new(cfg, &geom());
        let mut a = write_of(50, MlcLevel::L01, 1);
        let mut b = write_of(40, MlcLevel::L01, 2);
        assert!(pm.try_admit(WriteId::new(1), &mut a));
        assert!(!pm.try_admit(WriteId::new(2), &mut b), "RESETs cannot overlap");
        a.advance(); // A's RESET done
        assert!(pm.try_advance(WriteId::new(1), &a)); // A now holds 25
        assert!(pm.try_admit(WriteId::new(2), &mut b), "B fits alongside A's SETs");
    }

    #[test]
    fn ipm_allocation_steps_down() {
        let power = PowerConfig {
            pt_dimm: 560,
            ..PowerConfig::default()
        };
        let cfg = PowerPolicyConfig {
            ipm: true,
            ..PowerPolicyConfig::dimm_only(&power, 8)
        };
        let mut pm = PowerManager::new(cfg, &geom());
        let mut w = write_of(100, MlcLevel::L01, 3);
        let id = WriteId::new(1);
        assert!(pm.try_admit(id, &mut w));
        let after_reset = pm.ledger().dimm_available().unwrap();
        let _ = after_reset;
        assert_eq!(after_reset, Tokens::from_cells(460));
        w.advance();
        assert!(pm.try_advance(id, &w));
        // First SET holds 100 / 2 = 50 tokens (plus per-chip ceil rounding,
        // at most half a token per chip).
        let held = Tokens::from_cells(560) - pm.ledger().dimm_available().unwrap();
        assert!(
            held >= Tokens::from_cells(50) && held <= Tokens::from_cells(54),
            "first SET hold = {held}"
        );
        // Subsequent allocations never grow.
        let mut last = held;
        loop {
            w.advance();
            if w.is_complete() {
                pm.release(id);
                break;
            }
            assert!(pm.try_advance(id, &w));
            let held = Tokens::from_cells(560) - pm.ledger().dimm_available().unwrap();
            assert!(held <= last, "allocation grew: {held} > {last}");
            last = held;
        }
        assert_eq!(
            pm.ledger().dimm_available().unwrap(),
            Tokens::from_cells(560)
        );
    }

    #[test]
    fn multi_reset_admits_blocked_write() {
        // Fig. 6: APT 30 (80 minus WR-A's 50), WR-B needs 60 — refused
        // whole, admitted after splitting into 3 group-RESETs.
        let power = PowerConfig {
            pt_dimm: 80,
            ..PowerConfig::default()
        };
        let cfg = PowerPolicyConfig {
            ipm: true,
            multi_reset_splits: 3,
            ..PowerPolicyConfig::dimm_only(&power, 8)
        };
        let mut pm = PowerManager::new(cfg, &geom());
        // WR-A: 50 spread-out cells.
        let mut a = write_of(50, MlcLevel::L01, 4);
        assert!(pm.try_admit(WriteId::new(1), &mut a));
        // WR-B: 60 cells spread across the chunk so groups split ~20/20/20.
        let cs: ChangeSet = (0..60u32).map(|i| (i * 17 % 1024, MlcLevel::L01)).collect();
        let mut rng = SimRng::seed_from(5);
        let mut b = LineWrite::new(&cs, &geom(), CellMapping::Bim, &sampler(), &mut rng, 1);
        assert!(pm.try_admit(WriteId::new(2), &mut b));
        assert_eq!(b.reset_groups(), 3, "B must have been split");
        assert_eq!(pm.stats().multi_reset_splits(), 1);
    }

    #[test]
    fn chip_budget_refuses_hot_chip_writes() {
        // All changes on one chip exceed PT_LCP = 66.5.
        let cfg = PowerPolicyConfig::dimm_chip(&PowerConfig::default(), 8);
        let mut pm = PowerManager::new(cfg, &geom());
        // Chip 0 under VIM holds cells 0, 8, 16, ... — 80 of them is over
        // budget.
        let cs: ChangeSet = (0..80u32).map(|i| (i * 8, MlcLevel::L01)).collect();
        let mut rng = SimRng::seed_from(6);
        let mut w = LineWrite::new(&cs, &geom(), CellMapping::Vim, &sampler(), &mut rng, 1);
        assert!(!pm.try_admit(WriteId::new(1), &mut w));
        assert_eq!(pm.stats().admission_failures(), 1);
    }

    #[test]
    fn gcp_rescues_hot_chip_writes() {
        let cfg = PowerPolicyConfig::gcp_only(&PowerConfig::default(), 8);
        let mut pm = PowerManager::new(cfg, &geom());
        let cs: ChangeSet = (0..60u32).map(|i| (i * 8, MlcLevel::L01)).collect();
        let mut rng = SimRng::seed_from(7);
        // First saturate chip 0 with a hold.
        let hot: ChangeSet = (0..66u32).map(|i| (i * 8, MlcLevel::L01)).collect();
        let mut w1 = LineWrite::new(&hot, &geom(), CellMapping::Vim, &sampler(), &mut rng, 1);
        assert!(pm.try_admit(WriteId::new(1), &mut w1));
        // Second hot-chip write must ride the GCP.
        let mut w2 = LineWrite::new(&cs, &geom(), CellMapping::Vim, &sampler(), &mut rng, 1);
        assert!(pm.try_admit(WriteId::new(2), &mut w2));
        assert!(pm.stats().gcp_grants() > 0);
        assert!(pm.stats().peak_gcp_tokens() >= 60);
    }

    #[test]
    fn release_is_idempotent_and_restores_budget() {
        let cfg = PowerPolicyConfig::dimm_chip(&PowerConfig::default(), 8);
        let mut pm = PowerManager::new(cfg, &geom());
        let mut w = write_of(200, MlcLevel::L10, 8);
        let id = WriteId::new(1);
        assert!(pm.try_admit(id, &mut w));
        assert!(pm.holds_tokens(id));
        pm.release(id);
        pm.release(id); // no-op
        assert!(!pm.holds_tokens(id));
        assert_eq!(
            pm.ledger().dimm_available().unwrap(),
            Tokens::from_cells(560)
        );
    }

    #[test]
    fn full_fpb_completes_many_writes_and_conserves_tokens() {
        let cfg = PowerPolicyConfig::fpb(&PowerConfig::default(), 8);
        let mut pm = PowerManager::new(cfg, &geom());
        for i in 0..50 {
            let mut w = write_of(50 + (i as u32 * 13) % 300, MlcLevel::L01, 100 + i);
            drive_to_completion(&mut pm, WriteId::new(i), &mut w);
        }
        // Ledger fully restored.
        assert_eq!(
            pm.ledger().dimm_available().unwrap(),
            Tokens::from_cells(560)
        );
        for i in 0..8 {
            assert_eq!(
                pm.ledger().chip_available(i),
                Tokens::from_millis(66_500),
                "chip {i}"
            );
        }
        assert_eq!(pm.ledger().gcp_available(), Some(Tokens::from_millis(66_500)));
    }

    #[test]
    fn stalled_write_holds_nothing() {
        let power = PowerConfig {
            pt_dimm: 60,
            ..PowerConfig::default()
        };
        let cfg = PowerPolicyConfig {
            ipm: true,
            ..PowerPolicyConfig::dimm_only(&power, 8)
        };
        let mut pm = PowerManager::new(cfg, &geom());
        let mut a = write_of(55, MlcLevel::L01, 9);
        assert!(pm.try_admit(WriteId::new(1), &mut a));
        a.advance();
        assert!(pm.try_advance(WriteId::new(1), &a));
        // Fill the rest of the budget with another write, then force A to
        // need more than remains.
        let mut b = write_of(30, MlcLevel::L00, 10);
        assert!(pm.try_admit(WriteId::new(2), &mut b));
        // A currently holds ~28 tokens (55/2). B holds 30. Now make A's
        // next allocation impossible by checking a fresh oversized write.
        let mut c = write_of(40, MlcLevel::L01, 11);
        assert!(!pm.try_admit(WriteId::new(3), &mut c));
        assert!(!pm.holds_tokens(WriteId::new(3)));
    }
}
