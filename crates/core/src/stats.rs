//! Power-management statistics (Figs. 13, 14 and the §4 energy analysis).

use fpb_types::Tokens;

/// Counters the power manager maintains while budgeting writes.
///
/// # Examples
///
/// ```
/// use fpb_core::PowerStats;
///
/// let s = PowerStats::default();
/// assert_eq!(s.peak_gcp_tokens(), 0);
/// assert_eq!(s.admissions(), 0);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PowerStats {
    admissions: u64,
    admission_failures: u64,
    advance_stalls: u64,
    multi_reset_splits: u64,
    gcp_grants: u64,
    gcp_usable_total: Tokens,
    gcp_waste_total: Tokens,
    gcp_outstanding: Tokens,
    gcp_peak: Tokens,
}

impl PowerStats {
    /// Writes successfully admitted.
    pub fn admissions(&self) -> u64 {
        self.admissions
    }

    /// Admission attempts refused for lack of tokens.
    pub fn admission_failures(&self) -> u64 {
        self.admission_failures
    }

    /// Iteration-boundary stalls (IPM reallocation refused).
    pub fn advance_stalls(&self) -> u64 {
        self.advance_stalls
    }

    /// Writes whose RESET was split by Multi-RESET.
    pub fn multi_reset_splits(&self) -> u64 {
        self.multi_reset_splits
    }

    /// Grants that used the global charge pump.
    pub fn gcp_grants(&self) -> u64 {
        self.gcp_grants
    }

    /// Total usable tokens ever requested from the GCP (Fig. 14's
    /// numerator).
    pub fn gcp_usable_total(&self) -> Tokens {
        self.gcp_usable_total
    }

    /// Total raw-minus-usable GCP conversion loss (the energy-waste proxy
    /// of §6.1.5).
    pub fn gcp_waste_total(&self) -> Tokens {
        self.gcp_waste_total
    }

    /// Peak concurrent usable GCP output, in whole tokens (Fig. 13: the
    /// GCP must be sized for this, Table 3).
    pub fn peak_gcp_tokens(&self) -> u64 {
        self.gcp_peak.whole_ceil()
    }

    /// Flattens every counter into nine raw integers, in the order
    /// [`PowerStats::from_raw`] consumes (token fields as milli-token
    /// counts). Exists for exact persistence: the sweep result cache
    /// stores stats as flat integers and round-trips them bit-for-bit.
    pub fn to_raw(&self) -> [u64; 9] {
        [
            self.admissions,
            self.admission_failures,
            self.advance_stalls,
            self.multi_reset_splits,
            self.gcp_grants,
            self.gcp_usable_total.millis(),
            self.gcp_waste_total.millis(),
            self.gcp_outstanding.millis(),
            self.gcp_peak.millis(),
        ]
    }

    /// Rebuilds stats from [`PowerStats::to_raw`] output.
    pub fn from_raw(raw: [u64; 9]) -> Self {
        PowerStats {
            admissions: raw[0],
            admission_failures: raw[1],
            advance_stalls: raw[2],
            multi_reset_splits: raw[3],
            gcp_grants: raw[4],
            gcp_usable_total: Tokens::from_millis(raw[5]),
            gcp_waste_total: Tokens::from_millis(raw[6]),
            gcp_outstanding: Tokens::from_millis(raw[7]),
            gcp_peak: Tokens::from_millis(raw[8]),
        }
    }

    pub(crate) fn note_admit(&mut self) {
        self.admissions += 1;
    }

    pub(crate) fn note_admit_failure(&mut self) {
        self.admission_failures += 1;
    }

    pub(crate) fn note_advance_stall(&mut self) {
        self.advance_stalls += 1;
    }

    pub(crate) fn note_multi_reset(&mut self) {
        self.multi_reset_splits += 1;
    }

    pub(crate) fn note_gcp_grant(&mut self, usable: Tokens, raw: Tokens) {
        self.gcp_grants += 1;
        self.gcp_usable_total += usable;
        self.gcp_waste_total += raw.saturating_sub(usable);
        self.gcp_outstanding += usable;
        self.gcp_peak = self.gcp_peak.max(self.gcp_outstanding);
    }

    pub(crate) fn note_gcp_release(&mut self, usable: Tokens) {
        self.gcp_outstanding = self.gcp_outstanding.saturating_sub(usable);
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn gcp_peak_tracks_concurrency() {
        let mut s = PowerStats::default();
        s.note_gcp_grant(Tokens::from_cells(10), Tokens::from_cells(15));
        s.note_gcp_grant(Tokens::from_cells(20), Tokens::from_cells(28));
        assert_eq!(s.peak_gcp_tokens(), 30);
        s.note_gcp_release(Tokens::from_cells(10));
        s.note_gcp_grant(Tokens::from_cells(5), Tokens::from_cells(8));
        // Peak stays at the high-water mark.
        assert_eq!(s.peak_gcp_tokens(), 30);
        assert_eq!(s.gcp_grants(), 3);
        assert_eq!(s.gcp_usable_total(), Tokens::from_cells(35));
        // Waste: (15-10) + (28-20) + (8-5) = 16.
        assert_eq!(s.gcp_waste_total(), Tokens::from_cells(16));
    }

    #[test]
    fn raw_round_trip_is_exact() {
        let mut s = PowerStats::default();
        s.note_admit();
        s.note_admit_failure();
        s.note_advance_stall();
        s.note_multi_reset();
        s.note_gcp_grant(Tokens::from_cells(10), Tokens::from_cells(15));
        s.note_gcp_release(Tokens::from_cells(3));
        assert_eq!(PowerStats::from_raw(s.to_raw()), s);
        assert_eq!(PowerStats::from_raw(PowerStats::default().to_raw()), PowerStats::default());
    }

    #[test]
    fn counters_increment() {
        let mut s = PowerStats::default();
        s.note_admit();
        s.note_admit_failure();
        s.note_advance_stall();
        s.note_multi_reset();
        assert_eq!(s.admissions(), 1);
        assert_eq!(s.admission_failures(), 1);
        assert_eq!(s.advance_stalls(), 1);
        assert_eq!(s.multi_reset_splits(), 1);
    }
}
