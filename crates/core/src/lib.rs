//! Fine-grained power budgeting for MLC PCM — the FPB paper's contribution.
//!
//! This crate implements every power-management scheme the paper evaluates,
//! behind one engine, [`PowerManager`]:
//!
//! * **Ideal** — no power restriction (the upper bound of Fig. 4).
//! * **DIMM-only** — Hay et al.'s heuristic: hold a write's full RESET
//!   token demand for its entire duration, bounded by the DIMM budget.
//! * **DIMM+chip** — additionally enforce per-chip charge-pump budgets
//!   (`PT_LCP = PT_DIMM × E_LCP / 8`, Eq. 4).
//! * **1.5×/2× local** — scaled chip budgets (the area-hungry alternative).
//! * **FPB-IPM** (§3) — allocate tokens *per write iteration*, reclaiming
//!   unused power after every RESET/SET pulse using the device's lagged
//!   finished-cell reports.
//! * **Multi-RESET** (§3.2) — split a blocked write's RESET into up to
//!   `m` lower-power group-RESETs.
//! * **FPB-GCP** (§4) — a global charge pump that serves hot-chip segments
//!   by borrowing idle chips' budget at efficiency `E_GCP` (Eqs. 5–6),
//!   with a capacity of one LCP.
//!
//! # Examples
//!
//! ```
//! use fpb_core::{PowerManager, PowerPolicyConfig, WriteId};
//! use fpb_pcm::{CellMapping, ChangeSet, DimmGeometry, IterationSampler, LineWrite, MlcLevel};
//! use fpb_types::{MlcWriteModel, PowerConfig, SimRng};
//!
//! let geom = DimmGeometry::new(8, 1024);
//! let cfg = PowerPolicyConfig::fpb(&PowerConfig::default(), 8);
//! let mut pm = PowerManager::new(cfg, &geom);
//!
//! let sampler = IterationSampler::new(MlcWriteModel::default());
//! let mut rng = SimRng::seed_from(1);
//! let changes = ChangeSet::from_cells(vec![(0, MlcLevel::L01), (9, MlcLevel::L11)]);
//! let mut w = LineWrite::new(&changes, &geom, CellMapping::Bim, &sampler, &mut rng, 1);
//!
//! let id = WriteId::new(1);
//! assert!(pm.try_admit(id, &mut w));
//! w.advance();
//! assert!(pm.try_advance(id, &w));
//! pm.release(id);
//! ```

// clippy::unwrap_used comes from [workspace.lints]; unwraps in tests are
// fine, only hot-path code must justify them.
#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod budget;
pub mod config;
pub mod ledger;
pub mod manager;
pub mod projection;
pub mod stats;

pub use config::{GcpParams, PowerPolicyConfig, SchemeKind};
pub use ledger::{BrownoutHold, Grant, GrantScratch, Ledger};
pub use manager::{PowerManager, WriteId};
pub use projection::{effective_config_desc, ConfigSensitivity};
pub use stats::PowerStats;
