//! Per-core access-stream generation.

use crate::access::TraceOp;
use crate::profile::WorkloadProfile;
use fpb_types::{CoreId, SimRng};

/// Access granularity of the generated stream (one L1/L2 line).
pub const ACCESS_BYTES: u64 = 64;
/// Streaming tiers advance one memory line per access (a streaming kernel
/// touches each 64 B chunk, but only the first touch of a 256 B memory
/// line reaches PCM — the generator emits at that granularity so the
/// tier's PKI is its PCM-level intensity).
pub const STREAM_STRIDE_UNITS: u64 = 4;
/// Private address-space stride per core (512 MiB carves a 4 GiB memory
/// into 8 disjoint per-core regions).
pub const CORE_REGION_BYTES: u64 = 512 << 20;

/// Generates the memory-operation stream of one core running one
/// benchmark profile.
///
/// Each call to [`CoreTraceGenerator::next_op`] yields the next operation
/// with an instruction gap drawn from an exponential distribution whose
/// mean matches the profile's total access intensity, a tier chosen
/// proportionally to tier intensity, and an address drawn from the tier's
/// footprint (sequentially for streaming tiers, uniformly otherwise).
///
/// # Examples
///
/// ```
/// use fpb_trace::{CoreTraceGenerator, DataClass, DataProfile, TrafficTier, WorkloadProfile};
/// use fpb_types::SimRng;
///
/// let profile = WorkloadProfile::new(
///     "toy",
///     vec![TrafficTier::new(5.0, 5.0, 1.0, true)],
///     DataProfile::new(DataClass::Streaming, 0.8),
/// );
/// let mut rng = SimRng::seed_from(1);
/// let mut g = CoreTraceGenerator::new(profile, &mut rng);
/// let a = g.next_op();
/// let b = g.next_op();
/// // The streaming tier walks sequentially in 64 B steps.
/// assert!(a.addr != b.addr);
/// ```
#[derive(Debug, Clone)]
pub struct CoreTraceGenerator {
    profile: WorkloadProfile,
    rng: SimRng,
    base_addr: u64,
    /// Per-tier state: (base offset within the core region, stream cursor,
    /// footprint in access units).
    tiers: Vec<TierState>,
    /// Cumulative tier intensities for roulette selection.
    cum_pki: Vec<f64>,
    total_pki: f64,
    mean_gap: f64,
}

/// One tier's address region, as reported by
/// [`CoreTraceGenerator::tier_regions`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TierRegion {
    /// First byte of the region (absolute; within the core's private
    /// region, wrapping modulo [`CORE_REGION_BYTES`]).
    pub start: u64,
    /// Footprint in bytes.
    pub bytes: u64,
    /// Fraction of the tier's accesses that are stores.
    pub write_fraction: f64,
}

#[derive(Debug, Clone)]
struct TierState {
    offset: u64,
    cursor: u64,
    units: u64,
    streaming: bool,
    read_fraction: f64,
}

impl CoreTraceGenerator {
    /// Creates a generator for core 0. Forks its RNG from `rng`.
    pub fn new(profile: WorkloadProfile, rng: &mut SimRng) -> Self {
        Self::for_core(profile, CoreId::new(0), rng)
    }

    /// Creates a generator whose addresses live in `core`'s private region.
    pub fn for_core(profile: WorkloadProfile, core: CoreId, rng: &mut SimRng) -> Self {
        let mut offset = 0u64;
        let mut tiers = Vec::with_capacity(profile.tiers.len());
        let mut cum = Vec::with_capacity(profile.tiers.len());
        let mut total = 0.0;
        for t in &profile.tiers {
            let bytes = (t.footprint_mib * (1 << 20) as f64) as u64;
            let units = (bytes / ACCESS_BYTES).max(1);
            let pki = t.total_pki();
            tiers.push(TierState {
                offset,
                cursor: 0,
                units,
                streaming: t.streaming,
                read_fraction: if pki > 0.0 { t.reads_pki / pki } else { 0.0 },
            });
            // Tiers pack consecutively; wrap within the core region so even
            // oversized footprints stay private to the core.
            offset = (offset + units * ACCESS_BYTES) % CORE_REGION_BYTES;
            total += pki;
            cum.push(total);
        }
        // Distinct fork stream per core so sibling generators are
        // independent even when built from the same parent RNG.
        let forked = rng.fork(0x7ACE_0000 + core.index() as u64);
        CoreTraceGenerator {
            base_addr: core.index() as u64 * CORE_REGION_BYTES,
            mean_gap: 1000.0 / total,
            profile,
            rng: forked,
            tiers,
            cum_pki: cum,
            total_pki: total,
        }
    }

    /// The profile this generator models.
    pub fn profile(&self) -> &WorkloadProfile {
        &self.profile
    }

    /// First byte of this core's private address region.
    pub fn base_addr(&self) -> u64 {
        self.base_addr
    }

    /// Fraction of this profile's accesses that are stores.
    pub fn write_fraction(&self) -> f64 {
        let writes: f64 = self.profile.tiers.iter().map(|t| t.writes_pki).sum();
        writes / self.total_pki
    }

    /// The absolute address regions of this generator's tiers (for cache
    /// warm-up): start address, footprint in bytes, and the tier's store
    /// fraction. Regions may wrap within the core's private region.
    pub fn tier_regions(&self) -> Vec<TierRegion> {
        self.tiers
            .iter()
            .map(|t| TierRegion {
                start: self.base_addr + t.offset,
                bytes: t.units * ACCESS_BYTES,
                write_fraction: 1.0 - t.read_fraction,
            })
            .collect()
    }

    /// Produces the next memory operation.
    pub fn next_op(&mut self) -> TraceOp {
        // Exponential inter-access gap with mean 1000 / PKI instructions.
        let u = self.rng.f64();
        let gap = (-self.mean_gap * (1.0 - u).ln()).ceil().max(1.0) as u64;

        // Roulette-select the tier.
        let x = self.rng.f64() * self.total_pki;
        let idx = self
            .cum_pki
            .iter()
            .position(|&c| x < c)
            .unwrap_or(self.cum_pki.len() - 1);
        let tier = &mut self.tiers[idx];

        let unit = if tier.streaming {
            let u = tier.cursor;
            tier.cursor = (tier.cursor + STREAM_STRIDE_UNITS) % tier.units;
            u
        } else {
            self.rng.u64_below(tier.units)
        };
        let addr = self.base_addr
            + (tier.offset + unit * ACCESS_BYTES) % CORE_REGION_BYTES;
        let is_write = !self.rng.bernoulli(tier.read_fraction);
        TraceOp {
            gap_instructions: gap,
            addr,
            is_write,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data_model::{DataClass, DataProfile};
    use crate::profile::TrafficTier;

    fn profile(tiers: Vec<TrafficTier>) -> WorkloadProfile {
        WorkloadProfile::new("t", tiers, DataProfile::new(DataClass::Integer, 0.4))
    }

    #[test]
    fn gap_mean_matches_intensity() {
        // 10 accesses per kilo-instruction -> mean gap 100 instructions.
        let p = profile(vec![TrafficTier::new(5.0, 5.0, 64.0, false)]);
        let mut rng = SimRng::seed_from(1);
        let mut g = CoreTraceGenerator::new(p, &mut rng);
        let n = 50_000;
        let total: u64 = (0..n).map(|_| g.next_op().gap_instructions).sum();
        let mean = total as f64 / n as f64;
        assert!((95.0..106.0).contains(&mean), "mean gap = {mean}");
    }

    #[test]
    fn read_write_mix_matches_profile() {
        let p = profile(vec![TrafficTier::new(3.0, 1.0, 64.0, false)]);
        let mut rng = SimRng::seed_from(2);
        let mut g = CoreTraceGenerator::new(p, &mut rng);
        let n = 40_000;
        let writes = (0..n).filter(|_| g.next_op().is_write).count();
        let frac = writes as f64 / n as f64;
        assert!((0.23..0.27).contains(&frac), "write fraction = {frac}");
    }

    #[test]
    fn streaming_tier_walks_sequentially() {
        let p = profile(vec![TrafficTier::new(1.0, 0.0, 1.0, true)]);
        let mut rng = SimRng::seed_from(3);
        let mut g = CoreTraceGenerator::new(p, &mut rng);
        let a = g.next_op().addr;
        let b = g.next_op().addr;
        let c = g.next_op().addr;
        assert_eq!(b - a, ACCESS_BYTES * STREAM_STRIDE_UNITS);
        assert_eq!(c - b, ACCESS_BYTES * STREAM_STRIDE_UNITS);
    }

    #[test]
    fn streaming_wraps_at_footprint() {
        let p = profile(vec![TrafficTier::new(1.0, 0.0, 1.0, true)]);
        let mut rng = SimRng::seed_from(4);
        let mut g = CoreTraceGenerator::new(p, &mut rng);
        let steps = (1u64 << 20) / (ACCESS_BYTES * STREAM_STRIDE_UNITS);
        let first = g.next_op().addr;
        for _ in 0..steps - 1 {
            g.next_op();
        }
        assert_eq!(g.next_op().addr, first);
    }

    #[test]
    fn random_tier_stays_in_footprint() {
        let p = profile(vec![TrafficTier::new(1.0, 1.0, 2.0, false)]);
        let mut rng = SimRng::seed_from(5);
        let mut g = CoreTraceGenerator::new(p, &mut rng);
        for _ in 0..10_000 {
            let op = g.next_op();
            assert!(op.addr < 2 << 20, "addr {:#x} outside footprint", op.addr);
        }
    }

    #[test]
    fn cores_get_disjoint_regions() {
        let p = profile(vec![TrafficTier::new(1.0, 1.0, 64.0, false)]);
        let mut rng = SimRng::seed_from(6);
        let mut g0 = CoreTraceGenerator::for_core(p.clone(), CoreId::new(0), &mut rng);
        let mut g3 = CoreTraceGenerator::for_core(p, CoreId::new(3), &mut rng);
        for _ in 0..1000 {
            assert!(g0.next_op().addr < CORE_REGION_BYTES);
            let a = g3.next_op().addr;
            assert!((3 * CORE_REGION_BYTES..4 * CORE_REGION_BYTES).contains(&a));
        }
    }

    #[test]
    fn tier_selection_proportional_to_intensity() {
        // Hot tier 9 PKI in 1 MiB, cold tier 1 PKI in 256 MiB: ~90 % of
        // accesses must land in the first MiB.
        let p = profile(vec![
            TrafficTier::new(4.5, 4.5, 1.0, false),
            TrafficTier::new(0.5, 0.5, 256.0, false),
        ]);
        let mut rng = SimRng::seed_from(7);
        let mut g = CoreTraceGenerator::new(p, &mut rng);
        let n = 20_000;
        let hot = (0..n).filter(|_| g.next_op().addr < (1 << 20)).count();
        let frac = hot as f64 / n as f64;
        assert!((0.87..0.93).contains(&frac), "hot fraction = {frac}");
    }

    #[test]
    fn deterministic_given_seed() {
        let p = profile(vec![TrafficTier::new(2.0, 1.0, 16.0, false)]);
        let mut ra = SimRng::seed_from(8);
        let mut rb = SimRng::seed_from(8);
        let mut a = CoreTraceGenerator::new(p.clone(), &mut ra);
        let mut b = CoreTraceGenerator::new(p, &mut rb);
        for _ in 0..100 {
            assert_eq!(a.next_op(), b.next_op());
        }
    }
}
