//! Trace recording and replay.
//!
//! The paper's methodology collects long memory traces (with a PIN tool)
//! and replays them through the timing simulator. This module provides the
//! equivalent workflow for the synthetic generators: record any operation
//! stream to a compact binary format, and replay it later — so a trace can
//! be captured once and shared, diffed, or replayed bit-identically across
//! machines and versions.
//!
//! # Format
//!
//! Little-endian: magic `FPBT`, version `u32`, op count `u64`, then per
//! operation `gap: u32`, `addr: u64`, `flags: u8` (bit 0 = write).

use std::io::{self, Read, Write};

use crate::access::TraceOp;

const MAGIC: &[u8; 4] = b"FPBT";
const VERSION: u32 = 1;

/// Writes `ops` to `w` in the FPBT format, returning the operation count.
///
/// Pass `&mut writer` to keep using the writer afterwards.
///
/// # Errors
///
/// Returns any underlying I/O error, or `InvalidInput` if an operation's
/// instruction gap exceeds `u32::MAX` (gaps are instruction counts between
/// consecutive memory operations; values beyond 4 G instructions indicate
/// a corrupted stream).
///
/// # Examples
///
/// ```
/// use fpb_trace::record::{read_trace, write_trace};
/// use fpb_trace::TraceOp;
///
/// let ops = vec![
///     TraceOp { gap_instructions: 100, addr: 0x1000, is_write: false },
///     TraceOp { gap_instructions: 7, addr: 0x2040, is_write: true },
/// ];
/// let mut buf = Vec::new();
/// write_trace(&mut buf, ops.iter().copied()).unwrap();
/// assert_eq!(read_trace(&buf[..]).unwrap(), ops);
/// ```
pub fn write_trace<W: Write>(
    mut w: W,
    ops: impl IntoIterator<Item = TraceOp>,
) -> io::Result<u64> {
    // Buffer ops first: the header carries the count.
    let ops: Vec<TraceOp> = ops.into_iter().collect();
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&(ops.len() as u64).to_le_bytes())?;
    for op in &ops {
        let gap: u32 = op
            .gap_instructions
            .try_into()
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "gap exceeds u32"))?;
        w.write_all(&gap.to_le_bytes())?;
        w.write_all(&op.addr.to_le_bytes())?;
        w.write_all(&[op.is_write as u8])?;
    }
    Ok(ops.len() as u64)
}

/// Reads a complete FPBT trace from `r`.
///
/// Pass `&mut reader` to keep using the reader afterwards.
///
/// # Errors
///
/// Returns `InvalidData` for a bad magic, unsupported version, or
/// truncated body, and any underlying I/O error.
pub fn read_trace<R: Read>(mut r: R) -> io::Result<Vec<TraceOp>> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad magic"));
    }
    let mut v = [0u8; 4];
    r.read_exact(&mut v)?;
    let version = u32::from_le_bytes(v);
    if version != VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported trace version {version}"),
        ));
    }
    let mut c = [0u8; 8];
    r.read_exact(&mut c)?;
    let count = u64::from_le_bytes(c);
    let mut ops = Vec::with_capacity(count.min(1 << 24) as usize);
    for _ in 0..count {
        let mut gap = [0u8; 4];
        let mut addr = [0u8; 8];
        let mut flags = [0u8; 1];
        r.read_exact(&mut gap)?;
        r.read_exact(&mut addr)?;
        r.read_exact(&mut flags)?;
        ops.push(TraceOp {
            gap_instructions: u32::from_le_bytes(gap) as u64,
            addr: u64::from_le_bytes(addr),
            is_write: flags[0] & 1 != 0,
        });
    }
    Ok(ops)
}

/// Replays a recorded trace as an operation stream, looping when the
/// recording is exhausted (so a finite capture can drive an arbitrarily
/// long simulation, like the paper's SimPoint phases).
///
/// # Examples
///
/// ```
/// use fpb_trace::record::ReplayStream;
/// use fpb_trace::TraceOp;
///
/// let ops = vec![
///     TraceOp { gap_instructions: 1, addr: 0, is_write: false },
///     TraceOp { gap_instructions: 2, addr: 64, is_write: true },
/// ];
/// let mut replay = ReplayStream::new(ops.clone()).unwrap();
/// assert_eq!(replay.next_op(), ops[0]);
/// assert_eq!(replay.next_op(), ops[1]);
/// assert_eq!(replay.next_op(), ops[0]); // wraps
/// ```
#[derive(Debug, Clone)]
pub struct ReplayStream {
    ops: Vec<TraceOp>,
    pos: usize,
    laps: u64,
}

impl ReplayStream {
    /// Creates a replay over `ops`.
    ///
    /// # Errors
    ///
    /// Returns an error message if `ops` is empty.
    pub fn new(ops: Vec<TraceOp>) -> Result<Self, String> {
        if ops.is_empty() {
            return Err("cannot replay an empty trace".into());
        }
        Ok(ReplayStream {
            ops,
            pos: 0,
            laps: 0,
        })
    }

    /// Next operation, wrapping at the end of the recording.
    pub fn next_op(&mut self) -> TraceOp {
        let op = self.ops[self.pos];
        self.pos += 1;
        if self.pos == self.ops.len() {
            self.pos = 0;
            self.laps += 1;
        }
        op
    }

    /// How many times the recording has fully wrapped.
    pub fn laps(&self) -> u64 {
        self.laps
    }

    /// Number of recorded operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Always false (construction rejects empty traces).
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;
    use crate::generator::CoreTraceGenerator;
    use fpb_types::SimRng;

    fn sample_ops(n: usize) -> Vec<TraceOp> {
        let mut rng = SimRng::seed_from(9);
        let mut g = CoreTraceGenerator::new(catalog::program("C.mcf").unwrap(), &mut rng);
        (0..n).map(|_| g.next_op()).collect()
    }

    #[test]
    fn roundtrip_preserves_every_op() {
        let ops = sample_ops(5000);
        let mut buf = Vec::new();
        let n = write_trace(&mut buf, ops.iter().copied()).unwrap();
        assert_eq!(n, 5000);
        assert_eq!(read_trace(&buf[..]).unwrap(), ops);
    }

    #[test]
    fn empty_trace_roundtrips() {
        let mut buf = Vec::new();
        write_trace(&mut buf, std::iter::empty()).unwrap();
        assert!(read_trace(&buf[..]).unwrap().is_empty());
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = read_trace(&b"NOPE\x01\x00\x00\x00"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn wrong_version_is_rejected() {
        let mut buf = Vec::new();
        write_trace(&mut buf, std::iter::empty()).unwrap();
        buf[4] = 99;
        let err = read_trace(&buf[..]).unwrap_err();
        assert!(err.to_string().contains("version"));
    }

    #[test]
    fn truncated_body_is_rejected() {
        let ops = sample_ops(10);
        let mut buf = Vec::new();
        write_trace(&mut buf, ops).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(read_trace(&buf[..]).is_err());
    }

    #[test]
    fn oversized_gap_is_rejected() {
        let op = TraceOp {
            gap_instructions: u64::from(u32::MAX) + 1,
            addr: 0,
            is_write: false,
        };
        let mut buf = Vec::new();
        let err = write_trace(&mut buf, [op]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn replay_wraps_and_counts_laps() {
        let ops = sample_ops(3);
        let mut r = ReplayStream::new(ops.clone()).unwrap();
        assert_eq!(r.len(), 3);
        for _ in 0..7 {
            let _ = r.next_op();
        }
        assert_eq!(r.laps(), 2);
        assert_eq!(r.next_op(), ops[1]);
        assert!(ReplayStream::new(Vec::new()).is_err());
    }
}
