//! Synthetic workload and memory-trace generation.
//!
//! The paper drives its simulator with PIN traces of SPEC CPU2006,
//! BioBench, MiBench and STREAM programs (Table 2). Those traces are not
//! redistributable, so this crate provides the documented substitution:
//! per-benchmark *parametric models* that generate memory-access streams
//! with the properties FPB is actually sensitive to —
//!
//! * read/write intensity (RPKI / WPKI per Table 2),
//! * working-set structure (hot reuse set + cold streaming/random traffic,
//!   so LLC-capacity sweeps behave),
//! * and per-write **data-change behaviour** (integer programs flip
//!   low-order bits within words; FP programs flip clustered mantissa bits;
//!   streaming kernels overwrite densely) — which determines cell-change
//!   counts (Fig. 2) and per-chip imbalance (the VIM/BIM distinction).
//!
//! # Examples
//!
//! ```
//! use fpb_trace::{catalog, CoreTraceGenerator};
//! use fpb_types::SimRng;
//!
//! let workload = catalog::workload("mcf_m").unwrap();
//! assert_eq!(workload.per_core.len(), 8);
//!
//! let mut rng = SimRng::seed_from(1);
//! let mut gen = CoreTraceGenerator::new(workload.per_core[0].clone(), &mut rng);
//! let op = gen.next_op();
//! assert!(op.gap_instructions > 0);
//! ```

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod access;
pub mod catalog;
pub mod data_model;
pub mod generator;
pub mod profile;
pub mod record;
pub mod validate;

#[cfg(test)]
mod proptests;

pub use access::TraceOp;
pub use catalog::Workload;
pub use data_model::{DataClass, DataProfile};
pub use generator::CoreTraceGenerator;
pub use profile::{TrafficTier, WorkloadProfile};
