//! Per-write data-change modeling.
//!
//! FPB's behaviour depends critically on *which cells change* when a dirty
//! line is written back: the count drives token demand (Fig. 2) and the
//! positions drive per-chip imbalance (what VIM/BIM fix, §4.3). This module
//! generates bit-level change patterns per workload class:
//!
//! * **Integer** — low-order bits of 32-bit words flip with exponentially
//!   decaying probability toward the MSB (§2.2, ref. 31 of the paper).
//! * **Float** — values change as whole words; mantissa bits flip densely,
//!   exponent/sign rarely, and words change in aligned (double) pairs.
//! * **Streaming** — fresh data overwrites the line: dense, uniform flips.
//! * **Pointer** — like integer but sparser words and shallower decay.

use fpb_pcm::{ChangeSet, MlcLevel};
use fpb_types::SimRng;

/// Broad class of data a benchmark writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataClass {
    /// Integer-dominated updates (counters, indices).
    Integer,
    /// Floating-point array updates.
    Float,
    /// Bulk streaming overwrite (STREAM kernels, copies).
    Streaming,
    /// Pointer-chasing structures (sparse word updates).
    Pointer,
}

/// The data-change model of one workload.
///
/// # Examples
///
/// ```
/// use fpb_trace::{DataClass, DataProfile};
/// use fpb_types::SimRng;
///
/// let p = DataProfile::new(DataClass::Integer, 0.5);
/// let mut rng = SimRng::seed_from(1);
/// let cs = p.sample_change_set(256, &mut rng);
/// assert!(cs.len() > 0);
/// assert!(cs.iter().all(|&(c, _)| c < 1024));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DataProfile {
    class: DataClass,
    word_change_prob: f64,
    level_weights: [f64; 4],
}

impl DataProfile {
    /// Creates a profile; `word_change_prob` is the probability that any
    /// given 32-bit word of a dirty line was modified.
    ///
    /// # Panics
    ///
    /// Panics if `word_change_prob` is not in `[0, 1]`.
    pub fn new(class: DataClass, word_change_prob: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&word_change_prob),
            "word_change_prob must be in [0, 1]"
        );
        DataProfile {
            class,
            word_change_prob,
            level_weights: [0.25; 4],
        }
    }

    /// Overrides the target-level distribution for changed cells
    /// (`[P(00), P(01), P(10), P(11)]`, normalized internally).
    ///
    /// # Panics
    ///
    /// Panics if all weights are zero or any is negative.
    #[must_use]
    pub fn with_level_weights(mut self, weights: [f64; 4]) -> Self {
        assert!(
            weights.iter().all(|&w| w >= 0.0) && weights.iter().sum::<f64>() > 0.0,
            "level weights must be nonnegative and not all zero"
        );
        self.level_weights = weights;
        self
    }

    /// The workload class.
    pub fn class(&self) -> DataClass {
        self.class
    }

    /// Probability a bit at position `bit` (0 = LSB) of a *changed* word
    /// flips.
    fn bit_flip_prob(&self, bit: u32) -> f64 {
        match self.class {
            // Flatter decay than a pure LSB ramp: integer updates touch
            // roughly the low half-word, so the changed cells cover all
            // eight within-word positions the interleaved mappings use.
            DataClass::Integer => 0.85 * (-(bit as f64) / 8.0).exp(),
            DataClass::Pointer => 0.8 * (-(bit as f64) / 4.0).exp(),
            DataClass::Float => {
                if bit < 23 {
                    // Mantissa: dense changes, denser at the low end.
                    0.55 * (-(bit as f64) / 40.0).exp()
                } else if bit < 31 {
                    0.08 // exponent
                } else {
                    0.03 // sign
                }
            }
            DataClass::Streaming => 0.5,
        }
    }

    /// Samples the byte-for-byte changed bit positions of one dirty line.
    ///
    /// Bit `g` covers bit `g % 32` (0 = LSB) of 32-bit word `g / 32`.
    pub fn sample_changed_bits(&self, line_bytes: u32, rng: &mut SimRng) -> Vec<u32> {
        let words = line_bytes / 4;
        let mut bits = Vec::new();
        let mut w = 0u32;
        while w < words {
            let (changed, span) = match self.class {
                // Doubles: words change in aligned pairs.
                DataClass::Float => (rng.bernoulli(self.word_change_prob), 2.min(words - w)),
                _ => (rng.bernoulli(self.word_change_prob), 1),
            };
            if changed {
                for dw in 0..span {
                    for b in 0..32u32 {
                        if rng.bernoulli(self.bit_flip_prob(b)) {
                            bits.push((w + dw) * 32 + b);
                        }
                    }
                }
            }
            w += span;
        }
        bits
    }

    /// Samples the MLC change set of one dirty line write: the changed
    /// 2-bit cells with their new target levels.
    ///
    /// Cell `k` of word `w` (cells are MSB-first within a word, so cell 15
    /// holds the two LSBs) is global cell `w * 16 + k`; it changes if
    /// either of its bits flips.
    pub fn sample_change_set(&self, line_bytes: u32, rng: &mut SimRng) -> ChangeSet {
        let bits = self.sample_changed_bits(line_bytes, rng);
        let mut cells: Vec<u32> = bits.iter().map(|&g| Self::cell_of_bit(g)).collect();
        cells.sort_unstable();
        cells.dedup();
        cells
            .into_iter()
            .map(|c| (c, self.sample_level(rng)))
            .collect()
    }

    /// Counts changed cells for both MLC (2-bit cells) and SLC (1-bit
    /// cells) interpretations of the same bit-change pattern (Fig. 2).
    pub fn count_changes(&self, line_bytes: u32, rng: &mut SimRng) -> (u32, u32) {
        let bits = self.sample_changed_bits(line_bytes, rng);
        let slc = bits.len() as u32;
        let mut cells: Vec<u32> = bits.into_iter().map(Self::cell_of_bit).collect();
        cells.sort_unstable();
        cells.dedup();
        (cells.len() as u32, slc)
    }

    /// Maps a global bit position to its global MLC cell index.
    fn cell_of_bit(g: u32) -> u32 {
        let word = g / 32;
        let bit = g % 32;
        // Cell 0 covers bits 31..30 (MSB), cell 15 covers bits 1..0 (LSB).
        word * 16 + (31 - bit) / 2
    }

    fn sample_level(&self, rng: &mut SimRng) -> MlcLevel {
        let total: f64 = self.level_weights.iter().sum();
        let mut x = rng.f64() * total;
        for (i, &w) in self.level_weights.iter().enumerate() {
            if x < w {
                return MlcLevel::from_bits(i as u8);
            }
            x -= w;
        }
        MlcLevel::L11
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_changes(p: &DataProfile, n: usize, line: u32, seed: u64) -> (f64, f64) {
        let mut rng = SimRng::seed_from(seed);
        let (mut mlc, mut slc) = (0u64, 0u64);
        for _ in 0..n {
            let (m, s) = p.count_changes(line, &mut rng);
            mlc += m as u64;
            slc += s as u64;
        }
        (mlc as f64 / n as f64, slc as f64 / n as f64)
    }

    #[test]
    fn slc_changes_exceed_mlc_changes() {
        // Fig. 2: 2-bit MLC changes fewer cells than SLC for the same data.
        for class in [
            DataClass::Integer,
            DataClass::Float,
            DataClass::Streaming,
            DataClass::Pointer,
        ] {
            let p = DataProfile::new(class, 0.5);
            let (mlc, slc) = mean_changes(&p, 300, 256, 42);
            assert!(slc > mlc, "{class:?}: slc {slc} <= mlc {mlc}");
        }
    }

    #[test]
    fn larger_lines_change_more_cells() {
        // Fig. 2: cell changes grow with line size.
        let p = DataProfile::new(DataClass::Integer, 0.5);
        let (m64, _) = mean_changes(&p, 300, 64, 1);
        let (m128, _) = mean_changes(&p, 300, 128, 2);
        let (m256, _) = mean_changes(&p, 300, 256, 3);
        assert!(m64 < m128 && m128 < m256, "{m64} {m128} {m256}");
    }

    #[test]
    fn integer_changes_skew_to_low_order_cells() {
        let p = DataProfile::new(DataClass::Integer, 1.0);
        let mut rng = SimRng::seed_from(7);
        let mut low = 0u64;
        let mut high = 0u64;
        for _ in 0..200 {
            for &(cell, _) in p.sample_change_set(64, &mut rng).iter() {
                // Within-word position: cells 8..16 hold the low-order bits.
                if cell % 16 >= 8 {
                    low += 1;
                } else {
                    high += 1;
                }
            }
        }
        assert!(
            low as f64 > 2.0 * high as f64,
            "low {low} vs high {high}: integer data must skew low-order"
        );
    }

    #[test]
    fn float_changes_cluster_in_mantissa() {
        let p = DataProfile::new(DataClass::Float, 1.0);
        let mut rng = SimRng::seed_from(8);
        let mut sign_exp = 0u64;
        let mut mantissa = 0u64;
        for _ in 0..200 {
            for &b in &p.sample_changed_bits(64, &mut rng) {
                if b % 32 >= 23 {
                    sign_exp += 1;
                } else {
                    mantissa += 1;
                }
            }
        }
        assert!(mantissa > 10 * sign_exp, "mantissa {mantissa}, se {sign_exp}");
    }

    #[test]
    fn word_change_prob_scales_volume() {
        let sparse = DataProfile::new(DataClass::Integer, 0.1);
        let dense = DataProfile::new(DataClass::Integer, 0.9);
        let (ms, _) = mean_changes(&sparse, 200, 256, 9);
        let (md, _) = mean_changes(&dense, 200, 256, 10);
        assert!(md > 5.0 * ms, "dense {md} vs sparse {ms}");
    }

    #[test]
    fn change_set_cells_unique_and_bounded() {
        let p = DataProfile::new(DataClass::Streaming, 0.8);
        let mut rng = SimRng::seed_from(11);
        for _ in 0..50 {
            let cs = p.sample_change_set(256, &mut rng);
            let mut cells: Vec<u32> = cs.iter().map(|&(c, _)| c).collect();
            let n = cells.len();
            cells.sort_unstable();
            cells.dedup();
            assert_eq!(cells.len(), n, "duplicate cells in change set");
            assert!(cells.iter().all(|&c| c < 1024));
        }
    }

    #[test]
    fn cell_of_bit_msb_first() {
        assert_eq!(DataProfile::cell_of_bit(31), 0); // MSB of word 0 -> cell 0
        assert_eq!(DataProfile::cell_of_bit(0), 15); // LSB of word 0 -> cell 15
        assert_eq!(DataProfile::cell_of_bit(32 + 31), 16); // MSB of word 1
        assert_eq!(DataProfile::cell_of_bit(32), 31); // LSB of word 1
    }

    #[test]
    fn level_weights_respected() {
        let p = DataProfile::new(DataClass::Streaming, 1.0)
            .with_level_weights([0.0, 0.0, 0.0, 1.0]);
        let mut rng = SimRng::seed_from(12);
        let cs = p.sample_change_set(256, &mut rng);
        assert!(cs.iter().all(|&(_, l)| l == MlcLevel::L11));
    }

    #[test]
    #[should_panic(expected = "word_change_prob")]
    fn invalid_prob_panics() {
        let _ = DataProfile::new(DataClass::Integer, 1.5);
    }

    #[test]
    #[should_panic(expected = "level weights")]
    fn invalid_weights_panic() {
        let _ = DataProfile::new(DataClass::Integer, 0.5).with_level_weights([0.0; 4]);
    }

    #[test]
    fn deterministic_given_seed() {
        let p = DataProfile::new(DataClass::Float, 0.6);
        let mut a = SimRng::seed_from(33);
        let mut b = SimRng::seed_from(33);
        for _ in 0..20 {
            assert_eq!(
                p.sample_change_set(256, &mut a),
                p.sample_change_set(256, &mut b)
            );
        }
    }
}
