//! Per-write data-change modeling.
//!
//! FPB's behaviour depends critically on *which cells change* when a dirty
//! line is written back: the count drives token demand (Fig. 2) and the
//! positions drive per-chip imbalance (what VIM/BIM fix, §4.3). This module
//! generates bit-level change patterns per workload class:
//!
//! * **Integer** — low-order bits of 32-bit words flip with exponentially
//!   decaying probability toward the MSB (§2.2, ref. 31 of the paper).
//! * **Float** — values change as whole words; mantissa bits flip densely,
//!   exponent/sign rarely, and words change in aligned (double) pairs.
//! * **Streaming** — fresh data overwrites the line: dense, uniform flips.
//! * **Pointer** — like integer but sparser words and shallower decay.
//!
//! # Sampling strategy
//!
//! The production path is *word-level*: instead of one Bernoulli draw per
//! bit (up to 512 draws per 64 B line), changed words are selected with
//! geometric skip-sampling (sparse `word_change_prob`) or a bit-parallel
//! mask comparator (dense), and the per-bit flip mask of each changed word
//! is produced by a dyadic-digit comparator that decides all 32 (or 64,
//! when two changed words are paired) lanes at once from a handful of raw
//! `u64` draws. Completed word pairs are additionally buffered four at a
//! time so the comparator resolves 256 lanes per batch in straight-line
//! code (a manual `u64x4`-style pass). Cells are then extracted from the
//! packed masks with `trailing_zeros`/`leading_zeros`/`count_ones`. The
//! original per-bit path is kept as `*_reference` for
//! distributional-equivalence tests and pre-optimization benchmarking.

use fpb_pcm::{ChangeSet, MlcLevel};
use fpb_types::SimRng;

/// Binary digits of probability retained by the mask comparator.
///
/// Lanes still undecided after this many digits are resolved as "no flip",
/// biasing each per-bit probability by at most `2^-48` — far below the
/// resolution of any calibration envelope. The comparator early-exits once
/// every lane is decided, which takes ~`log2(lanes) + 2` draws on average.
const MASK_DIGITS: usize = 48;

/// Word-change probability below which changed words are selected by
/// geometric skip-sampling rather than the bit-parallel comparator.
const SPARSE_WORD_PROB: f64 = 0.25;

/// Broad class of data a benchmark writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataClass {
    /// Integer-dominated updates (counters, indices).
    Integer,
    /// Floating-point array updates.
    Float,
    /// Bulk streaming overwrite (STREAM kernels, copies).
    Streaming,
    /// Pointer-chasing structures (sparse word updates).
    Pointer,
}

/// The data-change model of one workload.
///
/// # Examples
///
/// ```
/// use fpb_trace::{DataClass, DataProfile};
/// use fpb_types::SimRng;
///
/// let p = DataProfile::new(DataClass::Integer, 0.5);
/// let mut rng = SimRng::seed_from(1);
/// let cs = p.sample_change_set(256, &mut rng);
/// assert!(cs.len() > 0);
/// assert!(cs.iter().all(|&(c, _)| c < 1024));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DataProfile {
    class: DataClass,
    word_change_prob: f64,
    level_weights: [f64; 4],
    /// Dyadic digits of the 32 per-bit flip probabilities, replicated
    /// across both 32-lane halves so paired words share one table.
    flip_digits: Vec<u64>,
    /// Dyadic digits of `word_change_prob` (each digit all-ones or zero).
    word_digits: Vec<u64>,
}

impl DataProfile {
    /// Creates a profile; `word_change_prob` is the probability that any
    /// given 32-bit word of a dirty line was modified.
    ///
    /// # Panics
    ///
    /// Panics if `word_change_prob` is not in `[0, 1]`.
    pub fn new(class: DataClass, word_change_prob: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&word_change_prob),
            "word_change_prob must be in [0, 1]"
        );
        let mut profile = DataProfile {
            class,
            word_change_prob,
            level_weights: [0.25; 4],
            flip_digits: Vec::new(),
            word_digits: Vec::new(),
        };
        profile.flip_digits = profile.build_flip_digits();
        profile.word_digits = Self::build_scalar_digits(word_change_prob);
        profile
    }

    /// Overrides the target-level distribution for changed cells
    /// (`[P(00), P(01), P(10), P(11)]`, normalized internally).
    ///
    /// # Panics
    ///
    /// Panics if all weights are zero or any is negative.
    #[must_use]
    pub fn with_level_weights(mut self, weights: [f64; 4]) -> Self {
        assert!(
            weights.iter().all(|&w| w >= 0.0) && weights.iter().sum::<f64>() > 0.0,
            "level weights must be nonnegative and not all zero"
        );
        self.level_weights = weights;
        self
    }

    /// The workload class.
    pub fn class(&self) -> DataClass {
        self.class
    }

    /// Probability a bit at position `bit` (0 = LSB) of a *changed* word
    /// flips.
    fn bit_flip_prob(&self, bit: u32) -> f64 {
        match self.class {
            // Flatter decay than a pure LSB ramp: integer updates touch
            // roughly the low half-word, so the changed cells cover all
            // eight within-word positions the interleaved mappings use.
            DataClass::Integer => 0.85 * (-(bit as f64) / 8.0).exp(),
            DataClass::Pointer => 0.8 * (-(bit as f64) / 4.0).exp(),
            DataClass::Float => {
                if bit < 23 {
                    // Mantissa: dense changes, denser at the low end.
                    0.55 * (-(bit as f64) / 40.0).exp()
                } else if bit < 31 {
                    0.08 // exponent
                } else {
                    0.03 // sign
                }
            }
            DataClass::Streaming => 0.5,
        }
    }

    /// Precomputes `MASK_DIGITS` binary-fraction digits of the 32 per-bit
    /// flip probabilities, lane `b` of each mask holding digit `k` of
    /// `bit_flip_prob(b % 32)`.
    fn build_flip_digits(&self) -> Vec<u64> {
        let mut fracs = [0.0f64; 64];
        for (b, f) in fracs.iter_mut().enumerate() {
            *f = self.bit_flip_prob((b % 32) as u32).clamp(0.0, 1.0);
        }
        let mut digits = Vec::with_capacity(MASK_DIGITS);
        for _ in 0..MASK_DIGITS {
            let mut mask = 0u64;
            for (b, f) in fracs.iter_mut().enumerate() {
                *f *= 2.0;
                if *f >= 1.0 {
                    mask |= 1u64 << b;
                    *f -= 1.0;
                }
            }
            digits.push(mask);
        }
        digits
    }

    /// Digit masks for a single scalar probability: each digit is all-ones
    /// or all-zeros across the 64 lanes.
    fn build_scalar_digits(p: f64) -> Vec<u64> {
        let mut frac = p.clamp(0.0, 1.0);
        let mut digits = Vec::with_capacity(MASK_DIGITS);
        for _ in 0..MASK_DIGITS {
            frac *= 2.0;
            if frac >= 1.0 {
                digits.push(!0u64);
                frac -= 1.0;
            } else {
                digits.push(0u64);
            }
        }
        digits
    }

    /// Decides `lanes` independent Bernoulli trials at once.
    ///
    /// Each lane compares an (implicit) uniform binary fraction against its
    /// probability digit-by-digit, most significant first: the first digit
    /// where the random draw differs from the probability decides the lane.
    /// Lanes still undecided after `MASK_DIGITS` digits resolve to "no
    /// flip" (bias ≤ `2^-48`).
    #[inline]
    fn decide_lanes(digits: &[u64], lanes: u64, rng: &mut SimRng) -> u64 {
        let mut hits = 0u64;
        let mut undecided = lanes;
        for &pk in digits {
            if undecided == 0 {
                break;
            }
            let r = rng.next_u64();
            hits |= undecided & pk & !r;
            undecided &= !(r ^ pk);
        }
        hits
    }

    /// Decides four independent 64-lane Bernoulli blocks in one pass.
    ///
    /// Functionally equivalent to four [`Self::decide_lanes`] calls with
    /// `lanes = !0`: each group still consumes one raw `u64` per digit
    /// while it has undecided lanes, so every group's flip mask has the
    /// same distribution as a standalone draw. Restructuring the four
    /// comparisons into one digit loop keeps the mask updates in
    /// straight-line `u64x4`-shaped code (independent AND/XOR chains the
    /// compiler can schedule together) and replaces four early-exit loops
    /// with one.
    #[inline]
    fn decide_lanes_x4(digits: &[u64], rng: &mut SimRng) -> [u64; 4] {
        let mut hits = [0u64; 4];
        let mut und = [!0u64; 4];
        for &pk in digits {
            let mut any = false;
            for g in 0..4 {
                if und[g] != 0 {
                    let r = rng.next_u64();
                    hits[g] |= und[g] & pk & !r;
                    und[g] &= !(r ^ pk);
                    any = true;
                }
            }
            if !any {
                break;
            }
        }
        hits
    }

    /// Queues a changed word: odd words wait for a pair partner, completed
    /// pairs wait in groups of four for a batched 256-lane mask draw.
    #[inline]
    fn batch_word<F>(&self, b: &mut PairBatcher, w: u32, rng: &mut SimRng, emit: &mut F)
    where
        F: FnMut(u32, u32, &mut SimRng),
    {
        match b.pending.take() {
            None => b.pending = Some(w),
            Some(first) => {
                b.pairs[b.len] = (first, w);
                b.len += 1;
                if b.len == b.pairs.len() {
                    let masks = Self::decide_lanes_x4(&self.flip_digits, rng);
                    b.len = 0;
                    self.emit_pairs(&b.pairs, &masks, rng, emit);
                }
            }
        }
    }

    /// Emits the nonzero word masks of resolved pairs in queue order, so
    /// words reach `emit` strictly ascending.
    #[inline]
    fn emit_pairs<F>(&self, pairs: &[(u32, u32)], masks: &[u64], rng: &mut SimRng, emit: &mut F)
    where
        F: FnMut(u32, u32, &mut SimRng),
    {
        for (&(first, second), &m) in pairs.iter().zip(masks) {
            let lo = (m & 0xFFFF_FFFF) as u32;
            let hi = (m >> 32) as u32;
            if lo != 0 {
                emit(first, lo, rng);
            }
            if hi != 0 {
                emit(second, hi, rng);
            }
        }
    }

    /// Drains the batcher tail: leftover complete pairs scalar one at a
    /// time, then a possible lone trailing word with a 32-lane draw.
    fn flush_batch<F>(&self, b: &mut PairBatcher, rng: &mut SimRng, emit: &mut F)
    where
        F: FnMut(u32, u32, &mut SimRng),
    {
        for k in 0..b.len {
            let m = Self::decide_lanes(&self.flip_digits, !0u64, rng);
            self.emit_pairs(&b.pairs[k..=k], &[m], rng, emit);
        }
        b.len = 0;
        if let Some(w) = b.pending.take() {
            let m = Self::decide_lanes(&self.flip_digits, 0xFFFF_FFFF, rng) as u32;
            if m != 0 {
                emit(w, m, rng);
            }
        }
    }

    /// Walks the changed words of one dirty line in ascending order,
    /// calling `emit(word, flip_mask, rng)` for each word with at least one
    /// flipped bit. This is the shared word-level core of the sampling API.
    fn for_each_changed_word<F>(&self, line_bytes: u32, rng: &mut SimRng, mut emit: F)
    where
        F: FnMut(u32, u32, &mut SimRng),
    {
        let words = line_bytes / 4;
        if words == 0 {
            return;
        }
        // Doubles change as aligned word pairs; everything else per word.
        let span: u32 = match self.class {
            DataClass::Float => 2,
            _ => 1,
        };
        let n_units = words.div_ceil(span);
        let q = self.word_change_prob;
        if q <= 0.0 {
            return;
        }
        let mut batch = PairBatcher::default();
        let mut visit_unit = |profile: &Self, u: u32, b: &mut PairBatcher, rng: &mut SimRng| {
            for dw in 0..span {
                let w = u * span + dw;
                if w < words {
                    profile.batch_word(b, w, rng, &mut emit);
                }
            }
        };
        if q >= 1.0 {
            for u in 0..n_units {
                visit_unit(self, u, &mut batch, rng);
            }
        } else if q < SPARSE_WORD_PROB {
            // Geometric skip-sampling: jump straight to the next changed
            // unit. `floor(ln(1-U) / ln(1-q))` is exactly the number of
            // unchanged units skipped.
            let ln_1q = (1.0 - q).ln();
            let mut u = 0u32;
            loop {
                let draw = rng.f64();
                let skip = (1.0 - draw).ln() / ln_1q;
                if skip >= (n_units - u) as f64 {
                    break;
                }
                u += skip as u32;
                visit_unit(self, u, &mut batch, rng);
                u += 1;
                if u >= n_units {
                    break;
                }
            }
        } else {
            // Dense: decide up to 64 units per comparator call.
            let mut base = 0u32;
            while base < n_units {
                let chunk = (n_units - base).min(64);
                let lanes = if chunk == 64 {
                    !0u64
                } else {
                    (1u64 << chunk) - 1
                };
                let mut changed = Self::decide_lanes(&self.word_digits, lanes, rng);
                while changed != 0 {
                    let u = base + changed.trailing_zeros();
                    changed &= changed - 1;
                    visit_unit(self, u, &mut batch, rng);
                }
                base += chunk;
            }
        }
        self.flush_batch(&mut batch, rng, &mut emit);
    }

    /// Samples the byte-for-byte changed bit positions of one dirty line.
    ///
    /// Bit `g` covers bit `g % 32` (0 = LSB) of 32-bit word `g / 32`.
    pub fn sample_changed_bits(&self, line_bytes: u32, rng: &mut SimRng) -> Vec<u32> {
        let mut bits = Vec::new();
        self.for_each_changed_word(line_bytes, rng, |w, mask, _| {
            let mut m = mask;
            while m != 0 {
                let b = m.trailing_zeros();
                m &= m - 1;
                bits.push(w * 32 + b);
            }
        });
        bits
    }

    /// Samples the MLC change set of one dirty line write: the changed
    /// 2-bit cells with their new target levels.
    ///
    /// Cell `k` of word `w` (cells are MSB-first within a word, so cell 15
    /// holds the two LSBs) is global cell `w * 16 + k`; it changes if
    /// either of its bits flips. Cells are emitted in ascending order with
    /// no duplicates.
    pub fn sample_change_set(&self, line_bytes: u32, rng: &mut SimRng) -> ChangeSet {
        let mut out = ChangeSet::empty();
        self.sample_change_set_into(line_bytes, rng, &mut out);
        out
    }

    /// Like [`Self::sample_change_set`] but reuses `out`'s backing storage
    /// (cleared first), so steady-state sampling allocates nothing.
    pub fn sample_change_set_into(&self, line_bytes: u32, rng: &mut SimRng, out: &mut ChangeSet) {
        out.clear();
        self.for_each_changed_word(line_bytes, rng, |w, mask, rng| {
            // Collapse bit pairs onto their even lane: bit 2p set iff cell
            // pair p (bits 2p / 2p+1) changed.
            let mut pairs = (mask | (mask >> 1)) & 0x5555_5555;
            // Cells are MSB-first, so walk pairs from the high end to emit
            // cell indices in ascending order.
            while pairs != 0 {
                let hb = 31 - pairs.leading_zeros();
                pairs &= !(1u32 << hb);
                let cell = w * 16 + (15 - hb / 2);
                out.push(cell, self.sample_level(rng));
            }
        });
    }

    /// Counts changed cells for both MLC (2-bit cells) and SLC (1-bit
    /// cells) interpretations of the same bit-change pattern (Fig. 2).
    pub fn count_changes(&self, line_bytes: u32, rng: &mut SimRng) -> (u32, u32) {
        let mut mlc = 0u32;
        let mut slc = 0u32;
        self.for_each_changed_word(line_bytes, rng, |_, mask, _| {
            slc += mask.count_ones();
            mlc += ((mask | (mask >> 1)) & 0x5555_5555).count_ones();
        });
        (mlc, slc)
    }

    /// Per-bit reference implementation of [`Self::sample_changed_bits`].
    ///
    /// One Bernoulli draw per word plus one per bit of each changed word —
    /// the pre-optimization behaviour, kept compiled-in so equivalence
    /// tests and `fpb bench` can compare the word-level path against it.
    pub fn sample_changed_bits_reference(&self, line_bytes: u32, rng: &mut SimRng) -> Vec<u32> {
        let words = line_bytes / 4;
        let mut bits = Vec::new();
        let mut w = 0u32;
        while w < words {
            let (changed, span) = match self.class {
                // Doubles: words change in aligned pairs.
                DataClass::Float => (rng.bernoulli(self.word_change_prob), 2.min(words - w)),
                _ => (rng.bernoulli(self.word_change_prob), 1),
            };
            if changed {
                for dw in 0..span {
                    for b in 0..32u32 {
                        if rng.bernoulli(self.bit_flip_prob(b)) {
                            bits.push((w + dw) * 32 + b);
                        }
                    }
                }
            }
            w += span;
        }
        bits
    }

    /// Per-bit reference implementation of [`Self::sample_change_set`].
    pub fn sample_change_set_reference(&self, line_bytes: u32, rng: &mut SimRng) -> ChangeSet {
        let bits = self.sample_changed_bits_reference(line_bytes, rng);
        let mut cells: Vec<u32> = bits.iter().map(|&g| Self::cell_of_bit(g)).collect();
        cells.sort_unstable();
        cells.dedup();
        cells
            .into_iter()
            .map(|c| (c, self.sample_level(rng)))
            .collect()
    }

    /// Per-bit reference implementation of [`Self::count_changes`].
    pub fn count_changes_reference(&self, line_bytes: u32, rng: &mut SimRng) -> (u32, u32) {
        let bits = self.sample_changed_bits_reference(line_bytes, rng);
        let slc = bits.len() as u32;
        let mut cells: Vec<u32> = bits.into_iter().map(Self::cell_of_bit).collect();
        cells.sort_unstable();
        cells.dedup();
        (cells.len() as u32, slc)
    }

    /// Maps a global bit position to its global MLC cell index.
    fn cell_of_bit(g: u32) -> u32 {
        let word = g / 32;
        let bit = g % 32;
        // Cell 0 covers bits 31..30 (MSB), cell 15 covers bits 1..0 (LSB).
        word * 16 + (31 - bit) / 2
    }

    fn sample_level(&self, rng: &mut SimRng) -> MlcLevel {
        // Branchless form of the subtract-and-compare walk, one comparison
        // per weight on exactly the values the loop form would compute —
        // bit-identical level choices, but no data-dependent branches.
        // This runs once per changed cell of every write.
        let [w0, w1, w2, w3] = self.level_weights;
        let x0 = rng.f64() * (w0 + w1 + w2 + w3);
        let x1 = x0 - w0;
        let x2 = x1 - w1;
        let b0 = (x0 >= w0) as u8;
        let b1 = (x1 >= w1) as u8;
        let b2 = (x2 >= w2) as u8;
        MlcLevel::from_bits(b0 * (1 + b1 * (1 + b2)))
    }
}

/// Accumulator feeding [`DataProfile::decide_lanes_x4`]: changed words
/// pair up, completed pairs queue until four are ready (256 lanes), and
/// the tail drains through the scalar comparator.
#[derive(Debug, Default)]
struct PairBatcher {
    /// An odd changed word waiting for its pair partner.
    pending: Option<u32>,
    /// Completed word pairs awaiting a batched mask draw.
    pairs: [(u32, u32); 4],
    /// Occupied prefix of `pairs`.
    len: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_changes(p: &DataProfile, n: usize, line: u32, seed: u64) -> (f64, f64) {
        let mut rng = SimRng::seed_from(seed);
        let (mut mlc, mut slc) = (0u64, 0u64);
        for _ in 0..n {
            let (m, s) = p.count_changes(line, &mut rng);
            mlc += m as u64;
            slc += s as u64;
        }
        (mlc as f64 / n as f64, slc as f64 / n as f64)
    }

    /// Mean and variance of MLC/SLC change counts for either sampler path.
    fn moments(
        p: &DataProfile,
        n: usize,
        line: u32,
        seed: u64,
        reference: bool,
    ) -> (f64, f64, f64) {
        let mut rng = SimRng::seed_from(seed);
        let mut mlc = Vec::with_capacity(n);
        let mut slc_sum = 0u64;
        for _ in 0..n {
            let (m, s) = if reference {
                p.count_changes_reference(line, &mut rng)
            } else {
                p.count_changes(line, &mut rng)
            };
            mlc.push(m as f64);
            slc_sum += s as u64;
        }
        let mean = mlc.iter().sum::<f64>() / n as f64;
        let var = mlc.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n as f64 - 1.0);
        (mean, var, slc_sum as f64 / n as f64)
    }

    #[test]
    fn slc_changes_exceed_mlc_changes() {
        // Fig. 2: 2-bit MLC changes fewer cells than SLC for the same data.
        for class in [
            DataClass::Integer,
            DataClass::Float,
            DataClass::Streaming,
            DataClass::Pointer,
        ] {
            let p = DataProfile::new(class, 0.5);
            let (mlc, slc) = mean_changes(&p, 300, 256, 42);
            assert!(slc > mlc, "{class:?}: slc {slc} <= mlc {mlc}");
        }
    }

    #[test]
    fn larger_lines_change_more_cells() {
        // Fig. 2: cell changes grow with line size.
        let p = DataProfile::new(DataClass::Integer, 0.5);
        let (m64, _) = mean_changes(&p, 300, 64, 1);
        let (m128, _) = mean_changes(&p, 300, 128, 2);
        let (m256, _) = mean_changes(&p, 300, 256, 3);
        assert!(m64 < m128 && m128 < m256, "{m64} {m128} {m256}");
    }

    #[test]
    fn integer_changes_skew_to_low_order_cells() {
        let p = DataProfile::new(DataClass::Integer, 1.0);
        let mut rng = SimRng::seed_from(7);
        let mut low = 0u64;
        let mut high = 0u64;
        for _ in 0..200 {
            for &(cell, _) in p.sample_change_set(64, &mut rng).iter() {
                // Within-word position: cells 8..16 hold the low-order bits.
                if cell % 16 >= 8 {
                    low += 1;
                } else {
                    high += 1;
                }
            }
        }
        assert!(
            low as f64 > 2.0 * high as f64,
            "low {low} vs high {high}: integer data must skew low-order"
        );
    }

    #[test]
    fn float_changes_cluster_in_mantissa() {
        let p = DataProfile::new(DataClass::Float, 1.0);
        let mut rng = SimRng::seed_from(8);
        let mut sign_exp = 0u64;
        let mut mantissa = 0u64;
        for _ in 0..200 {
            for &b in &p.sample_changed_bits(64, &mut rng) {
                if b % 32 >= 23 {
                    sign_exp += 1;
                } else {
                    mantissa += 1;
                }
            }
        }
        assert!(mantissa > 10 * sign_exp, "mantissa {mantissa}, se {sign_exp}");
    }

    #[test]
    fn word_change_prob_scales_volume() {
        let sparse = DataProfile::new(DataClass::Integer, 0.1);
        let dense = DataProfile::new(DataClass::Integer, 0.9);
        let (ms, _) = mean_changes(&sparse, 200, 256, 9);
        let (md, _) = mean_changes(&dense, 200, 256, 10);
        assert!(md > 5.0 * ms, "dense {md} vs sparse {ms}");
    }

    #[test]
    fn change_set_cells_unique_and_bounded() {
        let p = DataProfile::new(DataClass::Streaming, 0.8);
        let mut rng = SimRng::seed_from(11);
        for _ in 0..50 {
            let cs = p.sample_change_set(256, &mut rng);
            let mut cells: Vec<u32> = cs.iter().map(|&(c, _)| c).collect();
            let n = cells.len();
            cells.sort_unstable();
            cells.dedup();
            assert_eq!(cells.len(), n, "duplicate cells in change set");
            assert!(cells.iter().all(|&c| c < 1024));
        }
    }

    #[test]
    fn change_set_cells_ascending() {
        // The word-level extractor must emit cells pre-sorted: the write
        // pipeline depends on ascending order without a sort pass.
        for class in [
            DataClass::Integer,
            DataClass::Float,
            DataClass::Streaming,
            DataClass::Pointer,
        ] {
            for q in [0.1, 0.6, 1.0] {
                let p = DataProfile::new(class, q);
                let mut rng = SimRng::seed_from(77);
                for _ in 0..40 {
                    let cs = p.sample_change_set(256, &mut rng);
                    let cells: Vec<u32> = cs.iter().map(|&(c, _)| c).collect();
                    assert!(
                        cells.windows(2).all(|p| p[0] < p[1]),
                        "{class:?} q={q}: cells not strictly ascending: {cells:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn changed_bits_strictly_increasing() {
        let p = DataProfile::new(DataClass::Integer, 0.5);
        let mut rng = SimRng::seed_from(21);
        for _ in 0..40 {
            let bits = p.sample_changed_bits(256, &mut rng);
            assert!(bits.windows(2).all(|w| w[0] < w[1]), "{bits:?}");
        }
    }

    #[test]
    fn word_sampler_matches_reference_distribution() {
        // Fig. 2 calibration envelope: the word-level sampler must match
        // the per-bit reference in mean and variance of MLC changes and in
        // mean SLC changes, for every class across sparse / dense /
        // always-changed word probabilities.
        for class in [
            DataClass::Integer,
            DataClass::Float,
            DataClass::Streaming,
            DataClass::Pointer,
        ] {
            for q in [0.12, 0.5, 0.95] {
                let p = DataProfile::new(class, q);
                let n = 600;
                let (rm, rv, rs) = moments(&p, n, 256, 1001, true);
                let (nm, nv, ns) = moments(&p, n, 256, 2002, false);
                assert!(
                    (nm - rm).abs() <= 0.08 * rm.max(1.0),
                    "{class:?} q={q}: mlc mean {nm} vs reference {rm}"
                );
                assert!(
                    (ns - rs).abs() <= 0.08 * rs.max(1.0),
                    "{class:?} q={q}: slc mean {ns} vs reference {rs}"
                );
                let ratio = (nv + 1.0) / (rv + 1.0);
                assert!(
                    (0.6..=1.7).contains(&ratio),
                    "{class:?} q={q}: mlc variance {nv} vs reference {rv}"
                );
            }
        }
    }

    #[test]
    fn batched_comparator_matches_scalar_distribution() {
        // The four-group pass must hit each lane with the same probability
        // as a standalone 64-lane draw; compare mean set-bit counts.
        for class in [DataClass::Integer, DataClass::Float, DataClass::Streaming] {
            let p = DataProfile::new(class, 0.9);
            let n = 4000usize;
            let mut a = SimRng::seed_from(91);
            let mut b = SimRng::seed_from(92);
            let scalar: u64 = (0..n)
                .map(|_| DataProfile::decide_lanes(&p.flip_digits, !0u64, &mut a).count_ones() as u64)
                .sum();
            let batched: u64 = (0..n / 4)
                .map(|_| {
                    DataProfile::decide_lanes_x4(&p.flip_digits, &mut b)
                        .iter()
                        .map(|m| m.count_ones() as u64)
                        .sum::<u64>()
                })
                .sum();
            let (sm, bm) = (scalar as f64 / n as f64, batched as f64 / n as f64);
            assert!(
                (sm - bm).abs() <= 0.05 * sm.max(1.0),
                "{class:?}: scalar mean {sm} vs batched mean {bm}"
            );
        }
    }

    #[test]
    fn cell_of_bit_msb_first() {
        assert_eq!(DataProfile::cell_of_bit(31), 0); // MSB of word 0 -> cell 0
        assert_eq!(DataProfile::cell_of_bit(0), 15); // LSB of word 0 -> cell 15
        assert_eq!(DataProfile::cell_of_bit(32 + 31), 16); // MSB of word 1
        assert_eq!(DataProfile::cell_of_bit(32), 31); // LSB of word 1
    }

    #[test]
    fn level_weights_respected() {
        let p = DataProfile::new(DataClass::Streaming, 1.0)
            .with_level_weights([0.0, 0.0, 0.0, 1.0]);
        let mut rng = SimRng::seed_from(12);
        let cs = p.sample_change_set(256, &mut rng);
        assert!(cs.iter().all(|&(_, l)| l == MlcLevel::L11));
    }

    #[test]
    #[should_panic(expected = "word_change_prob")]
    fn invalid_prob_panics() {
        let _ = DataProfile::new(DataClass::Integer, 1.5);
    }

    #[test]
    #[should_panic(expected = "level weights")]
    fn invalid_weights_panic() {
        let _ = DataProfile::new(DataClass::Integer, 0.5).with_level_weights([0.0; 4]);
    }

    #[test]
    fn deterministic_given_seed() {
        let p = DataProfile::new(DataClass::Float, 0.6);
        let mut a = SimRng::seed_from(33);
        let mut b = SimRng::seed_from(33);
        for _ in 0..20 {
            assert_eq!(
                p.sample_change_set(256, &mut a),
                p.sample_change_set(256, &mut b)
            );
        }
    }

    #[test]
    fn reference_path_deterministic_given_seed() {
        let p = DataProfile::new(DataClass::Integer, 0.4);
        let mut a = SimRng::seed_from(34);
        let mut b = SimRng::seed_from(34);
        for _ in 0..20 {
            assert_eq!(
                p.sample_change_set_reference(256, &mut a),
                p.sample_change_set_reference(256, &mut b)
            );
        }
    }

    #[test]
    fn into_variant_reuses_storage_and_matches() {
        let p = DataProfile::new(DataClass::Streaming, 0.7);
        let mut a = SimRng::seed_from(55);
        let mut b = SimRng::seed_from(55);
        let mut reused = ChangeSet::empty();
        for _ in 0..10 {
            p.sample_change_set_into(256, &mut a, &mut reused);
            let fresh = p.sample_change_set(256, &mut b);
            assert_eq!(reused, fresh);
        }
    }
}
