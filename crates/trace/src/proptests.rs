//! Property-based tests for the trace generators and data models.

use proptest::prelude::*;

use crate::data_model::{DataClass, DataProfile};
use crate::generator::{CoreTraceGenerator, CORE_REGION_BYTES};
use crate::profile::{TrafficTier, WorkloadProfile};
use fpb_types::{CoreId, SimRng};

fn arb_class() -> impl Strategy<Value = DataClass> {
    prop_oneof![
        Just(DataClass::Integer),
        Just(DataClass::Float),
        Just(DataClass::Streaming),
        Just(DataClass::Pointer),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Change sets are always valid: unique in-range cells, and the MLC
    /// cell count never exceeds the bit count (each changed cell needs at
    /// least one changed bit).
    #[test]
    fn change_sets_are_well_formed(
        class in arb_class(),
        wcp in 0.05f64..0.95,
        line in prop_oneof![Just(64u32), Just(128), Just(256)],
        seed in 0u64..500,
    ) {
        let p = DataProfile::new(class, wcp);
        let mut rng = SimRng::seed_from(seed);
        let (mlc, slc) = p.count_changes(line, &mut rng);
        prop_assert!(mlc <= slc);
        prop_assert!(mlc <= line * 4); // line_bytes * 8 / 2 cells
        let cs = p.sample_change_set(line, &mut rng);
        let mut cells: Vec<u32> = cs.iter().map(|&(c, _)| c).collect();
        let n = cells.len();
        cells.sort_unstable();
        cells.dedup();
        prop_assert_eq!(cells.len(), n, "duplicate cells");
        prop_assert!(cells.iter().all(|&c| c < line * 4));
    }

    /// Generated operations always stay inside the owning core's private
    /// region and carry positive instruction gaps.
    #[test]
    fn trace_ops_stay_in_core_region(
        core in 0u8..8,
        reads in 0.1f64..8.0,
        writes in 0.1f64..4.0,
        mib in 1.0f64..600.0,
        streaming in any::<bool>(),
        seed in 0u64..500,
    ) {
        let p = WorkloadProfile::new(
            "prop",
            vec![TrafficTier::new(reads, writes, mib, streaming)],
            DataProfile::new(DataClass::Integer, 0.4),
        );
        let mut rng = SimRng::seed_from(seed);
        let mut g = CoreTraceGenerator::for_core(p, CoreId::new(core), &mut rng);
        let lo = core as u64 * CORE_REGION_BYTES;
        let hi = lo + CORE_REGION_BYTES;
        for _ in 0..200 {
            let op = g.next_op();
            prop_assert!(op.gap_instructions >= 1);
            prop_assert!((lo..hi).contains(&op.addr), "addr {:#x}", op.addr);
        }
    }

    /// The empirical write fraction converges to the profile's.
    #[test]
    fn write_fraction_matches(
        reads in 0.5f64..4.0,
        writes in 0.5f64..4.0,
        seed in 0u64..100,
    ) {
        let p = WorkloadProfile::new(
            "prop",
            vec![TrafficTier::new(reads, writes, 64.0, false)],
            DataProfile::new(DataClass::Integer, 0.4),
        );
        let mut rng = SimRng::seed_from(seed);
        let mut g = CoreTraceGenerator::new(p, &mut rng);
        let expect = writes / (reads + writes);
        let n = 8000;
        let got = (0..n).filter(|_| g.next_op().is_write).count() as f64 / n as f64;
        prop_assert!((got - expect).abs() < 0.05, "got {got} expect {expect}");
    }
}
