//! Empirical validation of trace generators against their profiles.
//!
//! The workload models are only as good as their calibration; this module
//! measures a generator's *realized* statistics — access intensity, store
//! fraction, footprint, per-tier residency — so tests and the `tab2`
//! bench can check the synthetic suite against Table 2 without running
//! the full simulator.

use crate::generator::CoreTraceGenerator;

/// Realized statistics of a generated operation stream.
#[derive(Debug, Clone, PartialEq)]
pub struct EmpiricalRates {
    /// Operations observed.
    pub ops: u64,
    /// Instructions covered by the gaps.
    pub instructions: u64,
    /// Accesses per kilo-instruction.
    pub total_pki: f64,
    /// Fraction of operations that were stores.
    pub write_fraction: f64,
    /// Distinct 256 B lines touched.
    pub distinct_lines: u64,
    /// Footprint in MiB implied by the distinct lines.
    pub footprint_mib: f64,
}

/// Runs `gen` for `ops` operations and measures its realized rates.
///
/// # Panics
///
/// Panics if `ops` is zero.
///
/// # Examples
///
/// ```
/// use fpb_trace::{catalog, CoreTraceGenerator};
/// use fpb_trace::validate::measure;
/// use fpb_types::SimRng;
///
/// let mut rng = SimRng::seed_from(1);
/// let mut g = CoreTraceGenerator::new(catalog::program("C.mcf").unwrap(), &mut rng);
/// let rates = measure(&mut g, 20_000);
/// // The realized intensity tracks the profile's.
/// let expect = g.profile().total_pki();
/// assert!((rates.total_pki / expect - 1.0).abs() < 0.1);
/// ```
pub fn measure(gen: &mut CoreTraceGenerator, ops: u64) -> EmpiricalRates {
    assert!(ops > 0, "need at least one operation");
    let mut instructions = 0u64;
    let mut writes = 0u64;
    let mut lines = std::collections::HashSet::new();
    for _ in 0..ops {
        let op = gen.next_op();
        instructions += op.gap_instructions;
        writes += op.is_write as u64;
        lines.insert(op.addr / 256);
    }
    let distinct = lines.len() as u64;
    EmpiricalRates {
        ops,
        instructions,
        total_pki: ops as f64 * 1000.0 / instructions.max(1) as f64,
        write_fraction: writes as f64 / ops as f64,
        distinct_lines: distinct,
        footprint_mib: distinct as f64 * 256.0 / (1 << 20) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;
    use fpb_types::SimRng;

    fn rates_for(program: &str, ops: u64, seed: u64) -> (EmpiricalRates, f64, f64) {
        let profile = catalog::program(program).expect("program");
        let expect_pki = profile.total_pki();
        let expect_wf = {
            let w: f64 = profile.tiers.iter().map(|t| t.writes_pki).sum();
            w / expect_pki
        };
        let mut rng = SimRng::seed_from(seed);
        let mut g = CoreTraceGenerator::new(profile, &mut rng);
        (measure(&mut g, ops), expect_pki, expect_wf)
    }

    #[test]
    fn every_catalog_program_matches_its_profile() {
        for name in [
            "C.astar",
            "C.bwaves",
            "C.lbm",
            "C.leslie3d",
            "C.mcf",
            "C.xalancbmk",
            "B.mummer",
            "B.tigr",
            "M.qsort",
            "S.copy",
            "S.add",
            "S.scale",
            "S.triad",
        ] {
            let (r, pki, wf) = rates_for(name, 30_000, 7);
            assert!(
                (r.total_pki / pki - 1.0).abs() < 0.08,
                "{name}: pki {} vs {}",
                r.total_pki,
                pki
            );
            assert!(
                (r.write_fraction - wf).abs() < 0.03,
                "{name}: wf {} vs {}",
                r.write_fraction,
                wf
            );
        }
    }

    #[test]
    fn footprint_grows_with_cold_tier_usage() {
        // Short vs long observation of a streaming program: the footprint
        // must keep growing as the stream advances.
        let (short, _, _) = rates_for("C.lbm", 5_000, 3);
        let (long, _, _) = rates_for("C.lbm", 50_000, 3);
        assert!(long.distinct_lines > 2 * short.distinct_lines);
    }

    #[test]
    fn reuse_heavy_program_has_bounded_footprint() {
        let (r, _, _) = rates_for("C.xalancbmk", 60_000, 5);
        // xal's traffic is ~95 % within its 20 MiB hot tier.
        assert!(
            r.footprint_mib < 40.0,
            "footprint {} MiB too large",
            r.footprint_mib
        );
    }

    #[test]
    #[should_panic(expected = "at least one operation")]
    fn zero_ops_panics() {
        let profile = catalog::program("C.mcf").unwrap();
        let mut rng = SimRng::seed_from(1);
        let mut g = CoreTraceGenerator::new(profile, &mut rng);
        let _ = measure(&mut g, 0);
    }
}
