//! Workload profiles: the parametric model of one benchmark program.

use crate::data_model::DataProfile;

/// One tier of a workload's memory traffic.
///
/// A tier is a stream of accesses with a footprint and an intensity.
/// Combining a *hot* tier (small footprint, high intensity — absorbed by
/// the LLC), optional *warm* tiers (tens of MiB — absorbed only by large
/// LLCs) and a *cold* tier (much larger than any LLC — always reaching
/// PCM) reproduces the way real benchmarks respond to the paper's LLC
/// capacity sweep (Fig. 20).
///
/// # Examples
///
/// ```
/// use fpb_trace::TrafficTier;
///
/// let cold = TrafficTier::new(4.7, 2.3, 400.0, false);
/// assert!(cold.reads_pki > cold.writes_pki);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficTier {
    /// Loads per thousand instructions issued to this tier.
    pub reads_pki: f64,
    /// Stores per thousand instructions issued to this tier.
    pub writes_pki: f64,
    /// Footprint in MiB.
    pub footprint_mib: f64,
    /// Sequential scan (`true`) or uniform-random within the footprint.
    pub streaming: bool,
}

impl TrafficTier {
    /// Creates a tier.
    ///
    /// # Panics
    ///
    /// Panics if rates are negative or the footprint is not positive.
    pub fn new(reads_pki: f64, writes_pki: f64, footprint_mib: f64, streaming: bool) -> Self {
        assert!(
            reads_pki >= 0.0 && writes_pki >= 0.0,
            "access rates must be nonnegative"
        );
        assert!(footprint_mib > 0.0, "footprint must be positive");
        TrafficTier {
            reads_pki,
            writes_pki,
            footprint_mib,
            streaming,
        }
    }

    /// Total accesses per kilo-instruction in this tier.
    pub fn total_pki(&self) -> f64 {
        self.reads_pki + self.writes_pki
    }
}

/// The complete parametric model of one benchmark program running on one
/// core.
///
/// # Examples
///
/// ```
/// use fpb_trace::{DataClass, DataProfile, TrafficTier, WorkloadProfile};
///
/// let p = WorkloadProfile::new(
///     "toy",
///     vec![TrafficTier::new(2.0, 1.0, 256.0, true)],
///     DataProfile::new(DataClass::Integer, 0.4),
/// );
/// assert!((p.total_pki() - 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadProfile {
    /// Short benchmark name (e.g. `C.mcf`).
    pub name: &'static str,
    /// Traffic tiers (hot → cold).
    pub tiers: Vec<TrafficTier>,
    /// Data-change model for lines this program dirties.
    pub data: DataProfile,
}

impl WorkloadProfile {
    /// Creates a profile.
    ///
    /// # Panics
    ///
    /// Panics if `tiers` is empty or all tiers have zero intensity.
    pub fn new(name: &'static str, tiers: Vec<TrafficTier>, data: DataProfile) -> Self {
        assert!(!tiers.is_empty(), "a workload needs at least one tier");
        let total: f64 = tiers.iter().map(TrafficTier::total_pki).sum();
        assert!(total > 0.0, "a workload needs nonzero access intensity");
        WorkloadProfile { name, tiers, data }
    }

    /// Total memory accesses per kilo-instruction across all tiers.
    pub fn total_pki(&self) -> f64 {
        self.tiers.iter().map(TrafficTier::total_pki).sum()
    }

    /// Expected *cold* (LLC-defeating) read intensity — the approximate
    /// PCM-level RPKI this profile was calibrated to (tiers with
    /// footprints larger than `llc_mib`).
    pub fn cold_reads_pki(&self, llc_mib: f64) -> f64 {
        self.tiers
            .iter()
            .filter(|t| t.footprint_mib > llc_mib)
            .map(|t| t.reads_pki)
            .sum()
    }

    /// Expected cold write intensity (approximate PCM-level WPKI).
    pub fn cold_writes_pki(&self, llc_mib: f64) -> f64 {
        self.tiers
            .iter()
            .filter(|t| t.footprint_mib > llc_mib)
            .map(|t| t.writes_pki)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data_model::DataClass;

    fn data() -> DataProfile {
        DataProfile::new(DataClass::Integer, 0.4)
    }

    #[test]
    fn pki_sums_over_tiers() {
        let p = WorkloadProfile::new(
            "t",
            vec![
                TrafficTier::new(1.0, 0.5, 8.0, false),
                TrafficTier::new(2.0, 1.0, 512.0, true),
            ],
            data(),
        );
        assert!((p.total_pki() - 4.5).abs() < 1e-12);
        assert!((p.cold_reads_pki(32.0) - 2.0).abs() < 1e-12);
        assert!((p.cold_writes_pki(32.0) - 1.0).abs() < 1e-12);
        // A huge LLC absorbs everything.
        assert_eq!(p.cold_reads_pki(1024.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one tier")]
    fn empty_tiers_panic() {
        let _ = WorkloadProfile::new("t", vec![], data());
    }

    #[test]
    #[should_panic(expected = "nonzero access intensity")]
    fn zero_intensity_panics() {
        let _ = WorkloadProfile::new("t", vec![TrafficTier::new(0.0, 0.0, 1.0, false)], data());
    }

    #[test]
    #[should_panic(expected = "footprint")]
    fn zero_footprint_panics() {
        let _ = TrafficTier::new(1.0, 1.0, 0.0, false);
    }
}
