//! The paper's benchmark catalog (Table 2).
//!
//! Fourteen multi-programmed workloads: ten homogeneous (8 copies of one
//! program) and three heterogeneous mixes, drawn from SPEC CPU2006 (`C.`),
//! BioBench (`B.`), MiBench (`M.`) and STREAM (`S.`). Each program is a
//! [`WorkloadProfile`] calibrated so its cold-tier intensity matches the
//! RPKI/WPKI of Table 2 and its data class matches the program's dominant
//! datatype (which drives cell-change counts and per-chip imbalance).

use crate::data_model::{DataClass, DataProfile};
use crate::profile::{TrafficTier, WorkloadProfile};

/// A complete multi-programmed workload: one profile per core.
///
/// # Examples
///
/// ```
/// use fpb_trace::catalog;
///
/// let w = catalog::workload("mix_1").unwrap();
/// assert_eq!(w.per_core.len(), 8);
/// assert_eq!(w.name, "mix_1");
/// assert!(w.table2_rpki > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    /// Workload name as printed in the paper's figures (e.g. `mcf_m`).
    pub name: &'static str,
    /// Benchmark profile for each of the 8 cores.
    pub per_core: Vec<WorkloadProfile>,
    /// Table 2's reported read accesses per kilo-instruction.
    pub table2_rpki: f64,
    /// Table 2's reported write accesses per kilo-instruction.
    pub table2_wpki: f64,
}

/// The thirteen workloads of Table 2, in paper order (figures additionally
/// report `gmean`, which the harness computes).
pub const WORKLOADS: [&str; 13] = [
    "ast_m", "bwa_m", "lbm_m", "les_m", "mcf_m", "xal_m", "mum_m", "tig_m", "qso_m", "cop_m",
    "mix_1", "mix_2", "mix_3",
];

/// The six benchmarks Figure 2 reports cell changes for (plus "other").
pub const FIG2_WORKLOADS: [&str; 6] = ["bwa_m", "lbm_m", "mcf_m", "xal_m", "mum_m", "tig_m"];

/// Extension programs beyond Table 2, for composing custom workloads
/// (marked by suite prefix like the paper's, with representative data
/// classes; their rates are plausible defaults, not calibrated).
pub const EXTENSION_PROGRAMS: [&str; 4] = ["C.gcc", "C.milc", "B.fasta", "M.susan"];

fn tier(r: f64, w: f64, mib: f64, streaming: bool) -> TrafficTier {
    TrafficTier::new(r, w, mib, streaming)
}

/// Builds the profile for a single program by its suite-qualified name
/// (`C.astar`, `B.mummer`, `S.copy`, ...). Returns `None` for unknown
/// names.
pub fn program(name: &str) -> Option<WorkloadProfile> {
    let p = match name {
        "C.astar" => WorkloadProfile::new(
            "C.astar",
            vec![
                tier(6.0, 2.0, 12.0, false),
                tier(0.8, 0.35, 64.0, false),
                tier(1.65, 0.77, 320.0, false),
            ],
            DataProfile::new(DataClass::Integer, 0.35),
        ),
        "C.bwaves" => WorkloadProfile::new(
            "C.bwaves",
            vec![
                tier(4.0, 2.0, 10.0, false),
                tier(3.59, 1.68, 384.0, true),
            ],
            DataProfile::new(DataClass::Float, 0.55),
        ),
        "C.lbm" => WorkloadProfile::new(
            "C.lbm",
            vec![tier(3.0, 2.0, 8.0, true), tier(3.63, 1.82, 400.0, true)],
            DataProfile::new(DataClass::Float, 0.60),
        ),
        "C.leslie3d" => WorkloadProfile::new(
            "C.leslie3d",
            vec![
                tier(4.0, 1.2, 12.0, false),
                tier(0.5, 0.25, 80.0, false),
                tier(2.09, 1.04, 256.0, true),
            ],
            DataProfile::new(DataClass::Float, 0.50),
        ),
        "C.mcf" => WorkloadProfile::new(
            "C.mcf",
            vec![
                tier(8.0, 2.0, 16.0, false),
                tier(1.5, 0.6, 96.0, false),
                tier(3.24, 1.69, 448.0, false),
            ],
            DataProfile::new(DataClass::Integer, 0.55),
        ),
        "C.xalancbmk" => WorkloadProfile::new(
            "C.xalancbmk",
            vec![tier(12.0, 5.0, 20.0, false), tier(0.08, 0.07, 256.0, false)],
            DataProfile::new(DataClass::Integer, 0.30),
        ),
        "B.mummer" => WorkloadProfile::new(
            "B.mummer",
            // mummer writes dense suffix-array/bitmask structures: its
            // per-line change counts are large (the paper groups it with
            // mcf as a high-cell-change, high-WPKI program, §6.2.1).
            vec![tier(6.0, 1.0, 16.0, false), tier(10.8, 3.4, 448.0, false)],
            DataProfile::new(DataClass::Streaming, 0.50),
        ),
        "B.tigr" => WorkloadProfile::new(
            "B.tigr",
            vec![tier(5.0, 0.6, 12.0, false), tier(6.94, 0.6, 384.0, false)],
            DataProfile::new(DataClass::Pointer, 0.35),
        ),
        "M.qsort" => WorkloadProfile::new(
            "M.qsort",
            vec![
                tier(8.0, 4.0, 24.0, false),
                tier(0.3, 0.25, 64.0, false),
                tier(0.21, 0.22, 192.0, false),
            ],
            DataProfile::new(DataClass::Integer, 0.45),
        ),
        "S.copy" => WorkloadProfile::new(
            "S.copy",
            vec![tier(2.0, 1.0, 4.0, true), tier(0.57, 0.42, 256.0, true)],
            DataProfile::new(DataClass::Streaming, 0.65),
        ),
        "S.add" => WorkloadProfile::new(
            "S.add",
            vec![tier(2.0, 1.0, 4.0, true), tier(0.78, 0.39, 256.0, true)],
            DataProfile::new(DataClass::Streaming, 0.80),
        ),
        "S.scale" => WorkloadProfile::new(
            "S.scale",
            vec![tier(2.0, 1.0, 4.0, true), tier(0.60, 0.40, 256.0, true)],
            DataProfile::new(DataClass::Streaming, 0.80),
        ),
        "S.triad" => WorkloadProfile::new(
            "S.triad",
            vec![tier(2.0, 1.0, 4.0, true), tier(0.70, 0.40, 256.0, true)],
            DataProfile::new(DataClass::Streaming, 0.80),
        ),
        // ---- extension programs (not in Table 2; provided for users
        // composing their own workloads) ----
        "C.gcc" => WorkloadProfile::new(
            "C.gcc",
            vec![tier(9.0, 3.5, 18.0, false), tier(0.9, 0.4, 224.0, false)],
            DataProfile::new(DataClass::Pointer, 0.30),
        ),
        "C.milc" => WorkloadProfile::new(
            "C.milc",
            vec![tier(3.0, 1.5, 10.0, false), tier(2.8, 1.3, 320.0, true)],
            DataProfile::new(DataClass::Float, 0.55),
        ),
        "B.fasta" => WorkloadProfile::new(
            "B.fasta",
            vec![tier(4.0, 1.0, 8.0, true), tier(5.5, 1.8, 384.0, true)],
            DataProfile::new(DataClass::Streaming, 0.45),
        ),
        "M.susan" => WorkloadProfile::new(
            "M.susan",
            vec![tier(6.0, 2.5, 6.0, true), tier(1.2, 0.8, 160.0, true)],
            DataProfile::new(DataClass::Integer, 0.50),
        ),
        _ => return None,
    };
    Some(p)
}

/// Scales a profile's access intensity while keeping footprints and data
/// behaviour. Table 2 reports *workload-aggregate* RPKI/WPKI (all eight
/// cores combined), so each core runs at 1/8 of the table rate.
fn scaled_profile(base: WorkloadProfile, scale: f64) -> WorkloadProfile {
    WorkloadProfile::new(
        base.name,
        base.tiers
            .iter()
            .map(|t| {
                TrafficTier::new(
                    t.reads_pki * scale,
                    t.writes_pki * scale,
                    t.footprint_mib,
                    t.streaming,
                )
            })
            .collect(),
        base.data.clone(),
    )
}

fn homogeneous(
    name: &'static str,
    prog: &str,
    rpki: f64,
    wpki: f64,
) -> Workload {
    let p = scaled_profile(program(prog).expect("known program"), 1.0 / 8.0);
    Workload {
        name,
        per_core: vec![p; 8],
        table2_rpki: rpki,
        table2_wpki: wpki,
    }
}

fn mix(
    name: &'static str,
    progs: [&str; 4],
    scale: f64,
    rpki: f64,
    wpki: f64,
) -> Workload {
    // Table 2's mixes report much lower aggregate intensity than the sum of
    // their components' solo rates (the mixed phases are less memory
    // bound), so each component is intensity-scaled toward the reported
    // aggregate while keeping its footprint and data behaviour.
    let mut per_core = Vec::with_capacity(8);
    for prog in progs {
        let scaled = scaled_profile(program(prog).expect("known program"), scale / 8.0);
        per_core.push(scaled.clone());
        per_core.push(scaled);
    }
    Workload {
        name,
        per_core,
        table2_rpki: rpki,
        table2_wpki: wpki,
    }
}

/// Builds a workload by its Table 2 name. Returns `None` for unknown
/// names.
pub fn workload(name: &str) -> Option<Workload> {
    let w = match name {
        "ast_m" => homogeneous("ast_m", "C.astar", 2.45, 1.12),
        "bwa_m" => homogeneous("bwa_m", "C.bwaves", 3.59, 1.68),
        "lbm_m" => homogeneous("lbm_m", "C.lbm", 3.63, 1.82),
        "les_m" => homogeneous("les_m", "C.leslie3d", 2.59, 1.29),
        "mcf_m" => homogeneous("mcf_m", "C.mcf", 4.74, 2.29),
        "xal_m" => homogeneous("xal_m", "C.xalancbmk", 0.08, 0.07),
        "mum_m" => homogeneous("mum_m", "B.mummer", 10.8, 4.16),
        "tig_m" => homogeneous("tig_m", "B.tigr", 6.94, 0.81),
        "qso_m" => homogeneous("qso_m", "M.qsort", 0.51, 0.47),
        "cop_m" => homogeneous("cop_m", "S.copy", 0.57, 0.42),
        "mix_1" => mix(
            "mix_1",
            ["S.add", "C.lbm", "C.xalancbmk", "B.mummer"],
            0.30,
            1.16,
            0.58,
        ),
        "mix_2" => mix(
            "mix_2",
            ["S.scale", "C.mcf", "C.xalancbmk", "C.bwaves"],
            0.42,
            0.94,
            0.61,
        ),
        "mix_3" => mix(
            "mix_3",
            ["S.triad", "B.tigr", "C.xalancbmk", "C.leslie3d"],
            0.37,
            0.96,
            0.58,
        ),
        _ => return None,
    };
    Some(w)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_thirteen_workloads_build() {
        for name in WORKLOADS {
            let w = workload(name).unwrap_or_else(|| panic!("missing {name}"));
            assert_eq!(w.per_core.len(), 8, "{name}");
            assert_eq!(w.name, name);
        }
        assert!(workload("nope").is_none());
    }

    #[test]
    fn cold_tier_matches_table2_for_homogeneous() {
        // The deepest (largest-footprint) tier of every homogeneous
        // workload carries exactly the Table 2 RPKI/WPKI.
        for name in &WORKLOADS[..10] {
            let w = workload(name).unwrap();
            let p = &w.per_core[0];
            // Table 2 rates are workload-aggregate; cores run at 1/8.
            // The cold tier carries most (but, after calibration against
            // hot-tier eviction leakage, not all) of the table rate.
            let cold_r = p.cold_reads_pki(150.0) * 8.0;
            assert!(
                cold_r > 0.3 * w.table2_rpki && cold_r <= 1.01 * w.table2_rpki,
                "{name}: cold reads x8 {} vs table {}",
                cold_r,
                w.table2_rpki
            );
        }
    }

    #[test]
    fn mixes_have_two_cores_per_program() {
        let w = workload("mix_1").unwrap();
        let names: Vec<&str> = w.per_core.iter().map(|p| p.name).collect();
        assert_eq!(
            names,
            [
                "S.add",
                "S.add",
                "C.lbm",
                "C.lbm",
                "C.xalancbmk",
                "C.xalancbmk",
                "B.mummer",
                "B.mummer"
            ]
        );
    }

    #[test]
    fn mixes_are_intensity_scaled() {
        let solo = program("C.mcf").unwrap();
        let mixed = workload("mix_2").unwrap();
        let mcf_in_mix = mixed
            .per_core
            .iter()
            .find(|p| p.name == "C.mcf")
            .unwrap();
        assert!(mcf_in_mix.total_pki() < solo.total_pki());
    }

    #[test]
    fn data_classes_match_program_domains() {
        use crate::data_model::DataClass;
        assert_eq!(program("C.mcf").unwrap().data.class(), DataClass::Integer);
        assert_eq!(program("C.lbm").unwrap().data.class(), DataClass::Float);
        assert_eq!(program("S.copy").unwrap().data.class(), DataClass::Streaming);
        // mummer writes dense index structures (see program comment).
        assert_eq!(program("B.mummer").unwrap().data.class(), DataClass::Streaming);
        assert_eq!(program("B.tigr").unwrap().data.class(), DataClass::Pointer);
    }

    #[test]
    fn every_program_has_a_cold_tier_beyond_any_llc() {
        for name in [
            "C.astar",
            "C.bwaves",
            "C.lbm",
            "C.leslie3d",
            "C.mcf",
            "C.xalancbmk",
            "B.mummer",
            "B.tigr",
            "M.qsort",
            "S.copy",
            "S.add",
            "S.scale",
            "S.triad",
        ] {
            let p = program(name).unwrap();
            assert!(
                p.tiers.iter().any(|t| t.footprint_mib > 128.0),
                "{name} has no LLC-defeating tier"
            );
        }
    }

    #[test]
    fn extension_programs_build_and_are_marked() {
        for name in EXTENSION_PROGRAMS {
            let p = program(name).unwrap_or_else(|| panic!("missing {name}"));
            assert!(p.total_pki() > 0.0);
            assert!(
                p.tiers.iter().any(|t| t.footprint_mib > 128.0),
                "{name} needs an LLC-defeating tier"
            );
            // Extensions are not Table 2 workloads.
            assert!(!WORKLOADS.contains(&name));
        }
    }

    #[test]
    fn fig2_names_are_valid_workloads() {
        for name in FIG2_WORKLOADS {
            assert!(workload(name).is_some(), "{name}");
        }
    }
}
