//! Trace records.

/// One memory operation emitted by a core's trace generator.
///
/// Operations are *gap based*: `gap_instructions` is the number of
/// instructions the core executes (1 per cycle, in-order) between the
/// completion of its previous blocking operation and the issue of this one.
/// This lets the memory-subsystem simulator replay the trace closed-loop —
/// memory latency feeds back into issue times exactly as in the paper's
/// trace-driven methodology.
///
/// # Examples
///
/// ```
/// use fpb_trace::TraceOp;
///
/// let op = TraceOp { gap_instructions: 120, addr: 0x4_0000, is_write: false };
/// assert!(!op.is_write);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceOp {
    /// Instructions executed since the previous operation completed.
    pub gap_instructions: u64,
    /// Byte address accessed.
    pub addr: u64,
    /// True for a store, false for a load.
    pub is_write: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn is_plain_data() {
        let op = TraceOp {
            gap_instructions: 1,
            addr: 2,
            is_write: true,
        };
        let copy = op;
        assert_eq!(op, copy);
        assert!(format!("{op:?}").contains("TraceOp"));
    }
}
