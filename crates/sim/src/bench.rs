//! The fixed self-measuring benchmark behind `fpb bench`.
//!
//! Runs one pinned sweep grid twice — serially, then on `jobs` workers —
//! and reports wall-clock numbers plus a bit-for-bit comparison of the
//! two result sets. The report serializes to `BENCH_sweep.json` so every
//! PR leaves a perf trajectory behind: points/sec tracks sweep throughput,
//! sim cycles/sec tracks single-threaded engine throughput, and the
//! `identical` flag is the determinism guarantee CI enforces.

// This module *measures wall-clock speedup* of the parallel sweep; the
// timings are reporting-only and never feed simulation results, which the
// serial-vs-parallel `identical` gate below proves.
// fpb-lint: allow-file(determinism)
use std::time::Instant;

use fpb_trace::catalog;
use fpb_types::SystemConfig;

use crate::engine::SimOptions;
use crate::setup::SchemeSetup;
use crate::sweep::{run_sweep_jobs, Axis, SweepPoint};

/// Workload the fixed benchmark grid runs (write-heavy, so the power
/// budgeting hot paths dominate).
pub const BENCH_WORKLOAD: &str = "mcf_m";

/// Default per-core instruction budget for `fpb bench`.
pub const BENCH_INSTRUCTIONS: u64 = 40_000;

/// The pinned 3×3 grid: DIMM tokens × GCP efficiency (the two axes the
/// paper's §6.4 sensitivity study leans on hardest).
fn fixed_axes() -> Vec<Axis> {
    vec![
        Axis::pt_dimm(&[466, 512, 560]),
        Axis::e_gcp(&[0.5, 0.7, 0.9]),
    ]
}

/// Per-point metric record kept in the report (everything here is a
/// deterministic simulation output — no wall-clock).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchPoint {
    /// The sweep point's label (axes + scheme).
    pub label: String,
    /// Scheme run cycles.
    pub cycles: u64,
    /// Baseline run cycles.
    pub baseline_cycles: u64,
    /// Scheme run completed line writes.
    pub pcm_writes: u64,
    /// Scheme run cells written.
    pub cells_written: u64,
}

/// The `fpb bench` result: wall-clock measurements plus the deterministic
/// per-point metrics.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Workload the grid ran.
    pub workload: String,
    /// Per-core instruction budget of each run.
    pub instructions_per_core: u64,
    /// Worker threads used for the parallel pass.
    pub jobs: usize,
    /// Grid size (number of sweep points).
    pub points: usize,
    /// Wall-clock of the serial (`jobs = 1`) pass, milliseconds.
    pub serial_ms: f64,
    /// Wall-clock of the parallel pass, milliseconds.
    pub parallel_ms: f64,
    /// `serial_ms / parallel_ms`.
    pub speedup: f64,
    /// Sweep throughput of the parallel pass, points per second.
    pub points_per_sec: f64,
    /// Total simulated cycles across all runs of the serial pass (scheme
    /// + baseline of every point).
    pub sim_cycles_total: u64,
    /// Single-threaded engine throughput: simulated cycles per wall
    /// second during the serial pass.
    pub sim_cycles_per_sec: f64,
    /// True iff the parallel pass reproduced the serial pass bit-for-bit
    /// (labels, ordering, and full `Metrics` of both runs per point).
    pub identical: bool,
    /// Deterministic per-point metrics (serial pass).
    pub point_metrics: Vec<BenchPoint>,
}

impl BenchReport {
    /// Full JSON document (written to `BENCH_sweep.json`).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(1024);
        s.push_str("{\n");
        s.push_str("  \"schema\": \"fpb-bench-sweep/v1\",\n");
        s.push_str("  \"wall\": {\n");
        s.push_str(&format!("    \"jobs\": {},\n", self.jobs));
        s.push_str(&format!("    \"serial_ms\": {:.3},\n", self.serial_ms));
        s.push_str(&format!("    \"parallel_ms\": {:.3},\n", self.parallel_ms));
        s.push_str(&format!("    \"speedup\": {:.3},\n", self.speedup));
        s.push_str(&format!(
            "    \"points_per_sec\": {:.3},\n",
            self.points_per_sec
        ));
        s.push_str(&format!(
            "    \"sim_cycles_per_sec\": {:.1}\n",
            self.sim_cycles_per_sec
        ));
        s.push_str("  },\n");
        s.push_str(&self.metric_fields_json(2));
        s.push_str("\n}\n");
        s
    }

    /// The deterministic subset of the report — everything except the
    /// `wall` object (and `jobs`, which feeds it). Two runs with any job
    /// counts must produce byte-identical output here; the property test
    /// and the CI divergence check compare exactly this string.
    pub fn metric_fields_json(&self, indent: usize) -> String {
        let pad = " ".repeat(indent);
        let mut s = String::with_capacity(1024);
        s.push_str(&format!(
            "{pad}\"workload\": {},\n",
            json_string(&self.workload)
        ));
        s.push_str(&format!(
            "{pad}\"instructions_per_core\": {},\n",
            self.instructions_per_core
        ));
        s.push_str(&format!("{pad}\"points\": {},\n", self.points));
        s.push_str(&format!(
            "{pad}\"sim_cycles_total\": {},\n",
            self.sim_cycles_total
        ));
        s.push_str(&format!("{pad}\"identical\": {},\n", self.identical));
        s.push_str(&format!("{pad}\"point_metrics\": [\n"));
        for (i, p) in self.point_metrics.iter().enumerate() {
            let comma = if i + 1 < self.point_metrics.len() { "," } else { "" };
            s.push_str(&format!(
                "{pad}  {{\"label\": {}, \"cycles\": {}, \"baseline_cycles\": {}, \
                 \"pcm_writes\": {}, \"cells_written\": {}}}{comma}\n",
                json_string(&p.label),
                p.cycles,
                p.baseline_cycles,
                p.pcm_writes,
                p.cells_written,
            ));
        }
        s.push_str(&format!("{pad}]"));
        s
    }
}

/// Minimal JSON string escaping (labels only contain ASCII, but be safe).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Runs the fixed grid serially and then on `jobs` workers, comparing the
/// results bit-for-bit. `instructions_per_core` scales run length
/// ([`BENCH_INSTRUCTIONS`] is the pinned default CI uses).
///
/// # Panics
///
/// Panics if the pinned workload is missing from the catalog.
pub fn run_fixed_bench(jobs: usize, instructions_per_core: u64) -> BenchReport {
    let wl = catalog::workload(BENCH_WORKLOAD).expect("bench workload in catalog");
    let cfg = SystemConfig::default();
    let axes = fixed_axes();
    let opts = SimOptions::with_instructions(instructions_per_core);

    let t0 = Instant::now();
    let serial = run_sweep_jobs(
        &wl,
        cfg.clone(),
        &axes,
        SchemeSetup::fpb,
        SchemeSetup::dimm_chip,
        &opts,
        1,
    );
    let serial_s = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let parallel = run_sweep_jobs(
        &wl,
        cfg,
        &axes,
        SchemeSetup::fpb,
        SchemeSetup::dimm_chip,
        &opts,
        jobs,
    );
    let parallel_s = t1.elapsed().as_secs_f64();

    let identical = points_identical(&serial, &parallel);
    let sim_cycles_total: u64 = serial
        .iter()
        .map(|p| p.metrics.cycles + p.baseline.cycles)
        .sum();
    let point_metrics = serial
        .iter()
        .map(|p| BenchPoint {
            label: p.label.clone(),
            cycles: p.metrics.cycles,
            baseline_cycles: p.baseline.cycles,
            pcm_writes: p.metrics.pcm_writes,
            cells_written: p.metrics.cells_written,
        })
        .collect();
    BenchReport {
        workload: BENCH_WORKLOAD.to_string(),
        instructions_per_core,
        jobs,
        points: serial.len(),
        serial_ms: serial_s * 1e3,
        parallel_ms: parallel_s * 1e3,
        speedup: serial_s / parallel_s.max(1e-9),
        points_per_sec: serial.len() as f64 / parallel_s.max(1e-9),
        sim_cycles_total,
        sim_cycles_per_sec: sim_cycles_total as f64 / serial_s.max(1e-9),
        identical,
        point_metrics,
    }
}

/// Bit-for-bit comparison of two sweep result sets: same length, same
/// labels in the same order, equal scheme and baseline `Metrics`.
pub fn points_identical(a: &[SweepPoint], b: &[SweepPoint]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b.iter()).all(|(x, y)| {
            x.label == y.label && x.metrics == y.metrics && x.baseline == y.baseline
        })
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn fixed_bench_runs_and_matches() {
        let r = run_fixed_bench(2, 4_000);
        assert_eq!(r.points, 9);
        assert!(r.identical, "parallel metrics diverged from serial");
        assert_eq!(r.point_metrics.len(), 9);
        assert!(r.sim_cycles_total > 0);
        assert!(r.point_metrics.iter().all(|p| p.cycles > 0));
    }

    #[test]
    fn json_has_wall_and_metric_sections() {
        let r = run_fixed_bench(2, 3_000);
        let j = r.to_json();
        assert!(j.contains("\"schema\": \"fpb-bench-sweep/v1\""));
        assert!(j.contains("\"wall\""));
        assert!(j.contains("\"speedup\""));
        assert!(j.contains("\"point_metrics\""));
        assert!(j.contains("\"identical\": true"));
        // The metric subset must not mention wall-clock fields.
        let m = r.metric_fields_json(0);
        assert!(!m.contains("_ms"));
        assert!(!m.contains("per_sec"));
        assert!(!m.contains("jobs"));
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_string("tab\there"), "\"tab\\there\"");
    }
}
