//! The fixed self-measuring benchmark behind `fpb bench`.
//!
//! Runs one pinned sweep grid twice — serially, then on `jobs` workers —
//! and reports wall-clock numbers plus a bit-for-bit comparison of the
//! two result sets. The report serializes to `BENCH_sweep.json` so every
//! PR leaves a perf trajectory behind: points/sec tracks sweep throughput,
//! sim cycles/sec tracks single-threaded engine throughput, and the
//! `identical` flag is the determinism guarantee CI enforces.

// This module *measures wall-clock speedup* of the parallel sweep; the
// timings are reporting-only and never feed simulation results, which the
// serial-vs-parallel `identical` gate below proves.
// fpb-lint: allow-file(determinism)
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use fpb_trace::catalog;
use fpb_types::SystemConfig;

use crate::engine::SimOptions;
use crate::metrics::json_string;
use crate::scheme::SchemeSetup;
use crate::sweep::{run_sweep_jobs_reuse, Axis, ReuseOptions, ReuseStats, SweepPoint};

/// Workload the fixed benchmark grid runs (write-heavy, so the power
/// budgeting hot paths dominate).
pub const BENCH_WORKLOAD: &str = "mcf_m";

/// Default per-core instruction budget for `fpb bench`.
pub const BENCH_INSTRUCTIONS: u64 = 40_000;

/// The pinned 3×4×3 grid (36 points): line size × DIMM tokens × GCP
/// efficiency. The token/efficiency axes are the two the paper's §6.4
/// sensitivity study leans on hardest; the line-size axis both exercises
/// the cost-aware scheduler (256 B points cost ~4× the 64 B ones) and
/// gives the parallel ladder enough work to amortize thread startup.
fn fixed_axes() -> Vec<Axis> {
    vec![
        Axis::line_bytes(&[64, 128, 256]),
        Axis::pt_dimm(&[466, 512, 560, 608]),
        Axis::e_gcp(&[0.5, 0.7, 0.9]),
    ]
}

/// One rung of the sweep scaling curve: the pinned grid timed at a
/// specific worker count.
#[derive(Debug, Clone)]
pub struct ScalingPoint {
    /// Worker threads of this rung.
    pub jobs: usize,
    /// Wall-clock of the full grid at this worker count, milliseconds.
    pub ms: f64,
    /// `serial_ms / ms` — parallel efficiency relative to the 1-job rung.
    pub speedup: f64,
    /// Sweep throughput at this worker count, points per second.
    pub points_per_sec: f64,
}

/// A ladder rung `fpb bench` declined to time, with the reason — the
/// honesty record for machines where a "parallel" rung could only ever
/// re-measure the serial pass (one effective worker).
#[derive(Debug, Clone)]
pub struct SkippedRung {
    /// Worker threads the skipped rung would have requested.
    pub jobs: usize,
    /// Why it was skipped.
    pub reason: String,
}

/// Cold-vs-warm wall-clock of the persistent result cache: the same
/// serial grid run twice against a private cache file, first empty
/// (every unit simulates, then saves) and then fully populated (every
/// unit splices).
#[derive(Debug, Clone)]
pub struct CacheRace {
    /// Serial grid wall with an empty cache, milliseconds (includes the
    /// cache save).
    pub cold_ms: f64,
    /// Serial grid wall with the populated cache, milliseconds.
    pub warm_ms: f64,
    /// Units answered from the cache on the warm pass.
    pub warm_hits: usize,
    /// Units simulated on the warm pass (0 when the cache fully covers
    /// the grid).
    pub warm_simulated: usize,
}

impl CacheRace {
    /// `cold_ms / warm_ms` — how much the warm start saves.
    pub fn speedup(&self) -> f64 {
        self.cold_ms / self.warm_ms.max(1e-9)
    }
}

/// Per-point metric record kept in the report (everything here is a
/// deterministic simulation output — no wall-clock).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchPoint {
    /// The sweep point's label (axes + scheme).
    pub label: String,
    /// Scheme run cycles.
    pub cycles: u64,
    /// Baseline run cycles.
    pub baseline_cycles: u64,
    /// Scheme run completed line writes.
    pub pcm_writes: u64,
    /// Scheme run cells written.
    pub cells_written: u64,
}

/// The minimum 4-job speedup `fpb bench` demands, scaled to how much
/// parallelism the machine can actually deliver: with four or more
/// effective workers a healthy sweep must clear 2×; fewer cores lower
/// the bar, down to a plain no-regression floor (0.85×) when only one
/// core is available and every "parallel" rung is really serial.
pub fn required_speedup(effective_workers: usize) -> f64 {
    match effective_workers {
        0 | 1 => 0.85,
        2 => 1.3,
        3 => 1.6,
        _ => 2.0,
    }
}

/// The parallel-efficiency gate: the 4-job ladder rung's speedup judged
/// against [`required_speedup`] for the parallelism this machine can
/// actually deliver. CI fails the bench job when the gate fails, the
/// same way it fails on an `identical` divergence.
#[derive(Debug, Clone)]
pub struct EfficiencyGate {
    /// Ladder rung the gate reads (the 4-job rung).
    pub jobs: usize,
    /// Workers that rung can really use:
    /// `min(jobs, detected_cores, points)`.
    pub effective_workers: usize,
    /// Minimum acceptable speedup for that worker count.
    pub required_speedup: f64,
    /// The measured speedup of the rung (min-of-N wall times).
    pub actual_speedup: f64,
}

impl EfficiencyGate {
    /// True when the measured speedup clears the floor.
    pub fn passed(&self) -> bool {
        self.actual_speedup >= self.required_speedup
    }
}

/// The `fpb bench` result: wall-clock measurements plus the deterministic
/// per-point metrics.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Workload the grid ran.
    pub workload: String,
    /// Per-core instruction budget of each run.
    pub instructions_per_core: u64,
    /// Worker threads used for the parallel pass.
    pub jobs: usize,
    /// Logical cores the machine reports
    /// ([`crate::exec::default_jobs`]); makes the scaling ladder and the
    /// efficiency gate interpretable across machines.
    pub detected_cores: usize,
    /// Timed passes per ladder rung (minimum kept).
    pub repeats: u32,
    /// Grid size (number of sweep points).
    pub points: usize,
    /// Wall-clock of the serial (`jobs = 1`) pass, milliseconds.
    pub serial_ms: f64,
    /// Wall-clock of the parallel pass, milliseconds.
    pub parallel_ms: f64,
    /// `serial_ms / parallel_ms`.
    pub speedup: f64,
    /// Sweep throughput of the parallel pass, points per second.
    pub points_per_sec: f64,
    /// Total simulated cycles across all runs of the serial pass (scheme
    /// + baseline of every point).
    pub sim_cycles_total: u64,
    /// Single-threaded engine throughput: simulated cycles per wall
    /// second during the serial pass.
    pub sim_cycles_per_sec: f64,
    /// True iff *every* scaling rung reproduced the serial pass
    /// bit-for-bit (labels, ordering, and full `Metrics` of both runs
    /// per point).
    pub identical: bool,
    /// The scaling curve: the pinned grid timed at each worker count of
    /// the ladder (1/2/4 plus the requested count when different).
    pub scaling: Vec<ScalingPoint>,
    /// Ladder rungs skipped because they could not exercise any real
    /// parallelism on this machine (empty on multi-core hosts).
    pub skipped_rungs: Vec<SkippedRung>,
    /// The parallel-efficiency CI gate, read off the 4-job rung.
    pub efficiency: EfficiencyGate,
    /// Semantic-dedup bookkeeping of the serial pass: how many engine
    /// runs the grid asks for vs how many distinct simulations it needs.
    pub reuse: ReuseStats,
    /// Serial grid wall with dedup disabled (one run per simulation,
    /// the pre-reuse behavior), milliseconds — the level-1 comparison.
    pub no_reuse_serial_ms: f64,
    /// The level-2 comparison: cold vs warm persistent-cache passes.
    pub result_cache: CacheRace,
    /// Deterministic per-point metrics (serial pass).
    pub point_metrics: Vec<BenchPoint>,
}

impl BenchReport {
    /// Full JSON document (written to `BENCH_sweep.json`).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(1024);
        s.push_str("{\n");
        s.push_str("  \"schema\": \"fpb-bench-sweep/v1\",\n");
        s.push_str("  \"wall\": {\n");
        s.push_str(&format!("    \"jobs\": {},\n", self.jobs));
        s.push_str(&format!("    \"detected_cores\": {},\n", self.detected_cores));
        s.push_str(&format!("    \"repeats\": {},\n", self.repeats));
        s.push_str(&format!("    \"serial_ms\": {:.3},\n", self.serial_ms));
        s.push_str(&format!("    \"parallel_ms\": {:.3},\n", self.parallel_ms));
        s.push_str(&format!("    \"speedup\": {:.3},\n", self.speedup));
        s.push_str(&format!(
            "    \"points_per_sec\": {:.3},\n",
            self.points_per_sec
        ));
        s.push_str(&format!(
            "    \"sim_cycles_per_sec\": {:.1},\n",
            self.sim_cycles_per_sec
        ));
        s.push_str(&format!(
            "    \"runs_total\": {},\n",
            self.reuse.runs_total
        ));
        s.push_str(&format!(
            "    \"points_unique\": {},\n",
            self.reuse.runs_unique
        ));
        s.push_str(&format!(
            "    \"dedup_ratio\": {:.3},\n",
            self.reuse.dedup_ratio()
        ));
        s.push_str(&format!(
            "    \"no_reuse_serial_ms\": {:.3},\n",
            self.no_reuse_serial_ms
        ));
        s.push_str(&format!(
            "    \"dedup_speedup\": {:.3},\n",
            self.no_reuse_serial_ms / self.serial_ms.max(1e-9)
        ));
        s.push_str(&format!(
            "    \"result_cache\": {{\"cold_ms\": {:.3}, \"warm_ms\": {:.3}, \
             \"speedup\": {:.3}, \"warm_hits\": {}, \"warm_simulated\": {}}},\n",
            self.result_cache.cold_ms,
            self.result_cache.warm_ms,
            self.result_cache.speedup(),
            self.result_cache.warm_hits,
            self.result_cache.warm_simulated,
        ));
        s.push_str("    \"skipped_rungs\": [");
        for (i, sk) in self.skipped_rungs.iter().enumerate() {
            let comma = if i + 1 < self.skipped_rungs.len() { ", " } else { "" };
            s.push_str(&format!(
                "{{\"jobs\": {}, \"reason\": {}}}{comma}",
                sk.jobs,
                json_string(&sk.reason)
            ));
        }
        s.push_str("],\n");
        s.push_str("    \"scaling\": [\n");
        for (i, r) in self.scaling.iter().enumerate() {
            let comma = if i + 1 < self.scaling.len() { "," } else { "" };
            s.push_str(&format!(
                "      {{\"jobs\": {}, \"ms\": {:.3}, \"speedup\": {:.3}, \
                 \"points_per_sec\": {:.3}}}{comma}\n",
                r.jobs, r.ms, r.speedup, r.points_per_sec,
            ));
        }
        s.push_str("    ],\n");
        s.push_str(&format!(
            "    \"efficiency_gate\": {{\"jobs\": {}, \"effective_workers\": {}, \
             \"required_speedup\": {:.3}, \"actual_speedup\": {:.3}, \"passed\": {}}}\n",
            self.efficiency.jobs,
            self.efficiency.effective_workers,
            self.efficiency.required_speedup,
            self.efficiency.actual_speedup,
            self.efficiency.passed(),
        ));
        s.push_str("  },\n");
        s.push_str(&self.metric_fields_json(2));
        s.push_str("\n}\n");
        s
    }

    /// The deterministic subset of the report — everything except the
    /// `wall` object (and `jobs`, which feeds it). Two runs with any job
    /// counts must produce byte-identical output here; the property test
    /// and the CI divergence check compare exactly this string.
    pub fn metric_fields_json(&self, indent: usize) -> String {
        let pad = " ".repeat(indent);
        let mut s = String::with_capacity(1024);
        s.push_str(&format!(
            "{pad}\"workload\": {},\n",
            json_string(&self.workload)
        ));
        s.push_str(&format!(
            "{pad}\"instructions_per_core\": {},\n",
            self.instructions_per_core
        ));
        s.push_str(&format!("{pad}\"points\": {},\n", self.points));
        s.push_str(&format!(
            "{pad}\"sim_cycles_total\": {},\n",
            self.sim_cycles_total
        ));
        s.push_str(&format!("{pad}\"identical\": {},\n", self.identical));
        s.push_str(&format!("{pad}\"point_metrics\": [\n"));
        for (i, p) in self.point_metrics.iter().enumerate() {
            let comma = if i + 1 < self.point_metrics.len() { "," } else { "" };
            s.push_str(&format!(
                "{pad}  {{\"label\": {}, \"cycles\": {}, \"baseline_cycles\": {}, \
                 \"pcm_writes\": {}, \"cells_written\": {}}}{comma}\n",
                json_string(&p.label),
                p.cycles,
                p.baseline_cycles,
                p.pcm_writes,
                p.cells_written,
            ));
        }
        s.push_str(&format!("{pad}]"));
        s
    }
}

/// The worker-count ladder every `fpb bench` run climbs; the requested
/// job count is appended when it is not already a rung.
const SCALING_LADDER: [usize; 3] = [1, 2, 4];

/// Timed passes per ladder rung in the default configuration (`fpb
/// bench` without `--repeats`): the minimum of two is kept, rejecting
/// one-off noise without doubling CI time again.
pub const BENCH_REPEATS: u32 = 2;

/// [`run_fixed_bench_repeats`] with the default [`BENCH_REPEATS`].
pub fn run_fixed_bench(jobs: usize, instructions_per_core: u64) -> Option<BenchReport> {
    run_fixed_bench_repeats(jobs, instructions_per_core, BENCH_REPEATS)
}

/// Runs the fixed grid at every rung of the scaling ladder (1/2/4
/// workers plus the requested `jobs` when different), comparing each
/// rung's results bit-for-bit against the serial pass.
/// `instructions_per_core` scales run length ([`BENCH_INSTRUCTIONS`] is
/// the pinned default CI uses).
///
/// Each rung is timed `repeats` times and the minimum wall time kept —
/// the standard noise rejection for wall-clock benchmarks. With
/// `repeats > 1` an untimed warmup pass runs first, so allocator
/// arenas, page tables, and frequency scaling are primed before
/// anything is measured; `repeats = 1` skips the warmup (the quick
/// single-shot mode tests use). Every timed pass, every rung, feeds the
/// `identical` gate.
///
/// Returns `None` if the pinned workload is missing from the catalog —
/// impossible with the checked-in catalog, but the benchmark is not a
/// place to panic over it.
pub fn run_fixed_bench_repeats(
    jobs: usize,
    instructions_per_core: u64,
    repeats: u32,
) -> Option<BenchReport> {
    let wl = catalog::workload(BENCH_WORKLOAD)?;
    let cfg = SystemConfig::default();
    let axes = fixed_axes();
    let opts = SimOptions::with_instructions(instructions_per_core);
    let repeats = repeats.max(1);
    let detected_cores = crate::exec::default_jobs();

    let mut ladder: Vec<usize> = SCALING_LADDER.to_vec();
    if !ladder.contains(&jobs) {
        ladder.push(jobs);
        ladder.sort_unstable();
    }

    // Ladder rungs run with the shipping default — semantic dedup on,
    // no persistent cache — so the scaling curve measures the profile a
    // real `fpb sweep` has. The cache stays out of the ladder because a
    // file warm-started by rung N would hollow out rung N+1.
    let sweep = |rung: usize, reuse: &ReuseOptions| {
        run_sweep_jobs_reuse(&wl, cfg.clone(), &axes, "fpb", "dimm-chip", &opts, rung, reuse)
    };
    let no_cache = ReuseOptions::default();

    if repeats > 1 {
        // Untimed warmup pass (results discarded).
        let _ = sweep(jobs.max(1), &no_cache);
    }

    // Serial rung first: its first pass is the bit-for-bit reference
    // every other pass (serial repeats included) is compared against.
    let t0 = Instant::now();
    let (serial, reuse_stats) = sweep(1, &no_cache);
    let mut serial_s = t0.elapsed().as_secs_f64();
    let mut identical = true;
    for _ in 1..repeats {
        let t = Instant::now();
        let (again, _) = sweep(1, &no_cache);
        serial_s = serial_s.min(t.elapsed().as_secs_f64());
        identical &= points_identical(&serial, &again);
    }

    // Level-1 comparison: the same serial grid with dedup off (one
    // engine run per simulation, the pre-reuse behavior). Feeds the
    // `identical` gate — reuse must never change bytes — and the
    // `dedup_speedup` wall number.
    let t = Instant::now();
    let (no_reuse, _) = sweep(1, &ReuseOptions::disabled());
    let no_reuse_serial_s = t.elapsed().as_secs_f64();
    identical &= points_identical(&serial, &no_reuse);

    let mut scaling = Vec::with_capacity(ladder.len());
    let mut skipped_rungs = Vec::new();
    let mut requested_s = serial_s;
    for &rung in &ladder {
        let rung_s = if rung == 1 {
            serial_s
        } else if crate::exec::effective_workers(rung, serial.len()) <= 1 {
            // Honesty over optics: with one effective worker this rung
            // would re-time the serial pass and report it as "parallel".
            skipped_rungs.push(SkippedRung {
                jobs: rung,
                reason: format!(
                    "effective_workers=1 (detected_cores={detected_cores}): \
                     rung would only re-measure the serial pass"
                ),
            });
            continue;
        } else {
            let mut best = f64::INFINITY;
            for _ in 0..repeats {
                let t = Instant::now();
                let (result, _) = sweep(rung, &no_cache);
                best = best.min(t.elapsed().as_secs_f64());
                identical &= points_identical(&serial, &result);
            }
            best
        };
        if rung == jobs {
            requested_s = rung_s;
        }
        scaling.push(ScalingPoint {
            jobs: rung,
            ms: rung_s * 1e3,
            speedup: serial_s / rung_s.max(1e-9),
            points_per_sec: serial.len() as f64 / rung_s.max(1e-9),
        });
    }
    let parallel_s = requested_s;

    // Level-2 comparison: cold vs warm persistent cache on a private
    // file (unique per process *and* per call, so concurrently running
    // bench tests never warm-start each other). Both passes feed the
    // `identical` gate.
    static CACHE_SEQ: AtomicU64 = AtomicU64::new(0);
    let cache_path = std::env::temp_dir().join(format!(
        "fpb-bench-cache-{}-{}.v1",
        std::process::id(),
        // ORDER: pure uniqueness counter; no other memory access is
        // sequenced against the ticket value.
        CACHE_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_file(&cache_path);
    let with_cache = ReuseOptions { dedup: true, cache: Some(cache_path.clone()) };
    let t = Instant::now();
    let (cold, _) = sweep(1, &with_cache);
    let cache_cold_s = t.elapsed().as_secs_f64();
    identical &= points_identical(&serial, &cold);
    let t = Instant::now();
    let (warm, warm_stats) = sweep(1, &with_cache);
    let cache_warm_s = t.elapsed().as_secs_f64();
    identical &= points_identical(&serial, &warm);
    let _ = std::fs::remove_file(&cache_path);
    let result_cache = CacheRace {
        cold_ms: cache_cold_s * 1e3,
        warm_ms: cache_warm_s * 1e3,
        warm_hits: warm_stats.cache_hits,
        warm_simulated: warm_stats.simulated,
    };

    // The efficiency gate reads the 4-job rung (always on the ladder).
    let gate_rung = scaling
        .iter()
        .filter(|p| p.jobs <= 4)
        .max_by_key(|p| p.jobs)
        .map_or((4, 1.0), |p| (p.jobs, p.speedup));
    let effective_workers = crate::exec::effective_workers(gate_rung.0, serial.len());
    let efficiency = EfficiencyGate {
        jobs: gate_rung.0,
        effective_workers,
        required_speedup: required_speedup(effective_workers),
        actual_speedup: gate_rung.1,
    };

    let sim_cycles_total: u64 = serial
        .iter()
        .map(|p| p.metrics.cycles + p.baseline.cycles)
        .sum();
    let point_metrics = serial
        .iter()
        .map(|p| BenchPoint {
            label: p.label.clone(),
            cycles: p.metrics.cycles,
            baseline_cycles: p.baseline.cycles,
            pcm_writes: p.metrics.pcm_writes,
            cells_written: p.metrics.cells_written,
        })
        .collect();
    Some(BenchReport {
        workload: BENCH_WORKLOAD.to_string(),
        instructions_per_core,
        jobs,
        detected_cores,
        repeats,
        points: serial.len(),
        serial_ms: serial_s * 1e3,
        parallel_ms: parallel_s * 1e3,
        speedup: serial_s / parallel_s.max(1e-9),
        points_per_sec: serial.len() as f64 / parallel_s.max(1e-9),
        sim_cycles_total,
        sim_cycles_per_sec: sim_cycles_total as f64 / serial_s.max(1e-9),
        identical,
        scaling,
        skipped_rungs,
        efficiency,
        reuse: reuse_stats,
        no_reuse_serial_ms: no_reuse_serial_s * 1e3,
        result_cache,
        point_metrics,
    })
}

/// Bit-for-bit comparison of two sweep result sets: same length, same
/// labels in the same order, equal scheme and baseline `Metrics`.
pub fn points_identical(a: &[SweepPoint], b: &[SweepPoint]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b.iter()).all(|(x, y)| {
            x.label == y.label && x.metrics == y.metrics && x.baseline == y.baseline
        })
}

// ---- hot-path benchmark (`fpb bench` → BENCH_hotpath.json) ----

/// Timing repeats per engine configuration; the report keeps the minimum,
/// the standard noise-rejection for wall-clock microbenchmarks.
const HOTPATH_REPEATS: u32 = 5;

/// Lines sampled / line writes built per micro-measurement.
const HOTPATH_MICRO_ITERS: u32 = 2_000;

/// Floor the line-write pooling micro must clear
/// (`fresh_ms / pooled_ms`). Pooling exists for the engine's
/// allocation-heavy steady state; in this isolated micro the pool's
/// free-list hit and the allocator's own fast path are nearly tied, so
/// the gate demands break-even within measurement noise rather than a
/// phantom win. (The historical 0.961 reading was order bias: pooled
/// and fresh were each timed in one sequential block, so whichever ran
/// first absorbed the cold allocator; the race now alternates sides
/// with min-of-N, like the engine race.)
pub const LINE_WRITE_FLOOR: f64 = 0.97;

/// The write-path performance report: the optimized path (word-level
/// change sampling + pooled buffers + event-heap stepper) raced against
/// the pre-optimization reference path
/// ([`SimOptions::reference_path`](crate::SimOptions::reference_path)),
/// plus component microbenchmarks and the correctness gates CI enforces.
#[derive(Debug, Clone)]
pub struct HotpathReport {
    /// Workload of the engine runs.
    pub workload: String,
    /// Per-core instruction budget of the engine runs.
    pub instructions_per_core: u64,
    /// Timing repeats (minimum kept).
    pub repeats: u32,
    /// Full-engine wall-clock, optimized write path, milliseconds.
    pub engine_optimized_ms: f64,
    /// Full-engine wall-clock, reference write path, milliseconds.
    pub engine_reference_ms: f64,
    /// `engine_reference_ms / engine_optimized_ms`.
    pub engine_speedup: f64,
    /// Word-level change sampling micro, milliseconds.
    pub sampler_words_ms: f64,
    /// Per-bit reference change sampling micro, milliseconds.
    pub sampler_perbit_ms: f64,
    /// `sampler_perbit_ms / sampler_words_ms`.
    pub sampler_speedup: f64,
    /// Pooled `LineWrite` build micro, milliseconds.
    pub line_write_pooled_ms: f64,
    /// Fresh-allocation `LineWrite` build micro, milliseconds.
    pub line_write_fresh_ms: f64,
    /// `line_write_fresh_ms / line_write_pooled_ms`.
    pub line_write_speedup: f64,
    /// Pool buffer reuses during the gate run.
    pub pool_reuses: u64,
    /// Pool fresh allocations during the gate run.
    pub pool_fresh_allocations: u64,
    /// Heap stepper reproduced the scan stepper bit-for-bit.
    pub stepper_identical: bool,
    /// Pooled buffers reproduced fresh allocation bit-for-bit.
    pub pooling_identical: bool,
    /// Word-level sampler matched the per-bit reference distributionally
    /// (average cell changes and completed writes within 10%).
    pub sampler_equivalent: bool,
}

impl HotpathReport {
    /// True iff every correctness gate holds and the pooling micro
    /// clears [`LINE_WRITE_FLOOR`]. CI fails the bench job on `false`.
    pub fn gates_pass(&self) -> bool {
        self.stepper_identical
            && self.pooling_identical
            && self.sampler_equivalent
            && self.line_write_speedup >= LINE_WRITE_FLOOR
    }

    /// Full JSON document (written to `BENCH_hotpath.json`).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(1024);
        s.push_str("{\n");
        s.push_str("  \"schema\": \"fpb-bench-hotpath/v1\",\n");
        s.push_str(&format!(
            "  \"workload\": {},\n",
            json_string(&self.workload)
        ));
        s.push_str(&format!(
            "  \"instructions_per_core\": {},\n",
            self.instructions_per_core
        ));
        s.push_str(&format!("  \"repeats\": {},\n", self.repeats));
        s.push_str("  \"wall\": {\n");
        s.push_str(&format!(
            "    \"engine_reference_ms\": {:.3},\n",
            self.engine_reference_ms
        ));
        s.push_str(&format!(
            "    \"engine_optimized_ms\": {:.3},\n",
            self.engine_optimized_ms
        ));
        s.push_str(&format!(
            "    \"engine_speedup\": {:.3},\n",
            self.engine_speedup
        ));
        s.push_str(&format!(
            "    \"sampler_perbit_ms\": {:.3},\n",
            self.sampler_perbit_ms
        ));
        s.push_str(&format!(
            "    \"sampler_words_ms\": {:.3},\n",
            self.sampler_words_ms
        ));
        s.push_str(&format!(
            "    \"sampler_speedup\": {:.3},\n",
            self.sampler_speedup
        ));
        s.push_str(&format!(
            "    \"line_write_fresh_ms\": {:.3},\n",
            self.line_write_fresh_ms
        ));
        s.push_str(&format!(
            "    \"line_write_pooled_ms\": {:.3},\n",
            self.line_write_pooled_ms
        ));
        s.push_str(&format!(
            "    \"line_write_speedup\": {:.3}\n",
            self.line_write_speedup
        ));
        s.push_str("  },\n");
        s.push_str("  \"pool\": {\n");
        s.push_str(&format!("    \"reuses\": {},\n", self.pool_reuses));
        s.push_str(&format!(
            "    \"fresh_allocations\": {}\n",
            self.pool_fresh_allocations
        ));
        s.push_str("  },\n");
        s.push_str("  \"gates\": {\n");
        s.push_str(&format!(
            "    \"stepper_identical\": {},\n",
            self.stepper_identical
        ));
        s.push_str(&format!(
            "    \"pooling_identical\": {},\n",
            self.pooling_identical
        ));
        s.push_str(&format!(
            "    \"sampler_equivalent\": {},\n",
            self.sampler_equivalent
        ));
        s.push_str(&format!("    \"line_write_floor\": {LINE_WRITE_FLOOR},\n"));
        s.push_str(&format!(
            "    \"line_write_ok\": {}\n",
            self.line_write_speedup >= LINE_WRITE_FLOOR
        ));
        s.push_str("  }\n}\n");
        s
    }
}

/// The write-saturated workload the engine race runs: streaming stores
/// over a footprint far beyond the LLC, so dirty evictions flood the PCM
/// write queue and the write path (change sampling, `LineWrite`
/// construction, round scheduling) dominates wall-clock — the component
/// this report exists to measure. Read-heavy cache traffic would only
/// dilute the comparison with work both paths share.
fn write_storm() -> fpb_trace::Workload {
    // Nearly write-only traffic with a high word-change probability: the
    // per-bit reference pays 32 Bernoulli draws per changed word, so the
    // denser the writes, the larger the share of runtime the optimized
    // word-level sampler removes. Reads are kept at a trickle — read
    // service costs the same on both paths and only dilutes the race.
    let profile = fpb_trace::WorkloadProfile::new(
        "storm",
        vec![fpb_trace::TrafficTier::new(0.5, 24.0, 512.0, true)],
        fpb_trace::DataProfile::new(fpb_trace::DataClass::Integer, 0.5),
    );
    fpb_trace::Workload {
        name: "write_storm",
        per_core: vec![profile; 8],
        table2_rpki: 0.5,
        table2_wpki: 24.0,
    }
}

/// Minimum-of-`repeats` wall-clock of the warmed simulation loop, plus
/// the (deterministic, repeat-invariant) metrics. Only stepping is timed
/// — system construction and the per-run core clone are excluded, since
/// they are identical for every write-path configuration.
fn time_engine(
    wl: &fpb_trace::Workload,
    cfg: &SystemConfig,
    setup: &SchemeSetup,
    opts: &SimOptions,
    cores: &[crate::frontend::CoreState],
    repeats: u32,
) -> (f64, crate::metrics::Metrics) {
    let mut sys = crate::engine::System::with_cores(wl, cfg, setup, opts, cores.to_vec());
    let t = Instant::now();
    while sys.step() {}
    let mut best = t.elapsed().as_secs_f64();
    let metrics = sys.finish();
    for _ in 1..repeats {
        let mut sys = crate::engine::System::with_cores(wl, cfg, setup, opts, cores.to_vec());
        let t = Instant::now();
        while sys.step() {}
        best = best.min(t.elapsed().as_secs_f64());
        let _ = sys.finish();
    }
    (best * 1e3, metrics)
}

/// Relative closeness within `tol` (distributional-equivalence gate).
fn within(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol * b.abs().max(1e-9)
}

/// Races the optimized write path against the reference path on a
/// write-saturated workload and checks the correctness gates: heap
/// stepper and buffer pooling must reproduce the reference
/// *bit-for-bit*; the word-level sampler must match the per-bit
/// reference distributionally.
///
/// Always returns `Some` today; the `Option` keeps the signature aligned
/// with [`run_fixed_bench`] for the CLI.
pub fn run_hotpath_bench(instructions_per_core: u64) -> Option<HotpathReport> {
    let wl = write_storm();
    let cfg = SystemConfig::default();
    let setup = SchemeSetup::fpb(&cfg);
    let opts = SimOptions::with_instructions(instructions_per_core);
    let ref_opts = opts.reference_path();
    let cores = crate::engine::warm_cores(&wl, &cfg, &opts);

    // Full-engine race: optimized vs full reference path. The repeats
    // alternate between the two paths (min of each) so transient machine
    // load lands on both sides instead of skewing whichever block it
    // happened to overlap.
    let (o, m_opt) = time_engine(&wl, &cfg, &setup, &opts, &cores, 1);
    let (r, m_ref) = time_engine(&wl, &cfg, &setup, &ref_opts, &cores, 1);
    let (mut opt_ms, mut ref_ms) = (o, r);
    for _ in 1..HOTPATH_REPEATS {
        opt_ms = opt_ms.min(time_engine(&wl, &cfg, &setup, &opts, &cores, 1).0);
        ref_ms = ref_ms.min(time_engine(&wl, &cfg, &setup, &ref_opts, &cores, 1).0);
    }

    // Bit-for-bit gates: flip one reference knob at a time.
    let mut stepper_opts = opts;
    stepper_opts.reference_stepper = true;
    let (_, m_stepper) = time_engine(&wl, &cfg, &setup, &stepper_opts, &cores, 1);
    let mut alloc_opts = opts;
    alloc_opts.reference_alloc = true;
    let (_, m_alloc) = time_engine(&wl, &cfg, &setup, &alloc_opts, &cores, 1);
    let stepper_identical = m_opt == m_stepper;
    let pooling_identical = m_opt == m_alloc;

    // Distributional gate: the word-level sampler consumes the RNG
    // differently by design, so compare write-path aggregates, not bits.
    let sampler_equivalent = within(m_opt.avg_cell_changes(), m_ref.avg_cell_changes(), 0.10)
        && within(m_opt.pcm_writes as f64, m_ref.pcm_writes as f64, 0.10);

    // Pool effectiveness: a stepped run exposes the recycler's counters.
    let mut sys = crate::engine::System::with_cores(&wl, &cfg, &setup, &opts, cores.clone());
    while sys.step() {}
    let (pool_reuses, pool_fresh_allocations) = sys.pool_stats();
    let _ = sys.finish();

    // Component micro: change sampling, word-level vs per-bit reference.
    let profile = wl.per_core[0].data.clone();
    let line_bytes = cfg.pcm.line_bytes;
    let mut rng = fpb_types::SimRng::seed_from(0xDA7A);
    let mut cs = fpb_pcm::ChangeSet::empty();
    let t = Instant::now();
    for _ in 0..HOTPATH_MICRO_ITERS {
        profile.sample_change_set_into(line_bytes, &mut rng, &mut cs);
    }
    let sampler_words_ms = t.elapsed().as_secs_f64() * 1e3;
    let t = Instant::now();
    for _ in 0..HOTPATH_MICRO_ITERS {
        let _ = profile.sample_change_set_reference(line_bytes, &mut rng);
    }
    let sampler_perbit_ms = t.elapsed().as_secs_f64() * 1e3;

    // Component micro: LineWrite builds, pooled vs fresh allocation.
    // Alternated min-of-N like the engine race above: timing each side
    // in a single sequential block hands whichever runs second a warmed
    // allocator (and parks transient machine load on one side only),
    // which is exactly the order bias that once reported pooling as a
    // phantom 4% regression.
    let geom = fpb_pcm::DimmGeometry::new(cfg.pcm.chips, cfg.pcm.cells_per_line());
    let sampler = fpb_pcm::IterationSampler::new(fpb_types::MlcWriteModel::default());
    let cells: Vec<(u32, fpb_pcm::MlcLevel)> = (0..256u32)
        .map(|i| (i * 4, fpb_pcm::MlcLevel::L01))
        .collect();
    let mut pool = fpb_pcm::WriteBufferPool::new();
    let mut wrng = fpb_types::SimRng::seed_from(0x9C3);
    let (mut line_write_pooled_ms, mut line_write_fresh_ms) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..HOTPATH_REPEATS {
        let t = Instant::now();
        for _ in 0..HOTPATH_MICRO_ITERS {
            let w = pool.build(
                &cells,
                &geom,
                fpb_pcm::CellMapping::Bim,
                &sampler,
                &mut wrng,
                1,
            );
            pool.recycle(w);
        }
        line_write_pooled_ms = line_write_pooled_ms.min(t.elapsed().as_secs_f64() * 1e3);
        let t = Instant::now();
        for _ in 0..HOTPATH_MICRO_ITERS {
            let _ = fpb_pcm::LineWrite::from_cells(
                &cells,
                &geom,
                fpb_pcm::CellMapping::Bim,
                &sampler,
                &mut wrng,
                1,
            );
        }
        line_write_fresh_ms = line_write_fresh_ms.min(t.elapsed().as_secs_f64() * 1e3);
    }

    Some(HotpathReport {
        workload: wl.name.to_string(),
        instructions_per_core,
        repeats: HOTPATH_REPEATS,
        engine_optimized_ms: opt_ms,
        engine_reference_ms: ref_ms,
        engine_speedup: ref_ms / opt_ms.max(1e-9),
        sampler_words_ms,
        sampler_perbit_ms,
        sampler_speedup: sampler_perbit_ms / sampler_words_ms.max(1e-9),
        line_write_pooled_ms,
        line_write_fresh_ms,
        line_write_speedup: line_write_fresh_ms / line_write_pooled_ms.max(1e-9),
        pool_reuses,
        pool_fresh_allocations,
        stepper_identical,
        pooling_identical,
        sampler_equivalent,
    })
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn fixed_bench_runs_and_matches() {
        let r = run_fixed_bench_repeats(2, 1_000, 1).unwrap();
        assert_eq!(r.points, 36);
        assert!(r.identical, "a scaling rung diverged from serial");
        assert_eq!(r.point_metrics.len(), 36);
        assert!(r.sim_cycles_total > 0);
        assert!(r.point_metrics.iter().all(|p| p.cycles > 0));
        // The ladder covers 1/2/4 exactly (2 is already a rung) — on a
        // multi-core machine; single-core hosts skip the parallel rungs
        // honestly instead.
        let rungs: Vec<usize> = r.scaling.iter().map(|p| p.jobs).collect();
        if crate::exec::effective_workers(2, r.points) > 1 {
            assert_eq!(rungs, vec![1, 2, 4]);
            assert!(r.skipped_rungs.is_empty());
        } else {
            assert_eq!(rungs, vec![1]);
            assert_eq!(r.skipped_rungs.len(), 2);
        }
        // Reuse bookkeeping: the grid asks for 2 runs per point; dedup
        // must collapse at least the shared-baseline classes, and the
        // warm cache pass must splice everything.
        assert_eq!(r.reuse.runs_total, 2 * r.points);
        assert!(r.reuse.runs_unique < r.reuse.runs_total);
        assert!(r.reuse.dedup_ratio() > 1.0);
        assert!(r.no_reuse_serial_ms > 0.0);
        assert_eq!(r.result_cache.warm_simulated, 0, "warm pass re-simulated");
        assert_eq!(r.result_cache.warm_hits, r.reuse.runs_unique);
        assert!(r.result_cache.cold_ms > 0.0 && r.result_cache.warm_ms > 0.0);
        assert!((r.scaling[0].speedup - 1.0).abs() < 1e-9, "serial rung is the reference");
        assert!(r.scaling.iter().all(|p| p.ms > 0.0 && p.points_per_sec > 0.0));
        assert!(r.detected_cores >= 1);
        assert_eq!(r.repeats, 1);
    }

    #[test]
    fn requested_jobs_joins_the_ladder() {
        if crate::exec::effective_workers(2, 36) <= 1 {
            return; // single-core host: parallel rungs are skipped
        }
        let r = run_fixed_bench_repeats(3, 800, 1).unwrap();
        let rungs: Vec<usize> = r.scaling.iter().map(|p| p.jobs).collect();
        assert_eq!(rungs, vec![1, 2, 3, 4]);
        // The top-level wall numbers describe the requested rung.
        let rung = r.scaling.iter().find(|p| p.jobs == 3).unwrap();
        assert!((rung.ms - r.parallel_ms).abs() < 1e-9);
        assert!((rung.speedup - r.speedup).abs() < 1e-9);
    }

    #[test]
    fn efficiency_gate_reads_the_4_job_rung() {
        if crate::exec::effective_workers(2, 36) <= 1 {
            return; // single-core host: the 4-job rung is skipped
        }
        let r = run_fixed_bench_repeats(2, 800, 1).unwrap();
        assert_eq!(r.efficiency.jobs, 4);
        let expect = crate::exec::effective_workers(4, r.points);
        assert_eq!(r.efficiency.effective_workers, expect);
        assert!(
            (r.efficiency.required_speedup - required_speedup(expect)).abs() < 1e-9,
            "gate floor must match the effective worker count"
        );
        let rung4 = r.scaling.iter().find(|p| p.jobs == 4).unwrap();
        assert!((r.efficiency.actual_speedup - rung4.speedup).abs() < 1e-9);
    }

    #[test]
    fn required_speedup_is_core_count_aware() {
        assert!((required_speedup(1) - 0.85).abs() < 1e-9);
        assert!((required_speedup(2) - 1.3).abs() < 1e-9);
        assert!((required_speedup(3) - 1.6).abs() < 1e-9);
        assert!((required_speedup(4) - 2.0).abs() < 1e-9);
        assert!((required_speedup(64) - 2.0).abs() < 1e-9);
        // Monotone: more parallelism never lowers the bar.
        for w in 1..8 {
            assert!(required_speedup(w + 1) >= required_speedup(w));
        }
    }

    #[test]
    fn json_has_wall_and_metric_sections() {
        let r = run_fixed_bench_repeats(2, 800, 1).unwrap();
        let j = r.to_json();
        assert!(j.contains("\"schema\": \"fpb-bench-sweep/v1\""));
        assert!(j.contains("\"wall\""));
        assert!(j.contains("\"speedup\""));
        assert!(j.contains("\"detected_cores\": "));
        assert!(j.contains("\"repeats\": 1"));
        assert!(j.contains("\"scaling\": ["));
        assert!(j.contains("{\"jobs\": 1, \"ms\": "));
        // Parallel rungs appear either in the scaling curve (multi-core)
        // or in the skip record (single effective worker) — never lost.
        assert!(
            j.contains("{\"jobs\": 4, \"ms\": ")
                || j.contains("{\"jobs\": 4, \"reason\": "),
            "the 4-job rung vanished from both scaling and skipped_rungs"
        );
        assert!(j.contains("\"efficiency_gate\": {"));
        assert!(j.contains("\"effective_workers\": "));
        assert!(j.contains("\"required_speedup\": "));
        assert!(j.contains("\"point_metrics\""));
        assert!(j.contains("\"identical\": true"));
        assert!(j.contains("\"points_unique\": "));
        assert!(j.contains("\"dedup_ratio\": "));
        assert!(j.contains("\"no_reuse_serial_ms\": "));
        assert!(j.contains("\"result_cache\": {\"cold_ms\": "));
        assert!(j.contains("\"skipped_rungs\": ["));
        // The metric subset must not mention wall-clock fields.
        let m = r.metric_fields_json(0);
        assert!(!m.contains("_ms"));
        assert!(!m.contains("per_sec"));
        assert!(!m.contains("jobs"));
        assert!(!m.contains("scaling"));
        assert!(!m.contains("detected_cores"));
        assert!(!m.contains("efficiency"));
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_string("tab\there"), "\"tab\\there\"");
    }

    #[test]
    fn hotpath_bench_gates_hold_and_serialize() {
        let r = run_hotpath_bench(4_000).unwrap();
        assert!(r.stepper_identical, "heap stepper diverged from scan");
        assert!(r.pooling_identical, "pooled buffers diverged from fresh");
        assert!(r.sampler_equivalent, "sampler drifted distributionally");
        assert!(
            r.line_write_speedup >= LINE_WRITE_FLOOR,
            "pooled line-write build regressed past the floor: {:.3}",
            r.line_write_speedup
        );
        assert!(r.gates_pass());
        assert!(r.engine_optimized_ms > 0.0 && r.engine_reference_ms > 0.0);
        assert!(r.pool_reuses > 0, "pool never recycled a buffer");
        let j = r.to_json();
        assert!(j.contains("\"schema\": \"fpb-bench-hotpath/v1\""));
        assert!(j.contains("\"engine_speedup\""));
        assert!(j.contains("\"stepper_identical\": true"));
        assert!(j.contains("\"pooling_identical\": true"));
        assert!(j.contains("\"sampler_equivalent\": true"));
        assert!(j.contains("\"line_write_floor\": 0.97"));
        assert!(j.contains("\"line_write_ok\": true"));
    }
}
