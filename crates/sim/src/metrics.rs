//! Simulation results.

use fpb_core::PowerStats;

/// Everything one simulation run reports.
///
/// # Examples
///
/// ```
/// use fpb_sim::Metrics;
///
/// let m = Metrics::default();
/// assert_eq!(m.cycles, 0);
/// ```
/// `PartialEq`/`Eq` let determinism tests — and the parallel sweep's
/// serial-equivalence guarantee — compare whole runs bit-for-bit.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Total elapsed cycles until every core retired its instruction
    /// budget.
    pub cycles: u64,
    /// Instructions retired per core (the run target).
    pub instructions_per_core: u64,
    /// Number of cores.
    pub cores: u8,
    /// Demand reads serviced by PCM.
    pub pcm_reads: u64,
    /// Line writes fully completed (all rounds).
    pub pcm_writes: u64,
    /// Write rounds completed (≥ `pcm_writes` when multi-round splits
    /// occur).
    pub write_rounds: u64,
    /// Total cells programmed by completed write *rounds* (accumulated
    /// when a round closes, so it always equals the
    /// [`Metrics::per_chip_cells`] sum even if a later round of the same
    /// line write is still in flight when the run ends).
    pub cells_written: u64,
    /// Cycles during which the controller was in write-burst mode.
    pub burst_cycles: u64,
    /// Cycles during which at least one write was actively iterating.
    pub write_active_cycles: u64,
    /// Sum of per-write queueing delays (arrival to first admission), in
    /// cycles.
    pub write_queue_delay: u64,
    /// Writes cancelled by write cancellation.
    pub cancellations: u64,
    /// Writes paused by write pausing.
    pub pauses: u64,
    /// Writes ended early by write truncation.
    pub truncations: u64,
    /// Sum of PCM read service latencies (queue entry to data return), in
    /// cycles.
    pub read_latency_sum: u64,
    /// Background drift-scrub reads serviced.
    pub scrub_reads: u64,
    /// Cells written per chip across completed write rounds (length =
    /// chip count; empty if no writes completed).
    pub per_chip_cells: Vec<u64>,
    /// Power-manager statistics (GCP usage, stalls, Multi-RESET splits).
    pub power: PowerStats,
    /// Wear accounting and lifetime projection for the run's writes.
    pub endurance: Option<fpb_pcm::EnduranceTracker>,
    /// Fault-injection and recovery counters (all zero when injection is
    /// disabled).
    pub faults: FaultMetrics,
}

/// Counters for injected faults and the controller's recovery actions.
///
/// `PartialEq`/`Eq` so determinism tests can compare two runs directly.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultMetrics {
    /// Write rounds whose final verify failed (injected, including
    /// deterministic failures on stuck lines).
    pub verify_failures: u64,
    /// Retry rounds issued in response to verify failures.
    pub retries: u64,
    /// Lines marked stuck-at by the endurance-triggered fault model.
    pub stuck_lines_marked: u64,
    /// Lines remapped to spares after retries were exhausted.
    pub remaps: u64,
    /// Rounds rewritten in SLC fallback mode (single-level programming on
    /// weak cells).
    pub slc_fallbacks: u64,
    /// Rounds force-closed by the controller watchdog.
    pub watchdog_trips: u64,
    /// Brownout windows entered.
    pub brownout_windows: u64,
    /// Cycles spent with brownout-shrunk token budgets.
    pub brownout_cycles: u64,
    /// New writes issued in degraded (SLC) mode.
    pub degraded_writes: u64,
    /// Cycles spent in degraded mode.
    pub degraded_cycles: u64,
    /// Token-conservation violations found by the opt-in ledger auditor.
    pub audit_violations: u64,
}

impl FaultMetrics {
    /// True if any fault fired or any recovery action was taken.
    pub fn any_activity(&self) -> bool {
        *self != FaultMetrics::default()
    }
}

impl Metrics {
    /// Cycles per instruction of the run (elapsed cycles over the per-core
    /// instruction budget — every core retires the same budget).
    ///
    /// # Panics
    ///
    /// Panics if the run retired no instructions.
    pub fn cpi(&self) -> f64 {
        assert!(self.instructions_per_core > 0, "empty run has no CPI");
        self.cycles as f64 / self.instructions_per_core as f64
    }

    /// Speedup of this run relative to a baseline (`CPI_base / CPI_self`,
    /// Eq. 7).
    pub fn speedup_over(&self, baseline: &Metrics) -> f64 {
        baseline.cpi() / self.cpi()
    }

    /// Write throughput: completed line writes per kilocycle of
    /// write-active time. Schemes that overlap writes better finish the
    /// same write volume in less active time.
    pub fn write_throughput(&self) -> f64 {
        if self.write_active_cycles == 0 {
            0.0
        } else {
            self.pcm_writes as f64 * 1000.0 / self.write_active_cycles as f64
        }
    }

    /// Fraction of execution time spent in write bursts (Fig. 10).
    pub fn burst_fraction(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.burst_cycles as f64 / self.cycles as f64
        }
    }

    /// Average cells changed per completed line write (Fig. 2).
    pub fn avg_cell_changes(&self) -> f64 {
        if self.pcm_writes == 0 {
            0.0
        } else {
            self.cells_written as f64 / self.pcm_writes as f64
        }
    }

    /// Average PCM read service latency in cycles (WC/WP's target metric).
    pub fn avg_read_latency(&self) -> f64 {
        if self.pcm_reads == 0 {
            0.0
        } else {
            self.read_latency_sum as f64 / self.pcm_reads as f64
        }
    }

    /// Per-chip write-wear imbalance: max over mean cells written per
    /// chip (1.0 = perfectly even). Returns 0 when nothing was written.
    pub fn chip_imbalance(&self) -> f64 {
        let Some(&max) = self.per_chip_cells.iter().max() else {
            return 0.0; // no chips recorded
        };
        let max = max as f64;
        let mean = self.per_chip_cells.iter().sum::<u64>() as f64
            / self.per_chip_cells.len() as f64;
        // `mean` is an integer sum over a nonzero count: it is exactly 0.0
        // iff no cells were written, so exact equality is the right guard.
        // fpb-lint: allow(float_eq)
        if mean == 0.0 {
            0.0
        } else {
            max / mean
        }
    }

    /// Average usable GCP tokens requested per completed line write
    /// (Fig. 14).
    pub fn avg_gcp_tokens_per_write(&self) -> f64 {
        if self.pcm_writes == 0 {
            0.0
        } else {
            self.power.gcp_usable_total().as_f64() / self.pcm_writes as f64
        }
    }

    /// The top-level scalar counters, in the fixed JSON field order
    /// shared by [`Metrics::to_json`] and [`Metrics::to_json_inline`].
    fn scalar_fields(&self) -> [(&'static str, u64); 15] {
        [
            ("cycles", self.cycles),
            ("instructions_per_core", self.instructions_per_core),
            ("cores", self.cores as u64),
            ("pcm_reads", self.pcm_reads),
            ("pcm_writes", self.pcm_writes),
            ("write_rounds", self.write_rounds),
            ("cells_written", self.cells_written),
            ("burst_cycles", self.burst_cycles),
            ("write_active_cycles", self.write_active_cycles),
            ("write_queue_delay", self.write_queue_delay),
            ("cancellations", self.cancellations),
            ("pauses", self.pauses),
            ("truncations", self.truncations),
            ("read_latency_sum", self.read_latency_sum),
            ("scrub_reads", self.scrub_reads),
        ]
    }

    /// The `power` object's fields, in fixed order.
    fn power_fields(&self) -> [(&'static str, u64); 7] {
        [
            ("admissions", self.power.admissions()),
            ("admission_failures", self.power.admission_failures()),
            ("advance_stalls", self.power.advance_stalls()),
            ("multi_reset_splits", self.power.multi_reset_splits()),
            ("gcp_grants", self.power.gcp_grants()),
            ("gcp_usable_millitokens", self.power.gcp_usable_total().millis()),
            ("gcp_waste_millitokens", self.power.gcp_waste_total().millis()),
        ]
    }

    /// The `faults` object's fields, in fixed order.
    fn fault_fields(&self) -> [(&'static str, u64); 11] {
        [
            ("verify_failures", self.faults.verify_failures),
            ("retries", self.faults.retries),
            ("stuck_lines_marked", self.faults.stuck_lines_marked),
            ("remaps", self.faults.remaps),
            ("slc_fallbacks", self.faults.slc_fallbacks),
            ("watchdog_trips", self.faults.watchdog_trips),
            ("brownout_windows", self.faults.brownout_windows),
            ("brownout_cycles", self.faults.brownout_cycles),
            ("degraded_writes", self.faults.degraded_writes),
            ("degraded_cycles", self.faults.degraded_cycles),
            ("audit_violations", self.faults.audit_violations),
        ]
    }

    /// Renders the non-scalar sections (`per_chip_cells` array, `power`
    /// object, `endurance_cells`, `faults` object) into `s`, joined by
    /// `sep` and prefixed by `pad`.
    fn push_composite_fields(&self, s: &mut String, sep: &str, pad: &str) {
        s.push_str(pad);
        s.push_str("\"per_chip_cells\": [");
        for (i, c) in self.per_chip_cells.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&c.to_string());
        }
        s.push(']');
        s.push_str(sep);
        s.push_str(pad);
        s.push_str("\"power\": {");
        push_object_fields(s, &self.power_fields());
        s.push('}');
        s.push_str(sep);
        s.push_str(pad);
        s.push_str("\"endurance_cells\": ");
        match &self.endurance {
            Some(e) => s.push_str(&e.total_cells_written().to_string()),
            None => s.push_str("null"),
        }
        s.push_str(sep);
        s.push_str(pad);
        s.push_str("\"faults\": {");
        push_object_fields(s, &self.fault_fields());
        s.push('}');
    }

    /// Deterministic JSON rendering of the full run result.
    ///
    /// Every field is an exact integer (token totals are reported in raw
    /// millitokens), so two runs that are bit-for-bit identical produce
    /// byte-identical documents — the property the pooled-vs-fresh write
    /// path tests compare. Field order is fixed.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(1024);
        s.push_str("{\n");
        s.push_str("  \"schema\": \"fpb-metrics/v1\",\n");
        for (k, v) in self.scalar_fields() {
            s.push_str(&format!("  \"{k}\": {v},\n"));
        }
        self.push_composite_fields(&mut s, ",\n", "  ");
        s.push_str("\n}\n");
        s
    }

    /// Flattens the full run result into one line of space-separated
    /// decimal integers — an *exact* encoding (no floats anywhere in
    /// `Metrics`), so `decode_record(encode_record(m)) == m` bit for
    /// bit. This is the storage form of the persistent sweep result
    /// cache; byte-identical JSON after a cache splice rests on this
    /// round trip being lossless.
    ///
    /// Layout: 15 scalars, per-chip length + values, 9 raw power
    /// counters, endurance flag (+ parts when present), 11 fault
    /// counters.
    pub fn encode_record(&self) -> String {
        let mut out = String::with_capacity(256);
        let mut push = |v: u64| {
            if !out.is_empty() {
                out.push(' ');
            }
            out.push_str(&v.to_string());
        };
        for (_, v) in self.scalar_fields() {
            push(v);
        }
        push(self.per_chip_cells.len() as u64);
        for &c in &self.per_chip_cells {
            push(c);
        }
        for v in self.power.to_raw() {
            push(v);
        }
        match &self.endurance {
            None => push(0),
            Some(e) => {
                let (lines_per_region, per_region, per_chip, cells, endurance) = e.to_parts();
                push(1);
                push(lines_per_region);
                push(per_region.len() as u64);
                for v in per_region {
                    push(v);
                }
                push(per_chip.len() as u64);
                for v in per_chip {
                    push(v);
                }
                push(cells);
                push(endurance);
            }
        }
        for (_, v) in self.fault_fields() {
            push(v);
        }
        out
    }

    /// Parses [`Metrics::encode_record`] output. Returns `None` on any
    /// malformed input (wrong token count, non-integer, invariant
    /// violation) — callers treat that as a cache miss, never an error.
    pub fn decode_record(text: &str) -> Option<Metrics> {
        let mut it = text.split_ascii_whitespace().map(|t| t.parse::<u64>().ok());
        let mut next = || it.next().flatten();
        let mut m = Metrics {
            cycles: next()?,
            instructions_per_core: next()?,
            cores: u8::try_from(next()?).ok()?,
            ..Metrics::default()
        };
        m.pcm_reads = next()?;
        m.pcm_writes = next()?;
        m.write_rounds = next()?;
        m.cells_written = next()?;
        m.burst_cycles = next()?;
        m.write_active_cycles = next()?;
        m.write_queue_delay = next()?;
        m.cancellations = next()?;
        m.pauses = next()?;
        m.truncations = next()?;
        m.read_latency_sum = next()?;
        m.scrub_reads = next()?;
        let chips = usize::try_from(next()?).ok()?;
        if chips > 1 << 16 {
            return None; // implausible chip count: refuse the allocation
        }
        m.per_chip_cells = (0..chips).map(|_| next()).collect::<Option<Vec<u64>>>()?;
        let mut power = [0u64; 9];
        for slot in &mut power {
            *slot = next()?;
        }
        m.power = fpb_core::PowerStats::from_raw(power);
        m.endurance = match next()? {
            0 => None,
            1 => {
                let lines_per_region = next()?;
                let regions = usize::try_from(next()?).ok()?;
                if regions > 1 << 24 {
                    return None;
                }
                let per_region = (0..regions).map(|_| next()).collect::<Option<Vec<u64>>>()?;
                let chips = usize::try_from(next()?).ok()?;
                if chips > 1 << 16 {
                    return None;
                }
                let per_chip = (0..chips).map(|_| next()).collect::<Option<Vec<u64>>>()?;
                let cells = next()?;
                let endurance = next()?;
                Some(fpb_pcm::EnduranceTracker::from_parts(
                    lines_per_region,
                    per_region,
                    per_chip,
                    cells,
                    endurance,
                )?)
            }
            _ => return None,
        };
        m.faults = FaultMetrics {
            verify_failures: next()?,
            retries: next()?,
            stuck_lines_marked: next()?,
            remaps: next()?,
            slc_fallbacks: next()?,
            watchdog_trips: next()?,
            brownout_windows: next()?,
            brownout_cycles: next()?,
            degraded_writes: next()?,
            degraded_cycles: next()?,
            audit_violations: next()?,
        };
        if it.next().is_some() {
            return None; // trailing tokens: not a record we wrote
        }
        Some(m)
    }

    /// [`Metrics::to_json`] on one line: same fields, same order, same
    /// integer-only values, `", "`-separated with no indentation and no
    /// `schema` field (the embedding document carries the schema). This
    /// is the form the sweep journal stores verbatim — byte-identical
    /// resume rests on this rendering being a pure function of the
    /// metrics.
    pub fn to_json_inline(&self) -> String {
        let mut s = String::with_capacity(768);
        s.push('{');
        for (k, v) in self.scalar_fields() {
            s.push_str(&format!("\"{k}\": {v}, "));
        }
        self.push_composite_fields(&mut s, ", ", "");
        s.push('}');
        s
    }
}

/// Appends `"key": value` pairs joined by `", "`.
fn push_object_fields(s: &mut String, fields: &[(&str, u64)]) {
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(&format!("\"{k}\": {v}"));
    }
}

/// Renders `s` as a JSON string literal (quotes, backslashes, and
/// control characters escaped) — the one escaper every hand-rendered
/// report in this crate shares.
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Geometric mean of a slice of positive values (the paper reports
/// `gmean` across workloads).
///
/// # Examples
///
/// ```
/// use fpb_sim::metrics::gmean;
/// assert!((gmean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
/// ```
///
/// # Panics
///
/// Panics if `xs` is empty or contains a non-positive value.
pub fn gmean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "gmean of nothing");
    assert!(xs.iter().all(|&x| x > 0.0), "gmean needs positive values");
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn cpi_and_speedup() {
        let base = Metrics {
            cycles: 2_000_000,
            instructions_per_core: 1_000_000,
            ..Metrics::default()
        };
        let fast = Metrics {
            cycles: 1_000_000,
            instructions_per_core: 1_000_000,
            ..Metrics::default()
        };
        assert_eq!(base.cpi(), 2.0);
        assert_eq!(fast.speedup_over(&base), 2.0);
        assert_eq!(base.speedup_over(&base), 1.0);
    }

    #[test]
    fn throughput_counts_active_time_only() {
        let m = Metrics {
            pcm_writes: 100,
            write_active_cycles: 50_000,
            ..Metrics::default()
        };
        assert_eq!(m.write_throughput(), 2.0);
        assert_eq!(Metrics::default().write_throughput(), 0.0);
    }

    #[test]
    fn fractions_and_averages() {
        let m = Metrics {
            cycles: 1000,
            burst_cycles: 520,
            pcm_writes: 10,
            cells_written: 2500,
            ..Metrics::default()
        };
        assert!((m.burst_fraction() - 0.52).abs() < 1e-12);
        assert_eq!(m.avg_cell_changes(), 250.0);
        assert_eq!(Metrics::default().burst_fraction(), 0.0);
        assert_eq!(Metrics::default().avg_cell_changes(), 0.0);
    }

    #[test]
    fn read_latency_and_imbalance() {
        let m = Metrics {
            pcm_reads: 4,
            read_latency_sum: 4400,
            per_chip_cells: vec![10, 10, 20, 0],
            ..Metrics::default()
        };
        assert_eq!(m.avg_read_latency(), 1100.0);
        assert_eq!(m.chip_imbalance(), 2.0);
        assert_eq!(Metrics::default().avg_read_latency(), 0.0);
        assert_eq!(Metrics::default().chip_imbalance(), 0.0);
    }

    #[test]
    fn json_is_deterministic_and_integer_only() {
        let m = Metrics {
            cycles: 123,
            pcm_writes: 7,
            per_chip_cells: vec![1, 2, 3],
            ..Metrics::default()
        };
        let j = m.to_json();
        assert_eq!(j, m.clone().to_json(), "same metrics, same bytes");
        assert!(j.contains("\"schema\": \"fpb-metrics/v1\""));
        assert!(j.contains("\"cycles\": 123"));
        assert!(j.contains("\"per_chip_cells\": [1, 2, 3]"));
        assert!(j.contains("\"endurance_cells\": null"));
        assert!(j.contains("\"gcp_usable_millitokens\": 0"));
        assert!(!j.contains('.'), "integers only, no floats: {j}");
    }

    #[test]
    fn inline_json_matches_multiline_fields() {
        let m = Metrics {
            cycles: 987,
            instructions_per_core: 40,
            pcm_reads: 5,
            per_chip_cells: vec![4, 4, 5],
            ..Metrics::default()
        };
        let inline = m.to_json_inline();
        assert!(!inline.contains('\n'), "must be single-line: {inline}");
        assert!(!inline.contains("schema"), "embedding document owns the schema");
        // Same fields, same order, same values as the multi-line form.
        let multiline = m.to_json();
        let squeezed: String =
            multiline.lines().filter(|l| !l.contains("schema")).map(str::trim).collect::<Vec<_>>().join(" ");
        for field in ["\"cycles\": 987", "\"per_chip_cells\": [4, 4, 5]", "\"endurance_cells\": null"] {
            assert!(inline.contains(field), "missing {field}: {inline}");
            assert!(squeezed.contains(field), "field drifted from to_json: {field}");
        }
        assert_eq!(inline, m.clone().to_json_inline(), "pure function of the metrics");
    }

    #[test]
    fn record_round_trip_is_exact() {
        let mut endurance = fpb_pcm::EnduranceTracker::new(1024, 16, 8, 1_000_000);
        endurance.record_write(fpb_types::LineAddr::new(3), &[10, 0, 4, 0, 0, 0, 0, 2]);
        let m = Metrics {
            cycles: 123_456,
            instructions_per_core: 40_000,
            cores: 8,
            pcm_reads: 77,
            pcm_writes: 55,
            write_rounds: 60,
            cells_written: 9_001,
            burst_cycles: 11,
            write_active_cycles: 22,
            write_queue_delay: 33,
            cancellations: 1,
            pauses: 2,
            truncations: 3,
            read_latency_sum: 44,
            scrub_reads: 5,
            per_chip_cells: vec![1, 2, 3, 4, 5, 6, 7, 8],
            power: PowerStats::from_raw([9, 8, 7, 6, 5, 4_500, 3_250, 2_125, 1_000]),
            endurance: Some(endurance),
            faults: FaultMetrics {
                verify_failures: 9,
                retries: 10,
                audit_violations: 11,
                ..FaultMetrics::default()
            },
        };
        let rec = m.encode_record();
        assert!(rec.bytes().all(|b| b == b' ' || b.is_ascii_digit()));
        assert_eq!(Metrics::decode_record(&rec), Some(m.clone()));
        // The JSON splice the cache feeds must be byte-identical too.
        assert_eq!(
            Metrics::decode_record(&rec).map(|d| d.to_json_inline()),
            Some(m.to_json_inline())
        );
        // Default metrics (no endurance) round-trip as well.
        let d = Metrics::default();
        assert_eq!(Metrics::decode_record(&d.encode_record()), Some(d));
    }

    #[test]
    fn decode_rejects_malformed_records() {
        let rec = Metrics::default().encode_record();
        assert!(Metrics::decode_record("").is_none());
        assert!(Metrics::decode_record("1 2 3").is_none());
        assert!(Metrics::decode_record(&format!("{rec} 7")).is_none(), "trailing tokens");
        assert!(Metrics::decode_record(&rec.replace(' ', " x ")).is_none());
        // Endurance flag other than 0/1 is rejected.
        let m = Metrics { cores: 1, ..Metrics::default() };
        let bad = m.encode_record().replacen(" 0 ", " 2 ", 1);
        let _ = Metrics::decode_record(&bad); // must not panic, whatever it parses to
    }

    #[test]
    fn json_string_escapes() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_string("x\n\t\r"), "\"x\\n\\t\\r\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn gmean_matches_hand_math() {
        assert!((gmean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((gmean(&[3.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "gmean of nothing")]
    fn gmean_empty_panics() {
        let _ = gmean(&[]);
    }
}
