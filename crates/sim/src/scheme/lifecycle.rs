//! The typed write-lifecycle state machine.
//!
//! Every write moves through these stages:
//!
//! ```text
//!                 admit                    pre-read done
//!   Queued ───────────────▶ PreRead ──────────────────────┐
//!     ▲  │ admit (no IPM)                                 ▼
//!     │  └───────────────────────────────────────────▶ Iterating ◀─┐
//!     │ cancel                                        │  │  │  │   │ tokens
//!     └───────────────────────────────────────────────┘  │  │  │   │ granted
//!                                                        │  │  │   │
//!                          read waiting (WP)  Paused ◀───┘  │  └─▶ TokenStalled
//!                                               │           │           │
//!                                               └───────────┼───────────┘
//!                                                           │ round converged
//!                                      worst-case MC        ▼
//!                                  ┌──────────────────── release ─────────┐
//!                                  ▼                        │             │
//!                              Draining ───────────────▶ RoundPending     │
//!                                  │   more rounds          │             │
//!                                  │                        ▼ admit       │
//!                                  │ verify fail        Iterating         │
//!                                  ▼                                      ▼
//!                               Backoff ──▶ Iterating / RoundPending    Done
//! ```
//!
//! The engine's stage modules assert their transitions against
//! [`WriteLifecycle::permitted`] (debug builds only), so a refactor that
//! wires a hook into the wrong boundary fails loudly instead of silently
//! perturbing metrics.

/// A write's position in its lifecycle. Stages map 1:1 onto the engine's
/// bank states (see `BankState::stage`), plus the queue-side stages
/// `Queued` and the terminal `Done`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum WriteStage {
    /// Waiting in the write queue (or re-queued after cancellation).
    Queued,
    /// Performing the bridge chip's comparison read (IPM).
    PreRead,
    /// Programming: an iteration is in flight on the bank.
    Iterating,
    /// At an iteration boundary, waiting for power tokens.
    TokenStalled,
    /// Parked by write pausing so the bank can serve reads.
    Paused,
    /// Between rounds, waiting for the next round's token admission.
    RoundPending,
    /// Backing off after a failed closing verify.
    Backoff,
    /// Converged, but the feedback-less controller holds the bank until
    /// the worst-case bound elapses.
    Draining,
    /// All rounds programmed; the bank is free.
    Done,
}

/// The write-lifecycle transition table.
#[derive(Debug, Clone, Copy)]
pub struct WriteLifecycle;

impl WriteLifecycle {
    /// Whether the engine may move a write from `from` to `to`.
    pub fn permitted(from: WriteStage, to: WriteStage) -> bool {
        use WriteStage::*;
        match from {
            Queued => matches!(to, PreRead | Iterating),
            PreRead => matches!(to, Iterating),
            Iterating => matches!(
                to,
                Iterating
                    | TokenStalled
                    | Paused
                    | RoundPending
                    | Backoff
                    | Draining
                    | Done
                    | Queued
            ),
            TokenStalled => matches!(to, Iterating),
            Paused => matches!(to, Iterating),
            RoundPending => matches!(to, Iterating),
            Backoff => matches!(to, Iterating | RoundPending),
            Draining => matches!(to, RoundPending | Backoff | Done),
            Done => false,
        }
    }

    /// Debug-asserts that `from → to` is a legal transition. Compiled out
    /// of release builds; the transition table is the documentation.
    #[inline]
    pub fn debug_check(from: WriteStage, to: WriteStage) {
        debug_assert!(
            Self::permitted(from, to),
            "illegal write-lifecycle transition {from:?} -> {to:?}"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::WriteStage::*;
    use super::*;

    const ALL: [WriteStage; 9] = [
        Queued,
        PreRead,
        Iterating,
        TokenStalled,
        Paused,
        RoundPending,
        Backoff,
        Draining,
        Done,
    ];

    #[test]
    fn done_is_terminal() {
        for to in ALL {
            assert!(!WriteLifecycle::permitted(Done, to), "Done -> {to:?}");
        }
    }

    #[test]
    fn queued_admits_with_or_without_pre_read() {
        assert!(WriteLifecycle::permitted(Queued, PreRead));
        assert!(WriteLifecycle::permitted(Queued, Iterating));
        assert!(!WriteLifecycle::permitted(Queued, Done));
    }

    #[test]
    fn cancellation_requeues_only_from_iterating() {
        assert!(WriteLifecycle::permitted(Iterating, Queued));
        for from in [PreRead, TokenStalled, Paused, RoundPending, Backoff, Draining] {
            assert!(!WriteLifecycle::permitted(from, Queued), "{from:?} -> Queued");
        }
    }

    #[test]
    fn stalls_resume_into_iterating_only() {
        for from in [TokenStalled, Paused, RoundPending] {
            for to in ALL {
                assert_eq!(
                    WriteLifecycle::permitted(from, to),
                    to == Iterating,
                    "{from:?} -> {to:?}"
                );
            }
        }
    }

    #[test]
    fn draining_releases_without_iterating() {
        assert!(WriteLifecycle::permitted(Draining, Done));
        assert!(WriteLifecycle::permitted(Draining, RoundPending));
        assert!(WriteLifecycle::permitted(Draining, Backoff));
        assert!(!WriteLifecycle::permitted(Draining, Iterating));
    }

    #[test]
    fn every_stage_but_done_has_an_exit() {
        for from in ALL {
            if from == Done {
                continue;
            }
            assert!(
                ALL.iter().any(|&to| WriteLifecycle::permitted(from, to)),
                "{from:?} has no exit"
            );
        }
    }
}
