//! Named scheme setups: everything a run varies besides the workload and
//! the system config, composed from scheme components.

use fpb_core::{ConfigSensitivity, PowerPolicyConfig, SchemeKind};
use fpb_pcm::CellMapping;
use fpb_types::{MlcLevelModel, MlcWriteModel, SystemConfig};

use super::{
    AdmitAction, AdmitCtx, IterationAction, IterationCtx, ReadArrivalAction, ReadArrivalCtx,
    ReleaseAction, ReleaseCtx, Scheme, SchemeError,
};

/// Read-latency add-on component (§6.4.5): what happens to an in-flight
/// write when reads contend for its bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReadBoosts {
    /// Write cancellation (WC): abort a young write so the read proceeds.
    pub cancellation: bool,
    /// Write pausing (WP): park the write at an iteration boundary.
    pub pausing: bool,
}

impl ReadBoosts {
    /// WC hook: cancel only while less than half the round is programmed
    /// (beyond that, finishing is cheaper than redoing).
    pub fn on_read_arrival(&self, ctx: ReadArrivalCtx) -> ReadArrivalAction {
        if self.cancellation && ctx.progress < 0.5 {
            ReadArrivalAction::CancelAtBoundary
        } else {
            ReadArrivalAction::Proceed
        }
    }

    /// WP hook: pause when a read waits on the bank — except during a
    /// write burst, when reads are blocked anyway. The waiting-read scan
    /// only runs when pausing is enabled and the burst check passes.
    pub fn on_iteration(&self, ctx: &IterationCtx<'_>) -> IterationAction {
        if self.pausing && !ctx.in_burst && ctx.bank_has_waiting_read() {
            IterationAction::Pause
        } else {
            IterationAction::Proceed
        }
    }
}

/// Write-shortening component: techniques that end a write's programming
/// early or compress it into fewer iterations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WriteTermination {
    /// Write truncation (WT): ECC-correctable cell count, `None` disables.
    pub truncation_ecc: Option<u32>,
    /// PreSET extension (§7, ref. 22 of the paper): SET pulses are
    /// performed in advance while the line is cached, so the eviction
    /// write needs only a single RESET iteration — much faster, but
    /// demanding full RESET power for every changed cell at once.
    pub preset: bool,
}

impl WriteTermination {
    /// The per-level iteration model this component imposes on the device
    /// model: PreSET collapses every level to one RESET pulse.
    pub fn iteration_model(&self, base: &MlcWriteModel) -> MlcWriteModel {
        if self.preset {
            let one = MlcLevelModel::Fixed(1);
            MlcWriteModel {
                l00: one.clone(),
                l01: one.clone(),
                l10: one.clone(),
                l11: one,
            }
        } else {
            base.clone()
        }
    }
}

/// Memory-controller feedback component: how much the controller learns
/// from the device while a write runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ControllerModel {
    /// Charge the bridge chip's read-before-write (IPM's change
    /// discovery, §3.1).
    pub pre_write_read: bool,
    /// Feedback-less memory controller (§2.1.1): without the on-DIMM
    /// bridge chip, the controller must assume every write takes the
    /// worst-case iteration count — banks and tokens stay held until that
    /// time even when the write converged early.
    pub worst_case_hold: bool,
}

impl ControllerModel {
    /// Admission hook: IPM discovers changes with a comparison read first.
    pub fn on_admit(&self, ctx: AdmitCtx) -> AdmitAction {
        if self.pre_write_read && !ctx.pre_read_done {
            AdmitAction::PreRead
        } else {
            AdmitAction::Program
        }
    }

    /// Release hook: a feedback-less controller holds converged rounds to
    /// the worst-case bound.
    pub fn on_release(&self, _ctx: ReleaseCtx) -> ReleaseAction {
        if self.worst_case_hold {
            ReleaseAction::HoldWorstCase
        } else {
            ReleaseAction::Free
        }
    }
}

/// Intra-line wear-leveling component (the PWL baseline, §2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WearLeveling {
    /// Rotation period in writes; `None` disables leveling.
    pub period: Option<u32>,
}

/// A complete scheme under test: power policy, cell mapping, and the
/// composable components above. Implements [`Scheme`], which is how the
/// engine consumes it — the engine never reads these flags directly.
///
/// # Examples
///
/// ```
/// use fpb_sim::SchemeSetup;
/// use fpb_types::SystemConfig;
///
/// let cfg = SystemConfig::default();
/// let fpb = SchemeSetup::fpb(&cfg);
/// assert!(fpb.policy.ipm);
/// assert_eq!(fpb.label, "FPB");
///
/// let gcp = SchemeSetup::gcp(&cfg, fpb_pcm::CellMapping::Vim, 0.5);
/// assert_eq!(gcp.label, "GCP-VIM-0.5");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SchemeSetup {
    /// Legend label.
    pub label: String,
    /// Power-budgeting policy.
    pub policy: PowerPolicyConfig,
    /// Static cell-to-chip mapping.
    pub mapping: CellMapping,
    /// Intra-line wear leveling.
    pub wear: WearLeveling,
    /// Read-latency add-ons (WC/WP).
    pub boosts: ReadBoosts,
    /// Write-shortening techniques (WT/PreSET).
    pub termination: WriteTermination,
    /// Controller feedback model (IPM pre-read, worst-case hold).
    pub controller: ControllerModel,
}

impl SchemeSetup {
    fn base(label: impl Into<String>, policy: PowerPolicyConfig) -> Self {
        let pre_write_read = policy.ipm;
        SchemeSetup {
            label: label.into(),
            policy,
            mapping: CellMapping::Naive,
            wear: WearLeveling::default(),
            boosts: ReadBoosts::default(),
            termination: WriteTermination::default(),
            controller: ControllerModel {
                pre_write_read,
                worst_case_hold: false,
            },
        }
    }

    /// Unlimited power (the Fig. 4 normalization ceiling).
    pub fn ideal(cfg: &SystemConfig) -> Self {
        Self::base("Ideal", SchemeKind::Ideal.config(&cfg.power, cfg.pcm.chips))
    }

    /// Hay et al. with only the DIMM budget.
    pub fn dimm_only(cfg: &SystemConfig) -> Self {
        Self::base(
            "DIMM-only",
            SchemeKind::DimmOnly.config(&cfg.power, cfg.pcm.chips),
        )
    }

    /// Hay et al. with DIMM and chip budgets (the paper's baseline).
    pub fn dimm_chip(cfg: &SystemConfig) -> Self {
        Self::base(
            "DIMM+chip",
            SchemeKind::DimmChip.config(&cfg.power, cfg.pcm.chips),
        )
    }

    /// `DIMM+chip` plus near-perfect intra-line wear leveling (PWL, §2.2).
    pub fn pwl(cfg: &SystemConfig) -> Self {
        SchemeSetup {
            label: "PWL".into(),
            wear: WearLeveling { period: Some(8) },
            ..Self::dimm_chip(cfg)
        }
    }

    /// `DIMM+chip` with the chip budget scaled by `scale` (1.5 or 2.0).
    pub fn scaled_local(cfg: &SystemConfig, scale: f64) -> Self {
        let mut policy = SchemeKind::DimmChip.config(&cfg.power, cfg.pcm.chips);
        policy.chip_budget_scale = scale;
        Self::base(format!("{scale}xlocal"), policy)
    }

    /// FPB-GCP with a given cell mapping and GCP efficiency (no IPM).
    pub fn gcp(cfg: &SystemConfig, mapping: CellMapping, e_gcp: f64) -> Self {
        let mut policy = SchemeKind::Gcp.config(&cfg.power, cfg.pcm.chips);
        if let Some(g) = policy.gcp.as_mut() {
            g.e_gcp = e_gcp;
        }
        SchemeSetup {
            mapping,
            ..Self::base(format!("GCP-{}-{}", mapping.label(), e_gcp), policy)
        }
    }

    /// FPB-GCP + FPB-IPM (default BIM at the config's `E_GCP`).
    pub fn gcp_ipm(cfg: &SystemConfig) -> Self {
        let policy = SchemeKind::GcpIpm.config(&cfg.power, cfg.pcm.chips);
        SchemeSetup {
            mapping: CellMapping::Bim,
            ..Self::base("GCP+IPM", policy)
        }
    }

    /// The full FPB scheme: GCP (BIM) + IPM + Multi-RESET(3).
    pub fn fpb(cfg: &SystemConfig) -> Self {
        let policy = SchemeKind::Fpb.config(&cfg.power, cfg.pcm.chips);
        SchemeSetup {
            mapping: CellMapping::Bim,
            ..Self::base("FPB", policy)
        }
    }

    /// FPB with a custom Multi-RESET split limit (Fig. 17).
    pub fn fpb_with_splits(cfg: &SystemConfig, splits: u8) -> Self {
        let mut s = Self::fpb(cfg);
        s.policy.multi_reset_splits = splits;
        s.label = format!("IPM+MR{splits}");
        s
    }

    /// Adds write cancellation.
    #[must_use]
    pub fn with_wc(mut self) -> Self {
        self.boosts.cancellation = true;
        self.label.push_str("+WC");
        self
    }

    /// Adds write pausing.
    #[must_use]
    pub fn with_wp(mut self) -> Self {
        self.boosts.pausing = true;
        self.label.push_str("+WP");
        self
    }

    /// Adds write truncation with `ecc` correctable cells per line.
    #[must_use]
    pub fn with_wt(mut self, ecc: u32) -> Self {
        self.termination.truncation_ecc = Some(ecc);
        self.label.push_str("+WT");
        self
    }

    /// Overrides the cell mapping.
    #[must_use]
    pub fn with_mapping(mut self, mapping: CellMapping) -> Self {
        self.mapping = mapping;
        self
    }

    /// Enables the PreSET write mode (§7): single-RESET writes.
    #[must_use]
    pub fn with_preset(mut self) -> Self {
        self.termination.preset = true;
        self.label.push_str("+PreSET");
        self
    }

    /// Models a feedback-less controller that assumes worst-case write
    /// latency (the design §2.1.1 argues against).
    #[must_use]
    pub fn with_worst_case_mc(mut self) -> Self {
        self.controller.worst_case_hold = true;
        self.label.push_str("+worstcaseMC");
        self
    }

    /// Enables per-chip GCP output regulation (§4.2's design alternative).
    ///
    /// # Errors
    ///
    /// Returns [`SchemeError::MissingGcp`] if the scheme has no GCP.
    pub fn with_gcp_regulation(mut self) -> Result<Self, SchemeError> {
        match self.policy.gcp.as_mut() {
            Some(g) => {
                g.per_chip_regulation = true;
                self.label.push_str("+reg");
                Ok(self)
            }
            None => Err(SchemeError::MissingGcp("per-chip regulation")),
        }
    }
}

impl Scheme for SchemeSetup {
    fn label(&self) -> &str {
        &self.label
    }

    fn policy(&self) -> &PowerPolicyConfig {
        &self.policy
    }

    fn map_line(&self) -> CellMapping {
        self.mapping
    }

    fn wear_period(&self) -> Option<u32> {
        self.wear.period
    }

    fn truncation_ecc(&self) -> Option<u32> {
        self.termination.truncation_ecc
    }

    fn iteration_model(&self, base: &MlcWriteModel) -> MlcWriteModel {
        self.termination.iteration_model(base)
    }

    fn validate(&self) -> Result<(), SchemeError> {
        self.policy
            .validate()
            .map_err(|e| SchemeError::Invalid(format!("{}: {e}", self.label)))?;
        if self.wear.period == Some(0) {
            return Err(SchemeError::Invalid(format!(
                "{}: wear-leveling period must be nonzero",
                self.label
            )));
        }
        Ok(())
    }

    fn on_admit(&self, ctx: AdmitCtx) -> AdmitAction {
        self.controller.on_admit(ctx)
    }

    fn on_iteration(&self, ctx: &IterationCtx<'_>) -> IterationAction {
        self.boosts.on_iteration(ctx)
    }

    fn on_read_arrival(&self, ctx: ReadArrivalCtx) -> ReadArrivalAction {
        self.boosts.on_read_arrival(ctx)
    }

    fn on_release(&self, ctx: ReleaseCtx) -> ReleaseAction {
        self.controller.on_release(ctx)
    }

    /// `SystemConfig::power` reaches a composed setup only through the
    /// `SchemeKind::*.config(&cfg.power, …)` call that built
    /// [`SchemeSetup::policy`] (plus the label strings derived from the
    /// same knobs); the engine itself consumes the policy, never the raw
    /// power section. Since the whole built setup — policy, label and
    /// all — is part of the dedup key, declaring the power section
    /// absorbed is sound for every registry family, all of which are
    /// `SchemeSetup` compositions.
    fn sensitivity(&self) -> ConfigSensitivity {
        ConfigSensitivity::PolicyAbsorbed
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn cfg() -> SystemConfig {
        SystemConfig::default()
    }

    #[test]
    fn labels_match_paper_legends() {
        let c = cfg();
        assert_eq!(SchemeSetup::ideal(&c).label, "Ideal");
        assert_eq!(SchemeSetup::dimm_only(&c).label, "DIMM-only");
        assert_eq!(SchemeSetup::dimm_chip(&c).label, "DIMM+chip");
        assert_eq!(SchemeSetup::scaled_local(&c, 2.0).label, "2xlocal");
        assert_eq!(
            SchemeSetup::gcp(&c, CellMapping::Naive, 0.95).label,
            "GCP-NE-0.95"
        );
        assert_eq!(SchemeSetup::fpb_with_splits(&c, 4).label, "IPM+MR4");
        assert_eq!(
            SchemeSetup::fpb(&c).with_wc().with_wp().with_wt(8).label,
            "FPB+WC+WP+WT"
        );
    }

    #[test]
    fn pre_read_tracks_ipm() {
        let c = cfg();
        assert!(!SchemeSetup::dimm_chip(&c).controller.pre_write_read);
        assert!(!SchemeSetup::gcp(&c, CellMapping::Bim, 0.7).controller.pre_write_read);
        assert!(SchemeSetup::gcp_ipm(&c).controller.pre_write_read);
        assert!(SchemeSetup::fpb(&c).controller.pre_write_read);
    }

    #[test]
    fn gcp_efficiency_propagates() {
        let c = cfg();
        let s = SchemeSetup::gcp(&c, CellMapping::Vim, 0.5);
        assert_eq!(s.policy.gcp.unwrap().e_gcp, 0.5);
        assert_eq!(s.mapping, CellMapping::Vim);
    }

    #[test]
    fn pwl_enables_wear_leveling_only() {
        let c = cfg();
        let s = SchemeSetup::pwl(&c);
        assert_eq!(s.wear.period, Some(8));
        assert!(s.policy.enforce_chip_budget);
        assert!(!s.policy.ipm);
    }

    #[test]
    fn preset_and_regulation_toggles() {
        let c = cfg();
        let s = SchemeSetup::fpb(&c).with_preset();
        assert!(s.termination.preset);
        assert!(s.label.ends_with("+PreSET"));
        let s = SchemeSetup::fpb(&c).with_gcp_regulation().unwrap();
        assert!(s.policy.gcp.unwrap().per_chip_regulation);
        assert!(s.label.ends_with("+reg"));
    }

    #[test]
    fn regulation_without_gcp_is_an_error() {
        let c = cfg();
        let err = SchemeSetup::dimm_chip(&c).with_gcp_regulation().unwrap_err();
        assert_eq!(err, SchemeError::MissingGcp("per-chip regulation"));
        assert!(err.to_string().contains("needs a GCP"));
    }

    #[test]
    fn all_setups_validate() {
        let c = cfg();
        for s in [
            SchemeSetup::ideal(&c),
            SchemeSetup::dimm_only(&c),
            SchemeSetup::dimm_chip(&c),
            SchemeSetup::pwl(&c),
            SchemeSetup::scaled_local(&c, 1.5),
            SchemeSetup::gcp(&c, CellMapping::Bim, 0.7),
            SchemeSetup::gcp_ipm(&c),
            SchemeSetup::fpb(&c),
            SchemeSetup::fpb(&c).with_wc().with_wp().with_wt(8),
        ] {
            s.validate().unwrap_or_else(|e| panic!("{}: {e}", s.label));
        }
    }

    #[test]
    fn hooks_mirror_components() {
        let c = cfg();
        let plain = SchemeSetup::dimm_chip(&c);
        assert_eq!(
            plain.on_admit(AdmitCtx {
                pre_read_done: false
            }),
            AdmitAction::Program
        );
        assert_eq!(
            plain.on_read_arrival(ReadArrivalCtx { progress: 0.0 }),
            ReadArrivalAction::Proceed
        );

        let fpb = SchemeSetup::fpb(&c).with_wc();
        assert_eq!(
            fpb.on_admit(AdmitCtx {
                pre_read_done: false
            }),
            AdmitAction::PreRead
        );
        assert_eq!(
            fpb.on_admit(AdmitCtx {
                pre_read_done: true
            }),
            AdmitAction::Program
        );
        assert_eq!(
            fpb.on_read_arrival(ReadArrivalCtx { progress: 0.25 }),
            ReadArrivalAction::CancelAtBoundary
        );
        assert_eq!(
            fpb.on_read_arrival(ReadArrivalCtx { progress: 0.75 }),
            ReadArrivalAction::Proceed
        );

        let wc = SchemeSetup::dimm_chip(&c).with_worst_case_mc();
        let ctx = ReleaseCtx {
            now: fpb_types::Cycles::ZERO,
            round_started_at: fpb_types::Cycles::ZERO,
        };
        assert_eq!(wc.on_release(ctx), ReleaseAction::HoldWorstCase);
        assert_eq!(plain.on_release(ctx), ReleaseAction::Free);
    }

    #[test]
    fn setups_declare_policy_absorbed_sensitivity() {
        let c = cfg();
        for s in [
            SchemeSetup::ideal(&c),
            SchemeSetup::dimm_chip(&c),
            SchemeSetup::fpb(&c).with_wc().with_wp().with_wt(8),
        ] {
            assert_eq!(s.sensitivity(), ConfigSensitivity::PolicyAbsorbed, "{}", s.label);
        }
    }

    #[test]
    fn preset_iteration_model_is_single_pulse() {
        let c = cfg();
        let base = c.pcm.write_model.clone();
        let plain = SchemeSetup::fpb(&c).iteration_model(&base);
        assert_eq!(plain, base);
        let preset = SchemeSetup::fpb(&c).with_preset().iteration_model(&base);
        assert_eq!(preset.l00, MlcLevelModel::Fixed(1));
        assert_eq!(preset.l11, MlcLevelModel::Fixed(1));
    }
}
