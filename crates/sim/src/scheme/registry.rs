//! The scheme registry: the single source of truth mapping spec strings
//! to [`SchemeSetup`]s. The CLI's `--scheme` flag, the sweep driver, the
//! bench matrix and the figure conversions all resolve schemes here, so
//! the name list can never drift between them.

use std::sync::OnceLock;

use fpb_pcm::CellMapping;
use fpb_types::SystemConfig;

use super::spec::{Modifier, SchemeBase, SchemeSpec};
use super::{Scheme, SchemeError, SchemeSetup};

/// One registered scheme family: a canonical (buildable) spec plus its
/// usage form and a one-line summary for `--scheme help`.
#[derive(Debug, Clone, Copy)]
pub struct SchemeEntry {
    /// Canonical spec that builds a representative of the family.
    pub name: &'static str,
    /// Usage form showing optional arguments.
    pub usage: &'static str,
    /// One-line description.
    pub summary: &'static str,
}

const ENTRIES: &[SchemeEntry] = &[
    SchemeEntry {
        name: "ideal",
        usage: "ideal",
        summary: "unlimited power (Fig. 4 ceiling)",
    },
    SchemeEntry {
        name: "dimm-only",
        usage: "dimm-only",
        summary: "Hay et al., DIMM budget only",
    },
    SchemeEntry {
        name: "dimm-chip",
        usage: "dimm-chip",
        summary: "Hay et al., DIMM + chip budgets (the paper's baseline)",
    },
    SchemeEntry {
        name: "pwl",
        usage: "pwl",
        summary: "DIMM+chip with near-perfect intra-line wear leveling",
    },
    SchemeEntry {
        name: "1.5xlocal",
        usage: "<scale>xlocal",
        summary: "DIMM+chip with the chip budget scaled by <scale>",
    },
    SchemeEntry {
        name: "2xlocal",
        usage: "<scale>xlocal",
        summary: "DIMM+chip with the chip budget doubled",
    },
    SchemeEntry {
        name: "gcp",
        usage: "gcp[:MAPPING[:E_GCP]]",
        summary: "FPB-GCP (defaults: BIM, the config's E_GCP)",
    },
    SchemeEntry {
        name: "gcp-ipm",
        usage: "gcp-ipm",
        summary: "FPB-GCP + FPB-IPM",
    },
    SchemeEntry {
        name: "fpb",
        usage: "fpb",
        summary: "the full FPB scheme: GCP (BIM) + IPM + Multi-RESET",
    },
    SchemeEntry {
        name: "fpb-mr:3",
        usage: "fpb-mr:<splits>",
        summary: "FPB with a custom Multi-RESET split limit (Fig. 17)",
    },
];

/// Every scheme the paper's figures compare, by canonical spec. The
/// registry smoke suite builds, validates and runs each of these.
const PAPER_FIGURE_SPECS: &[&str] = &[
    // Fig. 4 / Fig. 13 baselines.
    "ideal",
    "dimm-only",
    "dimm-chip",
    "pwl",
    "1.5xlocal",
    "2xlocal",
    // GCP across mappings and efficiencies (Figs. 11/12/15/16).
    "gcp:ne:0.5",
    "gcp:vim:0.5",
    "gcp:bim:0.5",
    "gcp:ne:0.95",
    "gcp-ipm",
    // Multi-RESET ablation (Fig. 17).
    "fpb-mr:2",
    "fpb-mr:3",
    "fpb-mr:4",
    // FPB and its read-latency / extension ablations (Figs. 18/21, §6.4.5, §7).
    "fpb",
    "fpb+wc",
    "fpb+wc+wp",
    "fpb+wc+wp+wt8",
    "fpb+preset",
    "gcp+reg",
    "dimm-chip+worstcase",
];

/// Parses scheme specs and builds [`SchemeSetup`]s (see the
/// [module docs](self)).
///
/// # Examples
///
/// ```
/// use fpb_sim::scheme::SchemeRegistry;
/// use fpb_types::SystemConfig;
///
/// let cfg = SystemConfig::default();
/// let reg = SchemeRegistry::standard();
/// let s = reg.build("fpb+wc+wt8", &cfg).unwrap();
/// assert_eq!(s.label, "FPB+WC+WT");
/// assert!(reg.build("warp-drive", &cfg).is_err());
/// ```
#[derive(Debug)]
pub struct SchemeRegistry {
    entries: &'static [SchemeEntry],
    paper_figures: &'static [&'static str],
}

impl SchemeRegistry {
    /// The process-wide standard registry.
    pub fn standard() -> &'static SchemeRegistry {
        static REG: OnceLock<SchemeRegistry> = OnceLock::new();
        REG.get_or_init(|| SchemeRegistry {
            entries: ENTRIES,
            paper_figures: PAPER_FIGURE_SPECS,
        })
    }

    /// The registered scheme families.
    pub fn entries(&self) -> &[SchemeEntry] {
        self.entries
    }

    /// Canonical names of the registered families (each buildable as-is).
    pub fn names(&self) -> Vec<&'static str> {
        self.entries.iter().map(|e| e.name).collect()
    }

    /// Canonical specs of every scheme the paper's figures compare.
    pub fn paper_figure_specs(&self) -> &[&'static str] {
        self.paper_figures
    }

    /// Builds the scheme named by `spec` against `cfg`, validating the
    /// result.
    ///
    /// # Errors
    ///
    /// Returns a [`SchemeError`] for an unknown or malformed spec, a
    /// modifier that does not apply (e.g. `+reg` without a GCP), or a
    /// composition that fails [`Scheme::validate`].
    pub fn build(&self, spec: &str, cfg: &SystemConfig) -> Result<SchemeSetup, SchemeError> {
        self.build_spec(&SchemeSpec::parse(spec)?, cfg)
    }

    /// Builds an already-parsed spec against `cfg` (the registry's single
    /// authoritative base-scheme dispatch).
    ///
    /// # Errors
    ///
    /// See [`SchemeRegistry::build`].
    pub fn build_spec(
        &self,
        spec: &SchemeSpec,
        cfg: &SystemConfig,
    ) -> Result<SchemeSetup, SchemeError> {
        let mut s = match &spec.base {
            SchemeBase::Ideal => SchemeSetup::ideal(cfg),
            SchemeBase::DimmOnly => SchemeSetup::dimm_only(cfg),
            SchemeBase::DimmChip => SchemeSetup::dimm_chip(cfg),
            SchemeBase::Pwl => SchemeSetup::pwl(cfg),
            SchemeBase::Local { scale } => SchemeSetup::scaled_local(cfg, *scale),
            SchemeBase::Gcp { mapping, e_gcp } => SchemeSetup::gcp(
                cfg,
                mapping.unwrap_or(CellMapping::Bim),
                e_gcp.unwrap_or(cfg.power.e_gcp),
            ),
            SchemeBase::GcpIpm => SchemeSetup::gcp_ipm(cfg),
            SchemeBase::Fpb => SchemeSetup::fpb(cfg),
            SchemeBase::FpbMr { splits } => SchemeSetup::fpb_with_splits(cfg, *splits),
        };
        for m in &spec.mods {
            s = match m {
                Modifier::Wc => s.with_wc(),
                Modifier::Wp => s.with_wp(),
                Modifier::Wt(ecc) => s.with_wt(*ecc),
                Modifier::Preset => s.with_preset(),
                Modifier::WorstCase => s.with_worst_case_mc(),
                Modifier::Regulation => s.with_gcp_regulation()?,
                Modifier::Mapping(m) => s.with_mapping(*m),
            };
        }
        s.validate()?;
        Ok(s)
    }

    /// Human-readable listing of the grammar and registered schemes, for
    /// `fpb run --scheme help`.
    pub fn help(&self) -> String {
        let mut out = String::from(
            "Scheme specs: BASE[:ARG...][+MOD...]  (case-insensitive)\n\nBases:\n",
        );
        let width = self
            .entries
            .iter()
            .map(|e| e.usage.len())
            .max()
            .unwrap_or(0);
        let mut seen_usage: Vec<&str> = Vec::new();
        for e in self.entries {
            if seen_usage.contains(&e.usage) {
                continue;
            }
            seen_usage.push(e.usage);
            out.push_str(&format!("  {:width$}  {}\n", e.usage, e.summary));
        }
        out.push_str(
            "\nModifiers:\n  \
             wc          write cancellation\n  \
             wp          write pausing\n  \
             wt<N>       write truncation, N ECC-correctable cells (e.g. wt8)\n  \
             preset      PreSET single-RESET writes\n  \
             worstcase   feedback-less worst-case controller\n  \
             reg         per-chip GCP output regulation (needs a GCP)\n  \
             ne|vim|bim  cell-mapping override\n\n\
             Examples: fpb+wc+wt8   gcp:vim:0.5   dimm-chip+worstcase   2xlocal\n",
        );
        out
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn cfg() -> SystemConfig {
        SystemConfig::default()
    }

    #[test]
    fn every_registered_name_builds_and_validates() {
        let reg = SchemeRegistry::standard();
        for name in reg.names() {
            let s = reg.build(name, &cfg()).unwrap_or_else(|e| panic!("{name}: {e}"));
            s.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(!s.label.is_empty());
        }
    }

    #[test]
    fn spec_builds_match_constructors() {
        let c = cfg();
        let reg = SchemeRegistry::standard();
        assert_eq!(reg.build("fpb", &c).unwrap(), SchemeSetup::fpb(&c));
        assert_eq!(reg.build("ideal", &c).unwrap(), SchemeSetup::ideal(&c));
        assert_eq!(reg.build("pwl", &c).unwrap(), SchemeSetup::pwl(&c));
        assert_eq!(
            reg.build("2xlocal", &c).unwrap(),
            SchemeSetup::scaled_local(&c, 2.0)
        );
        assert_eq!(
            reg.build("gcp:vim:0.5", &c).unwrap(),
            SchemeSetup::gcp(&c, CellMapping::Vim, 0.5)
        );
        assert_eq!(
            reg.build("gcp", &c).unwrap(),
            SchemeSetup::gcp(&c, CellMapping::Bim, c.power.e_gcp)
        );
        assert_eq!(
            reg.build("fpb-mr:4", &c).unwrap(),
            SchemeSetup::fpb_with_splits(&c, 4)
        );
        assert_eq!(
            reg.build("fpb+wc+wp+wt8", &c).unwrap(),
            SchemeSetup::fpb(&c).with_wc().with_wp().with_wt(8)
        );
        assert_eq!(
            reg.build("dimm-chip+worstcase", &c).unwrap(),
            SchemeSetup::dimm_chip(&c).with_worst_case_mc()
        );
    }

    #[test]
    fn regulation_requires_gcp() {
        let reg = SchemeRegistry::standard();
        assert_eq!(
            reg.build("dimm-chip+reg", &cfg()).unwrap_err(),
            SchemeError::MissingGcp("per-chip regulation")
        );
        assert!(reg.build("gcp+reg", &cfg()).is_ok());
    }

    #[test]
    fn unknown_scheme_is_reported_with_help_pointer() {
        let err = SchemeRegistry::standard()
            .build("warp-drive", &cfg())
            .unwrap_err();
        assert!(err.to_string().contains("warp-drive"));
    }

    #[test]
    fn help_mentions_every_family_and_modifier() {
        let help = SchemeRegistry::standard().help();
        for needle in ["fpb", "gcp[:MAPPING[:E_GCP]]", "wt<N>", "worstcase", "reg"] {
            assert!(help.contains(needle), "help missing `{needle}`:\n{help}");
        }
    }

    #[test]
    fn paper_figure_specs_all_build() {
        let reg = SchemeRegistry::standard();
        let mut labels = Vec::new();
        for spec in reg.paper_figure_specs() {
            let s = reg.build(spec, &cfg()).unwrap_or_else(|e| panic!("{spec}: {e}"));
            labels.push(s.label.clone());
        }
        // The figure legends the paper uses must all be constructible.
        for legend in ["Ideal", "DIMM+chip", "PWL", "GCP-NE-0.5", "IPM+MR4", "FPB+WC+WP+WT"] {
            assert!(labels.iter().any(|l| l == legend), "missing {legend}: {labels:?}");
        }
    }
}
