//! Scheme-as-plugin layer: every paper figure compares *schemes* (Ideal,
//! DIMM-only, DIMM+chip, PWL, GCP-{NE,VIM,BIM}, IPM+MRm, FPB±WC/WP/WT/
//! PreSET), and this module is where a scheme lives as a first-class
//! object instead of a bag of flags the engine re-interprets.
//!
//! The pieces:
//!
//! - [`Scheme`]: the trait the engine drives. Construction accessors
//!   (`policy`, `map_line`, `wear_period`, …) shape the system at build
//!   time; lifecycle hooks ([`Scheme::on_admit`], [`Scheme::on_iteration`],
//!   [`Scheme::on_read_arrival`], [`Scheme::on_release`]) are consulted at
//!   the [`WriteStage`] boundaries of every write.
//! - [`SchemeSetup`]: the standard implementation — a composition of
//!   [`setup::ReadBoosts`], [`setup::WriteTermination`],
//!   [`setup::ControllerModel`] and [`setup::WearLeveling`] components
//!   around a power policy and a cell mapping.
//! - [`SchemeSpec`]: the parsed form of spec strings such as
//!   `"fpb+wc+wt8"` or `"gcp:vim:0.5"`.
//! - [`SchemeRegistry`]: parses specs, builds [`SchemeSetup`]s, and
//!   enumerates every paper-figure scheme by name.
//! - [`WriteLifecycle`]: the typed write-lifecycle state machine the
//!   engine's stage modules are checked against.

pub mod lifecycle;
pub mod registry;
pub mod setup;
pub mod spec;

use std::collections::VecDeque;
use std::fmt;

use fpb_core::{ConfigSensitivity, PowerPolicyConfig};
use fpb_pcm::CellMapping;
use fpb_types::{Cycles, MlcWriteModel};

use crate::request::ReadTask;

pub use lifecycle::{WriteLifecycle, WriteStage};
pub use registry::{SchemeEntry, SchemeRegistry};
pub use setup::{ControllerModel, ReadBoosts, SchemeSetup, WearLeveling, WriteTermination};
pub use spec::{Modifier, SchemeBase, SchemeSpec};

/// Error produced while parsing a scheme spec, composing a scheme, or
/// validating one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemeError {
    /// The spec string does not name a registered scheme.
    UnknownScheme(String),
    /// The spec string is malformed (bad argument or modifier).
    BadSpec(String),
    /// A modifier needs a GCP but the scheme's policy has none.
    MissingGcp(&'static str),
    /// The composed scheme fails validation.
    Invalid(String),
}

impl fmt::Display for SchemeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemeError::UnknownScheme(s) => {
                write!(f, "unknown scheme `{s}` (see `fpb run --scheme help`)")
            }
            SchemeError::BadSpec(s) => write!(f, "bad scheme spec: {s}"),
            SchemeError::MissingGcp(what) => write!(f, "{what} needs a GCP"),
            SchemeError::Invalid(s) => write!(f, "invalid scheme: {s}"),
        }
    }
}

impl std::error::Error for SchemeError {}

/// What to do with a write the controller just admitted to a bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitAction {
    /// Charge the bridge chip's comparison read first (IPM's change
    /// discovery, §3.1); programming starts when it completes.
    PreRead,
    /// Start programming immediately.
    Program,
}

/// What to do at an iteration boundary of an in-flight write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IterationAction {
    /// Keep iterating (subject to token admission).
    Proceed,
    /// Park the write so the bank can serve reads (write pausing).
    Pause,
}

/// What to do with an in-flight write when a read arrives for its bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadArrivalAction {
    /// Let the write keep its bank.
    Proceed,
    /// Cancel the write at the next iteration boundary and re-queue it
    /// (write cancellation).
    CancelAtBoundary,
}

/// What to do with the bank and tokens of a round that just converged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReleaseAction {
    /// Free the bank and tokens immediately (feedback-aware controller).
    Free,
    /// Hold them until the worst-case P&V bound elapses — the
    /// feedback-less controller of §2.1.1 cannot observe early
    /// convergence.
    HoldWorstCase,
}

/// Context for [`Scheme::on_admit`].
#[derive(Debug, Clone, Copy)]
pub struct AdmitCtx {
    /// Whether this task already performed its comparison read (a write
    /// re-admitted after cancellation keeps its discovered change set).
    pub pre_read_done: bool,
}

/// Context for [`Scheme::on_read_arrival`].
#[derive(Debug, Clone, Copy)]
pub struct ReadArrivalCtx {
    /// Fraction of the in-flight round already programmed (0.0 during the
    /// pre-read).
    pub progress: f64,
}

/// Context for [`Scheme::on_release`].
#[derive(Debug, Clone, Copy)]
pub struct ReleaseCtx {
    /// Current simulation time.
    pub now: Cycles,
    /// When the converged round was admitted.
    pub round_started_at: Cycles,
}

/// Context for [`Scheme::on_iteration`]. Queue inspection is lazy: the
/// engine only pays for the bank scan when a hook actually calls
/// [`IterationCtx::bank_has_waiting_read`].
#[derive(Debug)]
pub struct IterationCtx<'a> {
    /// Bank holding the write.
    pub bank: usize,
    /// Whether the controller is in write-burst mode (reads are blocked,
    /// so yielding the bank to them is pointless).
    pub in_burst: bool,
    rdq: &'a VecDeque<ReadTask>,
    pending_reads: &'a VecDeque<ReadTask>,
}

impl<'a> IterationCtx<'a> {
    pub(crate) fn new(
        bank: usize,
        in_burst: bool,
        rdq: &'a VecDeque<ReadTask>,
        pending_reads: &'a VecDeque<ReadTask>,
    ) -> Self {
        IterationCtx {
            bank,
            in_burst,
            rdq,
            pending_reads,
        }
    }

    /// Whether any queued or blocked read targets this write's bank.
    pub fn bank_has_waiting_read(&self) -> bool {
        self.rdq.iter().any(|r| r.bank.index() == self.bank)
            || self
                .pending_reads
                .iter()
                .any(|r| r.bank.index() == self.bank)
    }
}

/// A power-budgeting scheme, as the engine sees it.
///
/// Construction accessors shape the [`crate::System`] at build time
/// (which power policy, cell mapping, iteration model and wear leveler to
/// instantiate); the `on_*` lifecycle hooks are consulted at every
/// [`WriteStage`] boundary, replacing the flag checks the engine core
/// used to hard-code. The default hook bodies describe the plain
/// feedback-aware controller: program immediately, never pause, never
/// cancel, free the bank as soon as the device reports convergence.
///
/// [`SchemeSetup`] is the standard implementation; the trait exists so
/// new schemes (content-aware placement, write-energy encodings, …) can
/// plug into the engine without editing its stage modules.
pub trait Scheme: fmt::Debug {
    /// Figure-legend label.
    fn label(&self) -> &str;

    /// Power-budgeting policy used to build the [`fpb_core::PowerManager`].
    fn policy(&self) -> &PowerPolicyConfig;

    /// Static cell-to-chip mapping used for round splitting and chip
    /// accounting.
    fn map_line(&self) -> CellMapping;

    /// Intra-line wear-leveling shift period (`None` disables it).
    fn wear_period(&self) -> Option<u32> {
        None
    }

    /// Write-truncation ECC budget: correctable cells per line, `None`
    /// disables truncation.
    fn truncation_ecc(&self) -> Option<u32> {
        None
    }

    /// Per-level iteration model, derived from the device's base model
    /// (PreSET replaces it with single-RESET programming).
    fn iteration_model(&self, base: &MlcWriteModel) -> MlcWriteModel {
        base.clone()
    }

    /// Checks the scheme for internal consistency.
    fn validate(&self) -> Result<(), SchemeError>;

    /// Which slice of the raw `SystemConfig` can reach this scheme's
    /// simulation results — the declaration the sweep's semantic dedup
    /// keys on (see [`fpb_core::projection`]).
    ///
    /// The default is the conservative
    /// [`ConfigSensitivity::FullConfig`]: every config field is assumed
    /// to matter, each sweep point is its own equivalence class, and
    /// dedup never shares a run. Override only when the tighter claim is
    /// provable; [`SchemeSetup`] declares
    /// [`ConfigSensitivity::PolicyAbsorbed`] because the engine consumes
    /// the power section exclusively through the policy built here at
    /// setup time, and that built state joins the dedup key alongside
    /// the projected config.
    fn sensitivity(&self) -> ConfigSensitivity {
        ConfigSensitivity::FullConfig
    }

    /// Called when the controller admits a write to a bank.
    fn on_admit(&self, ctx: AdmitCtx) -> AdmitAction {
        let _ = ctx;
        AdmitAction::Program
    }

    /// Called at every iteration boundary of an incomplete round, before
    /// token re-admission.
    fn on_iteration(&self, ctx: &IterationCtx<'_>) -> IterationAction {
        let _ = ctx;
        IterationAction::Proceed
    }

    /// Called when a read arrives for a bank holding an in-flight write.
    fn on_read_arrival(&self, ctx: ReadArrivalCtx) -> ReadArrivalAction {
        let _ = ctx;
        ReadArrivalAction::Proceed
    }

    /// Called when a round converges, deciding whether the bank and its
    /// tokens are freed immediately or held to the worst-case bound.
    fn on_release(&self, ctx: ReleaseCtx) -> ReleaseAction {
        let _ = ctx;
        ReleaseAction::Free
    }
}
