//! Scheme spec strings: the textual form of a scheme.
//!
//! Grammar (case-insensitive):
//!
//! ```text
//! spec     := base (":" arg)* ("+" modifier)*
//! base     := ideal | dimm-only | dimm-chip | pwl | <scale>xlocal
//!           | gcp[:mapping[:e_gcp]] | gcp-ipm | fpb | fpb-mr:<splits>
//! modifier := wc | wp | wt<ecc> | preset | worstcase | reg
//!           | ne | vim | bim
//! ```
//!
//! Examples: `fpb`, `fpb+wc+wt8`, `gcp:vim:0.5`, `fpb-mr:4`,
//! `dimm-chip+worstcase`, `gcp+reg`, `1.5xlocal`.
//!
//! [`SchemeSpec::render`] produces the canonical string; parsing a
//! rendered spec yields the identical spec (and hence the identical
//! [`super::SchemeSetup`] — the round-trip property the registry tests
//! enforce).

use std::fmt;
use std::str::FromStr;

use fpb_pcm::CellMapping;

use super::SchemeError;

/// The base scheme a spec starts from (the paper's named schemes).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SchemeBase {
    /// Unlimited power.
    Ideal,
    /// Hay et al., DIMM budget only.
    DimmOnly,
    /// Hay et al., DIMM and chip budgets.
    DimmChip,
    /// DIMM+chip with near-perfect intra-line wear leveling.
    Pwl,
    /// DIMM+chip with the chip budget scaled (`1.5xlocal`, `2xlocal`).
    Local {
        /// Chip-budget scale factor.
        scale: f64,
    },
    /// FPB-GCP; defaults to BIM at the config's `E_GCP` when the
    /// arguments are omitted.
    Gcp {
        /// Cell mapping (`None` = BIM).
        mapping: Option<CellMapping>,
        /// GCP efficiency (`None` = the system config's `E_GCP`).
        e_gcp: Option<f64>,
    },
    /// FPB-GCP + FPB-IPM.
    GcpIpm,
    /// The full FPB scheme.
    Fpb,
    /// FPB with a custom Multi-RESET split limit.
    FpbMr {
        /// Maximum RESET splits per round.
        splits: u8,
    },
}

/// A `+modifier` applied on top of a base scheme.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Modifier {
    /// Write cancellation.
    Wc,
    /// Write pausing.
    Wp,
    /// Write truncation with this many ECC-correctable cells.
    Wt(u32),
    /// PreSET single-RESET writes.
    Preset,
    /// Feedback-less worst-case controller.
    WorstCase,
    /// Per-chip GCP output regulation.
    Regulation,
    /// Cell-mapping override.
    Mapping(CellMapping),
}

impl Modifier {
    fn render(&self) -> String {
        match self {
            Modifier::Wc => "wc".into(),
            Modifier::Wp => "wp".into(),
            Modifier::Wt(ecc) => format!("wt{ecc}"),
            Modifier::Preset => "preset".into(),
            Modifier::WorstCase => "worstcase".into(),
            Modifier::Regulation => "reg".into(),
            Modifier::Mapping(m) => m.label().to_ascii_lowercase(),
        }
    }
}

/// A parsed scheme spec: a base plus ordered modifiers.
#[derive(Debug, Clone, PartialEq)]
pub struct SchemeSpec {
    /// The base scheme.
    pub base: SchemeBase,
    /// Modifiers, in application (and label) order.
    pub mods: Vec<Modifier>,
}

fn parse_float(s: &str, what: &str) -> Result<f64, SchemeError> {
    let v: f64 = s
        .parse()
        .map_err(|_| SchemeError::BadSpec(format!("{what} `{s}` is not a number")))?;
    if !v.is_finite() || v <= 0.0 {
        return Err(SchemeError::BadSpec(format!(
            "{what} `{s}` must be positive and finite"
        )));
    }
    Ok(v)
}

fn parse_base(token: &str) -> Result<SchemeBase, SchemeError> {
    let mut parts = token.split(':');
    let name = parts.next().unwrap_or_default();
    let args: Vec<&str> = parts.collect();
    let no_args = |base: SchemeBase| {
        if args.is_empty() {
            Ok(base)
        } else {
            Err(SchemeError::BadSpec(format!(
                "scheme `{name}` takes no `:` arguments"
            )))
        }
    };
    match name {
        "ideal" => no_args(SchemeBase::Ideal),
        "dimm-only" => no_args(SchemeBase::DimmOnly),
        "dimm-chip" => no_args(SchemeBase::DimmChip),
        "pwl" => no_args(SchemeBase::Pwl),
        "gcp-ipm" => no_args(SchemeBase::GcpIpm),
        "fpb" => no_args(SchemeBase::Fpb),
        "gcp" => {
            if args.len() > 2 {
                return Err(SchemeError::BadSpec(
                    "gcp takes at most `gcp:MAPPING:E_GCP`".into(),
                ));
            }
            let mapping = match args.first() {
                None => None,
                Some(m) => Some(CellMapping::from_str(m).map_err(|e| {
                    SchemeError::BadSpec(e.to_string())
                })?),
            };
            let e_gcp = match args.get(1) {
                None => None,
                Some(e) => {
                    let v = parse_float(e, "gcp efficiency")?;
                    if v > 1.0 {
                        return Err(SchemeError::BadSpec(format!(
                            "gcp efficiency `{e}` must be in (0, 1]"
                        )));
                    }
                    Some(v)
                }
            };
            Ok(SchemeBase::Gcp { mapping, e_gcp })
        }
        "fpb-mr" => {
            let [splits] = args.as_slice() else {
                return Err(SchemeError::BadSpec(
                    "fpb-mr needs a split count: `fpb-mr:N`".into(),
                ));
            };
            let splits: u8 = splits.parse().map_err(|_| {
                SchemeError::BadSpec(format!("fpb-mr split count `{splits}` is not a u8"))
            })?;
            if splits == 0 {
                return Err(SchemeError::BadSpec(
                    "fpb-mr split count must be at least 1".into(),
                ));
            }
            Ok(SchemeBase::FpbMr { splits })
        }
        other => {
            // `<scale>xlocal`, e.g. `1.5xlocal` / `2xlocal`.
            if let Some(prefix) = other.strip_suffix("xlocal") {
                if args.is_empty() {
                    let scale = parse_float(prefix, "local budget scale")?;
                    return Ok(SchemeBase::Local { scale });
                }
            }
            Err(SchemeError::UnknownScheme(other.to_string()))
        }
    }
}

fn parse_modifier(token: &str) -> Result<Modifier, SchemeError> {
    match token {
        "wc" => Ok(Modifier::Wc),
        "wp" => Ok(Modifier::Wp),
        "preset" => Ok(Modifier::Preset),
        "worstcase" => Ok(Modifier::WorstCase),
        "reg" => Ok(Modifier::Regulation),
        "ne" | "naive" => Ok(Modifier::Mapping(CellMapping::Naive)),
        "vim" => Ok(Modifier::Mapping(CellMapping::Vim)),
        "bim" => Ok(Modifier::Mapping(CellMapping::Bim)),
        _ => {
            if let Some(digits) = token.strip_prefix("wt") {
                let ecc: u32 = digits.parse().map_err(|_| {
                    SchemeError::BadSpec(format!("wt needs a cell count, got `{token}`"))
                })?;
                return Ok(Modifier::Wt(ecc));
            }
            Err(SchemeError::BadSpec(format!("unknown modifier `{token}`")))
        }
    }
}

impl SchemeSpec {
    /// Parses a spec string (case-insensitive; see the module grammar).
    ///
    /// # Errors
    ///
    /// Returns [`SchemeError::UnknownScheme`] for an unknown base and
    /// [`SchemeError::BadSpec`] for malformed arguments or modifiers.
    pub fn parse(spec: &str) -> Result<Self, SchemeError> {
        let spec = spec.trim().to_ascii_lowercase();
        let mut parts = spec.split('+');
        let base_token = parts.next().unwrap_or_default();
        if base_token.is_empty() {
            return Err(SchemeError::BadSpec("empty scheme spec".into()));
        }
        let base = parse_base(base_token)?;
        let mods = parts.map(parse_modifier).collect::<Result<Vec<_>, _>>()?;
        Ok(SchemeSpec { base, mods })
    }

    /// Canonical spec string: `parse(render())` yields an identical spec.
    pub fn render(&self) -> String {
        let mut out = match &self.base {
            SchemeBase::Ideal => "ideal".to_string(),
            SchemeBase::DimmOnly => "dimm-only".to_string(),
            SchemeBase::DimmChip => "dimm-chip".to_string(),
            SchemeBase::Pwl => "pwl".to_string(),
            SchemeBase::Local { scale } => format!("{scale}xlocal"),
            SchemeBase::Gcp { mapping, e_gcp } => {
                let mut s = "gcp".to_string();
                match (mapping, e_gcp) {
                    (None, None) => {}
                    (Some(m), None) => {
                        s.push(':');
                        s.push_str(&m.label().to_ascii_lowercase());
                    }
                    (m, Some(e)) => {
                        // An efficiency without a mapping renders the
                        // default mapping explicitly so the arg slots
                        // stay positional.
                        let m = m.unwrap_or(CellMapping::Bim);
                        s.push(':');
                        s.push_str(&m.label().to_ascii_lowercase());
                        s.push_str(&format!(":{e}"));
                    }
                }
                s
            }
            SchemeBase::GcpIpm => "gcp-ipm".to_string(),
            SchemeBase::Fpb => "fpb".to_string(),
            SchemeBase::FpbMr { splits } => format!("fpb-mr:{splits}"),
        };
        for m in &self.mods {
            out.push('+');
            out.push_str(&m.render());
        }
        out
    }
}

impl fmt::Display for SchemeSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

impl FromStr for SchemeSpec {
    type Err = SchemeError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        SchemeSpec::parse(s)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn parses_bases_and_modifiers() {
        let s = SchemeSpec::parse("fpb+wc+wt8").unwrap();
        assert_eq!(s.base, SchemeBase::Fpb);
        assert_eq!(s.mods, vec![Modifier::Wc, Modifier::Wt(8)]);

        let s = SchemeSpec::parse("gcp:vim:0.5").unwrap();
        assert_eq!(
            s.base,
            SchemeBase::Gcp {
                mapping: Some(CellMapping::Vim),
                e_gcp: Some(0.5)
            }
        );

        let s = SchemeSpec::parse("1.5xlocal").unwrap();
        assert_eq!(s.base, SchemeBase::Local { scale: 1.5 });

        let s = SchemeSpec::parse("fpb-mr:4").unwrap();
        assert_eq!(s.base, SchemeBase::FpbMr { splits: 4 });
    }

    #[test]
    fn parse_is_case_insensitive_and_trims() {
        assert_eq!(
            SchemeSpec::parse(" FPB+WC ").unwrap(),
            SchemeSpec::parse("fpb+wc").unwrap()
        );
        assert_eq!(
            SchemeSpec::parse("GCP:VIM").unwrap(),
            SchemeSpec::parse("gcp:vim").unwrap()
        );
    }

    #[test]
    fn rejects_malformed_specs() {
        assert!(matches!(
            SchemeSpec::parse("warp-drive"),
            Err(SchemeError::UnknownScheme(_))
        ));
        for bad in [
            "",
            "fpb+warp",
            "fpb+wt",
            "fpb+wtx",
            "gcp:diagonal",
            "gcp:vim:1.5",
            "gcp:vim:0.5:extra",
            "fpb-mr",
            "fpb-mr:0",
            "fpb-mr:999",
            "ideal:5",
            "0xlocal",
            "NaNxlocal",
        ] {
            assert!(SchemeSpec::parse(bad).is_err(), "`{bad}` should not parse");
        }
    }

    #[test]
    fn render_round_trips() {
        for spec in [
            "ideal",
            "dimm-chip+worstcase",
            "pwl",
            "1.5xlocal",
            "2xlocal",
            "gcp",
            "gcp:ne",
            "gcp:vim:0.5",
            "gcp+reg",
            "gcp-ipm",
            "fpb",
            "fpb-mr:4",
            "fpb+wc+wp+wt8",
            "fpb+preset",
            "fpb+ne",
        ] {
            let parsed = SchemeSpec::parse(spec).unwrap();
            let rendered = parsed.render();
            assert_eq!(rendered, spec, "canonical spec should render unchanged");
            assert_eq!(SchemeSpec::parse(&rendered).unwrap(), parsed);
        }
    }

    #[test]
    fn efficiency_without_mapping_renders_positionally() {
        let spec = SchemeSpec {
            base: SchemeBase::Gcp {
                mapping: None,
                e_gcp: Some(0.7),
            },
            mods: vec![],
        };
        let rendered = spec.render();
        assert_eq!(rendered, "gcp:bim:0.7");
        // Not spec-identical (the mapping became explicit) but
        // scheme-identical: BIM is the gcp default.
        let reparsed = SchemeSpec::parse(&rendered).unwrap();
        assert_eq!(
            reparsed.base,
            SchemeBase::Gcp {
                mapping: Some(CellMapping::Bim),
                e_gcp: Some(0.7)
            }
        );
    }
}
