//! Cycle-driven MLC PCM memory-subsystem simulator.
//!
//! Ties the substrates together into the paper's evaluation platform
//! (Figure 1): 8 in-order cores replay workload traces closed-loop through
//! private DRAM LLCs into a memory controller with read/write queues,
//! read-first + write-burst scheduling, and an 8-bank / 8-chip MLC PCM
//! DIMM whose writes are budgeted by an [`fpb_core::PowerManager`].
//!
//! * [`request`] — read/write tasks, multi-round splitting of oversized
//!   writes (§3.2's multi-round fallback).
//! * [`bank`] — per-bank state machines (reading, write iterations,
//!   stalls, pauses).
//! * [`frontend`] — per-core trace replay + LLC.
//! * [`scheme`] — the [`Scheme`] plugin trait, the composable
//!   [`SchemeSetup`], the spec grammar, and the [`SchemeRegistry`]
//!   resolving spec strings for every figure.
//! * [`engine`] — the event loop, split into lifecycle stage modules.
//! * [`inspect`] — the event-sourced lifecycle log: typed
//!   [`inspect::LifecycleEvent`]s emitted through an [`inspect::EventSink`],
//!   the durable recorder, and the record/replay time-travel debugger
//!   behind `fpb inspect`.
//! * [`metrics`] — CPI, write throughput, burst residency, power stats.
//! * [`exec`] — the worker pool fanning independent runs across threads.
//! * [`supervise`] — the fault-tolerant layer over [`exec`]: panic
//!   isolation, bounded retry, deadlines, quarantine, cancellation.
//! * [`journal`] — the durable fsync'd checkpoint log behind
//!   `fpb sweep --journal/--resume`.
//! * [`resultcache`] — the persistent point-result cache
//!   (`target/fpb-sweep-cache.v1`) that warm-starts repeated sweeps.
//! * [`bench`] — the fixed self-measuring benchmark behind `fpb bench`.
//!
//! # Examples
//!
//! ```
//! use fpb_sim::{run_workload, SchemeSetup, SimOptions};
//! use fpb_trace::catalog;
//! use fpb_types::SystemConfig;
//!
//! let cfg = SystemConfig::default();
//! let wl = catalog::workload("cop_m").unwrap();
//! let opts = SimOptions::with_instructions(40_000);
//! let m = run_workload(&wl, &cfg, &SchemeSetup::ideal(&cfg), &opts);
//! assert!(m.cycles > 0);
//! ```

// clippy::unwrap_used comes from [workspace.lints]; unwraps in tests are
// fine, only hot-path code must justify them.
#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod bank;
pub mod bench;
pub mod engine;
pub mod exec;
pub mod frontend;
pub mod inspect;
pub mod journal;
pub mod metrics;
pub mod report;
pub mod request;
pub mod resultcache;
pub mod scheme;
pub mod supervise;
pub mod sweep;
pub mod timeline;

pub use bench::{
    required_speedup, run_fixed_bench, run_fixed_bench_repeats, run_hotpath_bench, BenchReport,
    CacheRace, EfficiencyGate, HotpathReport, SkippedRung, LINE_WRITE_FLOOR,
};
pub use engine::{run_workload, run_workload_recorded, try_run_workload, SimArena, SimOptions, System};
pub use inspect::{EventSink, LifecycleEvent, MemorySink, NullSink};
pub use exec::{
    default_jobs, effective_workers, parallel_map_arena, parallel_map_indexed, schedule_by_cost,
    try_parallel_map_arena, try_parallel_map_indexed, WorkerPanic,
};
pub use journal::{JournalError, JournalHeader, JournalWriter};
pub use metrics::{FaultMetrics, Metrics};
pub use request::{ReadTask, WriteTask};
pub use resultcache::{ResultCache, DEFAULT_CACHE_PATH};
pub use scheme::{Scheme, SchemeError, SchemeRegistry, SchemeSetup};
pub use supervise::{CancelToken, JobOutcome, SupervisePolicy, SuperviseReport};
pub use timeline::{RenderError, Timeline};
