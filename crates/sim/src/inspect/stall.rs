//! Stall attribution: where writes spent time *not* programming.
//!
//! Replays the `Stage` transitions of a recorded stream and charges
//! every interval a write spent in a waiting stage to that stage:
//! token starvation, scheme pauses, verify-failure backoff, awaiting
//! round re-admission, and worst-case draining. The result answers the
//! question a power-budgeting paper keeps asking — *which* budget
//! mechanism is serializing the writes.

use std::collections::BTreeMap;
use std::fmt;

use crate::scheme::WriteStage;

use super::event::LifecycleEvent;

/// A waiting stage a write can be charged for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum StallKind {
    /// Power tokens refused at an iteration boundary or round admission.
    TokenStalled,
    /// Scheme pause hook yielded the bank to reads.
    Paused,
    /// Verify-failure recovery backoff.
    Backoff,
    /// Between rounds, waiting for re-admission.
    RoundPending,
    /// Feedback-less worst-case hold after early completion.
    Draining,
}

impl StallKind {
    /// All kinds, in display order.
    pub const ALL: [StallKind; 5] = [
        StallKind::TokenStalled,
        StallKind::Paused,
        StallKind::Backoff,
        StallKind::RoundPending,
        StallKind::Draining,
    ];

    /// The waiting stage this kind charges, if `stage` is a waiting
    /// stage at all.
    pub fn from_stage(stage: WriteStage) -> Option<StallKind> {
        Some(match stage {
            WriteStage::TokenStalled => StallKind::TokenStalled,
            WriteStage::Paused => StallKind::Paused,
            WriteStage::Backoff => StallKind::Backoff,
            WriteStage::RoundPending => StallKind::RoundPending,
            WriteStage::Draining => StallKind::Draining,
            _ => return None,
        })
    }

    /// Stable display label.
    pub fn label(self) -> &'static str {
        match self {
            StallKind::TokenStalled => "token-stalled",
            StallKind::Paused => "paused",
            StallKind::Backoff => "backoff",
            StallKind::RoundPending => "round-pending",
            StallKind::Draining => "draining",
        }
    }
}

impl fmt::Display for StallKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Per-kind and per-write stall totals over one recorded stream.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StallReport {
    /// `(kind, episodes, total cycles)` for every kind, display order.
    pub by_kind: Vec<(StallKind, u64, u64)>,
    /// `(write id, total stalled cycles)` sorted by cycles descending
    /// (id ascending on ties, for determinism).
    pub by_write: Vec<(u64, u64)>,
}

impl StallReport {
    /// Replays `events` and attributes every waiting interval.
    ///
    /// An interval opens when a `Stage` transition enters a waiting
    /// stage and closes when the same write transitions out of it; a
    /// write still waiting when the stream ends is charged nothing for
    /// the open interval (the stream holds no later timestamp to close
    /// it against).
    pub fn analyze(events: &[LifecycleEvent]) -> StallReport {
        let mut open: BTreeMap<(u64, WriteStage), u64> = BTreeMap::new();
        let mut kind_totals: BTreeMap<StallKind, (u64, u64)> = BTreeMap::new();
        let mut write_totals: BTreeMap<u64, u64> = BTreeMap::new();
        for ev in events {
            let LifecycleEvent::Stage { id, at, from, to, .. } = ev else {
                continue;
            };
            if let Some(kind) = StallKind::from_stage(*from) {
                if let Some(since) = open.remove(&(*id, *from)) {
                    let dur = at.saturating_sub(since);
                    let slot = kind_totals.entry(kind).or_insert((0, 0));
                    slot.0 += 1;
                    slot.1 += dur;
                    *write_totals.entry(*id).or_insert(0) += dur;
                }
            }
            if StallKind::from_stage(*to).is_some() {
                open.insert((*id, *to), *at);
            }
        }
        let by_kind = StallKind::ALL
            .iter()
            .map(|&k| {
                let (n, cyc) = kind_totals.get(&k).copied().unwrap_or((0, 0));
                (k, n, cyc)
            })
            .collect();
        let mut by_write: Vec<(u64, u64)> = write_totals.into_iter().collect();
        by_write.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        StallReport { by_kind, by_write }
    }

    /// Total stalled cycles across all kinds.
    pub fn total_cycles(&self) -> u64 {
        self.by_kind.iter().map(|&(_, _, c)| c).sum()
    }

    /// Renders the report as fixed-order text: one line per kind, then
    /// the `top` worst writes.
    pub fn render(&self, top: usize) -> String {
        let mut out = String::new();
        out.push_str("stall attribution (cycles writes spent waiting):\n");
        for &(kind, episodes, cycles) in &self.by_kind {
            out.push_str(&format!(
                "  {:<14} {episodes:>8} episode(s) {cycles:>12} cycle(s)\n",
                kind.label()
            ));
        }
        out.push_str(&format!("  {:<14} {:>31} cycle(s)\n", "total", self.total_cycles()));
        if top > 0 && !self.by_write.is_empty() {
            out.push_str("worst writes:\n");
            for &(id, cycles) in self.by_write.iter().take(top) {
                out.push_str(&format!("  write #{id:<10} {cycles:>12} cycle(s)\n"));
            }
        }
        out
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn st(id: u64, at: u64, from: WriteStage, to: WriteStage) -> LifecycleEvent {
        LifecycleEvent::Stage { id, bank: 0, at, from, to }
    }

    #[test]
    fn charges_waiting_intervals_to_their_kind() {
        use WriteStage::*;
        let evs = vec![
            st(1, 10, Iterating, TokenStalled),
            st(1, 50, TokenStalled, Iterating), // 40 cycles starved
            st(2, 20, Iterating, Paused),
            st(2, 90, Paused, Iterating), // 70 cycles paused
            st(1, 100, Iterating, TokenStalled), // still open at stream end
        ];
        let r = StallReport::analyze(&evs);
        let find = |k: StallKind| r.by_kind.iter().find(|e| e.0 == k).copied().unwrap();
        assert_eq!(find(StallKind::TokenStalled), (StallKind::TokenStalled, 1, 40));
        assert_eq!(find(StallKind::Paused), (StallKind::Paused, 1, 70));
        assert_eq!(find(StallKind::Backoff), (StallKind::Backoff, 0, 0));
        assert_eq!(r.total_cycles(), 110);
        assert_eq!(r.by_write, vec![(2, 70), (1, 40)]);
    }

    #[test]
    fn render_is_deterministic_and_bounded() {
        use WriteStage::*;
        let evs = vec![
            st(5, 0, Iterating, Draining),
            st(5, 30, Draining, RoundPending),
            st(5, 45, RoundPending, Iterating),
        ];
        let r = StallReport::analyze(&evs);
        let text = r.render(1);
        assert_eq!(text, r.render(1));
        assert!(text.contains("draining"));
        assert!(text.contains("write #5"));
        // top = 0 omits the per-write section.
        assert!(!r.render(0).contains("worst writes"));
    }
}
