//! Per-write lineage: one write's complete story, extracted from a
//! recorded stream.
//!
//! Every event carries enough identity ([`LifecycleEvent::write_id`])
//! to slice the global stream down to a single write: creation,
//! coalescing, admission attempts, every stage transition, every power
//! grant and refusal, round closes, faults, and recovery. That slice —
//! the lineage — is what `fpb inspect lineage --write N` prints.

use std::fmt;

use super::event::LifecycleEvent;

/// One write's event trace, in stream order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lineage {
    /// The write this lineage describes.
    pub id: u64,
    /// `(stream index, event)` for every event concerning the write.
    pub events: Vec<(usize, LifecycleEvent)>,
}

impl Lineage {
    /// Slices `events` down to write `id`.
    pub fn of(events: &[LifecycleEvent], id: u64) -> Lineage {
        let events = events
            .iter()
            .enumerate()
            .filter(|(_, ev)| ev.write_id() == Some(id))
            .map(|(i, ev)| (i, ev.clone()))
            .collect();
        Lineage { id, events }
    }

    /// True if the stream never mentions the write.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Simulation time of the write's first appearance.
    pub fn created_at(&self) -> Option<u64> {
        self.events.iter().find_map(|(_, ev)| ev.at())
    }

    /// Simulation time of the write's last appearance.
    pub fn last_at(&self) -> Option<u64> {
        self.events.iter().rev().find_map(|(_, ev)| ev.at())
    }

    /// Rounds this write closed within the stream.
    pub fn rounds_closed(&self) -> usize {
        self.events
            .iter()
            .filter(|(_, ev)| matches!(ev, LifecycleEvent::RoundClosed { .. }))
            .count()
    }

    /// True if the write ran to completion inside the stream.
    pub fn completed(&self) -> bool {
        self.events.iter().any(|(_, ev)| {
            matches!(ev, LifecycleEvent::RoundClosed { final_round: true, .. })
        })
    }

    /// Renders the lineage: a one-line summary, then one indexed line
    /// per event.
    pub fn lines(&self) -> Vec<String> {
        let mut out = Vec::with_capacity(self.events.len() + 1);
        out.push(self.to_string());
        for (idx, ev) in &self.events {
            out.push(format!("  [{idx}] {ev}"));
        }
        out
    }
}

impl fmt::Display for Lineage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "write #{}: not present in this stream", self.id);
        }
        write!(
            f,
            "write #{}: {} event(s), cycles {}..{}, {} round(s) closed{}",
            self.id,
            self.events.len(),
            self.created_at().unwrap_or(0),
            self.last_at().unwrap_or(0),
            self.rounds_closed(),
            if self.completed() { ", completed" } else { ", in flight at stream end" }
        )
    }
}

/// Convenience: [`Lineage::of`] + [`Lineage::lines`] in one call — the
/// CLI's whole `lineage` verb.
pub fn lineage_lines(events: &[LifecycleEvent], id: u64) -> Vec<String> {
    Lineage::of(events, id).lines()
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::scheme::WriteStage;

    fn stream() -> Vec<LifecycleEvent> {
        vec![
            LifecycleEvent::WriteCreated {
                id: 3,
                line: 40,
                bank: 1,
                at: 5,
                rounds: 1,
                degraded: false,
            },
            LifecycleEvent::BrownoutStart { at: 6 }, // not write 3's
            LifecycleEvent::Stage {
                id: 3,
                bank: 1,
                at: 7,
                from: WriteStage::Queued,
                to: WriteStage::Iterating,
            },
            LifecycleEvent::WatchdogTripped { id: 9, bank: 0, at: 8 }, // different write
            LifecycleEvent::RoundClosed {
                id: 3,
                line: 40,
                bank: 1,
                at: 20,
                cells: 64,
                truncated: false,
                final_round: true,
                per_chip: vec![64],
            },
        ]
    }

    #[test]
    fn slices_one_write_with_stream_indices() {
        let l = Lineage::of(&stream(), 3);
        assert_eq!(l.events.len(), 3);
        assert_eq!(l.events[0].0, 0);
        assert_eq!(l.events[1].0, 2);
        assert_eq!(l.events[2].0, 4);
        assert_eq!(l.created_at(), Some(5));
        assert_eq!(l.last_at(), Some(20));
        assert_eq!(l.rounds_closed(), 1);
        assert!(l.completed());
        let lines = l.lines();
        assert_eq!(lines.len(), 4, "summary + 3 events");
        assert!(lines[0].contains("write #3"), "{}", lines[0]);
        assert!(lines[0].contains("completed"));
        assert!(lines[1].starts_with("  [0] "));
    }

    #[test]
    fn absent_write_renders_gracefully() {
        let l = Lineage::of(&stream(), 77);
        assert!(l.is_empty());
        assert!(!l.completed());
        let lines = lineage_lines(&stream(), 77);
        assert_eq!(lines.len(), 1);
        assert!(lines[0].contains("not present"));
    }
}
