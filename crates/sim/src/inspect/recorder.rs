//! The durable `fpbi1` event log: where a recorded run lives on disk.
//!
//! Same discipline as the sweep journal ([`crate::journal`]): a text
//! file of CRC-framed single-line records, append-only, fsync'd in
//! batches, refusing to clobber, tolerant of a torn tail. The format:
//!
//! ```text
//! fpbi1 <crc32-8hex> h <fingerprint-16hex> <meta…>
//! fpbi1 <crc32-8hex> e <seq> <event-wire-form…>
//! fpbi1 <crc32-8hex> z <count>
//! ```
//!
//! The header binds the log to one run description (`meta`, typically
//! `workload scheme instructions seed`); each `e` line carries one
//! [`LifecycleEvent`] in its exact wire form with a strictly increasing
//! sequence number; the `z` trailer marks a clean close. A log without
//! its trailer (crash mid-record) is still readable — every CRC-valid
//! prefix replays — but reports `complete = false` so callers that need
//! the whole run (`--require-complete`) can refuse it.
//!
//! Unlike the journal's per-line fsync (sweep points are minutes of
//! work), events are microseconds of work, so the writer batches:
//! appends buffer in memory and hit the disk every
//! [`EventLogWriter::SYNC_BATCH`] events and at close.

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read as _, Write as _};
use std::path::{Path, PathBuf};

use crate::journal::{crc32, fingerprint64};

use super::event::LifecycleEvent;
use super::EventSink;

/// Magic tag opening every event-log line; bump the digit on any format
/// change so old readers fail loudly instead of misparsing.
pub const EVENT_LOG_MAGIC: &str = "fpbi1";

/// Why an event log could not be created, written, or read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InspectError {
    /// An underlying filesystem operation failed.
    Io {
        /// Operation being attempted (e.g. `create`, `append`, `fsync`).
        op: &'static str,
        /// Path involved.
        path: PathBuf,
        /// Rendered OS error.
        detail: String,
    },
    /// `create` refuses to clobber an existing file.
    AlreadyExists(PathBuf),
    /// The file has no valid header line (empty, corrupt from byte 0, or
    /// not an event log at all).
    MissingHeader(PathBuf),
    /// The log has no clean-close trailer (or the trailer count
    /// disagrees) and the caller demanded a complete run.
    Incomplete {
        /// The offending log.
        path: PathBuf,
        /// Events recovered before the tail.
        events: usize,
    },
    /// Header meta must be single-line (the log is line-framed).
    EmbeddedNewline,
}

impl fmt::Display for InspectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InspectError::Io { op, path, detail } => {
                write!(f, "event log {op} failed for {}: {detail}", path.display())
            }
            InspectError::AlreadyExists(p) => write!(
                f,
                "event log {} already exists (delete it explicitly to re-record)",
                p.display()
            ),
            InspectError::MissingHeader(p) => {
                write!(f, "{} is not an event log (no valid header line)", p.display())
            }
            InspectError::Incomplete { path, events } => write!(
                f,
                "event log {} is incomplete: {events} event(s) recovered but no clean-close \
                 trailer (the recording run was killed mid-write)",
                path.display()
            ),
            InspectError::EmbeddedNewline => {
                write!(f, "event log meta must not contain newlines")
            }
        }
    }
}

impl std::error::Error for InspectError {}

fn io_err(op: &'static str, path: &Path, e: &std::io::Error) -> InspectError {
    InspectError::Io { op, path: path.to_path_buf(), detail: e.to_string() }
}

/// Renders one framed line (with trailing newline) for `body`.
fn frame(body: &str) -> String {
    format!("{EVENT_LOG_MAGIC} {:08x} {body}\n", crc32(body.as_bytes()))
}

/// Parses one complete line (no trailing newline); `None` if the frame
/// or checksum is invalid (tail damage).
fn unframe(line: &str) -> Option<&str> {
    let rest = line.strip_prefix(EVENT_LOG_MAGIC)?.strip_prefix(' ')?;
    let (crc_hex, body) = rest.split_at_checked(8)?;
    let body = body.strip_prefix(' ')?;
    let crc = u32::from_str_radix(crc_hex, 16).ok()?;
    (crc == crc32(body.as_bytes())).then_some(body)
}

/// An open event log accepting batched appends.
#[derive(Debug)]
pub struct EventLogWriter {
    file: File,
    path: PathBuf,
    seq: u64,
    buf: String,
    pending: u64,
}

impl EventLogWriter {
    /// Events buffered between fsyncs. Large enough to amortize the
    /// sync, small enough that a crash loses under a millisecond of
    /// simulated history.
    pub const SYNC_BATCH: u64 = 1024;

    /// Creates a fresh log (refusing to clobber), writes and syncs the
    /// header — plus a best-effort sync of the parent directory so the
    /// *name* survives a crash too. The header fingerprint is
    /// [`fingerprint64`] of `meta`.
    ///
    /// # Errors
    ///
    /// [`InspectError::AlreadyExists`] if the path exists,
    /// [`InspectError::EmbeddedNewline`] for a multi-line meta, or
    /// [`InspectError::Io`] for filesystem failures.
    pub fn create(path: &Path, meta: &str) -> Result<EventLogWriter, InspectError> {
        if meta.contains('\n') {
            return Err(InspectError::EmbeddedNewline);
        }
        let mut opts = OpenOptions::new();
        opts.write(true).create_new(true);
        let file = opts.open(path).map_err(|e| {
            if e.kind() == std::io::ErrorKind::AlreadyExists {
                InspectError::AlreadyExists(path.to_path_buf())
            } else {
                io_err("create", path, &e)
            }
        })?;
        let mut w = EventLogWriter {
            file,
            path: path.to_path_buf(),
            seq: 0,
            buf: String::new(),
            pending: 0,
        };
        w.buf.push_str(&frame(&format!("h {:016x} {meta}", fingerprint64(meta))));
        w.flush_sync()?;
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            if let Ok(d) = File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(w)
    }

    /// Appends one event (buffered; synced every
    /// [`EventLogWriter::SYNC_BATCH`] events).
    ///
    /// # Errors
    ///
    /// [`InspectError::Io`] if the batched flush fails.
    pub fn append(&mut self, ev: &LifecycleEvent) -> Result<(), InspectError> {
        self.buf.push_str(&frame(&format!("e {} {}", self.seq, ev.encode())));
        self.seq += 1;
        self.pending += 1;
        if self.pending >= Self::SYNC_BATCH {
            self.flush_sync()?;
        }
        Ok(())
    }

    /// Events appended so far.
    pub fn events_written(&self) -> u64 {
        self.seq
    }

    /// Writes the clean-close trailer and syncs everything; when this
    /// returns `Ok`, the log replays completely after any subsequent
    /// kill. Returns the event count.
    ///
    /// # Errors
    ///
    /// [`InspectError::Io`] if the final write or sync fails.
    pub fn finish(mut self) -> Result<u64, InspectError> {
        self.buf.push_str(&frame(&format!("z {}", self.seq)));
        self.flush_sync()?;
        Ok(self.seq)
    }

    fn flush_sync(&mut self) -> Result<(), InspectError> {
        self.file
            .write_all(self.buf.as_bytes())
            .and_then(|()| self.file.flush())
            .map_err(|e| io_err("append", &self.path, &e))?;
        self.buf.clear();
        self.pending = 0;
        self.file.sync_data().map_err(|e| io_err("fsync", &self.path, &e))
    }
}

/// Everything recovered from reading an event log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventLog {
    /// The header's free-form run description.
    pub meta: String,
    /// [`fingerprint64`] of `meta`, as stored (a reader sanity check).
    pub fingerprint: u64,
    /// Valid events in sequence order.
    pub events: Vec<LifecycleEvent>,
    /// True iff the clean-close trailer was found and its count matches.
    pub complete: bool,
    /// Complete-but-invalid lines dropped at the tail (plus one for an
    /// unterminated trailing fragment, if any).
    pub dropped_lines: usize,
}

/// Reads and validates an event log: header first, then events, with
/// the corrupt-tail policy of [`crate::journal`] — reading stops at the
/// first invalid line (bad CRC, bad decode, out-of-order sequence) and
/// everything before it is reported.
///
/// # Errors
///
/// [`InspectError::Io`] if the file cannot be read, or
/// [`InspectError::MissingHeader`] if line one is not a valid header.
pub fn read_event_log(path: &Path) -> Result<EventLog, InspectError> {
    let mut buf = Vec::new();
    File::open(path)
        .and_then(|mut f| f.read_to_end(&mut buf))
        .map_err(|e| io_err("read", path, &e))?;
    let text = String::from_utf8_lossy(&buf);

    let mut lines = Vec::new();
    let mut saw_partial_tail = false;
    for chunk in text.split_inclusive('\n') {
        match chunk.strip_suffix('\n') {
            Some(line) => lines.push(line),
            None => saw_partial_tail = true, // unterminated torn tail
        }
    }

    let mut it = lines.iter();
    let header = it.next().and_then(|l| unframe(l)).and_then(|body| {
        let rest = body.strip_prefix("h ")?;
        let (fp_hex, rest) = rest.split_at_checked(16)?;
        let fingerprint = u64::from_str_radix(fp_hex, 16).ok()?;
        let meta = rest.strip_prefix(' ').unwrap_or("").to_string();
        Some((fingerprint, meta))
    });
    let Some((fingerprint, meta)) = header else {
        return Err(InspectError::MissingHeader(path.to_path_buf()));
    };

    let mut events = Vec::new();
    let mut complete = false;
    let mut dropped = usize::from(saw_partial_tail);
    let mut remaining = it.len();
    for line in it {
        remaining -= 1;
        let parsed = unframe(line).and_then(|body| {
            if let Some(rest) = body.strip_prefix("e ") {
                let (seq, payload) = rest.split_once(' ')?;
                // Sequence numbers are dense from 0: a gap or repeat
                // means the tail belongs to some other write attempt.
                if seq.parse::<u64>().ok()? != events.len() as u64 {
                    return None;
                }
                Some(Some(LifecycleEvent::decode(payload)?))
            } else if let Some(count) = body.strip_prefix("z ") {
                (count.parse::<u64>().ok()? == events.len() as u64).then_some(None)
            } else {
                None
            }
        });
        match parsed {
            Some(Some(ev)) if !complete => events.push(ev),
            Some(None) if !complete => complete = true,
            _ => {
                // First invalid line (or anything after a trailer):
                // everything from here is tail.
                dropped += 1 + remaining;
                break;
            }
        }
    }
    Ok(EventLog { meta, fingerprint, events, complete, dropped_lines: dropped })
}

/// An [`EventSink`] that streams events straight into an
/// [`EventLogWriter`]. The engine's sink contract is infallible, so I/O
/// failures are latched internally: the first error stops further
/// writes and is reported when the caller [`FileSink::finish`]es.
#[derive(Debug)]
pub struct FileSink {
    writer: Option<EventLogWriter>,
    error: Option<InspectError>,
}

impl FileSink {
    /// Opens a fresh log at `path` (see [`EventLogWriter::create`]).
    ///
    /// # Errors
    ///
    /// Propagates [`EventLogWriter::create`] failures.
    pub fn create(path: &Path, meta: &str) -> Result<FileSink, InspectError> {
        Ok(FileSink { writer: Some(EventLogWriter::create(path, meta)?), error: None })
    }

    /// Closes the log cleanly, returning the event count — or the first
    /// error any append hit.
    ///
    /// # Errors
    ///
    /// The first latched append error, or the final flush's failure.
    pub fn finish(self) -> Result<u64, InspectError> {
        if let Some(e) = self.error {
            return Err(e);
        }
        match self.writer {
            Some(w) => w.finish(),
            None => Ok(0),
        }
    }
}

impl EventSink for FileSink {
    fn emit(&mut self, event: LifecycleEvent) {
        if self.error.is_some() {
            return;
        }
        if let Some(w) = self.writer.as_mut() {
            if let Err(e) = w.append(&event) {
                self.error = Some(e);
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("fpb-inspect-recorder-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join(name);
        std::fs::remove_file(&p).ok();
        p
    }

    fn sample_events() -> Vec<LifecycleEvent> {
        vec![
            LifecycleEvent::BrownoutStart { at: 10 },
            LifecycleEvent::StuckMarked { lines: 1, at: 12 },
            LifecycleEvent::BrownoutEnd { at: 20 },
            LifecycleEvent::RunEnd { at: 99 },
        ]
    }

    #[test]
    fn round_trip_create_append_read() {
        let path = tmp("round_trip.fpbi");
        let mut w = EventLogWriter::create(&path, "cop_m fpb 40000 1").unwrap();
        for ev in sample_events() {
            w.append(&ev).unwrap();
        }
        assert_eq!(w.events_written(), 4);
        assert_eq!(w.finish().unwrap(), 4);
        let log = read_event_log(&path).unwrap();
        assert_eq!(log.meta, "cop_m fpb 40000 1");
        assert_eq!(log.fingerprint, fingerprint64("cop_m fpb 40000 1"));
        assert_eq!(log.events, sample_events());
        assert!(log.complete);
        assert_eq!(log.dropped_lines, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn create_refuses_existing_file() {
        let path = tmp("no_clobber.fpbi");
        drop(EventLogWriter::create(&path, "m").unwrap());
        let err = EventLogWriter::create(&path, "m").unwrap_err();
        assert_eq!(err, InspectError::AlreadyExists(path.clone()));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_trailer_reads_incomplete() {
        let path = tmp("no_trailer.fpbi");
        let mut w = EventLogWriter::create(&path, "m").unwrap();
        w.append(&LifecycleEvent::RunEnd { at: 5 }).unwrap();
        // Simulate a kill: flush the batch but never write the trailer.
        w.flush_sync().unwrap();
        drop(w);
        let log = read_event_log(&path).unwrap();
        assert_eq!(log.events.len(), 1);
        assert!(!log.complete);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_dropped_not_fatal() {
        let path = tmp("torn_tail.fpbi");
        let mut w = EventLogWriter::create(&path, "m").unwrap();
        for ev in sample_events() {
            w.append(&ev).unwrap();
        }
        w.finish().unwrap();
        // Corrupt the trailer line: flip a payload byte mid-line.
        let mut bytes = std::fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 2] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let log = read_event_log(&path).unwrap();
        assert_eq!(log.events, sample_events());
        assert!(!log.complete, "trailer was destroyed");
        assert_eq!(log.dropped_lines, 1);
        // Truncate mid-line: unterminated fragment also drops cleanly.
        let cut = n - 10;
        std::fs::write(&path, &bytes[..cut]).unwrap();
        let log = read_event_log(&path).unwrap();
        assert!(!log.complete);
        assert!(log.dropped_lines >= 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn out_of_order_sequence_stops_the_read() {
        let path = tmp("bad_seq.fpbi");
        let mut text = frame(&format!("h {:016x} m", fingerprint64("m")));
        text.push_str(&frame(&format!("e 0 {}", LifecycleEvent::RunEnd { at: 1 }.encode())));
        // Valid CRC, wrong sequence number: belongs to another attempt.
        text.push_str(&frame(&format!("e 7 {}", LifecycleEvent::RunEnd { at: 2 }.encode())));
        std::fs::write(&path, text).unwrap();
        let log = read_event_log(&path).unwrap();
        assert_eq!(log.events.len(), 1);
        assert!(!log.complete);
        assert_eq!(log.dropped_lines, 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn not_a_log_is_a_typed_error() {
        let path = tmp("not_a_log.fpbi");
        std::fs::write(&path, "hello world\n").unwrap();
        assert_eq!(
            read_event_log(&path),
            Err(InspectError::MissingHeader(path.clone()))
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn file_sink_latches_errors_and_finishes() {
        let path = tmp("file_sink.fpbi");
        let mut sink = FileSink::create(&path, "m").unwrap();
        use super::super::EventSink as _;
        sink.emit(LifecycleEvent::RunEnd { at: 3 });
        assert_eq!(sink.finish().unwrap(), 1);
        let log = read_event_log(&path).unwrap();
        assert!(log.complete);
        assert_eq!(log.events.len(), 1);
        std::fs::remove_file(&path).ok();
    }
}
