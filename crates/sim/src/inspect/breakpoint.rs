//! Halt predicates over a replayed event stream (`fpb inspect break`).
//!
//! A breakpoint is parsed from a small expression grammar and checked
//! against every event in replay order; the first match halts the
//! cursor. Stateful predicates are supported — `token-stalled>N` has to
//! remember when each write *entered* the stalled stage to measure how
//! long it sat there.
//!
//! Grammar (case-insensitive):
//!
//! ```text
//! degraded            first write created in degraded (SLC) mode
//! brownout            first brownout window start
//! verify-fail         first injected verify failure
//! cancelled           first write cancellation
//! watchdog            first watchdog force-close
//! truncated           first truncated write round
//! stage:<name>        first transition into a stage (paused, token-stalled,
//!                     backoff, draining, …; two-letter wire codes work too)
//! write:<id>          first event concerning write <id>
//! token-stalled><N>   first write that sat token-starved more than N cycles
//! ```

use std::collections::BTreeMap;
use std::fmt;

use crate::scheme::WriteStage;

use super::event::{stage_from_code, LifecycleEvent};

/// What a breakpoint matched.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BreakHit {
    /// Index of the matching event in the stream.
    pub index: usize,
    /// The matching event.
    pub event: LifecycleEvent,
    /// Why it matched (human-readable).
    pub reason: String,
}

impl fmt::Display for BreakHit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "break at event {}: {} [{}]", self.index, self.event, self.reason)
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Kind {
    Degraded,
    Brownout,
    VerifyFail,
    Cancelled,
    Watchdog,
    Truncated,
    StageEnter(WriteStage),
    Write(u64),
    /// Fires when a write *leaves* `TokenStalled` after more than the
    /// given number of cycles starved.
    TokenStalledOver(u64),
}

/// A compiled halt predicate (see the module grammar).
#[derive(Debug, Clone)]
pub struct Breakpoint {
    kind: Kind,
    /// `token-stalled>N` bookkeeping: write id → stall entry time.
    stalled_since: BTreeMap<u64, u64>,
}

/// Parses a stage name: full lifecycle names (hyphen/underscore
/// insensitive) or the two-letter wire codes.
fn parse_stage(s: &str) -> Option<WriteStage> {
    if let Some(st) = stage_from_code(s) {
        return Some(st);
    }
    Some(match s.replace(['-', '_'], "").as_str() {
        "queued" => WriteStage::Queued,
        "preread" => WriteStage::PreRead,
        "iterating" => WriteStage::Iterating,
        "tokenstalled" => WriteStage::TokenStalled,
        "paused" => WriteStage::Paused,
        "roundpending" => WriteStage::RoundPending,
        "backoff" => WriteStage::Backoff,
        "draining" => WriteStage::Draining,
        "done" => WriteStage::Done,
        _ => return None,
    })
}

impl Breakpoint {
    /// Compiles a breakpoint expression.
    ///
    /// # Errors
    ///
    /// A human-readable description of what could not be parsed,
    /// listing the accepted forms.
    pub fn parse(expr: &str) -> Result<Breakpoint, String> {
        let e = expr.trim().to_ascii_lowercase();
        let kind = if e == "degraded" {
            Kind::Degraded
        } else if e == "brownout" {
            Kind::Brownout
        } else if e == "verify-fail" || e == "verify_fail" {
            Kind::VerifyFail
        } else if e == "cancelled" || e == "canceled" {
            Kind::Cancelled
        } else if e == "watchdog" {
            Kind::Watchdog
        } else if e == "truncated" {
            Kind::Truncated
        } else if let Some(rest) = e.strip_prefix("stage:") {
            Kind::StageEnter(
                parse_stage(rest).ok_or_else(|| format!("unknown stage {rest:?}"))?,
            )
        } else if let Some(rest) = e.strip_prefix("write:") {
            Kind::Write(
                rest.parse()
                    .map_err(|_| format!("write id must be an integer, got {rest:?}"))?,
            )
        } else if let Some(rest) = e.strip_prefix("token-stalled>") {
            Kind::TokenStalledOver(
                rest.parse()
                    .map_err(|_| format!("cycle bound must be an integer, got {rest:?}"))?,
            )
        } else {
            return Err(format!(
                "unknown breakpoint {expr:?}; expected one of: degraded, brownout, \
                 verify-fail, cancelled, watchdog, truncated, stage:<name>, write:<id>, \
                 token-stalled><cycles>"
            ));
        };
        Ok(Breakpoint { kind, stalled_since: BTreeMap::new() })
    }

    /// Checks one event (in stream order); returns the hit if the
    /// predicate fires here.
    pub fn check(&mut self, index: usize, ev: &LifecycleEvent) -> Option<BreakHit> {
        let reason = match &self.kind {
            Kind::Degraded => match ev {
                LifecycleEvent::WriteCreated { degraded: true, id, .. } => {
                    Some(format!("write #{id} created in degraded (SLC) mode"))
                }
                _ => None,
            },
            Kind::Brownout => matches!(ev, LifecycleEvent::BrownoutStart { .. })
                .then(|| "brownout window begins".to_string()),
            Kind::VerifyFail => match ev {
                LifecycleEvent::VerifyFailed { id, .. } => {
                    Some(format!("write #{id} failed verify"))
                }
                _ => None,
            },
            Kind::Cancelled => match ev {
                // The only transition back to Queued is cancellation.
                LifecycleEvent::Stage { to: WriteStage::Queued, id, .. } => {
                    Some(format!("write #{id} cancelled"))
                }
                _ => None,
            },
            Kind::Watchdog => match ev {
                LifecycleEvent::WatchdogTripped { id, .. } => {
                    Some(format!("watchdog force-closed write #{id}"))
                }
                _ => None,
            },
            Kind::Truncated => match ev {
                LifecycleEvent::RoundClosed { truncated: true, id, .. } => {
                    Some(format!("write #{id} round truncated"))
                }
                _ => None,
            },
            Kind::StageEnter(stage) => match ev {
                LifecycleEvent::Stage { to, id, .. } if to == stage => {
                    Some(format!("write #{id} entered {stage:?}"))
                }
                _ => None,
            },
            Kind::Write(want) => {
                (ev.write_id() == Some(*want)).then(|| format!("event concerns write #{want}"))
            }
            Kind::TokenStalledOver(bound) => match ev {
                LifecycleEvent::Stage { to: WriteStage::TokenStalled, id, at, .. } => {
                    self.stalled_since.insert(*id, *at);
                    None
                }
                LifecycleEvent::Stage { from: WriteStage::TokenStalled, id, at, .. } => {
                    let since = self.stalled_since.remove(id)?;
                    let stalled = at.saturating_sub(since);
                    (stalled > *bound)
                        .then(|| format!("write #{id} token-starved {stalled} cycles"))
                }
                _ => None,
            },
        }?;
        Some(BreakHit { index, event: ev.clone(), reason })
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_the_grammar() {
        for e in [
            "degraded",
            "brownout",
            "verify-fail",
            "cancelled",
            "watchdog",
            "truncated",
            "stage:paused",
            "stage:token-stalled",
            "stage:ts",
            "write:42",
            "token-stalled>500",
            "  DEGRADED  ",
        ] {
            assert!(Breakpoint::parse(e).is_ok(), "{e}");
        }
        for e in ["", "bogus", "stage:nowhere", "write:abc", "token-stalled>x"] {
            assert!(Breakpoint::parse(e).is_err(), "{e}");
        }
    }

    #[test]
    fn degraded_fires_on_first_degraded_write_only() {
        let mut bp = Breakpoint::parse("degraded").unwrap();
        let clean = LifecycleEvent::WriteCreated {
            id: 1,
            line: 9,
            bank: 0,
            at: 5,
            rounds: 1,
            degraded: false,
        };
        let degraded = LifecycleEvent::WriteCreated {
            id: 2,
            line: 9,
            bank: 0,
            at: 6,
            rounds: 1,
            degraded: true,
        };
        assert!(bp.check(0, &clean).is_none());
        let hit = bp.check(1, &degraded).unwrap();
        assert_eq!(hit.index, 1);
        assert!(hit.reason.contains("write #2"), "{}", hit.reason);
    }

    #[test]
    fn token_stall_bound_measures_duration() {
        let mut bp = Breakpoint::parse("token-stalled>100").unwrap();
        let enter = |id, at| LifecycleEvent::Stage {
            id,
            bank: 0,
            at,
            from: WriteStage::Iterating,
            to: WriteStage::TokenStalled,
        };
        let leave = |id, at| LifecycleEvent::Stage {
            id,
            bank: 0,
            at,
            from: WriteStage::TokenStalled,
            to: WriteStage::Iterating,
        };
        assert!(bp.check(0, &enter(1, 0)).is_none());
        assert!(bp.check(1, &leave(1, 50)).is_none(), "50 cycles is under the bound");
        assert!(bp.check(2, &enter(2, 100)).is_none());
        let hit = bp.check(3, &leave(2, 300)).unwrap();
        assert!(hit.reason.contains("200 cycles"), "{}", hit.reason);
    }

    #[test]
    fn write_filter_matches_any_event_of_that_write() {
        let mut bp = Breakpoint::parse("write:7").unwrap();
        let other = LifecycleEvent::WatchdogTripped { id: 3, bank: 1, at: 10 };
        let mine = LifecycleEvent::WatchdogTripped { id: 7, bank: 1, at: 11 };
        assert!(bp.check(0, &other).is_none());
        assert!(bp.check(1, &mine).is_some());
    }
}
