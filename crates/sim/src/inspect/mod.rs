//! Event-sourced run inspection: record a run's lifecycle event stream,
//! replay it, and interrogate it (`fpb inspect`).
//!
//! The engine's stage modules emit one [`LifecycleEvent`] per stage
//! transition through an [`EventSink`] threaded into
//! [`crate::System`] as a type parameter. The default sink is
//! [`NullSink`], whose `ENABLED = false` constant folds every emission
//! site to nothing — the hot path pays zero cost unless a caller opts
//! in. With a live sink, the stream is a *complete* record: the
//! [`MetricsDeriver`] folds it back into [`crate::Metrics`] byte-identical
//! to the engine's inline tallies (the derive-vs-inline CI gate), and the
//! [`Cursor`] replays it step by step with breakpoints, stall attribution
//! and per-write lineage.
//!
//! * [`event`] — the event vocabulary and its exact ASCII wire codec.
//! * [`recorder`] — the durable `fpbi1` event log (CRC-framed, fsync'd,
//!   torn-tail tolerant — the [`crate::journal`] discipline).
//! * [`cursor`] — ReplayEngine-style step/seek/reset over a stream, plus
//!   the metrics deriver and timeline reconstruction.
//! * [`breakpoint`] — halt predicates ("first degraded write",
//!   "token-stalled>N") for `fpb inspect break`.
//! * [`stall`] — where writes waited: token stalls, pauses, backoffs.
//! * [`lineage`] — one write's admission→iteration→power→completion
//!   trace.

pub mod breakpoint;
pub mod cursor;
pub mod event;
pub mod lineage;
pub mod recorder;
pub mod stall;

pub use breakpoint::{BreakHit, Breakpoint};
pub use cursor::{Cursor, MetricsDeriver, ReplayedRun};
pub use event::{stage_code, stage_from_code, LifecycleEvent, PowerOp, SchemeHook};
pub use lineage::{lineage_lines, Lineage};
pub use recorder::{
    read_event_log, EventLog, EventLogWriter, FileSink, InspectError, EVENT_LOG_MAGIC,
};
pub use stall::{StallKind, StallReport};

/// Receives the engine's lifecycle events.
///
/// The engine guards every emission site with `E::ENABLED`, so a sink
/// whose `ENABLED` is `false` (the default [`NullSink`]) compiles to a
/// no-op: event construction, including any allocation the event would
/// need, is never reached. Implementations must be infallible from the
/// engine's point of view — a sink that can fail (like
/// [`FileSink`]) records its first error internally and reports it when
/// the caller finishes the sink.
pub trait EventSink {
    /// Whether the engine should construct and emit events at all.
    /// `false` const-folds every emission site away.
    const ENABLED: bool = true;

    /// Accepts one event. Called only when [`EventSink::ENABLED`] is
    /// `true`.
    fn emit(&mut self, event: LifecycleEvent);
}

/// The default sink: no recording, zero cost. `System<S>` means
/// `System<S, NullSink>`, so every existing caller keeps the exact hot
/// path it had before event sourcing existed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullSink;

impl EventSink for NullSink {
    const ENABLED: bool = false;

    #[inline(always)]
    fn emit(&mut self, _event: LifecycleEvent) {}
}

/// Buffers every event in memory — the sink behind in-process replay
/// (breakpoints without a log file) and the equivalence tests.
#[derive(Debug, Clone, Default)]
pub struct MemorySink {
    events: Vec<LifecycleEvent>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> MemorySink {
        MemorySink::default()
    }

    /// The events recorded so far, in emission order.
    pub fn events(&self) -> &[LifecycleEvent] {
        &self.events
    }

    /// Consumes the sink, yielding the recorded stream.
    pub fn into_events(self) -> Vec<LifecycleEvent> {
        self.events
    }
}

impl EventSink for MemorySink {
    fn emit(&mut self, event: LifecycleEvent) {
        self.events.push(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_is_disabled() {
        assert!(!NullSink::ENABLED);
        let mut s = NullSink;
        s.emit(LifecycleEvent::RunEnd { at: 1 }); // must be a no-op
    }

    #[test]
    fn memory_sink_buffers_in_order() {
        let mut s = MemorySink::new();
        assert!(MemorySink::ENABLED);
        s.emit(LifecycleEvent::BrownoutStart { at: 5 });
        s.emit(LifecycleEvent::BrownoutEnd { at: 9 });
        assert_eq!(s.events().len(), 2);
        let evs = s.into_events();
        assert_eq!(evs[1], LifecycleEvent::BrownoutEnd { at: 9 });
    }
}
