//! Replay: step/seek/reset over a recorded event stream, and the
//! metrics deriver proving the stream is a *complete* record.
//!
//! [`Cursor`] is the time-travel half: it walks a stream forward one
//! event at a time, jumps to arbitrary positions, and runs to the next
//! [`super::Breakpoint`] hit. [`MetricsDeriver`] is the proof half: it
//! folds the stream back into [`Metrics`] using only event payloads —
//! no engine state — and the result must be byte-identical to the
//! engine's inline tallies (`Metrics::to_json` compared verbatim, the
//! derive-vs-inline CI gate). [`ReplayedRun`] packages both with the
//! reconstructed [`Timeline`].

use fpb_core::PowerStats;
use fpb_pcm::EnduranceTracker;
use fpb_types::{Cycles, LineAddr};

use crate::metrics::Metrics;
use crate::timeline::{Sample, Timeline};

use super::breakpoint::{BreakHit, Breakpoint};
use super::event::LifecycleEvent;

/// A replay position inside a recorded event stream.
#[derive(Debug, Clone)]
pub struct Cursor {
    events: Vec<LifecycleEvent>,
    pos: usize,
}

impl Cursor {
    /// Wraps a recorded stream, positioned before the first event.
    pub fn new(events: Vec<LifecycleEvent>) -> Cursor {
        Cursor { events, pos: 0 }
    }

    /// Total events in the stream.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if the stream holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Index of the next event [`Cursor::step`] would yield.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// The whole stream (replay helpers like
    /// [`super::lineage_lines`] take the raw slice).
    pub fn events(&self) -> &[LifecycleEvent] {
        &self.events
    }

    /// The next event without advancing.
    pub fn peek(&self) -> Option<&LifecycleEvent> {
        self.events.get(self.pos)
    }

    /// Yields the next event and advances past it; `None` at the end.
    pub fn step(&mut self) -> Option<&LifecycleEvent> {
        let ev = self.events.get(self.pos)?;
        self.pos += 1;
        Some(ev)
    }

    /// Jumps so the next [`Cursor::step`] yields event `index` (clamped
    /// to one-past-the-end).
    pub fn seek(&mut self, index: usize) {
        self.pos = index.min(self.events.len());
    }

    /// Rewinds to before the first event — time travel in one call:
    /// the stream is immutable, so replaying from the start is always
    /// exact.
    pub fn reset(&mut self) {
        self.pos = 0;
    }

    /// Advances until `bp` fires, returning the hit (the cursor rests
    /// just past the matching event); `None` if the stream ends first.
    pub fn run_until(&mut self, bp: &mut Breakpoint) -> Option<BreakHit> {
        while self.pos < self.events.len() {
            let idx = self.pos;
            self.pos += 1;
            if let Some(hit) = bp.check(idx, &self.events[idx]) {
                return Some(hit);
            }
        }
        None
    }
}

/// Folds a lifecycle event stream back into [`Metrics`].
///
/// Every counter is reconstructed from event payloads alone, mirroring
/// the engine's inline bookkeeping site for site: deltas accumulate
/// (`TimeAdvance` → activity cycles, `RoundClosed` → cells), absolutes
/// overwrite (`Power` snapshots → power stats and audit count, because
/// outstanding/peak are not additive), and the endurance tracker is a
/// replica built from `RunStart` geometry and fed every `RoundClosed`
/// exactly as the engine feeds its own.
#[derive(Debug, Clone, Default)]
pub struct MetricsDeriver {
    m: Metrics,
    endurance: Option<EnduranceTracker>,
    chips: usize,
    power_raw: [u64; 9],
    audit: u64,
}

impl MetricsDeriver {
    /// A deriver with everything at zero (apply `RunStart` first).
    pub fn new() -> MetricsDeriver {
        MetricsDeriver::default()
    }

    /// Folds one event in. Events must arrive in recorded order.
    pub fn apply(&mut self, ev: &LifecycleEvent) {
        match ev {
            LifecycleEvent::RunStart {
                cores,
                instructions_per_core,
                chips,
                total_lines,
                cells_per_chip_per_line,
                ..
            } => {
                self.m.cores = *cores;
                self.m.instructions_per_core = *instructions_per_core;
                self.chips = *chips as usize;
                // The engine's wear replica: 64 regions, PCM-typical
                // 10^7 endurance (engine constructor constants).
                self.endurance = Some(
                    EnduranceTracker::new(*total_lines, 64, *chips, 10_000_000)
                        .with_cells_per_chip(*cells_per_chip_per_line),
                );
            }
            LifecycleEvent::StepSnapshot { .. } => {}
            LifecycleEvent::TimeAdvance { from, to, burst, writing, brownout, degraded } => {
                let delta = to.saturating_sub(*from);
                if *burst {
                    self.m.burst_cycles += delta;
                }
                if *writing {
                    self.m.write_active_cycles += delta;
                }
                if *brownout {
                    self.m.faults.brownout_cycles += delta;
                }
                if *degraded {
                    self.m.faults.degraded_cycles += delta;
                }
            }
            LifecycleEvent::WriteCreated { degraded, .. } => {
                if *degraded {
                    self.m.faults.degraded_writes += 1;
                }
            }
            LifecycleEvent::WriteCoalesced { .. } => {}
            LifecycleEvent::WriteAdmitted { queue_delay, .. } => {
                self.m.write_queue_delay += queue_delay;
            }
            LifecycleEvent::Stage { to, .. } => match to {
                crate::scheme::WriteStage::Paused => self.m.pauses += 1,
                // The only transition *back* to Queued is cancellation.
                crate::scheme::WriteStage::Queued => self.m.cancellations += 1,
                _ => {}
            },
            LifecycleEvent::SchemeDecision { .. } => {}
            LifecycleEvent::Power { stats, audit, .. } => {
                // Absolute post-call snapshots: the latest one is the
                // manager's final state.
                self.power_raw = *stats;
                self.audit = *audit;
            }
            LifecycleEvent::ReadIssued { latency, scrub, .. } => {
                if !scrub {
                    self.m.read_latency_sum += latency;
                }
            }
            LifecycleEvent::ReadDone { scrub, .. } => {
                if *scrub {
                    self.m.scrub_reads += 1;
                } else {
                    self.m.pcm_reads += 1;
                }
            }
            LifecycleEvent::RoundClosed {
                line,
                cells,
                truncated,
                final_round,
                per_chip,
                ..
            } => {
                self.m.write_rounds += 1;
                if self.m.per_chip_cells.is_empty() {
                    self.m.per_chip_cells = vec![0; self.chips];
                }
                if let Some(e) = self.endurance.as_mut() {
                    e.record_write(LineAddr::new(*line), per_chip);
                }
                for (acc, c) in self.m.per_chip_cells.iter_mut().zip(per_chip) {
                    *acc += u64::from(*c);
                }
                self.m.cells_written += cells;
                if *truncated {
                    self.m.truncations += 1;
                }
                if *final_round {
                    self.m.pcm_writes += 1;
                }
            }
            LifecycleEvent::StuckMarked { lines, .. } => {
                self.m.faults.stuck_lines_marked += lines;
            }
            LifecycleEvent::VerifyFailed { remapped, .. } => {
                self.m.faults.verify_failures += 1;
                if *remapped {
                    self.m.faults.remaps += 1;
                    self.m.faults.slc_fallbacks += 1;
                } else {
                    self.m.faults.retries += 1;
                }
            }
            LifecycleEvent::WatchdogTripped { .. } => {
                self.m.faults.watchdog_trips += 1;
            }
            LifecycleEvent::BrownoutStart { .. } => {
                self.m.faults.brownout_windows += 1;
            }
            LifecycleEvent::BrownoutEnd { .. } => {}
            LifecycleEvent::CoreDone { .. } => {}
            LifecycleEvent::RunEnd { at } => {
                self.m.cycles = *at;
            }
        }
    }

    /// Finalizes: installs the last power snapshot and the endurance
    /// replica, exactly as the engine's `finish` does.
    pub fn finish(self) -> Metrics {
        let mut m = self.m;
        m.power = PowerStats::from_raw(self.power_raw);
        m.faults.audit_violations = self.audit;
        m.endurance = self.endurance;
        m
    }
}

/// A fully replayed run: the derived metrics plus the reconstructed
/// timeline (one [`Sample`] per recorded `StepSnapshot` — 1:1 with what
/// [`Timeline::record`] samples on a live system).
#[derive(Debug, Clone)]
pub struct ReplayedRun {
    /// The reconstructed bank-activity timeline.
    pub timeline: Timeline,
    /// The derived metrics.
    pub metrics: Metrics,
    /// Events consumed.
    pub events: usize,
}

impl ReplayedRun {
    /// Replays a complete stream.
    pub fn from_events(events: &[LifecycleEvent]) -> ReplayedRun {
        let mut deriver = MetricsDeriver::new();
        let mut banks = 0usize;
        let mut samples = Vec::new();
        for ev in events {
            if let LifecycleEvent::RunStart { banks: b, .. } = ev {
                banks = *b as usize;
            }
            if let LifecycleEvent::StepSnapshot { at, bank_mask, burst, wrq, rdq } = ev {
                samples.push(Sample {
                    at: Cycles::new(*at),
                    bank_writes: (0..banks).map(|b| bank_mask & (1u64 << b) != 0).collect(),
                    burst: *burst,
                    wrq: *wrq as usize,
                    rdq: *rdq as usize,
                });
            }
            deriver.apply(ev);
        }
        let metrics = deriver.finish();
        ReplayedRun {
            timeline: Timeline::from_parts(samples, metrics.clone()),
            metrics,
            events: events.len(),
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn cursor_steps_seeks_resets() {
        let evs = vec![
            LifecycleEvent::BrownoutStart { at: 1 },
            LifecycleEvent::BrownoutEnd { at: 2 },
            LifecycleEvent::RunEnd { at: 3 },
        ];
        let mut c = Cursor::new(evs);
        assert_eq!(c.len(), 3);
        assert!(!c.is_empty());
        assert_eq!(c.peek(), Some(&LifecycleEvent::BrownoutStart { at: 1 }));
        assert_eq!(c.step(), Some(&LifecycleEvent::BrownoutStart { at: 1 }));
        assert_eq!(c.pos(), 1);
        c.seek(2);
        assert_eq!(c.step(), Some(&LifecycleEvent::RunEnd { at: 3 }));
        assert_eq!(c.step(), None);
        c.reset();
        assert_eq!(c.pos(), 0);
        c.seek(99);
        assert_eq!(c.pos(), 3, "seek clamps");
    }

    #[test]
    fn deriver_accumulates_deltas_and_overwrites_absolutes() {
        let mut d = MetricsDeriver::new();
        d.apply(&LifecycleEvent::TimeAdvance {
            from: 0,
            to: 10,
            burst: true,
            writing: true,
            brownout: false,
            degraded: false,
        });
        d.apply(&LifecycleEvent::TimeAdvance {
            from: 10,
            to: 15,
            burst: false,
            writing: true,
            brownout: true,
            degraded: true,
        });
        d.apply(&LifecycleEvent::Power {
            id: 1,
            op: super::super::PowerOp::Admit,
            ok: true,
            at: 5,
            stats: [1; 9],
            audit: 0,
        });
        d.apply(&LifecycleEvent::Power {
            id: 1,
            op: super::super::PowerOp::Release,
            ok: true,
            at: 9,
            stats: [2, 2, 2, 2, 2, 2, 2, 2, 2],
            audit: 3,
        });
        d.apply(&LifecycleEvent::RunEnd { at: 15 });
        let m = d.finish();
        assert_eq!(m.burst_cycles, 10);
        assert_eq!(m.write_active_cycles, 15);
        assert_eq!(m.faults.brownout_cycles, 5);
        assert_eq!(m.faults.degraded_cycles, 5);
        assert_eq!(m.power, PowerStats::from_raw([2; 9]), "latest snapshot wins");
        assert_eq!(m.faults.audit_violations, 3);
        assert_eq!(m.cycles, 15);
    }

    #[test]
    fn replay_reconstructs_timeline_samples() {
        let evs = vec![
            LifecycleEvent::RunStart {
                cores: 2,
                instructions_per_core: 100,
                chips: 4,
                banks: 8,
                total_lines: 1024,
                cells_per_chip_per_line: 64,
                seed: 7,
            },
            LifecycleEvent::StepSnapshot { at: 0, bank_mask: 0b101, burst: false, wrq: 1, rdq: 2 },
            LifecycleEvent::StepSnapshot { at: 9, bank_mask: 0, burst: true, wrq: 0, rdq: 0 },
            LifecycleEvent::RunEnd { at: 9 },
        ];
        let r = ReplayedRun::from_events(&evs);
        assert_eq!(r.events, 4);
        assert_eq!(r.timeline.samples().len(), 2);
        let s0 = &r.timeline.samples()[0];
        assert_eq!(s0.at, Cycles::new(0));
        assert_eq!(s0.bank_writes.len(), 8);
        assert!(s0.bank_writes[0] && s0.bank_writes[2] && !s0.bank_writes[1]);
        assert_eq!((s0.wrq, s0.rdq), (1, 2));
        assert_eq!(r.metrics.cycles, 9);
        assert_eq!(r.metrics.cores, 2);
        assert!(r.metrics.endurance.is_some());
    }
}
