//! The typed lifecycle event vocabulary and its wire codec.
//!
//! Every engine stage boundary emits exactly one [`LifecycleEvent`]; the
//! stream is a complete record of a run — [`crate::inspect::MetricsDeriver`]
//! folds it back into the same [`crate::Metrics`] the engine tallies
//! inline, byte for byte (the derive-vs-inline CI gate).
//!
//! The wire form is one ASCII line per event: a two-letter kind tag
//! followed by space-separated decimal fields (booleans as `0`/`1`,
//! write stages as two-letter codes). Like the metrics record encoding,
//! it is exact — `decode(encode(ev)) == ev` for every event — which is
//! what makes the recorded log a replayable artifact rather than a
//! human-only trace.

use std::fmt;

use crate::scheme::WriteStage;

/// Which scheme lifecycle hook produced a [`LifecycleEvent::SchemeDecision`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchemeHook {
    /// [`crate::scheme::Scheme::on_admit`].
    Admit,
    /// [`crate::scheme::Scheme::on_iteration`].
    Iteration,
    /// [`crate::scheme::Scheme::on_read_arrival`].
    ReadArrival,
    /// [`crate::scheme::Scheme::on_release`].
    Release,
}

impl SchemeHook {
    fn code(self) -> &'static str {
        match self {
            SchemeHook::Admit => "a",
            SchemeHook::Iteration => "i",
            SchemeHook::ReadArrival => "r",
            SchemeHook::Release => "l",
        }
    }

    fn from_code(s: &str) -> Option<SchemeHook> {
        Some(match s {
            "a" => SchemeHook::Admit,
            "i" => SchemeHook::Iteration,
            "r" => SchemeHook::ReadArrival,
            "l" => SchemeHook::Release,
            _ => return None,
        })
    }
}

/// Which [`fpb_core::PowerManager`] call a [`LifecycleEvent::Power`]
/// snapshot was taken after.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PowerOp {
    /// `try_admit` (round admission).
    Admit,
    /// `try_advance` (iteration-boundary re-budgeting).
    Advance,
    /// `release` (completion, pause, or cancellation).
    Release,
    /// `begin_brownout` (window start withholds tokens).
    BrownoutBegin,
    /// `end_brownout` (window end restores tokens).
    BrownoutEnd,
}

impl PowerOp {
    fn code(self) -> &'static str {
        match self {
            PowerOp::Admit => "a",
            PowerOp::Advance => "v",
            PowerOp::Release => "r",
            PowerOp::BrownoutBegin => "b",
            PowerOp::BrownoutEnd => "e",
        }
    }

    fn from_code(s: &str) -> Option<PowerOp> {
        Some(match s {
            "a" => PowerOp::Admit,
            "v" => PowerOp::Advance,
            "r" => PowerOp::Release,
            "b" => PowerOp::BrownoutBegin,
            "e" => PowerOp::BrownoutEnd,
            _ => return None,
        })
    }
}

/// Two-letter wire code for a [`WriteStage`].
pub fn stage_code(stage: WriteStage) -> &'static str {
    match stage {
        WriteStage::Queued => "qu",
        WriteStage::PreRead => "pr",
        WriteStage::Iterating => "it",
        WriteStage::TokenStalled => "ts",
        WriteStage::Paused => "pa",
        WriteStage::RoundPending => "rp",
        WriteStage::Backoff => "bo",
        WriteStage::Draining => "dr",
        WriteStage::Done => "dn",
    }
}

/// Inverse of [`stage_code`].
pub fn stage_from_code(s: &str) -> Option<WriteStage> {
    Some(match s {
        "qu" => WriteStage::Queued,
        "pr" => WriteStage::PreRead,
        "it" => WriteStage::Iterating,
        "ts" => WriteStage::TokenStalled,
        "pa" => WriteStage::Paused,
        "rp" => WriteStage::RoundPending,
        "bo" => WriteStage::Backoff,
        "dr" => WriteStage::Draining,
        "dn" => WriteStage::Done,
        _ => return None,
    })
}

/// One typed, serializable engine stage transition (or run-level marker).
///
/// Times are absolute simulation cycles; ids are the engine's per-run
/// [`fpb_core::WriteId`] values. Together the variants cover every site
/// where the engine mutates [`crate::Metrics`], so the stream *derives*
/// the metrics rather than merely annotating them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LifecycleEvent {
    /// Run configuration, emitted once at construction. Carries exactly
    /// what replay needs to rebuild the run-shaped state (the endurance
    /// replica, the bank-mask width).
    RunStart {
        /// Core count.
        cores: u8,
        /// Instruction budget per core.
        instructions_per_core: u64,
        /// PCM chip count per DIMM.
        chips: u8,
        /// PCM bank count.
        banks: u8,
        /// Total line count (endurance-tracker geometry).
        total_lines: u64,
        /// Cells per chip per line (endurance-tracker geometry).
        cells_per_chip_per_line: u64,
        /// The run's root RNG seed (provenance only; replay never re-rolls).
        seed: u64,
    },
    /// Pre-step snapshot, emitted at the top of every engine step — 1:1
    /// with [`crate::timeline::Timeline`] samples, so replay reconstructs
    /// the timeline exactly.
    StepSnapshot {
        /// Simulation time of the snapshot.
        at: u64,
        /// Bit `b` set iff bank `b` holds a write (first 64 banks).
        bank_mask: u64,
        /// Controller in write-burst mode?
        burst: bool,
        /// Write-queue depth.
        wrq: u64,
        /// Read-queue depth.
        rdq: u64,
    },
    /// Time advanced from `from` to `to` with the given activity flags
    /// (derives the four activity-cycle counters).
    TimeAdvance {
        /// Interval start.
        from: u64,
        /// Interval end.
        to: u64,
        /// Write burst active over the interval?
        burst: bool,
        /// At least one write iterating?
        writing: bool,
        /// Brownout window active?
        brownout: bool,
        /// Degraded (SLC-fallback) mode active?
        degraded: bool,
    },
    /// A write task was built for a dirty eviction.
    WriteCreated {
        /// The task's write id.
        id: u64,
        /// Target line address.
        line: u64,
        /// Target bank.
        bank: u8,
        /// Creation time.
        at: u64,
        /// Number of power-split rounds.
        rounds: u64,
        /// Issued in degraded (SLC) mode?
        degraded: bool,
    },
    /// A queued write to the same line was replaced by fresher data.
    WriteCoalesced {
        /// The replaced task's id.
        old_id: u64,
        /// The replacing task's id.
        new_id: u64,
        /// The shared line address.
        line: u64,
        /// Coalesce time.
        at: u64,
    },
    /// A write won token admission and left the write queue.
    WriteAdmitted {
        /// The admitted write.
        id: u64,
        /// Its bank.
        bank: u8,
        /// Admission time.
        at: u64,
        /// Cycles spent queued (arrival to this admission).
        queue_delay: u64,
    },
    /// A write-lifecycle stage transition (the engine's
    /// [`crate::scheme::WriteLifecycle`] checks, now recorded).
    Stage {
        /// The write moving between stages.
        id: u64,
        /// Its bank.
        bank: u8,
        /// Transition time.
        at: u64,
        /// Stage left.
        from: WriteStage,
        /// Stage entered.
        to: WriteStage,
    },
    /// A scheme lifecycle hook was consulted; `action` is the hook's
    /// enum discriminant (0 = first variant).
    SchemeDecision {
        /// Which hook ran.
        hook: SchemeHook,
        /// The chosen action's discriminant.
        action: u8,
        /// The write the decision concerns (0 for bank-level hooks with
        /// no task in flight).
        id: u64,
        /// The bank concerned.
        bank: u8,
        /// Decision time.
        at: u64,
    },
    /// Power-accounting snapshot taken immediately after a
    /// [`fpb_core::PowerManager`] call — the nine raw
    /// [`fpb_core::PowerStats`] counters plus the audit-violation count.
    /// Absolute values, not deltas (outstanding/peak are not additive).
    Power {
        /// The write the call concerned (0 for brownout edges).
        id: u64,
        /// Which manager call ran.
        op: PowerOp,
        /// Whether the call succeeded (always true for release/brownout).
        ok: bool,
        /// Call time.
        at: u64,
        /// `PowerStats::to_raw()` after the call.
        stats: [u64; 9],
        /// `PowerManager::audit_violations()` after the call.
        audit: u64,
    },
    /// A read was issued to its bank.
    ReadIssued {
        /// Requesting core (0 for background scrubs).
        core: u64,
        /// Target bank.
        bank: u8,
        /// Issue time.
        at: u64,
        /// Service latency charged (queue entry to data return).
        latency: u64,
        /// Background drift scrub (no core to wake)?
        scrub: bool,
    },
    /// A read completed and freed its bank.
    ReadDone {
        /// The bank freed.
        bank: u8,
        /// Completion time.
        at: u64,
        /// Background drift scrub?
        scrub: bool,
    },
    /// A write round closed successfully (verify passed or watchdog
    /// force-close).
    RoundClosed {
        /// The write whose round closed.
        id: u64,
        /// Its line.
        line: u64,
        /// Its bank.
        bank: u8,
        /// Close time.
        at: u64,
        /// Cells programmed by the round.
        cells: u64,
        /// Round ended early by write truncation?
        truncated: bool,
        /// Was this the task's last round (the line write completed)?
        final_round: bool,
        /// Cells programmed per chip (length = chip count).
        per_chip: Vec<u32>,
    },
    /// The endurance-triggered fault model marked lines stuck-at.
    StuckMarked {
        /// Newly stuck lines (the injector marks at most one per write).
        lines: u64,
        /// Mark time.
        at: u64,
    },
    /// A round's closing verify failed (injected).
    VerifyFailed {
        /// The failing write.
        id: u64,
        /// Its line.
        line: u64,
        /// Failure time.
        at: u64,
        /// Retries exhausted — the line was remapped and the round
        /// rewritten in SLC fallback?
        remapped: bool,
        /// Retry count after this failure's bookkeeping.
        retries: u64,
    },
    /// The controller watchdog force-closed a round.
    WatchdogTripped {
        /// The write force-closed.
        id: u64,
        /// Its bank.
        bank: u8,
        /// Trip time.
        at: u64,
    },
    /// A brownout window began (tokens withheld).
    BrownoutStart {
        /// Window start time.
        at: u64,
    },
    /// A brownout window ended (tokens restored).
    BrownoutEnd {
        /// Window end time.
        at: u64,
    },
    /// A core retired its instruction budget.
    CoreDone {
        /// The finished core.
        core: u64,
        /// Its retire time.
        at: u64,
    },
    /// The run finished; `at` is the final cycle count.
    RunEnd {
        /// Final elapsed cycles (max core retire time).
        at: u64,
    },
}

impl LifecycleEvent {
    /// The write id this event concerns, if any.
    pub fn write_id(&self) -> Option<u64> {
        match self {
            LifecycleEvent::WriteCreated { id, .. }
            | LifecycleEvent::WriteAdmitted { id, .. }
            | LifecycleEvent::Stage { id, .. }
            | LifecycleEvent::RoundClosed { id, .. }
            | LifecycleEvent::VerifyFailed { id, .. }
            | LifecycleEvent::WatchdogTripped { id, .. } => Some(*id),
            LifecycleEvent::WriteCoalesced { new_id, .. } => Some(*new_id),
            LifecycleEvent::SchemeDecision { id, .. } | LifecycleEvent::Power { id, .. }
                if *id != 0 =>
            {
                Some(*id)
            }
            _ => None,
        }
    }

    /// The simulation time this event carries, if any.
    pub fn at(&self) -> Option<u64> {
        match self {
            LifecycleEvent::RunStart { .. } => None,
            LifecycleEvent::StepSnapshot { at, .. }
            | LifecycleEvent::WriteCreated { at, .. }
            | LifecycleEvent::WriteCoalesced { at, .. }
            | LifecycleEvent::WriteAdmitted { at, .. }
            | LifecycleEvent::Stage { at, .. }
            | LifecycleEvent::SchemeDecision { at, .. }
            | LifecycleEvent::Power { at, .. }
            | LifecycleEvent::ReadIssued { at, .. }
            | LifecycleEvent::ReadDone { at, .. }
            | LifecycleEvent::RoundClosed { at, .. }
            | LifecycleEvent::StuckMarked { at, .. }
            | LifecycleEvent::VerifyFailed { at, .. }
            | LifecycleEvent::WatchdogTripped { at, .. }
            | LifecycleEvent::BrownoutStart { at }
            | LifecycleEvent::BrownoutEnd { at }
            | LifecycleEvent::CoreDone { at, .. }
            | LifecycleEvent::RunEnd { at } => Some(*at),
            LifecycleEvent::TimeAdvance { to, .. } => Some(*to),
        }
    }

    /// Encodes the event as its one-line wire form (no trailing newline).
    pub fn encode(&self) -> String {
        fn b(v: bool) -> u64 {
            v as u64
        }
        match self {
            LifecycleEvent::RunStart {
                cores,
                instructions_per_core,
                chips,
                banks,
                total_lines,
                cells_per_chip_per_line,
                seed,
            } => format!(
                "rs {cores} {instructions_per_core} {chips} {banks} {total_lines} \
                 {cells_per_chip_per_line} {seed}"
            ),
            LifecycleEvent::StepSnapshot {
                at,
                bank_mask,
                burst,
                wrq,
                rdq,
            } => format!("ss {at} {bank_mask} {} {wrq} {rdq}", b(*burst)),
            LifecycleEvent::TimeAdvance {
                from,
                to,
                burst,
                writing,
                brownout,
                degraded,
            } => format!(
                "ta {from} {to} {} {} {} {}",
                b(*burst),
                b(*writing),
                b(*brownout),
                b(*degraded)
            ),
            LifecycleEvent::WriteCreated {
                id,
                line,
                bank,
                at,
                rounds,
                degraded,
            } => format!("wc {id} {line} {bank} {at} {rounds} {}", b(*degraded)),
            LifecycleEvent::WriteCoalesced {
                old_id,
                new_id,
                line,
                at,
            } => format!("wx {old_id} {new_id} {line} {at}"),
            LifecycleEvent::WriteAdmitted {
                id,
                bank,
                at,
                queue_delay,
            } => format!("wa {id} {bank} {at} {queue_delay}"),
            LifecycleEvent::Stage {
                id,
                bank,
                at,
                from,
                to,
            } => format!("st {id} {bank} {at} {} {}", stage_code(*from), stage_code(*to)),
            LifecycleEvent::SchemeDecision {
                hook,
                action,
                id,
                bank,
                at,
            } => format!("sd {} {action} {id} {bank} {at}", hook.code()),
            LifecycleEvent::Power {
                id,
                op,
                ok,
                at,
                stats,
                audit,
            } => {
                let mut s = format!("pw {id} {} {} {at}", op.code(), b(*ok));
                for v in stats {
                    s.push(' ');
                    s.push_str(&v.to_string());
                }
                s.push(' ');
                s.push_str(&audit.to_string());
                s
            }
            LifecycleEvent::ReadIssued {
                core,
                bank,
                at,
                latency,
                scrub,
            } => format!("ri {core} {bank} {at} {latency} {}", b(*scrub)),
            LifecycleEvent::ReadDone { bank, at, scrub } => {
                format!("rd {bank} {at} {}", b(*scrub))
            }
            LifecycleEvent::RoundClosed {
                id,
                line,
                bank,
                at,
                cells,
                truncated,
                final_round,
                per_chip,
            } => {
                let mut s = format!(
                    "rc {id} {line} {bank} {at} {cells} {} {} {}",
                    b(*truncated),
                    b(*final_round),
                    per_chip.len()
                );
                for v in per_chip {
                    s.push(' ');
                    s.push_str(&v.to_string());
                }
                s
            }
            LifecycleEvent::StuckMarked { lines, at } => format!("sm {lines} {at}"),
            LifecycleEvent::VerifyFailed {
                id,
                line,
                at,
                remapped,
                retries,
            } => format!("vf {id} {line} {at} {} {retries}", b(*remapped)),
            LifecycleEvent::WatchdogTripped { id, bank, at } => {
                format!("wt {id} {bank} {at}")
            }
            LifecycleEvent::BrownoutStart { at } => format!("bs {at}"),
            LifecycleEvent::BrownoutEnd { at } => format!("be {at}"),
            LifecycleEvent::CoreDone { core, at } => format!("cd {core} {at}"),
            LifecycleEvent::RunEnd { at } => format!("re {at}"),
        }
    }

    /// Parses one wire line. Returns `None` on any malformation (unknown
    /// kind, wrong field count, non-integer field) — log readers treat
    /// that as a torn tail, never an error to unwrap.
    pub fn decode(line: &str) -> Option<LifecycleEvent> {
        let mut it = line.split_ascii_whitespace();
        let kind = it.next()?;
        let mut num = || it.next()?.parse::<u64>().ok();
        let ev = match kind {
            "rs" => LifecycleEvent::RunStart {
                cores: u8::try_from(num()?).ok()?,
                instructions_per_core: num()?,
                chips: u8::try_from(num()?).ok()?,
                banks: u8::try_from(num()?).ok()?,
                total_lines: num()?,
                cells_per_chip_per_line: num()?,
                seed: num()?,
            },
            "ss" => LifecycleEvent::StepSnapshot {
                at: num()?,
                bank_mask: num()?,
                burst: num()? != 0,
                wrq: num()?,
                rdq: num()?,
            },
            "ta" => LifecycleEvent::TimeAdvance {
                from: num()?,
                to: num()?,
                burst: num()? != 0,
                writing: num()? != 0,
                brownout: num()? != 0,
                degraded: num()? != 0,
            },
            "wc" => LifecycleEvent::WriteCreated {
                id: num()?,
                line: num()?,
                bank: u8::try_from(num()?).ok()?,
                at: num()?,
                rounds: num()?,
                degraded: num()? != 0,
            },
            "wx" => LifecycleEvent::WriteCoalesced {
                old_id: num()?,
                new_id: num()?,
                line: num()?,
                at: num()?,
            },
            "wa" => LifecycleEvent::WriteAdmitted {
                id: num()?,
                bank: u8::try_from(num()?).ok()?,
                at: num()?,
                queue_delay: num()?,
            },
            "st" => {
                let id = num()?;
                let bank = u8::try_from(num()?).ok()?;
                let at = num()?;
                let mut rest = line.split_ascii_whitespace().skip(4);
                LifecycleEvent::Stage {
                    id,
                    bank,
                    at,
                    from: stage_from_code(rest.next()?)?,
                    to: stage_from_code(rest.next()?)?,
                }
            }
            "sd" => {
                let mut rest = line.split_ascii_whitespace().skip(1);
                let hook = SchemeHook::from_code(rest.next()?)?;
                let mut num = move || rest.next()?.parse::<u64>().ok();
                LifecycleEvent::SchemeDecision {
                    hook,
                    action: u8::try_from(num()?).ok()?,
                    id: num()?,
                    bank: u8::try_from(num()?).ok()?,
                    at: num()?,
                }
            }
            "pw" => {
                let id = num()?;
                let op = PowerOp::from_code(line.split_ascii_whitespace().nth(2)?)?;
                let mut rest = line.split_ascii_whitespace().skip(3);
                let mut num = move || rest.next()?.parse::<u64>().ok();
                let ok = num()? != 0;
                let at = num()?;
                let mut stats = [0u64; 9];
                for slot in &mut stats {
                    *slot = num()?;
                }
                LifecycleEvent::Power {
                    id,
                    op,
                    ok,
                    at,
                    stats,
                    audit: num()?,
                }
            }
            "ri" => LifecycleEvent::ReadIssued {
                core: num()?,
                bank: u8::try_from(num()?).ok()?,
                at: num()?,
                latency: num()?,
                scrub: num()? != 0,
            },
            "rd" => LifecycleEvent::ReadDone {
                bank: u8::try_from(num()?).ok()?,
                at: num()?,
                scrub: num()? != 0,
            },
            "rc" => {
                let id = num()?;
                let line_addr = num()?;
                let bank = u8::try_from(num()?).ok()?;
                let at = num()?;
                let cells = num()?;
                let truncated = num()? != 0;
                let final_round = num()? != 0;
                let n = usize::try_from(num()?).ok()?;
                if n > 1 << 16 {
                    return None; // implausible chip count: refuse the allocation
                }
                let per_chip = (0..n)
                    .map(|_| num().and_then(|v| u32::try_from(v).ok()))
                    .collect::<Option<Vec<u32>>>()?;
                LifecycleEvent::RoundClosed {
                    id,
                    line: line_addr,
                    bank,
                    at,
                    cells,
                    truncated,
                    final_round,
                    per_chip,
                }
            }
            "sm" => LifecycleEvent::StuckMarked {
                lines: num()?,
                at: num()?,
            },
            "vf" => LifecycleEvent::VerifyFailed {
                id: num()?,
                line: num()?,
                at: num()?,
                remapped: num()? != 0,
                retries: num()?,
            },
            "wt" => LifecycleEvent::WatchdogTripped {
                id: num()?,
                bank: u8::try_from(num()?).ok()?,
                at: num()?,
            },
            "bs" => LifecycleEvent::BrownoutStart { at: num()? },
            "be" => LifecycleEvent::BrownoutEnd { at: num()? },
            "cd" => LifecycleEvent::CoreDone {
                core: num()?,
                at: num()?,
            },
            "re" => LifecycleEvent::RunEnd { at: num()? },
            _ => return None,
        };
        // Reject trailing junk: an event line is exactly its fields.
        let want = ev.encode();
        let got = line.split_ascii_whitespace().count();
        if got != want.split_ascii_whitespace().count() {
            return None;
        }
        Some(ev)
    }
}

impl fmt::Display for LifecycleEvent {
    /// Human-readable one-liner (the lineage/breakpoint rendering).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LifecycleEvent::RunStart { cores, banks, chips, seed, .. } => write!(
                f,
                "run-start: {cores} cores, {banks} banks, {chips} chips, seed {seed}"
            ),
            LifecycleEvent::StepSnapshot { at, wrq, rdq, burst, .. } => write!(
                f,
                "@{at} step: wrq={wrq} rdq={rdq}{}",
                if *burst { " BURST" } else { "" }
            ),
            LifecycleEvent::TimeAdvance { from, to, .. } => {
                write!(f, "@{from} time advances to {to}")
            }
            LifecycleEvent::WriteCreated { id, line, bank, at, rounds, degraded } => write!(
                f,
                "@{at} write #{id} created: line {line} bank {bank}, {rounds} round(s){}",
                if *degraded { " DEGRADED(SLC)" } else { "" }
            ),
            LifecycleEvent::WriteCoalesced { old_id, new_id, line, at } => {
                write!(f, "@{at} write #{old_id} coalesced into #{new_id} (line {line})")
            }
            LifecycleEvent::WriteAdmitted { id, bank, at, queue_delay } => write!(
                f,
                "@{at} write #{id} admitted to bank {bank} after {queue_delay} queued cycles"
            ),
            LifecycleEvent::Stage { id, bank, at, from, to } => {
                write!(f, "@{at} write #{id} bank {bank}: {from:?} -> {to:?}")
            }
            LifecycleEvent::SchemeDecision { hook, action, id, bank, at } => write!(
                f,
                "@{at} scheme {hook:?} hook on bank {bank} (write #{id}): action {action}"
            ),
            LifecycleEvent::Power { id, op, ok, at, .. } => write!(
                f,
                "@{at} power {op:?} for write #{id}: {}",
                if *ok { "granted" } else { "refused" }
            ),
            LifecycleEvent::ReadIssued { core, bank, at, latency, scrub } => write!(
                f,
                "@{at} {} issued to bank {bank} (core {core}, latency {latency})",
                if *scrub { "scrub read" } else { "read" }
            ),
            LifecycleEvent::ReadDone { bank, at, scrub } => write!(
                f,
                "@{at} {} done on bank {bank}",
                if *scrub { "scrub read" } else { "read" }
            ),
            LifecycleEvent::RoundClosed { id, at, cells, truncated, final_round, .. } => write!(
                f,
                "@{at} write #{id} round closed: {cells} cells{}{}",
                if *truncated { ", truncated" } else { "" },
                if *final_round { " (write complete)" } else { "" }
            ),
            LifecycleEvent::StuckMarked { lines, at } => {
                write!(f, "@{at} {lines} line(s) marked stuck-at")
            }
            LifecycleEvent::VerifyFailed { id, line, at, remapped, retries } => write!(
                f,
                "@{at} write #{id} verify FAILED on line {line}: {}",
                if *remapped {
                    "remapped to spare, SLC rewrite".to_string()
                } else {
                    format!("retry {retries}")
                }
            ),
            LifecycleEvent::WatchdogTripped { id, bank, at } => {
                write!(f, "@{at} watchdog force-closed write #{id} on bank {bank}")
            }
            LifecycleEvent::BrownoutStart { at } => write!(f, "@{at} brownout window begins"),
            LifecycleEvent::BrownoutEnd { at } => write!(f, "@{at} brownout window ends"),
            LifecycleEvent::CoreDone { core, at } => {
                write!(f, "@{at} core {core} retired its budget")
            }
            LifecycleEvent::RunEnd { at } => write!(f, "@{at} run complete"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<LifecycleEvent> {
        vec![
            LifecycleEvent::RunStart {
                cores: 8,
                instructions_per_core: 40_000,
                chips: 8,
                banks: 8,
                total_lines: 65_536,
                cells_per_chip_per_line: 256,
                seed: 42,
            },
            LifecycleEvent::StepSnapshot {
                at: 10,
                bank_mask: 0b101,
                burst: true,
                wrq: 3,
                rdq: 0,
            },
            LifecycleEvent::TimeAdvance {
                from: 10,
                to: 25,
                burst: false,
                writing: true,
                brownout: false,
                degraded: true,
            },
            LifecycleEvent::WriteCreated {
                id: 7,
                line: 1234,
                bank: 2,
                at: 10,
                rounds: 2,
                degraded: true,
            },
            LifecycleEvent::WriteCoalesced { old_id: 3, new_id: 9, line: 55, at: 11 },
            LifecycleEvent::WriteAdmitted { id: 7, bank: 2, at: 12, queue_delay: 2 },
            LifecycleEvent::Stage {
                id: 7,
                bank: 2,
                at: 13,
                from: crate::scheme::WriteStage::Queued,
                to: crate::scheme::WriteStage::Iterating,
            },
            LifecycleEvent::SchemeDecision {
                hook: SchemeHook::ReadArrival,
                action: 1,
                id: 7,
                bank: 2,
                at: 14,
            },
            LifecycleEvent::Power {
                id: 7,
                op: PowerOp::Admit,
                ok: false,
                at: 15,
                stats: [1, 2, 3, 4, 5, 6, 7, 8, 9],
                audit: 1,
            },
            LifecycleEvent::ReadIssued { core: 3, bank: 1, at: 16, latency: 120, scrub: false },
            LifecycleEvent::ReadDone { bank: 1, at: 17, scrub: true },
            LifecycleEvent::RoundClosed {
                id: 7,
                line: 1234,
                bank: 2,
                at: 18,
                cells: 96,
                truncated: true,
                final_round: false,
                per_chip: vec![12, 0, 84],
            },
            LifecycleEvent::StuckMarked { lines: 1, at: 19 },
            LifecycleEvent::VerifyFailed { id: 7, line: 1234, at: 20, remapped: true, retries: 0 },
            LifecycleEvent::WatchdogTripped { id: 7, bank: 2, at: 21 },
            LifecycleEvent::BrownoutStart { at: 22 },
            LifecycleEvent::BrownoutEnd { at: 23 },
            LifecycleEvent::CoreDone { core: 5, at: 24 },
            LifecycleEvent::RunEnd { at: 25 },
        ]
    }

    #[test]
    fn wire_round_trip_is_exact() {
        for ev in samples() {
            let line = ev.encode();
            assert!(!line.contains('\n'), "single line: {line}");
            assert_eq!(LifecycleEvent::decode(&line), Some(ev.clone()), "{line}");
        }
    }

    #[test]
    fn decode_rejects_malformed_lines() {
        assert_eq!(LifecycleEvent::decode(""), None);
        assert_eq!(LifecycleEvent::decode("zz 1 2"), None);
        assert_eq!(LifecycleEvent::decode("ss 1 2 3"), None, "missing fields");
        assert_eq!(LifecycleEvent::decode("ss 1 2 3 4 5 6"), None, "trailing junk");
        assert_eq!(LifecycleEvent::decode("st 1 2 3 xx it"), None, "bad stage code");
        assert_eq!(LifecycleEvent::decode("wc 1 2 999 4 5 0"), None, "bank overflows u8");
    }

    #[test]
    fn stage_codes_round_trip() {
        use crate::scheme::WriteStage::*;
        for s in [Queued, PreRead, Iterating, TokenStalled, Paused, RoundPending, Backoff,
                  Draining, Done] {
            assert_eq!(stage_from_code(stage_code(s)), Some(s));
        }
        assert_eq!(stage_from_code("zz"), None);
    }

    #[test]
    fn display_is_single_line() {
        for ev in samples() {
            let text = ev.to_string();
            assert!(!text.is_empty() && !text.contains('\n'), "{text}");
        }
    }
}
