//! Memory-controller request records and multi-round write splitting.

use fpb_core::WriteId;
use fpb_pcm::{ChangeSet, LineWrite};
use fpb_types::{BankId, Cycles, LineAddr};

/// A queued demand read (an LLC miss fill).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadTask {
    /// Core blocked on this read.
    pub core: usize,
    /// Target line.
    pub line: LineAddr,
    /// Target bank.
    pub bank: BankId,
    /// Cycle the request entered the read queue.
    pub arrival: Cycles,
}

/// A queued line write (a dirty LLC eviction), possibly split into
/// multiple sequential *rounds* (§3.2): when a single write's RESET power
/// demand exceeds what the DIMM or a chip can ever supply, the line is
/// written in `k` rounds, each changing a balanced subset of the cells.
///
/// # Examples
///
/// ```
/// use fpb_pcm::{CellMapping, ChangeSet, MlcLevel};
/// use fpb_sim::request::split_rounds;
///
/// // 1000 changed cells against a 560-token budget need 2 rounds.
/// let cs: ChangeSet = (0..1000u32).map(|c| (c, MlcLevel::L00)).collect();
/// let rounds = split_rounds(&cs, Some(560), None, CellMapping::Bim, 8);
/// assert_eq!(rounds.len(), 2);
/// assert_eq!(rounds.iter().map(ChangeSet::len).sum::<usize>(), 1000);
/// ```
#[derive(Debug, Clone)]
pub struct WriteTask {
    /// Identifier (unique per round; round `r` of task `t` gets its own id
    /// when admitted).
    pub id: WriteId,
    /// Target line.
    pub line: LineAddr,
    /// Target bank.
    pub bank: BankId,
    /// Cycle the request entered the write queue.
    pub arrival: Cycles,
    /// Remaining rounds, front first. Always nonempty until completion.
    pub rounds: Vec<LineWrite>,
    /// Index of the round currently being (or next to be) written.
    pub current_round: usize,
    /// True once the bridge chip's read-before-write comparison has been
    /// charged (IPM policies pay one array read per line write).
    pub pre_read_done: bool,
    /// When the current round was admitted (drives the worst-case hold of
    /// the feedback-less-controller model).
    pub round_started_at: Cycles,
    /// Verify-failure retries issued for the current round (reset when a
    /// round passes verify).
    pub retries: u8,
    /// Iterations spent on the current round including all retries (the
    /// watchdog's trip signal; reset when a round closes).
    pub iterations_spent: u32,
    /// True once the watchdog force-closed the current round — its final
    /// verify is skipped so the bank is guaranteed to free up.
    pub watchdog_tripped: bool,
}

impl WriteTask {
    /// The round currently being written.
    ///
    /// # Panics
    ///
    /// Panics if all rounds are complete.
    pub fn round(&self) -> &LineWrite {
        &self.rounds[self.current_round]
    }

    /// Mutable access to the current round.
    ///
    /// # Panics
    ///
    /// Panics if all rounds are complete.
    pub fn round_mut(&mut self) -> &mut LineWrite {
        &mut self.rounds[self.current_round]
    }

    /// Advances to the next round. Returns `false` when no rounds remain
    /// (the task is finished).
    pub fn next_round(&mut self) -> bool {
        self.current_round += 1;
        self.current_round < self.rounds.len()
    }

    /// Total cells this task changes across all rounds.
    pub fn total_changed(&self) -> u32 {
        self.rounds.iter().map(LineWrite::total_changed).sum()
    }
}

/// Splits a change set into the minimum number of rounds such that each
/// round's whole-line demand fits `cap_total` tokens and each round's
/// per-chip demand (under `mapping`) fits `cap_chip` tokens — the
/// guarantee the engine relies on for forward progress: every round must
/// be admissible against an empty token ledger.
///
/// Cells are dealt round-robin *per chip*, so each round inherits the
/// original per-chip balance; the split count grows until both caps hold.
/// With no caps (the Ideal scheme) the original set is returned as a
/// single round.
///
/// This is the one-shot convenience wrapper; the engine keeps a
/// [`RoundSplitter`] whose grouping buffers persist across writes.
pub fn split_rounds(
    changes: &ChangeSet,
    cap_total: Option<u64>,
    cap_chip: Option<u64>,
    mapping: fpb_pcm::CellMapping,
    chips: u8,
) -> Vec<ChangeSet> {
    RoundSplitter::new().split(changes, cap_total, cap_chip, mapping, chips)
}

/// Reusable working buffers for [`split_rounds`]. The engine splits every
/// dirty eviction into rounds, so the per-chip grouping and dealing
/// scratch would otherwise be reallocated on each write; only the returned
/// [`ChangeSet`] rounds (which the caller keeps) are freshly allocated.
#[derive(Debug, Clone, Default)]
pub struct RoundSplitter {
    /// Cells grouped by owning chip (outer len = chip count).
    by_chip: Vec<Vec<(u32, fpb_pcm::MlcLevel)>>,
    /// Dealt rounds under the current trial split count `k`.
    rounds: Vec<Vec<(u32, fpb_pcm::MlcLevel)>>,
}

impl RoundSplitter {
    /// An empty splitter; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// See [`split_rounds`].
    pub fn split(
        &mut self,
        changes: &ChangeSet,
        cap_total: Option<u64>,
        cap_chip: Option<u64>,
        mapping: fpb_pcm::CellMapping,
        chips: u8,
    ) -> Vec<ChangeSet> {
        match self.split_in(changes, cap_total, cap_chip, mapping, chips) {
            None => vec![changes.clone()],
            Some(k) => (0..k)
                .map(|i| ChangeSet::from_cells(self.round(i).to_vec()))
                .collect(),
        }
    }

    /// Allocation-free core of [`RoundSplitter::split`]: splits into the
    /// splitter's internal buffers and returns the round count, with each
    /// round readable through [`RoundSplitter::round`] until the next
    /// split. Returns `None` when no splitting applies (no caps, or an
    /// empty change set) — the caller then uses `changes` itself as the
    /// single round, preserving its original cell order.
    ///
    /// # Panics
    ///
    /// Panics if a provided cap is zero.
    pub fn split_in(
        &mut self,
        changes: &ChangeSet,
        cap_total: Option<u64>,
        cap_chip: Option<u64>,
        mapping: fpb_pcm::CellMapping,
        chips: u8,
    ) -> Option<usize> {
        let n = changes.len() as u64;
        if n == 0 || (cap_total.is_none() && cap_chip.is_none()) {
            return None;
        }
        if let Some(cap) = cap_total {
            assert!(cap > 0, "total token cap must be nonzero");
        }
        if let Some(cap) = cap_chip {
            assert!(cap > 0, "chip token cap must be nonzero");
        }

        // Group cells by chip so dealing distributes each chip's cells
        // evenly. Inner vectors are cleared, not dropped, between writes.
        self.by_chip.iter_mut().for_each(Vec::clear);
        self.by_chip.resize(chips as usize, Vec::new());
        for &(cell, level) in changes.iter() {
            self.by_chip[mapping.chip_of(cell, chips).index()].push((cell, level));
        }
        let max_chip = self.by_chip.iter().map(Vec::len).max().unwrap_or(0) as u64;

        let mut k = 1u64;
        if let Some(cap) = cap_total {
            k = k.max(n.div_ceil(cap));
        }
        if let Some(cap) = cap_chip {
            k = k.max(max_chip.div_ceil(cap));
        }
        loop {
            let kk = k as usize;
            self.deal(kk);
            // The chip cap never needs rechecking: dealing hands each round
            // at most `ceil(chip_cells / k)` cells of any one chip, and `k`
            // started at `ceil(max_chip / cap_chip)` or higher. Only the
            // per-round *total* can still overflow — a round's total is the
            // sum of per-chip ceilings, which can exceed `ceil(n / k)`.
            let fits = cap_total
                .is_none_or(|cap| self.rounds[..kk].iter().all(|r| r.len() as u64 <= cap));
            if fits {
                return Some(kk);
            }
            k += 1;
            assert!(k <= n, "split cannot exceed one cell per round");
        }
    }

    /// Round `i` of the most recent [`RoundSplitter::split_in`] call.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range for that split.
    pub fn round(&self, i: usize) -> &[(u32, fpb_pcm::MlcLevel)] {
        &self.rounds[i]
    }

    /// Deals the grouped cells round-robin into the first `k` round
    /// buffers; buffers beyond `k` are kept (cleared) for reuse.
    fn deal(&mut self, k: usize) {
        if self.rounds.len() < k {
            self.rounds.resize(k, Vec::new());
        }
        self.rounds.iter_mut().for_each(Vec::clear);
        for chip_cells in &self.by_chip {
            for (j, &cl) in chip_cells.iter().enumerate() {
                self.rounds[j % k].push(cl);
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use fpb_pcm::MlcLevel;

    fn cs(n: u32) -> ChangeSet {
        (0..n).map(|c| (c, MlcLevel::L01)).collect()
    }

    use fpb_pcm::CellMapping;

    #[test]
    fn no_caps_no_split() {
        let c = cs(2000);
        let rounds = split_rounds(&c, None, None, CellMapping::Bim, 8);
        assert_eq!(rounds.len(), 1);
        assert_eq!(rounds[0], c);
    }

    #[test]
    fn total_cap_splits_evenly() {
        let c = cs(1024);
        let rounds = split_rounds(&c, Some(560), None, CellMapping::Bim, 8);
        assert_eq!(rounds.len(), 2);
        assert_eq!(rounds[0].len(), 512);
        assert_eq!(rounds[1].len(), 512);
    }

    #[test]
    fn fits_exactly_no_split() {
        let c = cs(560);
        assert_eq!(split_rounds(&c, Some(560), None, CellMapping::Bim, 8).len(), 1);
        let c = cs(561);
        assert_eq!(split_rounds(&c, Some(560), None, CellMapping::Bim, 8).len(), 2);
    }

    #[test]
    fn chip_cap_drives_split() {
        // 120 cells all on chip 0 under VIM (cell % 8 == 0) with a
        // 66-token chip cap -> 2 rounds even though the total fits the
        // DIMM budget.
        let c: ChangeSet = (0..120u32).map(|i| (i * 8, MlcLevel::L01)).collect();
        let rounds = split_rounds(&c, Some(560), Some(66), CellMapping::Vim, 8);
        assert_eq!(rounds.len(), 2);
        for r in &rounds {
            let per_chip = CellMapping::Vim.distribute(r.iter().map(|&(c, _)| c), 8);
            assert!(per_chip.iter().all(|&c| c <= 66), "{per_chip:?}");
        }
    }

    #[test]
    fn rounds_partition_cells() {
        let c = cs(777);
        let rounds = split_rounds(&c, Some(100), None, CellMapping::Naive, 8);
        assert_eq!(rounds.len(), 8);
        let mut all: Vec<u32> = rounds
            .iter()
            .flat_map(|r| r.iter().map(|&(c, _)| c))
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..777).collect::<Vec<_>>());
        for r in &rounds {
            assert!(r.len() <= 100);
        }
    }

    #[test]
    fn every_round_respects_both_caps() {
        // Adversarial clumping: many cells on two chips.
        let c: ChangeSet = (0..200u32)
            .map(|i| (if i % 2 == 0 { i * 8 } else { i * 8 + 1 }, MlcLevel::L10))
            .collect();
        let rounds = split_rounds(&c, Some(90), Some(30), CellMapping::Vim, 8);
        for r in &rounds {
            assert!(r.len() <= 90);
            let per_chip = CellMapping::Vim.distribute(r.iter().map(|&(c, _)| c), 8);
            assert!(per_chip.iter().all(|&n| n <= 30), "{per_chip:?}");
        }
        assert_eq!(rounds.iter().map(ChangeSet::len).sum::<usize>(), 200);
    }

    #[test]
    fn empty_changes_single_round() {
        let rounds = split_rounds(&ChangeSet::empty(), Some(560), None, CellMapping::Bim, 8);
        assert_eq!(rounds.len(), 1);
        assert!(rounds[0].is_empty());
    }

    #[test]
    fn split_in_matches_owned_split() {
        let c = cs(1024);
        let mut sp = RoundSplitter::new();
        let k = sp
            .split_in(&c, Some(560), Some(80), CellMapping::Bim, 8)
            .unwrap();
        let owned = sp.split(&c, Some(560), Some(80), CellMapping::Bim, 8);
        assert_eq!(k, owned.len());
        for (i, r) in owned.iter().enumerate() {
            assert_eq!(sp.round(i), r.cells(), "round {i}");
        }
        // No caps: the caller keeps the original set, no buffers touched.
        assert!(sp.split_in(&c, None, None, CellMapping::Bim, 8).is_none());
        assert!(sp
            .split_in(&ChangeSet::empty(), Some(10), None, CellMapping::Bim, 8)
            .is_none());
    }
}
