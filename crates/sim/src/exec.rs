//! A minimal worker pool for embarrassingly parallel simulation work.
//!
//! Sweep points and per-workload runs are independent, deterministic
//! computations, so the only thing a parallel driver must guarantee is
//! that results come back *in input order* regardless of which worker
//! finished first. This module provides exactly that on scoped threads —
//! no dependencies, no channels, no unsafe.
//!
//! Panic handling: every worker item runs under `catch_unwind`, so a
//! panic is captured with the slot index and payload message attached
//! ([`WorkerPanic`]) instead of tearing the whole pool down anonymously.
//! [`try_parallel_map_indexed`] surfaces that as an error;
//! [`parallel_map_indexed`] keeps the original panicking contract but
//! the re-raised panic now names the offending slot. Full supervision —
//! retry, quarantine, deadlines — lives in [`crate::supervise`].

use std::fmt;
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The default worker count: the machine's available parallelism, or 1
/// when that cannot be determined (e.g. restricted sandboxes).
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// A worker item panicked: carries *which* input index failed and the
/// panic payload rendered as text, so a 400-point sweep failure reads
/// "slot 217 panicked: swept config invalid …" rather than an anonymous
/// unwind out of a scoped join.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerPanic {
    /// Index of the input item whose closure call panicked.
    pub slot: usize,
    /// The panic payload (`&str` / `String` payloads verbatim, anything
    /// else a placeholder).
    pub message: String,
}

impl fmt::Display for WorkerPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "worker panicked at slot {}: {}", self.slot, self.message)
    }
}

impl std::error::Error for WorkerPanic {}

/// Renders a panic payload as text: `&str` and `String` payloads (what
/// `panic!`/`assert!` produce) come through verbatim, anything else as a
/// placeholder.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Unwraps a result slot, riding through lock poisoning: slots hold
/// plain `Option`s whose every state is valid to observe, and the
/// workers that could have poisoned them have already exited.
fn into_slot_value<R>(slot: Mutex<Option<R>>) -> Option<R> {
    slot.into_inner().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Maps `f` over `items` on up to `jobs` worker threads, returning the
/// results in input order, or the first (lowest-index) panic as a
/// [`WorkerPanic`].
///
/// Work distribution is a shared atomic cursor: each worker claims the
/// next unclaimed index when it finishes its current item, so long items
/// never leave idle workers behind (the useful half of work stealing
/// without the deques). With `jobs <= 1` — or a single item — everything
/// runs inline on the caller's thread, byte-for-byte the serial path.
///
/// On a panic the remaining workers finish their in-flight items and
/// drain the cursor, then the lowest-index failure is reported (workers
/// race, so which items *ran* after the panic is nondeterministic, but
/// the reported slot is not: simulation closures are deterministic, and
/// the lowest failing index is a pure function of the input).
///
/// `f` must be retry-agnostic about unwinds: a panicking call's partial
/// state is discarded wholesale (the pool asserts unwind safety on that
/// basis — nothing outside the call observes it).
pub fn try_parallel_map_indexed<T, R, F>(
    items: &[T],
    jobs: usize,
    f: F,
) -> Result<Vec<R>, WorkerPanic>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let run =
        |i: usize, t: &T| -> Result<R, WorkerPanic> {
            catch_unwind(AssertUnwindSafe(|| f(i, t))).map_err(|payload| WorkerPanic {
                slot: i,
                message: panic_message(payload.as_ref()),
            })
        };
    if jobs <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, t)| run(i, t)).collect();
    }
    let workers = jobs.min(items.len());
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Result<R, WorkerPanic>>>> =
        items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = run(i, &items[i]);
                if let Ok(mut slot) = slots[i].lock() {
                    *slot = Some(r);
                }
            });
        }
    });
    let mut out = Vec::with_capacity(items.len());
    for (i, slot) in slots.into_iter().enumerate() {
        match into_slot_value(slot) {
            Some(Ok(r)) => out.push(r),
            Some(Err(e)) => return Err(e),
            // Unreachable today (workers always store before moving on);
            // reported as a panic rather than silently dropping a slot.
            None => {
                return Err(WorkerPanic {
                    slot: i,
                    message: "worker exited without storing a result".to_string(),
                })
            }
        }
    }
    Ok(out)
}

/// [`try_parallel_map_indexed`] with the original panicking contract:
/// the first worker panic is re-raised on the caller's thread, its
/// message enriched with the slot index.
///
/// # Panics
///
/// A panic inside `f` is propagated to the caller once all workers have
/// stopped, as `worker panicked at slot N: <payload>`.
pub fn parallel_map_indexed<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    match try_parallel_map_indexed(items, jobs, f) {
        Ok(out) => out,
        // Documented contract of this wrapper: re-raise with context.
        // fpb-lint: allow(panic_freedom)
        Err(e) => panic!("{e}"),
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..97).collect();
        for jobs in [1, 2, 4, 8, 32] {
            let out = parallel_map_indexed(&items, jobs, |i, &x| {
                assert_eq!(i as u64, x);
                x * x
            });
            let expect: Vec<u64> = items.iter().map(|&x| x * x).collect();
            assert_eq!(out, expect, "jobs={jobs}");
        }
    }

    #[test]
    fn more_jobs_than_items() {
        let items = [1u32, 2, 3];
        let out = parallel_map_indexed(&items, 64, |_, &x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn empty_input() {
        let items: [u32; 0] = [];
        let out = parallel_map_indexed(&items, 4, |_, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let items: Vec<u64> = (0..200).collect();
        let f = |_: usize, &x: &u64| x.wrapping_mul(0x9E37_79B9).rotate_left(13);
        let serial = parallel_map_indexed(&items, 1, f);
        let parallel = parallel_map_indexed(&items, 7, f);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }

    #[test]
    fn worker_panic_propagates_with_slot_and_message() {
        let items: Vec<u32> = (0..16).collect();
        let r = std::panic::catch_unwind(|| {
            parallel_map_indexed(&items, 4, |_, &x| {
                assert!(x != 7, "boom");
                x
            })
        });
        let payload = r.expect_err("panic must propagate");
        let msg = panic_message(payload.as_ref());
        assert!(msg.contains("slot 7"), "slot index missing: {msg}");
        assert!(msg.contains("boom"), "payload message missing: {msg}");
    }

    #[test]
    fn try_map_reports_lowest_failing_slot() {
        let items: Vec<u32> = (0..32).collect();
        for jobs in [1, 4] {
            let err = try_parallel_map_indexed(&items, jobs, |_, &x| {
                if x % 10 == 3 {
                    panic!("bad point {x}");
                }
                x
            })
            .expect_err("must fail");
            assert_eq!(err.slot, 3, "jobs={jobs}");
            assert_eq!(err.message, "bad point 3");
            assert_eq!(err.to_string(), "worker panicked at slot 3: bad point 3");
        }
    }

    #[test]
    fn try_map_ok_path_matches_plain_map() {
        let items: Vec<u64> = (0..50).collect();
        let ok = try_parallel_map_indexed(&items, 5, |_, &x| x * 2).unwrap();
        assert_eq!(ok, parallel_map_indexed(&items, 5, |_, &x| x * 2));
    }

    #[test]
    fn non_string_payloads_are_placeholdered() {
        let payload: Box<dyn std::any::Any + Send> = Box::new(42u32);
        assert_eq!(panic_message(payload.as_ref()), "non-string panic payload");
    }
}
