//! A minimal worker pool for embarrassingly parallel simulation work.
//!
//! Sweep points and per-workload runs are independent, deterministic
//! computations, so the only thing a parallel driver must guarantee is
//! that results come back *in input order* regardless of which worker
//! finished first. This module provides exactly that on scoped threads —
//! no dependencies, no channels, no unsafe.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The default worker count: the machine's available parallelism, or 1
/// when that cannot be determined (e.g. restricted sandboxes).
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Maps `f` over `items` on up to `jobs` worker threads, returning the
/// results in input order.
///
/// Work distribution is a shared atomic cursor: each worker claims the
/// next unclaimed index when it finishes its current item, so long items
/// never leave idle workers behind (the useful half of work stealing
/// without the deques). With `jobs <= 1` — or a single item — everything
/// runs inline on the caller's thread, byte-for-byte the serial path.
///
/// # Panics
///
/// A panic inside `f` is propagated to the caller once all workers have
/// stopped (scoped threads join on scope exit).
pub fn parallel_map_indexed<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if jobs <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let workers = jobs.min(items.len());
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(i, &items[i]);
                *slots[i].lock().expect("result slot poisoned") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("result slot poisoned")
                .expect("worker exited without storing a result")
        })
        .collect()
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..97).collect();
        for jobs in [1, 2, 4, 8, 32] {
            let out = parallel_map_indexed(&items, jobs, |i, &x| {
                assert_eq!(i as u64, x);
                x * x
            });
            let expect: Vec<u64> = items.iter().map(|&x| x * x).collect();
            assert_eq!(out, expect, "jobs={jobs}");
        }
    }

    #[test]
    fn more_jobs_than_items() {
        let items = [1u32, 2, 3];
        let out = parallel_map_indexed(&items, 64, |_, &x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn empty_input() {
        let items: [u32; 0] = [];
        let out = parallel_map_indexed(&items, 4, |_, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let items: Vec<u64> = (0..200).collect();
        let f = |_: usize, &x: &u64| x.wrapping_mul(0x9E37_79B9).rotate_left(13);
        let serial = parallel_map_indexed(&items, 1, f);
        let parallel = parallel_map_indexed(&items, 7, f);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }

    #[test]
    fn worker_panic_propagates() {
        let items: Vec<u32> = (0..16).collect();
        let r = std::panic::catch_unwind(|| {
            parallel_map_indexed(&items, 4, |_, &x| {
                assert!(x != 7, "boom");
                x
            })
        });
        assert!(r.is_err());
    }
}
