//! A minimal worker pool for embarrassingly parallel simulation work.
//!
//! Sweep points and per-workload runs are independent, deterministic
//! computations, so the only thing a parallel driver must guarantee is
//! that results come back *in input order* regardless of which worker
//! finished first. This module provides exactly that on scoped threads —
//! no dependencies, no channels, no unsafe.
//!
//! Two scheduling refinements beyond the naive shared cursor:
//!
//! - **Per-slot arenas** ([`try_parallel_map_arena`]): each worker slot
//!   constructs one arena via an init closure and threads it mutably
//!   through every item it claims. Simulation workers use this to build
//!   their buffer pools once and reuse them across grid points instead
//!   of cold-starting allocation per point. Results must not depend on
//!   arena history (reuse may only change *allocation* behaviour) — the
//!   sweep's pools guarantee exactly that by clearing before use.
//! - **Cost-aware chunked claiming**: callers may pass per-item cost
//!   estimates; items are claimed in descending-cost order so the
//!   longest points start first and cannot strand the pool at the tail.
//!   Claims take shrinking chunks of the schedule (guided
//!   self-scheduling: `remaining / (workers * 4)`, capped) to cut
//!   cursor contention on big grids, degrading to single-point claims
//!   near the tail to keep every worker saturated. Output order is
//!   always input order — the schedule only permutes *execution*.
//!
//! Worker counts are clamped to the machine's available parallelism:
//! requesting `--jobs 4` on a 1-core container would otherwise
//! timeslice four threads over one core and run *slower* than serial
//! (measured 0.612x before the clamp; see DESIGN.md's threading-model
//! section).
//!
//! Panic handling: every worker item runs under `catch_unwind`, so a
//! panic is captured with the slot index and payload message attached
//! ([`WorkerPanic`]) instead of tearing the whole pool down anonymously.
//! [`try_parallel_map_indexed`] surfaces that as an error;
//! [`parallel_map_indexed`] keeps the original panicking contract but
//! the re-raised panic now names the offending slot. Full supervision —
//! retry, quarantine, deadlines — lives in [`crate::supervise`].

use std::fmt;
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The default worker count: the machine's available parallelism, or 1
/// when that cannot be determined (e.g. restricted sandboxes).
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Upper bound on items claimed in a single cursor advance. Keeps the
/// schedule responsive to stragglers: a chunk is at most this many
/// points even on very large grids.
const MAX_CLAIM_CHUNK: usize = 8;

/// The worker-thread count actually spawned for `jobs` requested jobs
/// over `items` items: never more threads than items (idle from birth)
/// and never more than the machine's logical cores (oversubscription —
/// timeslicing simulation threads over too few cores is strictly slower
/// than not spawning them).
pub fn effective_workers(jobs: usize, items: usize) -> usize {
    jobs.max(1).min(items.max(1)).min(default_jobs())
}

/// Builds an execution schedule from per-item cost estimates: item
/// indices stably sorted by descending cost, so the most expensive
/// items are claimed first (classic LPT-style list scheduling). Ties
/// keep input order, making the schedule deterministic.
pub fn schedule_by_cost(costs: &[u64]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..costs.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(costs[i]));
    order
}

/// A worker item panicked: carries *which* input index failed and the
/// panic payload rendered as text, so a 400-point sweep failure reads
/// "slot 217 panicked: swept config invalid …" rather than an anonymous
/// unwind out of a scoped join.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerPanic {
    /// Index of the input item whose closure call panicked.
    pub slot: usize,
    /// The panic payload (`&str` / `String` payloads verbatim, anything
    /// else a placeholder).
    pub message: String,
}

impl fmt::Display for WorkerPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "worker panicked at slot {}: {}", self.slot, self.message)
    }
}

impl std::error::Error for WorkerPanic {}

/// Renders a panic payload as text: `&str` and `String` payloads (what
/// `panic!`/`assert!` produce) come through verbatim, anything else as a
/// placeholder.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Unwraps a result slot, riding through lock poisoning: slots hold
/// plain `Option`s whose every state is valid to observe, and the
/// workers that could have poisoned them have already exited.
fn into_slot_value<R>(slot: Mutex<Option<R>>) -> Option<R> {
    slot.into_inner().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Claims the next chunk of schedule positions off the shared cursor.
/// Chunk size is guided self-scheduling — proportional to the work
/// remaining per worker, capped, and never below one — so early claims
/// amortize cursor traffic while the tail degrades to single-point
/// claims that keep all workers busy until the grid is drained.
fn claim_chunk(next: &AtomicUsize, total: usize, workers: usize) -> Option<(usize, usize)> {
    loop {
        // ORDER: the cursor is a pure claim counter — no data is
        // published through it, results flow via per-slot Mutexes.
        let start = next.load(Ordering::Relaxed);
        if start >= total {
            return None;
        }
        let remaining = total - start;
        let take = (remaining / (workers * 4)).clamp(1, MAX_CLAIM_CHUNK);
        match next.compare_exchange_weak(
            start,
            start + take,
            // ORDER: the CAS only arbitrates who owns [start, start+take);
            // claimed items are read-only input, so Relaxed on both edges.
            Ordering::Relaxed,
            Ordering::Relaxed,
        ) {
            Ok(_) => return Some((start, start + take)),
            Err(_) => continue,
        }
    }
}

/// Maps `f` over `items` on up to `jobs` worker threads — each carrying
/// a per-slot arena built once by `init` — returning results in input
/// order, or the first (lowest-index) panic as a [`WorkerPanic`].
///
/// `init(slot)` runs once on each spawned worker (slots `0..workers`),
/// and the arena it returns is passed `&mut` to every `f` call that
/// worker makes. Arenas exist to recycle allocations across items;
/// `f`'s *results* must not depend on which arena served an item or
/// what it processed before (the jobs-invariance tests enforce this for
/// the sweep). The serial path (`jobs <= 1` or a single item) builds
/// one arena and runs everything inline on the caller's thread.
///
/// `costs`, when provided (and matching `items` in length), reorders
/// *execution* — descending cost, ties in input order — while output
/// order stays input order. A mismatched length falls back to input
/// order rather than failing a whole sweep over a bookkeeping bug.
///
/// On a panic the remaining workers finish their in-flight items and
/// drain the cursor, then the lowest-index failure is reported (workers
/// race, so which items *ran* after the panic is nondeterministic, but
/// the reported slot is not: simulation closures are deterministic, and
/// the lowest failing index is a pure function of the input).
///
/// `f` must be retry-agnostic about unwinds: a panicking call's partial
/// state is discarded wholesale (the pool asserts unwind safety on that
/// basis — nothing outside the call observes it).
pub fn try_parallel_map_arena<T, R, A, I, F>(
    items: &[T],
    jobs: usize,
    costs: Option<&[u64]>,
    init: I,
    f: F,
) -> Result<Vec<R>, WorkerPanic>
where
    T: Sync,
    R: Send,
    I: Fn(usize) -> A + Sync,
    F: Fn(&mut A, usize, &T) -> R + Sync,
{
    let n = items.len();
    let run = |arena: &mut A, i: usize, t: &T| -> Result<R, WorkerPanic> {
        catch_unwind(AssertUnwindSafe(|| f(arena, i, t))).map_err(|payload| WorkerPanic {
            slot: i,
            message: panic_message(payload.as_ref()),
        })
    };
    let schedule: Option<Vec<usize>> = match costs {
        Some(c) if c.len() == n => Some(schedule_by_cost(c)),
        _ => None,
    };
    let item_at = |pos: usize| schedule.as_ref().map_or(pos, |s| s[pos]);
    let workers = effective_workers(jobs, n);
    if workers <= 1 || n <= 1 {
        // Inline serial path: one arena, input order (the schedule only
        // matters when workers race; serial output is order-identical).
        let mut arena = init(0);
        return items
            .iter()
            .enumerate()
            .map(|(i, t)| run(&mut arena, i, t))
            .collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Result<R, WorkerPanic>>>> =
        items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for slot_id in 0..workers {
            let next = &next;
            let slots = &slots;
            let init = &init;
            let run = &run;
            let item_at = &item_at;
            scope.spawn(move || {
                let mut arena = init(slot_id);
                while let Some((from, to)) = claim_chunk(next, n, workers) {
                    for pos in from..to {
                        let i = item_at(pos);
                        let r = run(&mut arena, i, &items[i]);
                        if let Ok(mut slot) = slots[i].lock() {
                            *slot = Some(r);
                        }
                    }
                }
            });
        }
    });
    let mut out = Vec::with_capacity(n);
    for (i, slot) in slots.into_iter().enumerate() {
        match into_slot_value(slot) {
            Some(Ok(r)) => out.push(r),
            Some(Err(e)) => return Err(e),
            // Unreachable today (workers always store before moving on);
            // reported as a panic rather than silently dropping a slot.
            None => {
                return Err(WorkerPanic {
                    slot: i,
                    message: "worker exited without storing a result".to_string(),
                })
            }
        }
    }
    Ok(out)
}

/// [`try_parallel_map_arena`] with the panicking contract of
/// [`parallel_map_indexed`]: the first worker panic is re-raised on the
/// caller's thread, its message enriched with the slot index.
///
/// # Panics
///
/// A panic inside `f` is propagated to the caller once all workers have
/// stopped, as `worker panicked at slot N: <payload>`.
pub fn parallel_map_arena<T, R, A, I, F>(
    items: &[T],
    jobs: usize,
    costs: Option<&[u64]>,
    init: I,
    f: F,
) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn(usize) -> A + Sync,
    F: Fn(&mut A, usize, &T) -> R + Sync,
{
    match try_parallel_map_arena(items, jobs, costs, init, f) {
        Ok(out) => out,
        // Documented contract of this wrapper: re-raise with context.
        // fpb-lint: allow(panic_freedom)
        Err(e) => panic!("{e}"),
    }
}

/// Maps `f` over `items` on up to `jobs` worker threads, returning the
/// results in input order, or the first (lowest-index) panic as a
/// [`WorkerPanic`]. Arena-free, cost-agnostic convenience over
/// [`try_parallel_map_arena`].
pub fn try_parallel_map_indexed<T, R, F>(
    items: &[T],
    jobs: usize,
    f: F,
) -> Result<Vec<R>, WorkerPanic>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    try_parallel_map_arena(items, jobs, None, |_| (), |(), i, t| f(i, t))
}

/// [`try_parallel_map_indexed`] with the original panicking contract:
/// the first worker panic is re-raised on the caller's thread, its
/// message enriched with the slot index.
///
/// # Panics
///
/// A panic inside `f` is propagated to the caller once all workers have
/// stopped, as `worker panicked at slot N: <payload>`.
pub fn parallel_map_indexed<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    match try_parallel_map_indexed(items, jobs, f) {
        Ok(out) => out,
        // Documented contract of this wrapper: re-raise with context.
        // fpb-lint: allow(panic_freedom)
        Err(e) => panic!("{e}"),
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..97).collect();
        for jobs in [1, 2, 4, 8, 32] {
            let out = parallel_map_indexed(&items, jobs, |i, &x| {
                assert_eq!(i as u64, x);
                x * x
            });
            let expect: Vec<u64> = items.iter().map(|&x| x * x).collect();
            assert_eq!(out, expect, "jobs={jobs}");
        }
    }

    #[test]
    fn more_jobs_than_items() {
        let items = [1u32, 2, 3];
        let out = parallel_map_indexed(&items, 64, |_, &x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn empty_input() {
        let items: [u32; 0] = [];
        let out = parallel_map_indexed(&items, 4, |_, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let items: Vec<u64> = (0..200).collect();
        let f = |_: usize, &x: &u64| x.wrapping_mul(0x9E37_79B9).rotate_left(13);
        let serial = parallel_map_indexed(&items, 1, f);
        let parallel = parallel_map_indexed(&items, 7, f);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }

    #[test]
    fn effective_workers_clamps_to_items_and_cores() {
        assert_eq!(effective_workers(0, 10), 1);
        assert_eq!(effective_workers(1, 10), 1);
        assert_eq!(effective_workers(8, 3), effective_workers(8, 3).min(3));
        assert!(effective_workers(64, 1000) <= default_jobs());
        assert!(effective_workers(64, 1000) >= 1);
        // Never more workers than items, however many cores exist.
        assert_eq!(effective_workers(usize::MAX, 2).min(2), effective_workers(usize::MAX, 2));
    }

    #[test]
    fn schedule_by_cost_is_descending_and_stable() {
        let costs = [5u64, 9, 1, 9, 7];
        // Descending by cost; the two 9s keep input order (1 before 3).
        assert_eq!(schedule_by_cost(&costs), vec![1, 3, 4, 0, 2]);
        assert!(schedule_by_cost(&[]).is_empty());
        // Uniform costs degrade to input order.
        assert_eq!(schedule_by_cost(&[4, 4, 4]), vec![0, 1, 2]);
    }

    #[test]
    fn claim_chunks_cover_every_position_exactly_once() {
        for total in [1usize, 7, 64, 1000] {
            for workers in [1usize, 3, 8] {
                let next = AtomicUsize::new(0);
                let mut seen = vec![false; total];
                while let Some((from, to)) = claim_chunk(&next, total, workers) {
                    assert!(to <= total);
                    assert!(to - from <= MAX_CLAIM_CHUNK);
                    for (p, slot) in seen.iter_mut().enumerate().take(to).skip(from) {
                        assert!(!*slot, "position {p} claimed twice");
                        *slot = true;
                    }
                }
                assert!(seen.iter().all(|&s| s), "total={total} workers={workers}");
            }
        }
    }

    #[test]
    fn arena_results_in_input_order_regardless_of_costs() {
        let items: Vec<u64> = (0..120).collect();
        let expect: Vec<u64> = items.iter().map(|&x| x * 3).collect();
        // Costs shaped every which way: none, uniform, ascending,
        // descending, and adversarially interleaved.
        let cost_shapes: [Option<Vec<u64>>; 5] = [
            None,
            Some(vec![1; 120]),
            Some((0..120).collect()),
            Some((0..120).rev().collect()),
            Some((0..120).map(|i| (i * 7919) % 97).collect()),
        ];
        for costs in &cost_shapes {
            for jobs in [1, 2, 4, 8] {
                let out = parallel_map_arena(
                    &items,
                    jobs,
                    costs.as_deref(),
                    |_| Vec::<u64>::new(),
                    |scratch, _, &x| {
                        scratch.push(x);
                        x * 3
                    },
                );
                assert_eq!(out, expect, "jobs={jobs} costs={costs:?}");
            }
        }
    }

    #[test]
    fn mismatched_cost_length_falls_back_to_input_order() {
        let items: Vec<u32> = (0..10).collect();
        let out = parallel_map_arena(&items, 4, Some(&[1, 2, 3]), |_| (), |(), _, &x| x + 1);
        assert_eq!(out, (1..11).collect::<Vec<u32>>());
    }

    #[test]
    fn arena_init_runs_once_per_worker_slot() {
        let items: Vec<u32> = (0..50).collect();
        let inits = AtomicUsize::new(0);
        let slots_seen = Mutex::new(HashSet::new());
        let out = parallel_map_arena(
            &items,
            4,
            None,
            |slot| {
                inits.fetch_add(1, Ordering::SeqCst);
                slots_seen.lock().unwrap().insert(slot);
                0u64
            },
            |count, _, &x| {
                *count += 1;
                x
            },
        );
        assert_eq!(out, items);
        let n_inits = inits.load(Ordering::SeqCst);
        let workers = effective_workers(4, items.len());
        assert_eq!(n_inits, workers, "one arena per spawned worker");
        let seen = slots_seen.lock().unwrap();
        assert_eq!(seen.len(), workers, "slot ids distinct: {seen:?}");
        assert!(seen.iter().all(|&s| s < workers));
    }

    #[test]
    fn arena_state_carries_across_items_on_a_worker() {
        // Each worker's arena counts the items it processed; the total
        // across workers must equal the item count (every item ran on
        // exactly one arena).
        let items: Vec<u32> = (0..64).collect();
        let total = AtomicU64::new(0);
        struct Counter<'a> {
            local: u64,
            total: &'a AtomicU64,
        }
        impl Drop for Counter<'_> {
            fn drop(&mut self) {
                self.total.fetch_add(self.local, Ordering::SeqCst);
            }
        }
        parallel_map_arena(
            &items,
            4,
            None,
            |_| Counter { local: 0, total: &total },
            |c, _, &x| {
                c.local += 1;
                x
            },
        );
        assert_eq!(total.load(Ordering::SeqCst), items.len() as u64);
    }

    #[test]
    fn worker_panic_propagates_with_slot_and_message() {
        let items: Vec<u32> = (0..16).collect();
        let r = std::panic::catch_unwind(|| {
            parallel_map_indexed(&items, 4, |_, &x| {
                assert!(x != 7, "boom");
                x
            })
        });
        let payload = r.expect_err("panic must propagate");
        let msg = panic_message(payload.as_ref());
        assert!(msg.contains("slot 7"), "slot index missing: {msg}");
        assert!(msg.contains("boom"), "payload message missing: {msg}");
    }

    #[test]
    fn try_map_reports_lowest_failing_slot() {
        let items: Vec<u32> = (0..32).collect();
        for jobs in [1, 4] {
            let err = try_parallel_map_indexed(&items, jobs, |_, &x| {
                if x % 10 == 3 {
                    panic!("bad point {x}");
                }
                x
            })
            .expect_err("must fail");
            assert_eq!(err.slot, 3, "jobs={jobs}");
            assert_eq!(err.message, "bad point 3");
            assert_eq!(err.to_string(), "worker panicked at slot 3: bad point 3");
        }
    }

    #[test]
    fn lowest_failing_slot_survives_cost_reordering() {
        // Execution order puts slot 3 last, but the reported panic is
        // still the lowest *input* index, not the first executed.
        let items: Vec<u32> = (0..32).collect();
        let costs: Vec<u64> = (0..32).map(|i| if i == 3 { 0 } else { 100 }).collect();
        let err = try_parallel_map_arena(&items, 4, Some(&costs), |_| (), |(), _, &x| {
            if x % 10 == 3 {
                panic!("bad point {x}");
            }
            x
        })
        .expect_err("must fail");
        assert_eq!(err.slot, 3);
    }

    #[test]
    fn try_map_ok_path_matches_plain_map() {
        let items: Vec<u64> = (0..50).collect();
        let ok = try_parallel_map_indexed(&items, 5, |_, &x| x * 2).unwrap();
        assert_eq!(ok, parallel_map_indexed(&items, 5, |_, &x| x * 2));
    }

    #[test]
    fn non_string_payloads_are_placeholdered() {
        let payload: Box<dyn std::any::Any + Send> = Box::new(42u32);
        assert_eq!(panic_message(payload.as_ref()), "non-string panic payload");
    }
}
