//! Per-core front end: closed-loop trace replay through a private LLC.

use fpb_cache::{CoreCaches, HitLevel, SetAssocCache};
use fpb_trace::{CoreTraceGenerator, DataProfile, TraceOp, WorkloadProfile};
use fpb_types::{CacheHierarchyConfig, ConfigError, CoreId, Cycles, SimRng};

/// Result of pushing one trace operation into the core's cache front end.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LlcOutcome {
    /// For reads: true if a cache level had the line.
    pub hit: bool,
    /// Deepest level that serviced the access.
    pub level: HitLevel,
    /// A demand fill the core must block on (PCM line index).
    pub fill: Option<u64>,
    /// Dirty victims that must be written to PCM (line indices).
    pub writebacks: Vec<u64>,
}

/// The cache stack in front of one core.
///
/// The default (`LlcOnly`) front end models trace operations as
/// L2-miss-level traffic hitting the private DRAM LLC directly — fast and
/// faithful for the paper's workload models, whose intensities are
/// post-L2 rates. `Full` runs the complete L1/L2/L3 stack of Table 1 for
/// full-fidelity studies (enable with
/// [`crate::SimOptions::full_hierarchy`]).
#[derive(Debug, Clone)]
pub enum CacheFrontEnd {
    /// Private DRAM LLC only.
    LlcOnly(SetAssocCache),
    /// Full private L1 → L2 → DRAM L3 stack.
    Full(CoreCaches),
}

/// One core of the CMP: its trace generator, private LLC, and replay
/// state.
///
/// The front end models the paper's 8-core in-order CMP at the LLC access
/// level: trace operations arrive with instruction gaps (1 instr/cycle);
/// loads that miss the LLC block the core until the PCM read returns;
/// stores are L2 write-backs arriving at the LLC — they allocate without a
/// fill and never block the core directly (back-pressure comes from the
/// controller's write-burst mode, which blocks reads). L1/L2 hit time is
/// folded into the instruction gaps — a documented simplification; the
/// full [`fpb_cache::CoreCaches`] hierarchy is available for full-fidelity
/// runs.
///
/// # Examples
///
/// ```
/// use fpb_sim::frontend::CoreState;
/// use fpb_trace::catalog;
/// use fpb_types::{CacheHierarchyConfig, CoreId, SimRng};
///
/// let profile = catalog::program("S.copy").unwrap();
/// let mut rng = SimRng::seed_from(1);
/// let mut core = CoreState::new(
///     profile,
///     CoreId::new(0),
///     &CacheHierarchyConfig::default(),
///     &mut rng,
/// ).unwrap();
/// let op = core.take_op().unwrap();
/// let out = core.llc_access(op.addr, op.is_write);
/// assert!(!out.hit); // cold cache
/// ```
#[derive(Debug, Clone)]
pub struct CoreState {
    gen: CoreTraceGenerator,
    front: CacheFrontEnd,
    line_bytes: u64,
    llc_lines: u64,
    /// When the pending operation arrives at the LLC.
    pub ready_at: Cycles,
    /// The operation arriving at `ready_at`.
    pub next_op: Option<TraceOp>,
    /// True while blocked on an outstanding PCM read.
    pub blocked: bool,
    /// Instructions retired so far.
    pub instructions: u64,
    /// True once the instruction budget is met.
    pub done: bool,
    /// Cycle at which the budget was met.
    pub done_at: Cycles,
}

impl CoreState {
    /// Builds the core and schedules its first operation.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the LLC geometry is invalid.
    pub fn new(
        profile: WorkloadProfile,
        core: CoreId,
        cache: &CacheHierarchyConfig,
        rng: &mut SimRng,
    ) -> Result<Self, ConfigError> {
        Self::with_mode(profile, core, cache, rng, false)
    }

    /// Builds the core with an explicit front-end mode: `full_hierarchy`
    /// runs the complete L1/L2/L3 stack instead of the LLC alone.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if any cache geometry is invalid.
    pub fn with_mode(
        profile: WorkloadProfile,
        core: CoreId,
        cache: &CacheHierarchyConfig,
        rng: &mut SimRng,
        full_hierarchy: bool,
    ) -> Result<Self, ConfigError> {
        let front = if full_hierarchy {
            CacheFrontEnd::Full(CoreCaches::new(cache)?)
        } else {
            CacheFrontEnd::LlcOnly(SetAssocCache::new(
                cache.l3_mib_per_core as u64 * 1024 * 1024,
                cache.l3_line_bytes as u64,
                cache.l3_ways as usize,
            )?)
        };
        let mut gen = CoreTraceGenerator::for_core(profile, core, rng);
        let first = gen.next_op();
        let llc_lines =
            cache.l3_mib_per_core as u64 * 1024 * 1024 / cache.l3_line_bytes as u64;
        Ok(CoreState {
            front,
            line_bytes: cache.l3_line_bytes as u64,
            llc_lines,
            ready_at: Cycles::new(first.gap_instructions),
            next_op: Some(first),
            gen,
            blocked: false,
            instructions: 0,
            done: false,
            done_at: Cycles::ZERO,
        })
    }

    /// The data-change profile of the program this core runs.
    pub fn data_profile(&self) -> &DataProfile {
        &self.gen.profile().data
    }

    /// Takes the pending operation, if any (the engine calls this at
    /// `ready_at`; `None` means nothing is scheduled — a blocked or done
    /// core).
    pub fn take_op(&mut self) -> Option<TraceOp> {
        self.next_op.take()
    }

    /// Pushes one operation through the cache front end.
    pub fn llc_access(&mut self, addr: u64, is_write: bool) -> LlcOutcome {
        match &mut self.front {
            CacheFrontEnd::LlcOnly(llc) => {
                let r = llc.access(addr, is_write);
                let mut out = LlcOutcome {
                    hit: r.hit,
                    level: if r.hit { HitLevel::L3 } else { HitLevel::Memory },
                    fill: None,
                    writebacks: Vec::new(),
                };
                if !r.hit && !is_write {
                    // Demand load miss: blocking PCM fill. (Store misses
                    // are L2 write-backs and allocate without a fill.)
                    out.fill = Some(addr / self.line_bytes);
                }
                if let Some(v) = r.victim {
                    if v.dirty {
                        out.writebacks.push(v.addr / self.line_bytes);
                    }
                }
                out
            }
            CacheFrontEnd::Full(stack) => {
                let h = stack.access(addr, is_write);
                LlcOutcome {
                    hit: h.level != HitLevel::Memory,
                    level: h.level,
                    fill: h.pcm_fills.first().copied(),
                    writebacks: h.pcm_writebacks,
                }
            }
        }
    }

    /// Schedules the next operation `base` cycles into the future plus its
    /// instruction gap, and retires the gap's instructions. Marks the core
    /// done once `target` instructions have retired.
    pub fn schedule_next(&mut self, finish_time: Cycles, target: u64) {
        debug_assert!(self.next_op.is_none(), "operation already pending");
        if self.done {
            return;
        }
        if self.instructions >= target {
            self.done = true;
            self.done_at = finish_time;
            return;
        }
        let op = self.gen.next_op();
        self.instructions += op.gap_instructions;
        self.ready_at = finish_time + Cycles::new(op.gap_instructions);
        self.next_op = Some(op);
    }

    /// LLC statistics (the L3's, in full-hierarchy mode).
    pub fn llc_stats(&self) -> &fpb_cache::CacheStats {
        match &self.front {
            CacheFrontEnd::LlcOnly(llc) => llc.stats(),
            CacheFrontEnd::Full(stack) => stack.l3_stats(),
        }
    }

    /// Warms the LLC before measurement so dirty evictions flow from
    /// cycle 0, as they do in the paper's SimPoint-selected phases.
    ///
    /// Three stages:
    ///
    /// 1. Fill every set to capacity with a diffuse sample of the core's
    ///    region (stride 17 lines, coprime to the power-of-two set count),
    ///    dirtying lines with the profile's store fraction — a 32 MB cache
    ///    never fills from a short trace alone.
    /// 2. Walk each tier whose footprint fits the LLC once, smallest last,
    ///    so the steady-state resident (hot) sets are in place.
    /// 3. Stream `ops` generator operations to mix recency realistically.
    pub fn warm_up(&mut self, ops: u64, rng: &mut SimRng) {
        let lines = self.llc_lines;
        let llc_bytes = lines * self.line_bytes;
        let base = self.gen.base_addr();
        let dirty_frac = self.gen.write_fraction();
        let region = fpb_trace::generator::CORE_REGION_BYTES;
        for i in 0..lines {
            let addr = base + (i * self.line_bytes * 17) % region;
            let _ = self.llc_access(addr, rng.bernoulli(dirty_frac));
        }
        let mut regions = self.gen.tier_regions();
        regions.retain(|r| r.bytes <= llc_bytes);
        regions.sort_by_key(|r| std::cmp::Reverse(r.bytes)); // smallest (hottest) last
        for r in regions {
            let mut off = 0;
            while off < r.bytes {
                let addr = r.start - base + off;
                let _ = self.llc_access(base + addr % region, rng.bernoulli(r.write_fraction));
                off += self.line_bytes;
            }
        }
        for _ in 0..ops {
            let op = self.gen.next_op();
            let _ = self.llc_access(op.addr, op.is_write);
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use fpb_trace::catalog;

    fn core(seed: u64) -> CoreState {
        let mut rng = SimRng::seed_from(seed);
        CoreState::new(
            catalog::program("C.mcf").unwrap(),
            CoreId::new(0),
            &CacheHierarchyConfig::default(),
            &mut rng,
        )
        .unwrap()
    }

    #[test]
    fn first_op_scheduled_at_its_gap() {
        let c = core(1);
        let op = c.next_op.unwrap();
        assert_eq!(c.ready_at, Cycles::new(op.gap_instructions));
        assert!(!c.blocked && !c.done);
    }

    #[test]
    fn read_miss_requests_fill_write_miss_does_not() {
        let mut c = core(2);
        let out = c.llc_access(0x1234_0000, false);
        assert!(!out.hit);
        assert_eq!(out.fill, Some(0x1234_0000 / 256));
        let out = c.llc_access(0x4321_0000, true);
        assert!(out.fill.is_none());
    }

    #[test]
    fn hot_line_hits_after_fill() {
        let mut c = core(3);
        c.llc_access(0x100, false);
        let out = c.llc_access(0x100, false);
        assert!(out.hit);
        assert!(out.fill.is_none());
    }

    #[test]
    fn dirty_evictions_surface_as_writebacks() {
        let mut c = core(4);
        // Dirty one line, then evict it by filling its set (32 MiB, 8-way,
        // 256 B lines -> 16384 sets; same set every 16384 lines).
        c.llc_access(0, true);
        let stride = 16384u64 * 256;
        let mut wbs = Vec::new();
        for i in 1..=9u64 {
            wbs.extend(c.llc_access(i * stride, false).writebacks);
        }
        assert!(wbs.contains(&0), "writebacks: {wbs:?}");
    }

    #[test]
    fn retires_instructions_until_done() {
        let mut c = core(5);
        let target = 10_000;
        let mut t = c.ready_at;
        let mut guard = 0;
        while !c.done {
            assert!(c.take_op().is_some());
            c.schedule_next(t, target);
            t = c.ready_at.max(t + Cycles::new(1));
            guard += 1;
            assert!(guard < 100_000, "runaway");
        }
        assert!(c.instructions >= target);
        assert!(c.done_at >= Cycles::ZERO);
        // Once done, no more ops are produced.
        c.schedule_next(t, target);
        assert!(c.next_op.is_none());
    }
}
