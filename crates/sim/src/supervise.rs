//! Supervised job execution: panic isolation, deadlines, bounded retry,
//! and quarantine for embarrassingly parallel simulation work.
//!
//! [`exec::parallel_map_indexed`](crate::exec::parallel_map_indexed) is
//! the *optimistic* pool: one panicking point aborts the whole map. This
//! module is the *pessimistic* wrapper large sweeps need: every job runs
//! under `catch_unwind`, a panicking job is retried with deterministic
//! backoff and — if it keeps failing — quarantined so the rest of the
//! grid still completes, an optional watchdog thread declares jobs hung
//! after a per-job deadline, and a [`CancelToken`] stops admission
//! gracefully (in-flight jobs finish; unstarted jobs are skipped).
//!
//! Determinism: with deadlines disabled and no cancellation, a supervised
//! map returns exactly what the plain pool returns, in input order, for
//! any worker count. Outcomes then depend only on the jobs themselves
//! (a deterministic panic always yields the same quarantine), never on
//! timing.

// Deadlines and retry backoff are wall-clock by nature. The clock never
// feeds simulation results: a job's output is produced by the
// deterministic engine, and the wall clock only decides whether a job is
// declared hung — an opt-in knob that is off by default and off in every
// determinism gate.
// fpb-lint: allow-file(determinism)

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::exec::panic_message;

/// Cooperative cancellation handle shared between a supervisor and its
/// caller: cancelling stops *admission* of new jobs; jobs already running
/// finish normally and are recorded.
///
/// # Examples
///
/// ```
/// use fpb_sim::supervise::CancelToken;
///
/// let t = CancelToken::new();
/// assert!(!t.is_cancelled());
/// t.cancel();
/// assert!(t.is_cancelled());
/// ```
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Requests cancellation (idempotent).
    pub fn cancel(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// True once [`CancelToken::cancel`] has been called.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

/// Retry, deadline, and worker-count policy for a supervised map.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupervisePolicy {
    /// Worker threads (`<= 1` still isolates panics, on one worker).
    pub jobs: usize,
    /// Retry attempts after the first failure (`0` = quarantine on the
    /// first panic; total attempts = `max_retries + 1`).
    pub max_retries: u32,
    /// Base of the deterministic exponential backoff between retries.
    pub backoff_base_ms: u64,
    /// Cap on a single backoff sleep.
    pub backoff_cap_ms: u64,
    /// Per-job wall-clock deadline (covers all attempts including
    /// backoff). `None` disables the watchdog entirely.
    pub deadline_ms: Option<u64>,
}

impl Default for SupervisePolicy {
    fn default() -> Self {
        SupervisePolicy {
            jobs: 1,
            max_retries: 0,
            backoff_base_ms: 50,
            backoff_cap_ms: 2_000,
            deadline_ms: None,
        }
    }
}

impl SupervisePolicy {
    /// Deterministic backoff before retry number `attempt` (1-based):
    /// `base * 2^(attempt-1)`, capped at [`SupervisePolicy::backoff_cap_ms`].
    ///
    /// # Examples
    ///
    /// ```
    /// use fpb_sim::supervise::SupervisePolicy;
    ///
    /// let p = SupervisePolicy { backoff_base_ms: 50, backoff_cap_ms: 300, ..SupervisePolicy::default() };
    /// assert_eq!(p.backoff(1).as_millis(), 50);
    /// assert_eq!(p.backoff(2).as_millis(), 100);
    /// assert_eq!(p.backoff(5).as_millis(), 300); // capped
    /// ```
    pub fn backoff(&self, attempt: u32) -> Duration {
        let exp = attempt.saturating_sub(1).min(20);
        let ms = self
            .backoff_base_ms
            .saturating_mul(1u64 << exp)
            .min(self.backoff_cap_ms);
        Duration::from_millis(ms)
    }
}

/// Terminal outcome of one supervised job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobOutcome {
    /// Completed on the first attempt.
    Ok,
    /// Completed after `attempts` total attempts (`attempts >= 2`).
    Retried {
        /// Total attempts including the successful one.
        attempts: u32,
    },
    /// Panicked on every attempt and was quarantined.
    Panicked {
        /// Total attempts made.
        attempts: u32,
        /// Payload of the final panic.
        message: String,
    },
    /// Exceeded the per-job deadline and was quarantined; its thread may
    /// still be running (threads cannot be preempted), but its slot is
    /// resolved and a replacement worker keeps the pool at strength.
    TimedOut {
        /// The deadline that was exceeded, in milliseconds.
        deadline_ms: u64,
    },
    /// Never started: admission stopped (cancellation) before this job
    /// was claimed.
    Skipped,
}

impl JobOutcome {
    /// True for outcomes that produced a result.
    pub fn succeeded(&self) -> bool {
        matches!(self, JobOutcome::Ok | JobOutcome::Retried { .. })
    }

    /// True for outcomes parked on the quarantine list (poisoned jobs
    /// reported at the end of the run instead of aborting it).
    pub fn quarantined(&self) -> bool {
        matches!(self, JobOutcome::Panicked { .. } | JobOutcome::TimedOut { .. })
    }

    /// Stable lowercase class name (used by reports and JSON).
    pub fn class(&self) -> &'static str {
        match self {
            JobOutcome::Ok => "ok",
            JobOutcome::Retried { .. } => "retried",
            JobOutcome::Panicked { .. } => "panicked",
            JobOutcome::TimedOut { .. } => "timed_out",
            JobOutcome::Skipped => "skipped",
        }
    }
}

impl std::fmt::Display for JobOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobOutcome::Ok => write!(f, "ok"),
            JobOutcome::Retried { attempts } => write!(f, "ok after {attempts} attempts"),
            JobOutcome::Panicked { attempts, message } => {
                write!(f, "panicked on all {attempts} attempt(s): {message}")
            }
            JobOutcome::TimedOut { deadline_ms } => {
                write!(f, "exceeded the {deadline_ms}ms deadline")
            }
            JobOutcome::Skipped => write!(f, "skipped (cancelled before it started)"),
        }
    }
}

/// Result of a supervised map: per-input results (in input order) plus
/// the outcome taxonomy of every slot.
#[derive(Debug)]
pub struct SuperviseReport<R> {
    /// One entry per input, in input order; `None` for quarantined or
    /// skipped jobs.
    pub results: Vec<Option<R>>,
    /// One terminal outcome per input, in input order.
    pub outcomes: Vec<JobOutcome>,
    /// True if the run was cancelled before every job was admitted.
    pub cancelled: bool,
}

impl<R> SuperviseReport<R> {
    /// Indices and outcomes of quarantined jobs, in input order.
    pub fn quarantine(&self) -> Vec<(usize, &JobOutcome)> {
        self.outcomes
            .iter()
            .enumerate()
            .filter(|(_, o)| o.quarantined())
            .collect()
    }

    /// Number of outcomes in the given class (see [`JobOutcome::class`]).
    pub fn count(&self, class: &str) -> usize {
        self.outcomes.iter().filter(|o| o.class() == class).count()
    }
}

/// Per-slot supervision state, shared between workers and the watchdog.
#[derive(Debug)]
enum Slot {
    /// Not yet claimed by a worker.
    Idle,
    /// Claimed; `started` is the first attempt's start (the deadline
    /// covers retries and backoff too).
    Running { started: Instant },
    /// Terminal: a result, failure, timeout, or skip has been recorded.
    /// Late results for a resolved slot are discarded.
    Resolved,
}

/// One terminal event per slot, sent to the collector.
#[derive(Debug)]
enum Event<R> {
    Done { index: usize, attempts: u32, value: R },
    Failed { index: usize, attempts: u32, message: String },
    TimedOut { index: usize },
    Skipped { index: usize },
}

/// Locks a slot, riding through poisoning: slot state is a plain enum
/// and every transition is valid to observe, so a worker that panicked
/// between `lock` and unlock (impossible today — no panicking calls are
/// made under the lock) would still leave usable state.
fn lock_slot(slot: &Mutex<Slot>) -> std::sync::MutexGuard<'_, Slot> {
    slot.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Shared context cloned into every worker thread.
struct WorkerCtx<T, R, F> {
    items: Arc<Vec<T>>,
    f: Arc<F>,
    slots: Arc<Vec<Mutex<Slot>>>,
    next: Arc<AtomicUsize>,
    /// Execution-order permutation: cursor position `k` runs item
    /// `schedule[k]`. `None` = input order. Results and outcomes are
    /// always reported by *item* index, so the schedule is invisible in
    /// the output — it only changes which jobs start first.
    schedule: Arc<Option<Vec<usize>>>,
    cancel: CancelToken,
    policy: SupervisePolicy,
    tx: Sender<Event<R>>,
}

impl<T, R, F> WorkerCtx<T, R, F> {
    /// The item index at cursor position `k`.
    fn item_at(&self, k: usize) -> usize {
        self.schedule.as_ref().as_ref().map_or(k, |s| s[k])
    }
}

impl<T, R, F> Clone for WorkerCtx<T, R, F> {
    fn clone(&self) -> Self {
        WorkerCtx {
            items: Arc::clone(&self.items),
            f: Arc::clone(&self.f),
            slots: Arc::clone(&self.slots),
            next: Arc::clone(&self.next),
            schedule: Arc::clone(&self.schedule),
            cancel: self.cancel.clone(),
            policy: self.policy,
            tx: self.tx.clone(),
        }
    }
}

/// Maps `f` over `items` on up to `policy.jobs` worker threads with full
/// supervision: panic isolation, bounded retry with deterministic
/// backoff, optional per-job deadlines, quarantine, and cooperative
/// cancellation. Results come back in input order.
///
/// `on_complete(index, &result)` runs on the *caller's* thread as each
/// job completes (in completion order, not input order) — the durable
/// journal hook: by the time the map returns, every completed result has
/// been offered to the callback.
///
/// Jobs must be *retry-safe*: each call of `f` must build whatever state
/// it needs from scratch (true of simulation points, which seed their
/// RNGs from the input config). The supervisor asserts unwind safety on
/// that basis: a panicked attempt's partial state is discarded wholesale
/// with the attempt itself.
///
/// A job that hangs forever with no deadline configured hangs the map,
/// exactly like the unsupervised pool — set
/// [`SupervisePolicy::deadline_ms`] when jobs are not trusted to
/// terminate. A timed-out job's thread cannot be killed; it is abandoned
/// (its eventual result is discarded) and a replacement worker is
/// spawned so pool strength is maintained.
pub fn supervise_map<T, R, F>(
    items: Vec<T>,
    policy: &SupervisePolicy,
    cancel: &CancelToken,
    f: F,
    on_complete: impl FnMut(usize, &R),
) -> SuperviseReport<R>
where
    T: Send + Sync + 'static,
    R: Send + 'static,
    F: Fn(usize, &T) -> R + Send + Sync + 'static,
{
    supervise_map_ordered(items, policy, cancel, None, f, on_complete)
}

/// [`supervise_map`] with an explicit execution order: cursor position
/// `k` runs item `order[k]`, so callers can start expensive items first
/// (the sweep passes a descending-cost schedule). Results, outcomes, and
/// `on_complete` indices are always by *item* index — the order changes
/// scheduling, never output. An `order` that is not a permutation of
/// `0..items.len()` (wrong length) is ignored in favor of input order.
pub fn supervise_map_ordered<T, R, F>(
    items: Vec<T>,
    policy: &SupervisePolicy,
    cancel: &CancelToken,
    order: Option<Vec<usize>>,
    f: F,
    mut on_complete: impl FnMut(usize, &R),
) -> SuperviseReport<R>
where
    T: Send + Sync + 'static,
    R: Send + 'static,
    F: Fn(usize, &T) -> R + Send + Sync + 'static,
{
    let n = items.len();
    if n == 0 {
        return SuperviseReport {
            results: Vec::new(),
            outcomes: Vec::new(),
            cancelled: cancel.is_cancelled(),
        };
    }
    let schedule = order.filter(|o| o.len() == n);
    let (tx, rx) = channel::<Event<R>>();
    let ctx = WorkerCtx {
        items: Arc::new(items),
        f: Arc::new(f),
        slots: Arc::new((0..n).map(|_| Mutex::new(Slot::Idle)).collect()),
        next: Arc::new(AtomicUsize::new(0)),
        schedule: Arc::new(schedule),
        cancel: cancel.clone(),
        policy: *policy,
        tx,
    };
    // Clamp to the machine's cores like the unsupervised pool does:
    // oversubscribed simulation threads only timeslice, never help.
    let workers = crate::exec::effective_workers(policy.jobs, n);
    for _ in 0..workers {
        spawn_worker(ctx.clone());
    }

    // Watchdog: scans running slots against the deadline; a trip resolves
    // the slot, reports the timeout, and replaces the (possibly hung)
    // worker. Exits once the collector has resolved every slot.
    let done = Arc::new(AtomicBool::new(false));
    if let Some(deadline_ms) = policy.deadline_ms {
        let wd_ctx = ctx.clone();
        let wd_done = Arc::clone(&done);
        let deadline = Duration::from_millis(deadline_ms);
        std::thread::spawn(move || {
            while !wd_done.load(Ordering::SeqCst) {
                std::thread::sleep(Duration::from_millis(2));
                for (i, slot) in wd_ctx.slots.iter().enumerate() {
                    let tripped = {
                        let mut s = lock_slot(slot);
                        match *s {
                            Slot::Running { started } if started.elapsed() >= deadline => {
                                *s = Slot::Resolved;
                                true
                            }
                            _ => false,
                        }
                    };
                    if tripped {
                        // The worker on this job may be hung; keep the
                        // pool at strength and report the timeout.
                        spawn_worker(wd_ctx.clone());
                        if wd_ctx.tx.send(Event::TimedOut { index: i }).is_err() {
                            return; // collector gone
                        }
                    }
                }
            }
        });
    }
    drop(ctx); // collector keeps no sender: rx drains until all slots resolve

    // Collector: exactly one terminal event arrives per slot (duplicates
    // from the timeout-vs-completion race are filtered by `resolved`).
    let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let mut outcomes: Vec<JobOutcome> = vec![JobOutcome::Skipped; n];
    let mut resolved = vec![false; n];
    let mut remaining = n;
    while remaining > 0 {
        let Ok(ev) = rx.recv() else {
            // Every sender hung up before all slots resolved — possible
            // only if worker threads died outside catch_unwind. Record
            // the loss instead of hanging.
            for (outcome, done_flag) in outcomes.iter_mut().zip(&resolved) {
                if !done_flag {
                    *outcome = JobOutcome::Panicked {
                        attempts: 0,
                        message: "worker pool shut down before the job resolved".to_string(),
                    };
                }
            }
            break;
        };
        let index = match &ev {
            Event::Done { index, .. }
            | Event::Failed { index, .. }
            | Event::TimedOut { index }
            | Event::Skipped { index } => *index,
        };
        if resolved[index] {
            continue;
        }
        resolved[index] = true;
        remaining -= 1;
        match ev {
            Event::Done { attempts, value, .. } => {
                on_complete(index, &value);
                outcomes[index] = if attempts <= 1 {
                    JobOutcome::Ok
                } else {
                    JobOutcome::Retried { attempts }
                };
                results[index] = Some(value);
            }
            Event::Failed { attempts, message, .. } => {
                outcomes[index] = JobOutcome::Panicked { attempts, message };
            }
            Event::TimedOut { .. } => {
                outcomes[index] = JobOutcome::TimedOut {
                    deadline_ms: policy.deadline_ms.unwrap_or(0),
                };
            }
            Event::Skipped { .. } => outcomes[index] = JobOutcome::Skipped,
        }
    }
    done.store(true, Ordering::SeqCst);
    SuperviseReport {
        results,
        outcomes,
        cancelled: cancel.is_cancelled(),
    }
}

/// Spawns one detached worker: claim the next index, run it under
/// supervision, repeat until the cursor runs out. Detached because a
/// worker stuck in a hung job must be abandonable — the collector
/// tracks slot resolution, not thread exit.
fn spawn_worker<T, R, F>(ctx: WorkerCtx<T, R, F>)
where
    T: Send + Sync + 'static,
    R: Send + 'static,
    F: Fn(usize, &T) -> R + Send + Sync + 'static,
{
    std::thread::spawn(move || {
        loop {
            // ORDER: fetch_add only hands out unique indices; slot
            // results synchronize through their own Mutexes, not here.
            let k = ctx.next.fetch_add(1, Ordering::Relaxed);
            if k >= ctx.items.len() {
                return;
            }
            let i = ctx.item_at(k);
            if ctx.cancel.is_cancelled() {
                // Admission stopped: resolve the claimed slot as skipped
                // and keep draining the cursor so the collector finishes
                // promptly.
                let mut s = lock_slot(&ctx.slots[i]);
                if !matches!(*s, Slot::Resolved) {
                    *s = Slot::Resolved;
                    drop(s);
                    if ctx.tx.send(Event::Skipped { index: i }).is_err() {
                        return;
                    }
                }
                continue;
            }
            run_one(&ctx, i);
        }
    });
}

/// Runs job `i` to a terminal slot state: attempts (with backoff) until
/// success, retry exhaustion, or a watchdog timeout resolves the slot
/// out from under the attempt (late results are discarded).
fn run_one<T, R, F>(ctx: &WorkerCtx<T, R, F>, i: usize)
where
    T: Send + Sync + 'static,
    R: Send + 'static,
    F: Fn(usize, &T) -> R + Send + Sync + 'static,
{
    {
        let mut s = lock_slot(&ctx.slots[i]);
        match *s {
            Slot::Idle => *s = Slot::Running { started: Instant::now() },
            // Resolved (or somehow already running): nothing to do.
            _ => return,
        }
    }
    let max_attempts = ctx.policy.max_retries.saturating_add(1);
    let mut attempt = 0u32;
    loop {
        attempt += 1;
        // The closure only borrows `f` and one item; a panicking attempt
        // discards its entire partial state, and jobs are documented
        // retry-safe (each call rebuilds from scratch), so crossing the
        // unwind boundary cannot expose broken invariants.
        let outcome = catch_unwind(AssertUnwindSafe(|| (ctx.f)(i, &ctx.items[i])));
        match outcome {
            Ok(value) => {
                let mut s = lock_slot(&ctx.slots[i]);
                if matches!(*s, Slot::Resolved) {
                    return; // timed out while running: discard
                }
                *s = Slot::Resolved;
                drop(s);
                let _ = ctx.tx.send(Event::Done { index: i, attempts: attempt, value });
                return;
            }
            Err(payload) => {
                let message = panic_message(payload.as_ref());
                {
                    let s = lock_slot(&ctx.slots[i]);
                    if matches!(*s, Slot::Resolved) {
                        return; // timed out during the attempt
                    }
                }
                if attempt >= max_attempts {
                    let mut s = lock_slot(&ctx.slots[i]);
                    if matches!(*s, Slot::Resolved) {
                        return;
                    }
                    *s = Slot::Resolved;
                    drop(s);
                    let _ = ctx.tx.send(Event::Failed { index: i, attempts: attempt, message });
                    return;
                }
                std::thread::sleep(ctx.policy.backoff(attempt));
                // Re-check after backoff: the deadline covers sleeps too.
                let s = lock_slot(&ctx.slots[i]);
                if matches!(*s, Slot::Resolved) {
                    return;
                }
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn policy(jobs: usize) -> SupervisePolicy {
        SupervisePolicy {
            jobs,
            backoff_base_ms: 1,
            backoff_cap_ms: 4,
            ..SupervisePolicy::default()
        }
    }

    #[test]
    fn clean_map_matches_plain_results_in_order() {
        for jobs in [1, 4] {
            let items: Vec<u64> = (0..23).collect();
            let r = supervise_map(items, &policy(jobs), &CancelToken::new(), |i, &x| {
                assert_eq!(i as u64, x);
                x * 3
            }, |_, _| {});
            assert!(!r.cancelled);
            assert_eq!(r.count("ok"), 23);
            let vals: Vec<u64> = r.results.into_iter().map(Option::unwrap).collect();
            assert_eq!(vals, (0..23).map(|x| x * 3).collect::<Vec<_>>());
            assert!(r.outcomes.iter().all(|o| *o == JobOutcome::Ok));
        }
    }

    #[test]
    fn deterministic_panic_is_quarantined_without_aborting() {
        let items: Vec<u32> = (0..8).collect();
        let r = supervise_map(items, &policy(2), &CancelToken::new(), |_, &x| {
            assert!(x != 5, "boom at five");
            x + 1
        }, |_, _| {});
        assert_eq!(r.count("panicked"), 1);
        assert_eq!(r.count("ok"), 7);
        let q = r.quarantine();
        assert_eq!(q.len(), 1);
        assert_eq!(q[0].0, 5);
        let JobOutcome::Panicked { attempts, message } = q[0].1 else {
            panic!("expected Panicked, got {:?}", q[0].1)
        };
        assert_eq!(*attempts, 1);
        assert!(message.contains("boom at five"), "message: {message}");
        assert!(r.results[5].is_none());
        assert_eq!(r.results[4], Some(5));
    }

    #[test]
    fn transient_panic_is_retried_to_success() {
        use std::sync::atomic::AtomicU32;
        let failures = Arc::new(AtomicU32::new(0));
        let f2 = Arc::clone(&failures);
        let items: Vec<u32> = (0..4).collect();
        let p = SupervisePolicy { max_retries: 2, ..policy(2) };
        let r = supervise_map(items, &p, &CancelToken::new(), move |_, &x| {
            if x == 2 && f2.fetch_add(1, Ordering::SeqCst) < 2 {
                panic!("transient");
            }
            x
        }, |_, _| {});
        assert_eq!(r.outcomes[2], JobOutcome::Retried { attempts: 3 });
        assert_eq!(r.results[2], Some(2));
        assert_eq!(r.count("ok"), 3);
        assert_eq!(r.count("retried"), 1);
    }

    #[test]
    fn retries_exhausted_reports_attempt_count() {
        let items = vec![0u32];
        let p = SupervisePolicy { max_retries: 3, ..policy(1) };
        let r = supervise_map(items, &p, &CancelToken::new(), |_, _| -> u32 {
            panic!("always")
        }, |_, _| {});
        assert_eq!(
            r.outcomes[0],
            JobOutcome::Panicked { attempts: 4, message: "always".to_string() }
        );
    }

    #[test]
    fn hung_job_times_out_and_rest_of_grid_completes() {
        let items: Vec<u32> = (0..5).collect();
        let p = SupervisePolicy {
            deadline_ms: Some(40),
            ..policy(1) // one worker: the replacement spawn is load-bearing
        };
        let r = supervise_map(items, &p, &CancelToken::new(), |_, &x| {
            if x == 1 {
                std::thread::sleep(Duration::from_millis(400));
            }
            x * 10
        }, |_, _| {});
        assert_eq!(r.outcomes[1], JobOutcome::TimedOut { deadline_ms: 40 });
        assert!(r.results[1].is_none());
        for i in [0usize, 2, 3, 4] {
            assert_eq!(r.results[i], Some(i as u32 * 10), "point {i} must complete");
        }
    }

    #[test]
    fn cancel_skips_unstarted_jobs() {
        // Cancel from inside the third job itself: with one worker the
        // claim order is deterministic, so jobs 0..=2 complete and every
        // later job is admitted after the token flips.
        let items: Vec<u32> = (0..10).collect();
        let cancel = CancelToken::new();
        let c2 = cancel.clone();
        let r = supervise_map(items, &policy(1), &cancel, move |_, &x| {
            if x == 2 {
                c2.cancel();
            }
            x
        }, |_, _| {});
        assert!(r.cancelled);
        assert_eq!(r.count("ok"), 3);
        assert_eq!(r.count("skipped"), 7);
        assert_eq!(r.results[0], Some(0));
        assert_eq!(r.results[2], Some(2));
        assert!(r.results[3].is_none());
    }

    #[test]
    fn on_complete_sees_every_completed_result() {
        let items: Vec<u64> = (0..12).collect();
        let seen = std::cell::RefCell::new(Vec::new());
        let r = supervise_map(items, &policy(3), &CancelToken::new(), |_, &x| x + 100, |i, v: &u64| {
            seen.borrow_mut().push((i, *v));
        });
        assert_eq!(r.count("ok"), 12);
        let mut seen = seen.into_inner();
        seen.sort_unstable();
        assert_eq!(seen, (0..12).map(|i| (i as usize, i + 100)).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let r = supervise_map(
            Vec::<u32>::new(),
            &policy(4),
            &CancelToken::new(),
            |_, &x| x,
            |_, _| {},
        );
        assert!(r.results.is_empty() && r.outcomes.is_empty());
    }

    #[test]
    fn backoff_is_exponential_and_capped() {
        let p = SupervisePolicy {
            backoff_base_ms: 10,
            backoff_cap_ms: 55,
            ..SupervisePolicy::default()
        };
        assert_eq!(p.backoff(1).as_millis(), 10);
        assert_eq!(p.backoff(2).as_millis(), 20);
        assert_eq!(p.backoff(3).as_millis(), 40);
        assert_eq!(p.backoff(4).as_millis(), 55);
        assert_eq!(p.backoff(33).as_millis(), 55, "shift width is clamped");
    }

    #[test]
    fn outcome_classes_and_predicates() {
        let ok = JobOutcome::Ok;
        let retried = JobOutcome::Retried { attempts: 2 };
        let panicked = JobOutcome::Panicked { attempts: 1, message: "x".into() };
        let timed = JobOutcome::TimedOut { deadline_ms: 5 };
        let skipped = JobOutcome::Skipped;
        assert!(ok.succeeded() && retried.succeeded());
        assert!(!panicked.succeeded() && !timed.succeeded() && !skipped.succeeded());
        assert!(panicked.quarantined() && timed.quarantined());
        assert!(!ok.quarantined() && !skipped.quarantined());
        assert_eq!(
            [&ok, &retried, &panicked, &timed, &skipped].map(|o| o.class()),
            ["ok", "retried", "panicked", "timed_out", "skipped"]
        );
    }
}
