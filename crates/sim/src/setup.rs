//! Named scheme setups: everything a run varies besides the workload and
//! the system config.

use fpb_core::{PowerPolicyConfig, SchemeKind};
use fpb_pcm::CellMapping;
use fpb_types::SystemConfig;

/// A complete scheme under test: power policy, cell mapping, wear
/// leveling, queue scheduling window, and the read-latency-reduction
/// add-ons (§6.4.5).
///
/// # Examples
///
/// ```
/// use fpb_sim::SchemeSetup;
/// use fpb_types::SystemConfig;
///
/// let cfg = SystemConfig::default();
/// let fpb = SchemeSetup::fpb(&cfg);
/// assert!(fpb.policy.ipm);
/// assert_eq!(fpb.label, "FPB");
///
/// let gcp = SchemeSetup::gcp(&cfg, fpb_pcm::CellMapping::Vim, 0.5);
/// assert_eq!(gcp.label, "GCP-VIM-0.5");
/// ```
#[derive(Debug, Clone)]
pub struct SchemeSetup {
    /// Legend label.
    pub label: String,
    /// Power-budgeting policy.
    pub policy: PowerPolicyConfig,
    /// Static cell-to-chip mapping.
    pub mapping: CellMapping,
    /// Intra-line wear-leveling shift period (the PWL baseline); `None`
    /// disables it.
    pub wear_period: Option<u32>,
    /// Write cancellation (WC).
    pub write_cancellation: bool,
    /// Write pausing (WP).
    pub write_pausing: bool,
    /// Write truncation (WT): ECC-correctable cell count, `None` disables.
    pub truncation_ecc: Option<u32>,
    /// Charge the bridge chip's read-before-write (IPM's change discovery,
    /// §3.1).
    pub pre_write_read: bool,
    /// PreSET extension (§7, ref. 22 of the paper): SET pulses are performed in advance
    /// while the line is cached, so the eviction write needs only a single
    /// RESET iteration — much faster, but demanding full RESET power for
    /// every changed cell at once.
    pub preset: bool,
    /// Feedback-less memory controller (§2.1.1): without the on-DIMM
    /// bridge chip, the controller must assume every write takes the
    /// worst-case iteration count — banks and tokens stay held until that
    /// time even when the write converged early.
    pub mc_worst_case: bool,
}

impl SchemeSetup {
    fn base(label: impl Into<String>, policy: PowerPolicyConfig) -> Self {
        let pre_write_read = policy.ipm;
        SchemeSetup {
            label: label.into(),
            policy,
            mapping: CellMapping::Naive,
            wear_period: None,
            write_cancellation: false,
            write_pausing: false,
            truncation_ecc: None,
            pre_write_read,
            preset: false,
            mc_worst_case: false,
        }
    }

    /// Unlimited power (the Fig. 4 normalization ceiling).
    pub fn ideal(cfg: &SystemConfig) -> Self {
        Self::base("Ideal", SchemeKind::Ideal.config(&cfg.power, cfg.pcm.chips))
    }

    /// Hay et al. with only the DIMM budget.
    pub fn dimm_only(cfg: &SystemConfig) -> Self {
        Self::base(
            "DIMM-only",
            SchemeKind::DimmOnly.config(&cfg.power, cfg.pcm.chips),
        )
    }

    /// Hay et al. with DIMM and chip budgets (the paper's baseline).
    pub fn dimm_chip(cfg: &SystemConfig) -> Self {
        Self::base(
            "DIMM+chip",
            SchemeKind::DimmChip.config(&cfg.power, cfg.pcm.chips),
        )
    }

    /// `DIMM+chip` plus near-perfect intra-line wear leveling (PWL, §2.2).
    pub fn pwl(cfg: &SystemConfig) -> Self {
        SchemeSetup {
            label: "PWL".into(),
            wear_period: Some(8),
            ..Self::dimm_chip(cfg)
        }
    }

    /// `DIMM+chip` with the chip budget scaled by `scale` (1.5 or 2.0).
    pub fn scaled_local(cfg: &SystemConfig, scale: f64) -> Self {
        let mut policy = SchemeKind::DimmChip.config(&cfg.power, cfg.pcm.chips);
        policy.chip_budget_scale = scale;
        Self::base(format!("{scale}xlocal"), policy)
    }

    /// FPB-GCP with a given cell mapping and GCP efficiency (no IPM).
    pub fn gcp(cfg: &SystemConfig, mapping: CellMapping, e_gcp: f64) -> Self {
        let mut policy = SchemeKind::Gcp.config(&cfg.power, cfg.pcm.chips);
        if let Some(g) = policy.gcp.as_mut() {
            g.e_gcp = e_gcp;
        }
        SchemeSetup {
            mapping,
            ..Self::base(format!("GCP-{}-{}", mapping.label(), e_gcp), policy)
        }
    }

    /// FPB-GCP + FPB-IPM (default BIM at the config's `E_GCP`).
    pub fn gcp_ipm(cfg: &SystemConfig) -> Self {
        let policy = SchemeKind::GcpIpm.config(&cfg.power, cfg.pcm.chips);
        SchemeSetup {
            mapping: CellMapping::Bim,
            ..Self::base("GCP+IPM", policy)
        }
    }

    /// The full FPB scheme: GCP (BIM) + IPM + Multi-RESET(3).
    pub fn fpb(cfg: &SystemConfig) -> Self {
        let policy = SchemeKind::Fpb.config(&cfg.power, cfg.pcm.chips);
        SchemeSetup {
            mapping: CellMapping::Bim,
            ..Self::base("FPB", policy)
        }
    }

    /// FPB with a custom Multi-RESET split limit (Fig. 17).
    pub fn fpb_with_splits(cfg: &SystemConfig, splits: u8) -> Self {
        let mut s = Self::fpb(cfg);
        s.policy.multi_reset_splits = splits;
        s.label = format!("IPM+MR{splits}");
        s
    }

    /// Adds write cancellation.
    #[must_use]
    pub fn with_wc(mut self) -> Self {
        self.write_cancellation = true;
        self.label.push_str("+WC");
        self
    }

    /// Adds write pausing.
    #[must_use]
    pub fn with_wp(mut self) -> Self {
        self.write_pausing = true;
        self.label.push_str("+WP");
        self
    }

    /// Adds write truncation with `ecc` correctable cells per line.
    #[must_use]
    pub fn with_wt(mut self, ecc: u32) -> Self {
        self.truncation_ecc = Some(ecc);
        self.label.push_str("+WT");
        self
    }

    /// Overrides the cell mapping.
    #[must_use]
    pub fn with_mapping(mut self, mapping: CellMapping) -> Self {
        self.mapping = mapping;
        self
    }

    /// Enables the PreSET write mode (§7): single-RESET writes.
    #[must_use]
    pub fn with_preset(mut self) -> Self {
        self.preset = true;
        self.label.push_str("+PreSET");
        self
    }

    /// Models a feedback-less controller that assumes worst-case write
    /// latency (the design §2.1.1 argues against).
    #[must_use]
    pub fn with_worst_case_mc(mut self) -> Self {
        self.mc_worst_case = true;
        self.label.push_str("+worstcaseMC");
        self
    }

    /// Enables per-chip GCP output regulation (§4.2's design alternative).
    ///
    /// # Panics
    ///
    /// Panics if the scheme has no GCP.
    #[must_use]
    pub fn with_gcp_regulation(mut self) -> Self {
        let g = self
            .policy
            .gcp
            .as_mut()
            .expect("per-chip regulation needs a GCP");
        g.per_chip_regulation = true;
        self.label.push_str("+reg");
        self
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn cfg() -> SystemConfig {
        SystemConfig::default()
    }

    #[test]
    fn labels_match_paper_legends() {
        let c = cfg();
        assert_eq!(SchemeSetup::ideal(&c).label, "Ideal");
        assert_eq!(SchemeSetup::dimm_only(&c).label, "DIMM-only");
        assert_eq!(SchemeSetup::dimm_chip(&c).label, "DIMM+chip");
        assert_eq!(SchemeSetup::scaled_local(&c, 2.0).label, "2xlocal");
        assert_eq!(
            SchemeSetup::gcp(&c, CellMapping::Naive, 0.95).label,
            "GCP-NE-0.95"
        );
        assert_eq!(SchemeSetup::fpb_with_splits(&c, 4).label, "IPM+MR4");
        assert_eq!(
            SchemeSetup::fpb(&c).with_wc().with_wp().with_wt(8).label,
            "FPB+WC+WP+WT"
        );
    }

    #[test]
    fn pre_read_tracks_ipm() {
        let c = cfg();
        assert!(!SchemeSetup::dimm_chip(&c).pre_write_read);
        assert!(!SchemeSetup::gcp(&c, CellMapping::Bim, 0.7).pre_write_read);
        assert!(SchemeSetup::gcp_ipm(&c).pre_write_read);
        assert!(SchemeSetup::fpb(&c).pre_write_read);
    }

    #[test]
    fn gcp_efficiency_propagates() {
        let c = cfg();
        let s = SchemeSetup::gcp(&c, CellMapping::Vim, 0.5);
        assert_eq!(s.policy.gcp.unwrap().e_gcp, 0.5);
        assert_eq!(s.mapping, CellMapping::Vim);
    }

    #[test]
    fn pwl_enables_wear_leveling_only() {
        let c = cfg();
        let s = SchemeSetup::pwl(&c);
        assert_eq!(s.wear_period, Some(8));
        assert!(s.policy.enforce_chip_budget);
        assert!(!s.policy.ipm);
    }

    #[test]
    fn preset_and_regulation_toggles() {
        let c = cfg();
        let s = SchemeSetup::fpb(&c).with_preset();
        assert!(s.preset);
        assert!(s.label.ends_with("+PreSET"));
        let s = SchemeSetup::fpb(&c).with_gcp_regulation();
        assert!(s.policy.gcp.unwrap().per_chip_regulation);
    }

    #[test]
    #[should_panic(expected = "needs a GCP")]
    fn regulation_without_gcp_panics() {
        let c = cfg();
        let _ = SchemeSetup::dimm_chip(&c).with_gcp_regulation();
    }

    #[test]
    fn all_setups_validate() {
        let c = cfg();
        for s in [
            SchemeSetup::ideal(&c),
            SchemeSetup::dimm_only(&c),
            SchemeSetup::dimm_chip(&c),
            SchemeSetup::pwl(&c),
            SchemeSetup::scaled_local(&c, 1.5),
            SchemeSetup::gcp(&c, CellMapping::Bim, 0.7),
            SchemeSetup::gcp_ipm(&c),
            SchemeSetup::fpb(&c),
            SchemeSetup::fpb(&c).with_wc().with_wp().with_wt(8),
        ] {
            s.policy.validate().unwrap_or_else(|e| panic!("{}: {e}", s.label));
        }
    }
}
