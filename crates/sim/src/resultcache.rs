//! Persistent sweep result cache: level 2 of the result-reuse ladder.
//!
//! Level 1 (semantic dedup, [`crate::sweep`]) shares simulations *within*
//! one sweep; this cache shares them *across* sweeps — repeated grids,
//! `--resume` restarts, and the bench ladder's repeated rungs all
//! warm-start from `target/fpb-sweep-cache.v1`.
//!
//! The design follows the fpb-analyze facts cache: a schema line, then
//! one tab-separated record per entry, FNV-1a-64 keys, and a
//! whole-cache-discard policy — any malformed record, checksum mismatch,
//! or schema/salt drift throws the entire file away and the sweep runs
//! cold. A cache can only ever *miss*, never lie:
//!
//! - Entries are keyed by the full effective-config description (the
//!   dedup unit key). The FNV hash column is an integrity check only;
//!   lookups compare the stored description byte-for-byte, so a hash
//!   collision is a miss, not a wrong splice.
//! - Values are [`Metrics::encode_record`] strings — exact integer
//!   round-trips, so a cache hit produces byte-identical JSON to a
//!   fresh simulation.
//! - The schema line carries [`CODE_SALT`]; bumping it on any
//!   semantics-affecting engine change orphans every old cache at once.
//! - Saves write a temp file and rename it into place, so a reader
//!   racing a writer sees either the old cache or the new one, never a
//!   torn file (and a torn file would only mean a cold run anyway).
//!
//! File format:
//!
//! ```text
//! fpb-sweep-cache/v1 <salt>
//! R\t<fnv64-16hex>\t<escaped-description>\t<metrics-record>
//! ```

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::journal::fingerprint64;
use crate::metrics::Metrics;

/// First token of the schema line; bump the version on format changes.
pub const CACHE_SCHEMA: &str = "fpb-sweep-cache/v1";

/// Code-version salt carried in the schema line. Bump whenever an engine
/// change alters what any cached simulation *would* produce — every
/// existing cache is then discarded wholesale on load.
pub const CODE_SALT: &str = "s1";

/// Default cache location, relative to the working directory (the same
/// convention as the fpb-analyze facts cache).
pub const DEFAULT_CACHE_PATH: &str = "target/fpb-sweep-cache.v1";

/// An in-memory view of the persistent cache: loaded once per sweep,
/// consulted per dedup unit, merged + rewritten at the end.
#[derive(Debug)]
pub struct ResultCache {
    path: PathBuf,
    entries: BTreeMap<String, Metrics>,
    /// Lookups answered from the cache.
    pub hits: usize,
    /// Lookups that missed (including everything after a discard).
    pub misses: usize,
    dirty: bool,
}

impl ResultCache {
    /// Loads the cache at `path`. A missing, unreadable, or in any way
    /// malformed file yields an *empty* cache — cold is always safe.
    pub fn load(path: &Path) -> ResultCache {
        let entries = fs::read_to_string(path)
            .ok()
            .and_then(|text| parse(&text))
            .unwrap_or_default();
        ResultCache { path: path.to_path_buf(), entries, hits: 0, misses: 0, dirty: false }
    }

    /// An empty cache bound to `path` (used by tests and `--no-result-cache`
    /// comparisons).
    pub fn empty(path: &Path) -> ResultCache {
        ResultCache {
            path: path.to_path_buf(),
            entries: BTreeMap::new(),
            hits: 0,
            misses: 0,
            dirty: false,
        }
    }

    /// Looks up the metrics stored for an exact unit description,
    /// counting the hit or miss.
    pub fn lookup(&mut self, desc: &str) -> Option<Metrics> {
        match self.entries.get(desc) {
            Some(m) => {
                self.hits += 1;
                Some(m.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Records freshly simulated metrics for a unit description.
    pub fn insert(&mut self, desc: String, metrics: Metrics) {
        if self.entries.insert(desc, metrics).is_none() {
            self.dirty = true;
        }
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are held.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Writes the cache back to its path (temp file + rename, so racing
    /// readers never observe a torn file). No-op when nothing new was
    /// inserted. Errors are returned for the caller to report — a failed
    /// save only costs warm starts, never correctness.
    pub fn save(&self) -> io::Result<()> {
        if !self.dirty {
            return Ok(());
        }
        let mut out = String::with_capacity(64 + self.entries.len() * 128);
        out.push_str(CACHE_SCHEMA);
        out.push(' ');
        out.push_str(CODE_SALT);
        out.push('\n');
        for (desc, metrics) in &self.entries {
            out.push_str(&format!(
                "R\t{:016x}\t{}\t{}\n",
                fingerprint64(desc),
                esc(desc),
                metrics.encode_record()
            ));
        }
        if let Some(dir) = self.path.parent().filter(|d| !d.as_os_str().is_empty()) {
            fs::create_dir_all(dir)?;
        }
        let tmp = self.path.with_extension("tmp");
        fs::write(&tmp, &out)?;
        fs::rename(&tmp, &self.path)
    }
}

/// Parses a cache file. Returns `None` — discarding the whole cache — on
/// a wrong schema line, wrong salt, or *any* malformed record: partial
/// trust would risk splicing stale or torn entries into results.
fn parse(text: &str) -> Option<BTreeMap<String, Metrics>> {
    let mut lines = text.lines();
    let schema = lines.next()?;
    let salt = schema.strip_prefix(CACHE_SCHEMA)?.strip_prefix(' ')?;
    if salt != CODE_SALT {
        return None;
    }
    let mut entries = BTreeMap::new();
    for line in lines {
        let rest = line.strip_prefix("R\t")?;
        let (fnv_hex, rest) = rest.split_once('\t')?;
        let (desc_esc, record) = rest.split_once('\t')?;
        let fnv = u64::from_str_radix(fnv_hex, 16).ok()?;
        let desc = unesc(desc_esc)?;
        if fingerprint64(&desc) != fnv {
            return None; // bit rot or a hand-edited file: trust nothing
        }
        let metrics = Metrics::decode_record(record)?;
        entries.insert(desc, metrics);
    }
    Some(entries)
}

/// Escapes tabs, newlines, and backslashes so descriptions survive the
/// tab-separated framing.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

/// Inverse of [`esc`]; `None` on any unknown escape (malformed record).
fn unesc(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next()? {
            '\\' => out.push('\\'),
            't' => out.push('\t'),
            'n' => out.push('\n'),
            'r' => out.push('\r'),
            _ => return None,
        }
    }
    Some(out)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("fpb-resultcache-tests");
        fs::create_dir_all(&dir).unwrap();
        let p = dir.join(name);
        fs::remove_file(&p).ok();
        p
    }

    fn sample_metrics(cycles: u64) -> Metrics {
        Metrics {
            cycles,
            instructions_per_core: 1000,
            cores: 4,
            pcm_writes: 17,
            per_chip_cells: vec![1, 2, 3, 4],
            ..Metrics::default()
        }
    }

    #[test]
    fn round_trip_hits_exactly() {
        let path = tmp("round_trip.v1");
        let mut c = ResultCache::empty(&path);
        c.insert("unit a".into(), sample_metrics(11));
        c.insert("unit\tb\\with\nescapes".into(), sample_metrics(22));
        c.save().unwrap();

        let mut r = ResultCache::load(&path);
        assert_eq!(r.len(), 2);
        assert_eq!(r.lookup("unit a"), Some(sample_metrics(11)));
        assert_eq!(r.lookup("unit\tb\\with\nescapes"), Some(sample_metrics(22)));
        assert_eq!(r.lookup("unit c"), None);
        assert_eq!((r.hits, r.misses), (2, 1));
        fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_an_empty_cache() {
        let c = ResultCache::load(Path::new("/nonexistent/fpb-cache.v1"));
        assert!(c.is_empty());
    }

    #[test]
    fn malformed_record_discards_the_whole_cache() {
        let path = tmp("malformed.v1");
        let mut c = ResultCache::empty(&path);
        c.insert("alpha".into(), sample_metrics(1));
        c.insert("beta".into(), sample_metrics(2));
        c.save().unwrap();

        let good = fs::read_to_string(&path).unwrap();
        for mutation in [
            good.replacen("R\t", "X\t", 1),          // wrong record tag
            good.replace(CODE_SALT, "s999"),         // salt bump
            good.replacen(CACHE_SCHEMA, "bogus/v9", 1), // wrong schema
            good[..good.len() / 2].to_string(),      // truncated mid-record
        ] {
            fs::write(&path, &mutation).unwrap();
            assert!(ResultCache::load(&path).is_empty(), "kept entries after: {mutation:?}");
        }

        // Bit-flip inside a record's hash column: integrity check trips.
        let mut bytes = good.clone().into_bytes();
        let first_r = good.find("R\t").unwrap();
        bytes[first_r + 3] = if bytes[first_r + 3] == b'0' { b'1' } else { b'0' };
        fs::write(&path, &bytes).unwrap();
        assert!(ResultCache::load(&path).is_empty(), "hash mismatch must discard");
        fs::remove_file(&path).ok();
    }

    #[test]
    fn save_is_a_noop_without_new_entries() {
        let path = tmp("noop.v1");
        let mut c = ResultCache::empty(&path);
        c.insert("x".into(), sample_metrics(9));
        c.save().unwrap();
        let r = ResultCache::load(&path);
        r.save().unwrap(); // clean cache: no rewrite, no error
        assert_eq!(ResultCache::load(&path).len(), 1);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn escape_round_trip() {
        for s in ["plain", "tab\there", "nl\nhere", "back\\slash", "\\t literal"] {
            assert_eq!(unesc(&esc(s)).as_deref(), Some(s));
        }
        assert_eq!(unesc("bad\\q"), None);
        assert_eq!(unesc("trailing\\"), None);
    }

    #[test]
    fn empty_cache_file_parses_empty() {
        let path = tmp("empty.v1");
        fs::write(&path, format!("{CACHE_SCHEMA} {CODE_SALT}\n")).unwrap();
        assert!(ResultCache::load(&path).is_empty());
        fs::remove_file(&path).ok();
    }
}
