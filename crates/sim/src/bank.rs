//! Per-bank state machines.

use crate::request::WriteTask;
use fpb_types::Cycles;

/// What a PCM bank is doing right now.
#[derive(Debug)]
pub enum BankState {
    /// Ready for a new request.
    Idle,
    /// Servicing an array read; the blocked core is woken at `done_at`.
    Reading {
        /// Completion time.
        done_at: Cycles,
        /// Core index blocked on the read.
        core: usize,
    },
    /// Running one write iteration of the held task.
    Writing {
        /// Completion time of the current iteration (or of the
        /// read-before-write when `in_pre_read`).
        iter_done_at: Cycles,
        /// The write task (owns the `LineWrite` rounds).
        task: WriteTask,
        /// True while the bridge chip's comparison read runs, before the
        /// first iteration starts.
        in_pre_read: bool,
        /// A read arrived for this bank and write cancellation decided to
        /// abort at the next boundary.
        cancel_pending: bool,
    },
    /// A write is mid-flight but could not get tokens for its next
    /// iteration (it holds none while stalled).
    WriteStalled {
        /// The stalled task.
        task: WriteTask,
        /// When the stall began (for fairness ordering).
        since: Cycles,
    },
    /// A write finished a round; the next round awaits admission.
    AwaitingRound {
        /// The task whose next round needs admission.
        task: WriteTask,
        /// When the wait began.
        since: Cycles,
    },
    /// A write failed its round verify and is waiting out its retry
    /// backoff before the round is re-issued (it holds no tokens).
    Backoff {
        /// The task to retry.
        task: WriteTask,
        /// When the backoff expires and re-admission is attempted.
        until: Cycles,
    },
    /// All cells converged, but a feedback-less memory controller cannot
    /// know that: the bank and its tokens stay occupied until the
    /// worst-case write time elapses (§2.1.1's argument for the bridge
    /// chip).
    Draining {
        /// The finished task, held until the assumed completion time.
        task: WriteTask,
        /// Worst-case completion time.
        until: Cycles,
    },
}

impl BankState {
    /// True if the bank can accept a new read right now. Write pausing
    /// parks its task in the bank's separate parking slot and leaves the
    /// state `Idle`, precisely so reads flow through.
    pub fn accepts_read(&self) -> bool {
        matches!(self, BankState::Idle)
    }

    /// True if the bank can accept a brand-new write.
    pub fn accepts_write(&self) -> bool {
        matches!(self, BankState::Idle)
    }

    /// True if a write occupies this bank in any form.
    pub fn has_write(&self) -> bool {
        matches!(
            self,
            BankState::Writing { .. }
                | BankState::WriteStalled { .. }
                | BankState::AwaitingRound { .. }
                | BankState::Backoff { .. }
                | BankState::Draining { .. }
        )
    }

    /// The next scheduled completion event on this bank, if any.
    pub fn next_event(&self) -> Option<Cycles> {
        match self {
            BankState::Reading { done_at, .. } => Some(*done_at),
            BankState::Writing { iter_done_at, .. } => Some(*iter_done_at),
            BankState::Draining { until, .. } => Some(*until),
            BankState::Backoff { until, .. } => Some(*until),
            _ => None,
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn idle_accepts_everything() {
        let s = BankState::Idle;
        assert!(s.accepts_read());
        assert!(s.accepts_write());
        assert!(!s.has_write());
        assert_eq!(s.next_event(), None);
    }

    #[test]
    fn reading_blocks_both() {
        let s = BankState::Reading {
            done_at: Cycles::new(100),
            core: 0,
        };
        assert!(!s.accepts_read());
        assert!(!s.accepts_write());
        assert!(!s.has_write());
        assert_eq!(s.next_event(), Some(Cycles::new(100)));
    }

    fn dummy_task() -> crate::request::WriteTask {
        use fpb_core::WriteId;
        use fpb_pcm::{CellMapping, ChangeSet, DimmGeometry, IterationSampler, LineWrite, MlcLevel};
        use fpb_types::{LineAddr, MlcWriteModel, SimRng};
        let geom = DimmGeometry::new(8, 1024);
        let sampler = IterationSampler::new(MlcWriteModel::default());
        let mut rng = SimRng::seed_from(1);
        let cs = ChangeSet::from_cells(vec![(0, MlcLevel::L01)]);
        crate::request::WriteTask {
            id: WriteId::new(1),
            line: LineAddr::new(0),
            bank: fpb_types::BankId::new(0),
            arrival: Cycles::ZERO,
            rounds: vec![LineWrite::new(&cs, &geom, CellMapping::Bim, &sampler, &mut rng, 1)],
            current_round: 0,
            pre_read_done: false,
            round_started_at: Cycles::ZERO,
            retries: 0,
            iterations_spent: 0,
            watchdog_tripped: false,
        }
    }

    #[test]
    fn writing_owns_the_bank() {
        let s = BankState::Writing {
            iter_done_at: Cycles::new(500),
            task: dummy_task(),
            in_pre_read: false,
            cancel_pending: false,
        };
        assert!(!s.accepts_read());
        assert!(!s.accepts_write());
        assert!(s.has_write());
        assert_eq!(s.next_event(), Some(Cycles::new(500)));
    }

    #[test]
    fn backoff_owns_the_bank_until_expiry() {
        let s = BankState::Backoff {
            task: dummy_task(),
            until: Cycles::new(777),
        };
        assert!(s.has_write());
        assert!(!s.accepts_read());
        assert!(!s.accepts_write());
        assert_eq!(s.next_event(), Some(Cycles::new(777)));
    }

    #[test]
    fn parked_states_have_no_timed_event() {
        for s in [
            BankState::WriteStalled {
                task: dummy_task(),
                since: Cycles::new(10),
            },
            BankState::AwaitingRound {
                task: dummy_task(),
                since: Cycles::new(10),
            },
        ] {
            assert_eq!(s.next_event(), None);
            assert!(s.has_write());
            assert!(!s.accepts_write());
            assert!(!s.accepts_read());
        }
    }

}
