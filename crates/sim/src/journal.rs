//! Durable, append-only sweep journal: checkpoint/resume for long runs.
//!
//! A journal is a text file of checksummed single-line records. The
//! first line is a header binding the journal to one exact sweep (a
//! fingerprint of workload, schemes, grid, and config); every following
//! line stores the verbatim rendered result fragment of one completed
//! sweep point. Appends are flushed *and fsync'd* before the point is
//! reported complete, so a sweep killed at any moment — panic, SIGINT,
//! SIGKILL, power loss — loses at most its in-flight points and can be
//! resumed with `fpb sweep --resume`.
//!
//! Line format (one record per line, `\n`-terminated):
//!
//! ```text
//! fpbj1 <crc32-8hex> h <fingerprint-16hex> <points> <meta…>
//! fpbj1 <crc32-8hex> r <index> <payload…>
//! ```
//!
//! The CRC covers everything after its own field. Because results are
//! stored as verbatim payload strings (not re-encoded), resuming splices
//! restored fragments into the final report byte-for-byte — the basis of
//! the byte-identical-resume guarantee.
//!
//! Corrupt-tail policy: a torn append (kill mid-write) leaves at most
//! one trailing line that is unterminated or fails its CRC. Reading
//! stops at the first invalid line and reports everything before it;
//! resuming truncates the file back to the last valid byte before
//! appending. A CRC-valid line that is semantically impossible (e.g. a
//! point index beyond the grid) is *not* tail damage and is rejected as
//! an error — it means the journal belongs to a different sweep than its
//! header claims, and guessing would corrupt results silently.

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Magic tag opening every journal line; bump the digit on any format
/// change so old readers fail loudly instead of misparsing.
const MAGIC: &str = "fpbj1";

/// CRC-32 (IEEE 802.3, reflected, the `cksum`/zlib polynomial), bitwise.
/// Speed is irrelevant here — journal lines are short and appends are
/// dominated by the fsync.
///
/// # Examples
///
/// ```
/// // Check value from the CRC catalogue ("123456789").
/// assert_eq!(fpb_sim::journal::crc32(b"123456789"), 0xCBF4_3926);
/// ```
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = 0u32.wrapping_sub(crc & 1);
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// FNV-1a 64-bit over a string — the sweep fingerprint hash. Not
/// adversarial-collision-resistant, and does not need to be: it guards
/// against *accidentally* resuming the wrong journal, not sabotage.
pub fn fingerprint64(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in s.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// How a run attaches to a journal file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalMode {
    /// Start a fresh journal at this path (refusing to clobber an
    /// existing file).
    Fresh(PathBuf),
    /// Resume an existing journal: restore its completed points, then
    /// append the rest.
    Resume(PathBuf),
}

impl JournalMode {
    /// The journal file path in either mode.
    pub fn path(&self) -> &Path {
        match self {
            JournalMode::Fresh(p) | JournalMode::Resume(p) => p,
        }
    }
}

/// The header line: binds a journal to one exact sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalHeader {
    /// [`fingerprint64`] of the canonical sweep description (workload,
    /// scheme specs, instruction budget, base config, grid labels).
    pub fingerprint: u64,
    /// Total points in the grid; resume refuses a journal whose grid
    /// size differs even if the fingerprint matches.
    pub points: usize,
    /// Free-form human-readable context (shown in diagnostics; never
    /// parsed). Must not contain `\n`.
    pub meta: String,
}

/// One completed-point record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalRecord {
    /// Grid index of the completed point.
    pub index: usize,
    /// Verbatim stored payload (a rendered JSON fragment for sweeps).
    /// Must not contain `\n`.
    pub payload: String,
}

/// Everything recovered from reading a journal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalContents {
    /// The validated header.
    pub header: JournalHeader,
    /// Valid records in file order (duplicates for an index possible if
    /// a run was resumed mid-append race; first occurrence wins).
    pub records: Vec<JournalRecord>,
    /// Complete-but-invalid lines dropped at the tail (plus one for an
    /// unterminated trailing fragment, if any).
    pub dropped_lines: usize,
    /// Byte offset of the end of the last valid line — the truncation
    /// point for resume.
    pub valid_bytes: u64,
}

/// Why a journal could not be created, read, resumed, or appended to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalError {
    /// An underlying filesystem operation failed.
    Io {
        /// Operation being attempted (e.g. `create`, `append`, `fsync`).
        op: &'static str,
        /// Path involved.
        path: PathBuf,
        /// Rendered OS error.
        detail: String,
    },
    /// `create` refuses to clobber an existing file (resume it, or
    /// delete it explicitly).
    AlreadyExists(PathBuf),
    /// The file has no valid header line (empty, corrupt from byte 0, or
    /// not a journal at all).
    MissingHeader(PathBuf),
    /// The header is valid but describes a different sweep.
    HeaderMismatch {
        /// What the resuming sweep expected.
        expected: JournalHeader,
        /// What the file contains.
        found: JournalHeader,
    },
    /// A CRC-valid record is semantically impossible for this sweep
    /// (index beyond the grid) — not tail damage, refused outright.
    IndexOutOfRange {
        /// The impossible index.
        index: usize,
        /// The grid size from the header.
        points: usize,
    },
    /// A payload or meta string contained a newline (records are
    /// line-framed; embedded newlines would break the format).
    EmbeddedNewline,
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io { op, path, detail } => {
                write!(f, "journal {op} failed for {}: {detail}", path.display())
            }
            JournalError::AlreadyExists(p) => write!(
                f,
                "journal {} already exists (use --resume to continue it)",
                p.display()
            ),
            JournalError::MissingHeader(p) => {
                write!(f, "{} is not a sweep journal (no valid header line)", p.display())
            }
            JournalError::HeaderMismatch { expected, found } => write!(
                f,
                "journal belongs to a different sweep: expected fingerprint {:016x} over {} points, found {:016x} over {} points ({})",
                expected.fingerprint, expected.points, found.fingerprint, found.points, found.meta
            ),
            JournalError::IndexOutOfRange { index, points } => write!(
                f,
                "journal record index {index} is outside the {points}-point grid; refusing to guess"
            ),
            JournalError::EmbeddedNewline => {
                write!(f, "journal payloads must not contain newlines")
            }
        }
    }
}

impl std::error::Error for JournalError {}

fn io_err(op: &'static str, path: &Path, e: &std::io::Error) -> JournalError {
    JournalError::Io { op, path: path.to_path_buf(), detail: e.to_string() }
}

/// Renders one framed line (with trailing newline) for `body`.
fn frame(body: &str) -> String {
    format!("{MAGIC} {:08x} {body}\n", crc32(body.as_bytes()))
}

/// Parses one complete line (no trailing newline); `None` if the frame
/// or checksum is invalid (tail damage).
fn unframe(line: &str) -> Option<&str> {
    let rest = line.strip_prefix(MAGIC)?.strip_prefix(' ')?;
    let (crc_hex, body) = rest.split_at_checked(8)?;
    let body = body.strip_prefix(' ')?;
    let crc = u32::from_str_radix(crc_hex, 16).ok()?;
    (crc == crc32(body.as_bytes())).then_some(body)
}

fn header_body(h: &JournalHeader) -> String {
    format!("h {:016x} {} {}", h.fingerprint, h.points, h.meta)
}

fn parse_header(body: &str) -> Option<JournalHeader> {
    let rest = body.strip_prefix("h ")?;
    let (fp_hex, rest) = rest.split_at_checked(16)?;
    let rest = rest.strip_prefix(' ')?;
    let fingerprint = u64::from_str_radix(fp_hex, 16).ok()?;
    let (points, meta) = match rest.split_once(' ') {
        Some((p, meta)) => (p, meta),
        None => (rest, ""),
    };
    Some(JournalHeader { fingerprint, points: points.parse().ok()?, meta: meta.to_string() })
}

fn parse_record(body: &str) -> Option<JournalRecord> {
    let rest = body.strip_prefix("r ")?;
    let (index, payload) = rest.split_once(' ')?;
    Some(JournalRecord { index: index.parse().ok()?, payload: payload.to_string() })
}

/// Reads and validates a journal file: header first, then records, with
/// the corrupt-tail policy described in the module docs.
pub fn read_journal(path: &Path) -> Result<JournalContents, JournalError> {
    let mut buf = Vec::new();
    File::open(path)
        .and_then(|mut f| f.read_to_end(&mut buf))
        .map_err(|e| io_err("read", path, &e))?;
    let text = String::from_utf8_lossy(&buf);

    let mut offset = 0u64; // bytes consumed including each line's '\n'
    let mut lines = Vec::new(); // (line, end_offset) for complete lines
    let mut saw_partial_tail = false;
    for chunk in text.split_inclusive('\n') {
        offset += chunk.len() as u64;
        match chunk.strip_suffix('\n') {
            Some(line) => lines.push((line, offset)),
            None => saw_partial_tail = true, // unterminated torn tail
        }
    }

    let mut it = lines.iter();
    let Some(header) = it.next().and_then(|(l, _)| unframe(l)).and_then(parse_header) else {
        return Err(JournalError::MissingHeader(path.to_path_buf()));
    };
    let mut valid_bytes = lines[0].1;
    let mut records = Vec::new();
    let mut dropped = usize::from(saw_partial_tail);
    let mut remaining = it.len();
    for (line, end) in it {
        remaining -= 1;
        match unframe(line).and_then(parse_record) {
            Some(rec) => {
                if rec.index >= header.points {
                    return Err(JournalError::IndexOutOfRange {
                        index: rec.index,
                        points: header.points,
                    });
                }
                records.push(rec);
                valid_bytes = *end;
            }
            None => {
                // First invalid line: everything from here is tail.
                dropped += 1 + remaining;
                break;
            }
        }
    }
    Ok(JournalContents { header, records, dropped_lines: dropped, valid_bytes })
}

/// An open journal accepting fsync'd appends.
#[derive(Debug)]
pub struct JournalWriter {
    file: File,
    path: PathBuf,
}

impl JournalWriter {
    /// Creates a fresh journal (refusing to clobber an existing file),
    /// writes the header, and syncs it — plus a best-effort sync of the
    /// parent directory so the *name* survives a crash too.
    pub fn create(path: &Path, header: &JournalHeader) -> Result<JournalWriter, JournalError> {
        if header.meta.contains('\n') {
            return Err(JournalError::EmbeddedNewline);
        }
        let mut opts = OpenOptions::new();
        opts.write(true).create_new(true);
        let file = opts.open(path).map_err(|e| {
            if e.kind() == std::io::ErrorKind::AlreadyExists {
                JournalError::AlreadyExists(path.to_path_buf())
            } else {
                io_err("create", path, &e)
            }
        })?;
        let mut w = JournalWriter { file, path: path.to_path_buf() };
        w.write_line(&frame(&header_body(header)))?;
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            if let Ok(d) = File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(w)
    }

    /// Reopens an existing journal for appending: validates the header
    /// against `expected`, truncates any corrupt tail back to the last
    /// valid byte, and returns the recovered contents alongside the
    /// writer.
    pub fn resume(
        path: &Path,
        expected: &JournalHeader,
    ) -> Result<(JournalWriter, JournalContents), JournalError> {
        let contents = read_journal(path)?;
        if contents.header != *expected {
            return Err(JournalError::HeaderMismatch {
                expected: expected.clone(),
                found: contents.header,
            });
        }
        let file = OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(|e| io_err("open", path, &e))?;
        file.set_len(contents.valid_bytes).map_err(|e| io_err("truncate", path, &e))?;
        let mut w = JournalWriter { file, path: path.to_path_buf() };
        w.file
            .seek(SeekFrom::Start(contents.valid_bytes))
            .map_err(|e| io_err("seek", path, &e))?;
        Ok((w, contents))
    }

    /// Appends one completed-point record and syncs it to disk; when
    /// this returns `Ok`, the record survives any subsequent kill.
    pub fn append_record(&mut self, index: usize, payload: &str) -> Result<(), JournalError> {
        if payload.contains('\n') {
            return Err(JournalError::EmbeddedNewline);
        }
        self.write_line(&frame(&format!("r {index} {payload}")))
    }

    fn write_line(&mut self, line: &str) -> Result<(), JournalError> {
        self.file
            .write_all(line.as_bytes())
            .and_then(|()| self.file.flush())
            .map_err(|e| io_err("append", &self.path, &e))?;
        self.file.sync_data().map_err(|e| io_err("fsync", &self.path, &e))
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("fpb-journal-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join(name);
        std::fs::remove_file(&p).ok();
        p
    }

    fn header() -> JournalHeader {
        JournalHeader { fingerprint: 0xDEAD_BEEF_0123_4567, points: 9, meta: "mcf_m fpb 3x3".into() }
    }

    #[test]
    fn round_trip_create_append_read() {
        let path = tmp("round_trip.fpbj");
        let mut w = JournalWriter::create(&path, &header()).unwrap();
        w.append_record(0, r#"{"index": 0, "cycles": 12}"#).unwrap();
        w.append_record(3, r#"{"index": 3, "cycles": 9}"#).unwrap();
        drop(w);
        let c = read_journal(&path).unwrap();
        assert_eq!(c.header, header());
        assert_eq!(c.records.len(), 2);
        assert_eq!(c.records[0].index, 0);
        assert_eq!(c.records[1].payload, r#"{"index": 3, "cycles": 9}"#);
        assert_eq!(c.dropped_lines, 0);
        assert_eq!(c.valid_bytes, std::fs::metadata(&path).unwrap().len());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn create_refuses_existing_file() {
        let path = tmp("no_clobber.fpbj");
        drop(JournalWriter::create(&path, &header()).unwrap());
        let err = JournalWriter::create(&path, &header()).unwrap_err();
        assert_eq!(err, JournalError::AlreadyExists(path.clone()));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_dropped_and_truncated_on_resume() {
        let path = tmp("torn_tail.fpbj");
        let mut w = JournalWriter::create(&path, &header()).unwrap();
        w.append_record(1, "payload one").unwrap();
        drop(w);
        let good_len = std::fs::metadata(&path).unwrap().len();
        // Simulate a kill mid-append: a torn, unterminated record.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"fpbj1 00b1ff00 r 2 half-writ").unwrap();
        drop(f);

        let c = read_journal(&path).unwrap();
        assert_eq!(c.records.len(), 1);
        assert_eq!(c.dropped_lines, 1);
        assert_eq!(c.valid_bytes, good_len);

        let (mut w, recovered) = JournalWriter::resume(&path, &header()).unwrap();
        assert_eq!(recovered.records.len(), 1);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), good_len, "tail truncated");
        w.append_record(2, "payload two").unwrap();
        drop(w);
        let c = read_journal(&path).unwrap();
        assert_eq!(c.records.len(), 2);
        assert_eq!(c.dropped_lines, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_checksum_line_ends_the_valid_region() {
        let path = tmp("bad_crc.fpbj");
        let mut w = JournalWriter::create(&path, &header()).unwrap();
        w.append_record(0, "alpha").unwrap();
        drop(w);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a payload byte in the last record: CRC now fails.
        let n = bytes.len();
        bytes[n - 2] ^= 0x20;
        // And append a structurally fine line *after* the corruption —
        // it must be dropped too (tail policy: stop at first bad line).
        let tail = frame("r 1 beta");
        bytes.extend_from_slice(tail.as_bytes());
        std::fs::write(&path, &bytes).unwrap();

        let c = read_journal(&path).unwrap();
        assert!(c.records.is_empty());
        assert_eq!(c.dropped_lines, 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_or_invalid_header_is_an_error() {
        let path = tmp("no_header.fpbj");
        std::fs::write(&path, "not a journal\n").unwrap();
        assert!(matches!(read_journal(&path), Err(JournalError::MissingHeader(_))));
        std::fs::write(&path, "").unwrap();
        assert!(matches!(read_journal(&path), Err(JournalError::MissingHeader(_))));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_rejects_wrong_sweep() {
        let path = tmp("wrong_sweep.fpbj");
        drop(JournalWriter::create(&path, &header()).unwrap());
        let other = JournalHeader { fingerprint: 1, ..header() };
        let err = JournalWriter::resume(&path, &other).unwrap_err();
        assert!(matches!(err, JournalError::HeaderMismatch { .. }));
        assert!(err.to_string().contains("different sweep"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn out_of_range_index_is_refused_not_truncated() {
        let path = tmp("oob.fpbj");
        drop(JournalWriter::create(&path, &header()).unwrap());
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(frame("r 99 whatever").as_bytes()).unwrap();
        drop(f);
        assert_eq!(
            read_journal(&path).unwrap_err(),
            JournalError::IndexOutOfRange { index: 99, points: 9 }
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn newlines_in_payload_and_meta_are_rejected() {
        let path = tmp("newline.fpbj");
        let bad = JournalHeader { meta: "two\nlines".into(), ..header() };
        assert_eq!(JournalWriter::create(&path, &bad).unwrap_err(), JournalError::EmbeddedNewline);
        let mut w = JournalWriter::create(&path, &header()).unwrap();
        assert_eq!(w.append_record(0, "a\nb").unwrap_err(), JournalError::EmbeddedNewline);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn crc32_and_fingerprint_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        // FNV-1a 64 reference vectors.
        assert_eq!(fingerprint64(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fingerprint64("a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn header_without_meta_parses() {
        let h = JournalHeader { fingerprint: 5, points: 2, meta: String::new() };
        let body = header_body(&h);
        assert_eq!(parse_header(&body), Some(h));
    }
}
