//! Bank-activity timelines: sample a stepped simulation and render an
//! ASCII Gantt view of what the DIMM was doing.
//!
//! Built on [`crate::System::step`]: the recorder drives the simulation
//! itself and snapshots queue depths, burst mode and per-bank write
//! occupancy at every event, then renders a fixed-width strip per bank —
//! the fastest way to *see* write bursts serializing reads, or FPB
//! overlapping writes that the baseline runs back to back.

use std::fmt;

use fpb_types::Cycles;

use crate::engine::System;
use crate::inspect::EventSink;
use crate::metrics::Metrics;
use crate::scheme::Scheme;

/// Why [`Timeline::render`] could not produce a chart.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RenderError {
    /// The requested chart width was zero.
    ZeroWidth,
    /// Nothing was recorded (the timeline holds no samples).
    Empty,
}

impl fmt::Display for RenderError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RenderError::ZeroWidth => write!(f, "chart width must be nonzero"),
            RenderError::Empty => write!(f, "timeline holds no samples"),
        }
    }
}

impl std::error::Error for RenderError {}

/// One sampled instant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sample {
    /// Simulation time of the sample.
    pub at: Cycles,
    /// Per-bank: does the bank hold a write (in any state)?
    pub bank_writes: Vec<bool>,
    /// Controller in write-burst mode?
    pub burst: bool,
    /// Write-queue depth.
    pub wrq: usize,
    /// Read-queue depth.
    pub rdq: usize,
}

/// A recorded run: every event-round snapshot plus the final metrics.
#[derive(Debug, Clone)]
pub struct Timeline {
    samples: Vec<Sample>,
    metrics: Metrics,
}

impl Timeline {
    /// Runs `system` to completion, sampling at every event round.
    ///
    /// # Examples
    ///
    /// ```
    /// use fpb_sim::timeline::Timeline;
    /// use fpb_sim::{SchemeSetup, SimOptions, System};
    /// use fpb_trace::catalog;
    /// use fpb_types::SystemConfig;
    ///
    /// let cfg = SystemConfig::default();
    /// let wl = catalog::workload("cop_m").unwrap();
    /// let sys = System::new(&wl, &cfg, &SchemeSetup::fpb(&cfg),
    ///                       &SimOptions::with_instructions(20_000));
    /// let tl = Timeline::record(sys);
    /// assert!(!tl.samples().is_empty());
    /// assert!(tl.metrics().cycles > 0);
    /// ```
    pub fn record<S: Scheme, E: EventSink>(mut system: System<S, E>) -> Timeline {
        let mut samples = Vec::new();
        loop {
            samples.push(Sample {
                at: system.now(),
                bank_writes: system.banks_with_writes(),
                burst: system.in_burst(),
                wrq: system.write_queue_len(),
                rdq: system.read_queue_len(),
            });
            if !system.step() {
                break;
            }
        }
        Timeline {
            samples,
            metrics: system.finish(),
        }
    }

    /// Reassembles a timeline from parts — the replay path
    /// ([`crate::inspect::Cursor`]) reconstructs the samples from
    /// recorded step snapshots rather than stepping a live system.
    pub fn from_parts(samples: Vec<Sample>, metrics: Metrics) -> Timeline {
        Timeline { samples, metrics }
    }

    /// The recorded samples, in time order.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// The run's final metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Fraction of samples during which `bank` held a write.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range or nothing was recorded.
    pub fn bank_write_occupancy(&self, bank: usize) -> f64 {
        assert!(!self.samples.is_empty(), "empty timeline");
        let hits = self
            .samples
            .iter()
            .filter(|s| s.bank_writes[bank])
            .count();
        hits as f64 / self.samples.len() as f64
    }

    /// Renders an ASCII strip chart: one row per bank (`#` = write
    /// resident, `.` = not), plus a burst row (`B`/`.`), `width` columns
    /// spanning the run (each column aggregates a time slice by majority).
    ///
    /// # Errors
    ///
    /// Returns [`RenderError`] if `width` is zero or nothing was
    /// recorded.
    pub fn render(&self, width: usize) -> Result<String, RenderError> {
        if width == 0 {
            return Err(RenderError::ZeroWidth);
        }
        let Some(last) = self.samples.last() else {
            return Err(RenderError::Empty);
        };
        let banks = self.samples[0].bank_writes.len();
        let end = last.at.get().max(1);
        let mut out = String::new();

        // Bucket samples by time slice.
        let mut buckets: Vec<Vec<&Sample>> = vec![Vec::new(); width];
        for s in &self.samples {
            let col = ((s.at.get() as u128 * width as u128) / (end as u128 + 1)) as usize;
            buckets[col.min(width - 1)].push(s);
        }

        for bank in 0..banks {
            out.push_str(&format!("bank{bank} "));
            for b in &buckets {
                let (mut on, mut n) = (0usize, 0usize);
                for s in b {
                    n += 1;
                    on += s.bank_writes[bank] as usize;
                }
                out.push(if n == 0 {
                    ' '
                } else if on * 2 >= n {
                    '#'
                } else {
                    '.'
                });
            }
            out.push('\n');
        }
        out.push_str("burst ");
        for b in &buckets {
            let (mut on, mut n) = (0usize, 0usize);
            for s in b {
                n += 1;
                on += s.burst as usize;
            }
            out.push(if n == 0 {
                ' '
            } else if on * 2 >= n {
                'B'
            } else {
                '.'
            });
        }
        out.push('\n');
        Ok(out)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::scheme::SchemeSetup;
    use crate::SimOptions;
    use fpb_trace::catalog;
    use fpb_types::SystemConfig;

    fn recorded(scheme: fn(&SystemConfig) -> SchemeSetup) -> Timeline {
        let cfg = SystemConfig::default();
        let wl = catalog::workload("lbm_m").expect("workload");
        let sys = System::new(
            &wl,
            &cfg,
            &scheme(&cfg),
            &SimOptions::with_instructions(40_000),
        );
        Timeline::record(sys)
    }

    #[test]
    fn recording_matches_plain_run() {
        let cfg = SystemConfig::default();
        let wl = catalog::workload("lbm_m").expect("workload");
        let opts = SimOptions::with_instructions(40_000);
        let plain = crate::run_workload(&wl, &cfg, &SchemeSetup::fpb(&cfg), &opts);
        let tl = recorded(SchemeSetup::fpb);
        assert_eq!(tl.metrics().cycles, plain.cycles, "stepping must not change results");
        assert_eq!(tl.metrics().pcm_writes, plain.pcm_writes);
    }

    #[test]
    fn samples_are_time_ordered() {
        let tl = recorded(SchemeSetup::dimm_chip);
        let mut last = Cycles::ZERO;
        for s in tl.samples() {
            assert!(s.at >= last);
            last = s.at;
        }
    }

    #[test]
    fn write_heavy_run_occupies_banks() {
        let tl = recorded(SchemeSetup::dimm_chip);
        let any: f64 = (0..8).map(|b| tl.bank_write_occupancy(b)).sum();
        assert!(any > 0.1, "some bank must carry writes: {any}");
    }

    #[test]
    fn render_shape_is_stable() {
        let tl = recorded(SchemeSetup::fpb);
        let chart = tl.render(60).unwrap();
        let lines: Vec<&str> = chart.lines().collect();
        assert_eq!(lines.len(), 9, "8 banks + burst row");
        assert!(lines[0].starts_with("bank0 "));
        assert!(lines[8].starts_with("burst "));
        for l in &lines {
            assert_eq!(l.len(), 6 + 60, "fixed width: {l}");
        }
    }

    #[test]
    fn zero_width_is_a_typed_error() {
        let tl = recorded(SchemeSetup::fpb);
        assert_eq!(tl.render(0), Err(RenderError::ZeroWidth));
        let empty = Timeline {
            samples: Vec::new(),
            metrics: Metrics::default(),
        };
        assert_eq!(empty.render(10), Err(RenderError::Empty));
    }
}
