//! Parameter-sweep driver: run a grid of configurations over a workload
//! and collect labeled metrics, warming each workload/config pair once.
//!
//! This is the machinery behind the §6.4 design-space exploration and the
//! CLI's `sweep` subcommand; downstream users point it at their own
//! workloads.

use fpb_types::SystemConfig;

use crate::engine::{run_workload_warmed, warm_cores, SimOptions};
use crate::exec::parallel_map_indexed;
use crate::metrics::Metrics;
use crate::scheme::{SchemeRegistry, SchemeSetup, SchemeSpec};
use fpb_trace::Workload;

/// One labeled variant of an axis: a point label and the configuration
/// transformer that produces it.
///
/// Transformers are `Send + Sync` so a sweep can be fanned across worker
/// threads (they are pure config rewrites; all built-in axes qualify).
pub type Variant = (
    String,
    Box<dyn Fn(SystemConfig) -> SystemConfig + Send + Sync>,
);

/// One axis of a sweep: a label and a configuration transformer.
pub struct Axis {
    /// Axis name (becomes part of each point's label).
    pub name: &'static str,
    /// Labeled configuration variants.
    pub variants: Vec<Variant>,
}

impl std::fmt::Debug for Axis {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Axis")
            .field("name", &self.name)
            .field("variants", &self.variants.len())
            .finish()
    }
}

impl Axis {
    /// Line-size axis (Fig. 19's values by default).
    pub fn line_bytes(values: &[u32]) -> Axis {
        Axis {
            name: "line",
            variants: values
                .iter()
                .map(|&v| {
                    let f: Box<dyn Fn(SystemConfig) -> SystemConfig + Send + Sync> =
                        Box::new(move |c: SystemConfig| c.with_line_bytes(v));
                    (format!("{v}B"), f)
                })
                .collect(),
        }
    }

    /// LLC-capacity axis (Fig. 20).
    pub fn llc_mib(values: &[u32]) -> Axis {
        Axis {
            name: "llc",
            variants: values
                .iter()
                .map(|&v| {
                    let f: Box<dyn Fn(SystemConfig) -> SystemConfig + Send + Sync> =
                        Box::new(move |c: SystemConfig| c.with_llc_mib(v));
                    (format!("{v}M"), f)
                })
                .collect(),
        }
    }

    /// DIMM-token axis (Fig. 22).
    pub fn pt_dimm(values: &[u64]) -> Axis {
        Axis {
            name: "pt",
            variants: values
                .iter()
                .map(|&v| {
                    let f: Box<dyn Fn(SystemConfig) -> SystemConfig + Send + Sync> =
                        Box::new(move |c: SystemConfig| c.with_pt_dimm(v));
                    (format!("{v}t"), f)
                })
                .collect(),
        }
    }

    /// GCP-efficiency axis (Figs. 11/15/16).
    pub fn e_gcp(values: &[f64]) -> Axis {
        Axis {
            name: "egcp",
            variants: values
                .iter()
                .map(|&v| {
                    let f: Box<dyn Fn(SystemConfig) -> SystemConfig + Send + Sync> =
                        Box::new(move |c: SystemConfig| c.with_gcp_efficiency(v));
                    (format!("{v}"), f)
                })
                .collect(),
        }
    }
}

/// One sweep result point.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// `axis=variant` labels joined with `,`, plus the scheme label.
    pub label: String,
    /// Metrics of the scheme under this configuration.
    pub metrics: Metrics,
    /// Metrics of the baseline scheme under the same configuration.
    pub baseline: Metrics,
}

impl SweepPoint {
    /// Speedup of the scheme over the baseline at this point (Eq. 7).
    pub fn speedup(&self) -> f64 {
        self.metrics.speedup_over(&self.baseline)
    }
}

/// Runs the cartesian product of `axes` over `workload`, measuring the
/// scheme named by `scheme` against the one named by `baseline` (both
/// registry spec strings, rebuilt per configuration so budget-derived
/// fields track the swept config).
///
/// # Panics
///
/// Panics if `axes` is empty, either spec does not resolve in the
/// [`SchemeRegistry`], or any produced configuration is invalid.
///
/// # Examples
///
/// ```
/// use fpb_sim::sweep::{run_sweep, Axis};
/// use fpb_sim::SimOptions;
/// use fpb_trace::catalog;
/// use fpb_types::SystemConfig;
///
/// let wl = catalog::workload("cop_m").unwrap();
/// let points = run_sweep(
///     &wl,
///     SystemConfig::default(),
///     &[Axis::pt_dimm(&[466, 560])],
///     "fpb",
///     "dimm-chip",
///     &SimOptions::with_instructions(20_000),
/// );
/// assert_eq!(points.len(), 2);
/// assert!(points[0].label.contains("pt=466t"));
/// ```
pub fn run_sweep(
    workload: &Workload,
    base_cfg: SystemConfig,
    axes: &[Axis],
    scheme: &str,
    baseline: &str,
    opts: &SimOptions,
) -> Vec<SweepPoint> {
    run_sweep_jobs(workload, base_cfg, axes, scheme, baseline, opts, 1)
}

/// [`run_sweep`] fanned across up to `jobs` worker threads.
///
/// Every grid point is an independent, deterministic simulation (each run
/// seeds its own RNGs from the configuration), so the parallel sweep
/// returns results **bit-for-bit identical** to the serial one, in the
/// same odometer order — `jobs` only changes wall-clock time. With
/// `jobs <= 1` the grid runs inline on the caller's thread.
///
/// # Panics
///
/// Panics if `axes` is empty, either scheme spec does not resolve, or any
/// produced configuration is invalid (the validation happens up front,
/// before any worker starts).
pub fn run_sweep_jobs(
    workload: &Workload,
    base_cfg: SystemConfig,
    axes: &[Axis],
    scheme: &str,
    baseline: &str,
    opts: &SimOptions,
    jobs: usize,
) -> Vec<SweepPoint> {
    assert!(!axes.is_empty(), "sweep needs at least one axis");
    // Resolve both specs once, up front: a typo fails before any
    // simulation work starts, and workers then rebuild per config from
    // the parsed form.
    let registry = SchemeRegistry::standard();
    let scheme_spec = parse_spec(scheme);
    let baseline_spec = parse_spec(baseline);
    // Semantic errors (e.g. `+reg` on a GCP-less base) are config-
    // independent, so one build against the base config proves every
    // per-point build in the workers will succeed.
    build_spec(registry, &scheme_spec, &base_cfg);
    build_spec(registry, &baseline_spec, &base_cfg);
    // Enumerate the grid up front in odometer order; workers then claim
    // points off this list, and results keep the enumeration order.
    let mut grid: Vec<(String, SystemConfig)> = Vec::new();
    let mut index = vec![0usize; axes.len()];
    'grid: loop {
        // Build this point's config and label.
        let mut cfg = base_cfg.clone();
        let mut parts = Vec::new();
        for (a, &i) in axes.iter().zip(&index) {
            let (name, f) = &a.variants[i];
            cfg = f(cfg);
            parts.push(format!("{}={}", a.name, name));
        }
        cfg.validate().expect("swept config invalid");
        grid.push((parts.join(","), cfg));

        // Odometer increment.
        for d in (0..axes.len()).rev() {
            index[d] += 1;
            if index[d] < axes[d].variants.len() {
                continue 'grid;
            }
            index[d] = 0;
            if d == 0 {
                break 'grid;
            }
        }
    }
    parallel_map_indexed(&grid, jobs, |_, (label, cfg)| {
        let cores = warm_cores(workload, cfg, opts);
        let baseline = build_spec(registry, &baseline_spec, cfg);
        let scheme = build_spec(registry, &scheme_spec, cfg);
        let base = run_workload_warmed(workload, cfg, &baseline, opts, &cores);
        let m = run_workload_warmed(workload, cfg, &scheme, opts, &cores);
        SweepPoint {
            label: format!("{} [{}]", label, scheme.label),
            metrics: m,
            baseline: base,
        }
    })
}

/// Parses a sweep scheme spec, upholding the sweep API's documented
/// `# Panics` contract: a malformed spec is a call-site bug and must
/// fail loudly before any simulation work starts.
fn parse_spec(s: &str) -> SchemeSpec {
    match s.parse() {
        Ok(spec) => spec,
        // fpb-lint: allow(panic_freedom) — documented `# Panics` contract.
        Err(e) => panic!("sweep scheme spec `{s}`: {e}"),
    }
}

/// Builds a parsed spec against one config, with the same documented
/// panic contract as [`parse_spec`].
fn build_spec(registry: &SchemeRegistry, spec: &SchemeSpec, cfg: &SystemConfig) -> SchemeSetup {
    match registry.build_spec(spec, cfg) {
        Ok(setup) => setup,
        // fpb-lint: allow(panic_freedom) — documented `# Panics` contract.
        Err(e) => panic!("sweep scheme spec `{}`: {e}", spec.render()),
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use fpb_trace::catalog;

    fn opts() -> SimOptions {
        SimOptions::with_instructions(15_000)
    }

    #[test]
    fn cartesian_product_order_and_size() {
        let wl = catalog::workload("cop_m").expect("workload");
        let points = run_sweep(
            &wl,
            SystemConfig::default(),
            &[
                Axis::pt_dimm(&[466, 560]),
                Axis::e_gcp(&[0.7, 0.5]),
            ],
            "fpb",
            "dimm-chip",
            &opts(),
        );
        assert_eq!(points.len(), 4);
        assert!(points[0].label.starts_with("pt=466t,egcp=0.7"));
        assert!(points[3].label.starts_with("pt=560t,egcp=0.5"));
        for p in &points {
            assert!(p.speedup() > 0.0);
            assert!(p.label.contains("[FPB]"));
        }
    }

    #[test]
    fn axes_apply_their_configs() {
        let wl = catalog::workload("xal_m").expect("workload");
        let points = run_sweep(
            &wl,
            SystemConfig::default(),
            &[Axis::line_bytes(&[64, 256])],
            "ideal",
            "ideal",
            &opts(),
        );
        assert_eq!(points.len(), 2);
        // Identical scheme and baseline: speedup exactly 1.
        for p in &points {
            assert!((p.speedup() - 1.0).abs() < 1e-12, "{}", p.label);
        }
    }

    #[test]
    fn llc_axis_changes_traffic() {
        let wl = catalog::workload("ast_m").expect("workload");
        let points = run_sweep(
            &wl,
            SystemConfig::default(),
            &[Axis::llc_mib(&[4, 32])],
            "dimm-chip",
            "dimm-chip",
            &opts(),
        );
        // A tiny LLC must produce more PCM reads than the baseline 32 M.
        assert!(
            points[0].metrics.pcm_reads > points[1].metrics.pcm_reads,
            "4M {} vs 32M {}",
            points[0].metrics.pcm_reads,
            points[1].metrics.pcm_reads
        );
    }

    #[test]
    #[should_panic(expected = "at least one axis")]
    fn empty_axes_panic() {
        let wl = catalog::workload("cop_m").expect("workload");
        let _ = run_sweep(
            &wl,
            SystemConfig::default(),
            &[],
            "fpb",
            "dimm-chip",
            &opts(),
        );
    }
}
